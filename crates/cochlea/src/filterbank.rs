//! Cochlear band-pass filter bank.
//!
//! A silicon cochlea decomposes sound into overlapping frequency bands
//! along a tonotopic axis; here each channel is a biquad band-pass
//! section (RBJ audio-EQ cookbook, constant-Q) with log-spaced centre
//! frequencies, mirroring the 64-channel AMS C1c chip.

use std::f64::consts::PI;

use serde::{Deserialize, Serialize};

use crate::audio::AudioBuffer;

/// One second-order band-pass section.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Biquad {
    b0: f64,
    b1: f64,
    b2: f64,
    a1: f64,
    a2: f64,
    x1: f64,
    x2: f64,
    y1: f64,
    y2: f64,
}

impl Biquad {
    /// Designs a constant-skirt-gain band-pass biquad at `f0` with
    /// quality factor `q` for the given sample rate (RBJ cookbook).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f0 < sample_rate/2` and `q > 0`.
    pub fn bandpass(sample_rate: u32, f0: f64, q: f64) -> Biquad {
        assert!(
            f0 > 0.0 && f0 < sample_rate as f64 / 2.0,
            "centre frequency {f0} must be inside (0, Nyquist)"
        );
        assert!(q > 0.0, "Q must be positive, got {q}");
        let w0 = 2.0 * PI * f0 / sample_rate as f64;
        let alpha = w0.sin() / (2.0 * q);
        let a0 = 1.0 + alpha;
        Biquad {
            b0: alpha / a0,
            b1: 0.0,
            b2: -alpha / a0,
            a1: -2.0 * w0.cos() / a0,
            a2: (1.0 - alpha) / a0,
            x1: 0.0,
            x2: 0.0,
            y1: 0.0,
            y2: 0.0,
        }
    }

    /// Processes one sample.
    pub fn step(&mut self, x: f64) -> f64 {
        let y = self.b0 * x + self.b1 * self.x1 + self.b2 * self.x2
            - self.a1 * self.y1
            - self.a2 * self.y2;
        self.x2 = self.x1;
        self.x1 = x;
        self.y2 = self.y1;
        self.y1 = y;
        y
    }

    /// Resets the filter state.
    pub fn reset(&mut self) {
        self.x1 = 0.0;
        self.x2 = 0.0;
        self.y1 = 0.0;
        self.y2 = 0.0;
    }
}

/// A bank of log-spaced band-pass channels.
///
/// # Examples
///
/// ```
/// use aetr_cochlea::audio::AudioBuffer;
/// use aetr_cochlea::filterbank::FilterBank;
///
/// let mut bank = FilterBank::log_spaced(16_000, 64, 100.0, 6_000.0, 4.0);
/// let tone = AudioBuffer::tone(16_000, 1_000.0, 0.5, 0.1);
/// let outputs = bank.process(&tone);
/// assert_eq!(outputs.len(), 64);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FilterBank {
    sample_rate: u32,
    centers: Vec<f64>,
    filters: Vec<Biquad>,
}

impl FilterBank {
    /// Builds `channels` band-pass sections with centre frequencies
    /// log-spaced over `[f_lo, f_hi]`, all sharing quality factor `q`.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`, if the band is empty or inverted, or
    /// if `f_hi` reaches Nyquist.
    pub fn log_spaced(
        sample_rate: u32,
        channels: usize,
        f_lo: f64,
        f_hi: f64,
        q: f64,
    ) -> FilterBank {
        assert!(channels > 0, "need at least one channel");
        assert!(0.0 < f_lo && f_lo < f_hi, "band [{f_lo}, {f_hi}] must be positive and ordered");
        let centers: Vec<f64> = (0..channels)
            .map(|i| {
                let t = if channels == 1 { 0.0 } else { i as f64 / (channels - 1) as f64 };
                f_lo * (f_hi / f_lo).powf(t)
            })
            .collect();
        let filters = centers.iter().map(|&f0| Biquad::bandpass(sample_rate, f0, q)).collect();
        FilterBank { sample_rate, centers, filters }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.filters.len()
    }

    /// Centre frequency of a channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is out of range.
    pub fn center_frequency(&self, channel: usize) -> f64 {
        self.centers[channel]
    }

    /// Filters the buffer through every channel, returning one output
    /// vector per channel. Filter state is reset first so calls are
    /// independent.
    ///
    /// # Panics
    ///
    /// Panics on a sample-rate mismatch with the bank design.
    pub fn process(&mut self, audio: &AudioBuffer) -> Vec<Vec<f64>> {
        assert_eq!(audio.sample_rate(), self.sample_rate, "sample-rate mismatch");
        self.filters.iter_mut().for_each(Biquad::reset);
        self.filters
            .iter_mut()
            .map(|f| audio.samples().iter().map(|&x| f.step(x)).collect())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn band_rms(out: &[f64]) -> f64 {
        (out.iter().map(|y| y * y).sum::<f64>() / out.len() as f64).sqrt()
    }

    #[test]
    fn log_spacing_is_geometric() {
        let bank = FilterBank::log_spaced(16_000, 5, 100.0, 1_600.0, 4.0);
        let ratios: Vec<f64> =
            (1..5).map(|i| bank.center_frequency(i) / bank.center_frequency(i - 1)).collect();
        for r in &ratios {
            assert!((r - 2.0).abs() < 1e-9, "ratio {r}");
        }
    }

    #[test]
    fn tone_excites_matching_channel_most() {
        let mut bank = FilterBank::log_spaced(16_000, 32, 100.0, 6_000.0, 6.0);
        let tone = AudioBuffer::tone(16_000, 1_000.0, 0.5, 0.2);
        let outputs = bank.process(&tone);
        let rms: Vec<f64> = outputs.iter().map(|o| band_rms(o)).collect();
        let best = rms
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let f_best = bank.center_frequency(best);
        assert!(
            (f_best / 1_000.0).ln().abs() < 0.2,
            "peak channel at {f_best} Hz for a 1 kHz tone"
        );
    }

    #[test]
    fn selectivity_rejects_distant_bands() {
        let mut bank = FilterBank::log_spaced(16_000, 32, 100.0, 6_000.0, 6.0);
        let tone = AudioBuffer::tone(16_000, 1_000.0, 0.5, 0.2);
        let outputs = bank.process(&tone);
        let rms: Vec<f64> = outputs.iter().map(|o| band_rms(o)).collect();
        let peak = rms.iter().cloned().fold(0.0f64, f64::max);
        // Channels more than an octave away are at least 6 dB down.
        for (i, r) in rms.iter().enumerate() {
            let f = bank.center_frequency(i);
            if !(500.0..2_000.0).contains(&f) {
                assert!(*r < peak * 0.5, "channel at {f} Hz leaked {r} vs peak {peak}");
            }
        }
    }

    #[test]
    fn filter_is_stable_on_noise() {
        let mut bank = FilterBank::log_spaced(16_000, 8, 200.0, 4_000.0, 4.0);
        let noise = AudioBuffer::white_noise(16_000, 1.0, 0.5, 3);
        let outputs = bank.process(&noise);
        for out in &outputs {
            assert!(out.iter().all(|y| y.is_finite() && y.abs() < 10.0));
        }
    }

    #[test]
    fn process_resets_state_between_calls() {
        let mut bank = FilterBank::log_spaced(16_000, 4, 200.0, 2_000.0, 4.0);
        let tone = AudioBuffer::tone(16_000, 500.0, 0.5, 0.05);
        let a = bank.process(&tone);
        let b = bank.process(&tone);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "Nyquist")]
    fn bandpass_rejects_above_nyquist() {
        let _ = Biquad::bandpass(16_000, 9_000.0, 4.0);
    }
}
