//! AER arbiter-tree model.
//!
//! Inside a multi-neuron AER chip, thousands of neurons share one
//! output bus through a binary arbiter tree: simultaneous spike
//! requests race up the tree, one wins per round, the losers wait.
//! This serialisation is why AER events never collide — and why a
//! dense burst smears out in time (each arbitration round costs a
//! tree traversal).
//!
//! The model here reproduces the two observable effects the interface
//! cares about: *serialisation delay* (per-event bus occupancy plus a
//! per-level arbitration cost) and *greedy unfairness* (the classic
//! AER arbiter is not FIFO across sub-trees; we model the standard
//! tree that favours the sub-tree that last held the token, which can
//! reorder same-instant events but never starves bounded bursts).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::spike::{Spike, SpikeTrain};

/// Arbiter-tree timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterConfig {
    /// Tree depth in levels (a chip with `2^depth` leaf groups).
    pub depth: u32,
    /// Propagation cost per tree level (request up + grant down).
    pub level_delay: SimDuration,
    /// Bus occupancy per granted event (the output handshake).
    pub service_time: SimDuration,
}

impl ArbiterConfig {
    /// A DAS1-scale tree: 128 leaf requests (depth 7), 2 ns per level,
    /// 100 ns of bus time per event.
    pub fn das1() -> ArbiterConfig {
        ArbiterConfig {
            depth: 7,
            level_delay: SimDuration::from_ns(2),
            service_time: SimDuration::from_ns(100),
        }
    }

    /// Fixed arbitration latency for one uncontended event.
    pub fn traversal_delay(&self) -> SimDuration {
        self.level_delay.saturating_mul(2 * self.depth as u64)
    }

    /// Worst-case sustained event rate through the arbiter.
    pub fn max_rate_hz(&self) -> f64 {
        1.0 / self.service_time.as_secs_f64()
    }
}

impl Default for ArbiterConfig {
    fn default() -> Self {
        Self::das1()
    }
}

/// Per-run arbitration statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterStats {
    /// Events arbitrated.
    pub events: u64,
    /// Events that found the bus busy and had to wait.
    pub contended: u64,
    /// Longest wait (arrival to grant).
    pub max_wait: SimDuration,
    /// Sum of waits, for the mean.
    pub total_wait: SimDuration,
}

impl ArbiterStats {
    /// Mean wait per event in seconds.
    pub fn mean_wait_secs(&self) -> f64 {
        if self.events == 0 {
            0.0
        } else {
            self.total_wait.as_secs_f64() / self.events as f64
        }
    }
}

/// Serialises a spike train through the arbiter tree, returning the
/// on-bus event times (grant + service order) and statistics.
///
/// Input spikes are neuron firing times; output spikes are when each
/// event's handshake actually starts on the shared bus. Within a
/// contention episode, grants alternate between the two sub-trees of
/// the root (the "greedy toggle" behaviour of the classic
/// Boahen-style arbiter), keyed here by the address LSB of the
/// pending set.
///
/// # Examples
///
/// ```
/// use aetr_aer::arbiter::{arbitrate, ArbiterConfig};
/// use aetr_aer::address::Address;
/// use aetr_aer::spike::{Spike, SpikeTrain};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two neurons fire simultaneously: the bus serialises them.
/// let train = SpikeTrain::from_sorted(vec![
///     Spike::new(SimTime::from_us(1), Address::new(0)?),
///     Spike::new(SimTime::from_us(1), Address::new(1)?),
/// ])?;
/// let (out, stats) = arbitrate(&train, &ArbiterConfig::das1());
/// assert_eq!(out.len(), 2);
/// assert!(out.as_slice()[1].time > out.as_slice()[0].time);
/// assert_eq!(stats.contended, 1);
/// # Ok(())
/// # }
/// ```
pub fn arbitrate(train: &SpikeTrain, config: &ArbiterConfig) -> (SpikeTrain, ArbiterStats) {
    let traversal = config.traversal_delay();
    let mut stats = ArbiterStats::default();
    let mut out: Vec<Spike> = Vec::with_capacity(train.len());

    // Pending requests that have arrived but not been granted, keyed
    // for deterministic toggle behaviour: (side, arrival, addr).
    let mut pending: BinaryHeap<Reverse<(u8, SimTime, u16)>> = BinaryHeap::new();
    let mut bus_free_at = SimTime::ZERO;
    let mut last_side = 1u8;
    let mut input = train.iter().peekable();

    loop {
        // Admit every spike that has arrived by the time the bus frees.
        while let Some(&&next) = input.peek().as_ref() {
            if next.time <= bus_free_at || pending.is_empty() {
                let side = (next.addr.value() & 1) as u8;
                // Toggle preference: the side opposite the last grant
                // sorts first.
                let key = side ^ last_side ^ 1;
                pending.push(Reverse((key ^ 1, next.time, next.addr.value())));
                input.next();
            } else {
                break;
            }
        }
        let Some(Reverse((_, arrival, addr))) = pending.pop() else {
            if input.peek().is_none() {
                break;
            }
            continue;
        };

        let earliest = arrival + traversal;
        let grant = earliest.max(bus_free_at);
        let wait = grant.saturating_duration_since(arrival + traversal);
        if !wait.is_zero() {
            stats.contended += 1;
        }
        stats.events += 1;
        stats.max_wait = stats.max_wait.max(wait);
        stats.total_wait += wait;
        last_side = (addr & 1) as u8;
        bus_free_at = grant + config.service_time;
        out.push(Spike::new(
            grant,
            crate::address::Address::new(addr).expect("input addresses are valid"),
        ));
    }

    (SpikeTrain::from_unsorted(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::generator::{PoissonGenerator, SpikeSource};

    fn spike(us: u64, addr: u16) -> Spike {
        Spike::new(SimTime::from_us(us), Address::new(addr).unwrap())
    }

    #[test]
    fn uncontended_events_pay_only_traversal() {
        let cfg = ArbiterConfig::das1();
        let train =
            SpikeTrain::from_sorted(vec![spike(10, 1), spike(20, 2), spike(30, 3)]).unwrap();
        let (out, stats) = arbitrate(&train, &cfg);
        assert_eq!(stats.contended, 0);
        assert_eq!(stats.max_wait, SimDuration::ZERO);
        for (o, i) in out.iter().zip(train.iter()) {
            assert_eq!(o.time - i.time, cfg.traversal_delay());
        }
    }

    #[test]
    fn simultaneous_burst_serialises_at_service_rate() {
        let cfg = ArbiterConfig::das1();
        let burst: Vec<Spike> = (0..10).map(|i| spike(5, i)).collect();
        let train = SpikeTrain::from_sorted(burst).unwrap();
        let (out, stats) = arbitrate(&train, &cfg);
        assert_eq!(out.len(), 10);
        assert_eq!(stats.contended, 9);
        let gaps: Vec<SimDuration> = out.inter_spike_intervals().collect();
        assert!(gaps.iter().all(|&g| g == cfg.service_time), "gaps {gaps:?}");
        // Worst wait ~ 9 service times.
        assert_eq!(stats.max_wait, cfg.service_time * 9);
    }

    #[test]
    fn no_event_is_ever_lost() {
        let cfg = ArbiterConfig::das1();
        let train = PoissonGenerator::new(2_000_000.0, 128, 3).generate(SimTime::from_ms(2));
        let n = train.len();
        let (out, stats) = arbitrate(&train, &cfg);
        assert_eq!(out.len(), n);
        assert_eq!(stats.events, n as u64);
    }

    #[test]
    fn output_is_time_ordered_and_causal() {
        let cfg = ArbiterConfig::das1();
        let train = PoissonGenerator::new(5_000_000.0, 64, 9).generate(SimTime::from_us(500));
        let (out, _) = arbitrate(&train, &cfg);
        let mut last = SimTime::ZERO;
        for o in &out {
            assert!(o.time >= last);
            last = o.time;
        }
        // Causality: every output time is >= some input time + traversal.
        let first_in = train.first_time().unwrap();
        assert!(out.first_time().unwrap() >= first_in + cfg.traversal_delay());
    }

    #[test]
    fn overload_grows_waits_linearly() {
        // Offered 20 Mevt/s >> 10 Mevt/s service rate: waits build up.
        let cfg = ArbiterConfig::das1();
        let train = PoissonGenerator::new(20_000_000.0, 64, 1).generate(SimTime::from_us(200));
        let (_, stats) = arbitrate(&train, &cfg);
        assert!(stats.max_wait > SimDuration::from_us(50), "max wait {}", stats.max_wait);
        assert!(stats.mean_wait_secs() > 10e-6);
    }

    #[test]
    fn empty_train_is_a_noop() {
        let (out, stats) = arbitrate(&SpikeTrain::new(), &ArbiterConfig::das1());
        assert!(out.is_empty());
        assert_eq!(stats, ArbiterStats::default());
    }

    #[test]
    fn config_derived_quantities() {
        let cfg = ArbiterConfig::das1();
        assert_eq!(cfg.traversal_delay(), SimDuration::from_ns(28));
        assert!((cfg.max_rate_hz() - 10e6).abs() < 1.0);
    }
}
