//! Offline stub of `criterion`.
//!
//! Part of the sandboxed-build vendor set (see `vendor/serde/src/lib.rs`
//! for the rationale). Exposes the subset of the criterion 0.5 API the
//! `aetr-bench` targets use — groups, throughput annotations,
//! `bench_function` / `bench_with_input`, and the `criterion_group!` /
//! `criterion_main!` macros — but measures with a plain
//! `std::time::Instant` loop and prints one median line per benchmark
//! instead of running criterion's statistical analysis. Good enough to
//! keep `cargo bench` functional and the bench code honest; swap in the
//! real crate for publication-grade numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Measurement loop: `iters` timed batches after `warmup` untimed ones.
fn measure<O, F: FnMut() -> O>(label: &str, samples: usize, mut routine: F) {
    let warmup = samples.div_ceil(4).max(1);
    for _ in 0..warmup {
        std::hint::black_box(routine());
    }
    let mut times: Vec<Duration> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let start = Instant::now();
        std::hint::black_box(routine());
        times.push(start.elapsed());
    }
    times.sort();
    let median = times[times.len() / 2];
    println!("bench {label:<50} median {median:>12.3?} over {samples} samples");
}

/// Top-level benchmark driver (stub).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<O, F: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_bench(&id.into(), self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Records the logical throughput of each iteration (printed only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<O, F: FnMut(&mut Bencher) -> O>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, O, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I) -> O,
    {
        let label = format!("{}/{}", self.name, id.0);
        run_bench(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_bench<O, F: FnMut(&mut Bencher) -> O>(label: &str, samples: usize, f: &mut F) {
    let mut bencher = Bencher { samples, label: label.to_string(), ran: false };
    f(&mut bencher);
    assert!(bencher.ran, "benchmark {label} never called Bencher::iter");
}

/// Passed to benchmark closures; `iter` performs the timed loop.
pub struct Bencher {
    samples: usize,
    label: String,
    ran: bool,
}

impl Bencher {
    /// Times `routine` over the configured number of samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, routine: F) {
        self.ran = true;
        measure(&self.label, self.samples, routine);
    }
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/parameter` style id.
    pub fn from_parameter(p: impl Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// `name/parameter` style id.
    pub fn new(name: impl Into<String>, p: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), p))
    }
}

/// Logical work per iteration (accepted, not currently printed).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Re-export for parity with criterion's `black_box`.
pub use std::hint::black_box;

/// Declares a group of benchmark functions, with or without a
/// customized [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = <$crate::Criterion as ::core::default::Default>::default();
            targets = $($target),+
        );
    };
}

/// Expands to `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
