//! Typed spans over simulated time.
//!
//! A span is an interval `[start, end]` in [`SimTime`] attributed to a
//! component track and a state name — one 4-phase handshake, one
//! oscillator wake, one watchdog recovery, one I2S frame, or one
//! residency interval of the clock generator (sleep / divided /
//! full-rate). The log keeps spans in completion order, can export them
//! as Chrome `trace_event` JSON (load in `chrome://tracing` or
//! Perfetto), and can fold them into a per-track time-in-state
//! breakdown, which is how the energy-proportionality acceptance test
//! checks that sleep + divided + full-rate residency covers the whole
//! simulation horizon.

use std::collections::BTreeMap;

use aetr_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// What kind of activity a span describes.
///
/// The kind doubles as the Chrome trace category and groups spans into
/// per-component "tracks" in the summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SpanKind {
    /// One 4-phase REQ/ACK handshake, from REQ rise to ACK release.
    Handshake,
    /// One oscillator wake, from wake request to first usable edge.
    Wake,
    /// One watchdog recovery episode (ACK retry or forced wake).
    WatchdogRecovery,
    /// One I2S output frame on the wire.
    I2sFrame,
    /// One residency interval of the clock generator state machine.
    ClockState,
}

impl SpanKind {
    /// Stable lowercase label (trace category / JSON field).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Handshake => "handshake",
            SpanKind::Wake => "wake",
            SpanKind::WatchdogRecovery => "watchdog",
            SpanKind::I2sFrame => "i2s_frame",
            SpanKind::ClockState => "clock_state",
        }
    }

    fn all() -> [SpanKind; 5] {
        [
            SpanKind::Handshake,
            SpanKind::Wake,
            SpanKind::WatchdogRecovery,
            SpanKind::I2sFrame,
            SpanKind::ClockState,
        ]
    }
}

/// A completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Activity class (also the trace track).
    pub kind: SpanKind,
    /// State or instance name within the track (e.g. `"sleep"`,
    /// `"divided"`, `"full-rate"` for [`SpanKind::ClockState`]).
    pub name: &'static str,
    /// Simulated start time.
    pub start: SimTime,
    /// Simulated end time (`end >= start`).
    pub end: SimTime,
    /// Optional numeric argument (divider multiplier, retry index, …).
    pub arg: Option<u64>,
}

impl Span {
    /// Span length in simulated time.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_duration_since(self.start)
    }
}

/// Handle to a span that has been opened but not yet closed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenSpan(usize);

/// Append-only span log.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanLog {
    spans: Vec<Span>,
    open: Vec<Span>,
}

impl SpanLog {
    /// Creates an empty log.
    pub fn new() -> SpanLog {
        SpanLog::default()
    }

    /// Opens a span at `start`; close it with [`SpanLog::close`].
    pub fn open(&mut self, kind: SpanKind, name: &'static str, start: SimTime) -> OpenSpan {
        self.open.push(Span { kind, name, start, end: start, arg: None });
        OpenSpan(self.open.len() - 1)
    }

    /// Closes an open span at `end`, moving it into the log.
    ///
    /// # Panics
    ///
    /// Panics if `end` precedes the span's start or the handle was
    /// already closed (handles are single-use; closing out of order is
    /// fine as long as each handle is closed once).
    pub fn close(&mut self, handle: OpenSpan, end: SimTime) {
        self.close_with(handle, end, None);
    }

    /// Closes an open span, attaching a numeric argument.
    pub fn close_with(&mut self, handle: OpenSpan, end: SimTime, arg: Option<u64>) {
        let span = &mut self.open[handle.0];
        assert!(span.start <= end, "span cannot end before it starts");
        assert!(span.name != CLOSED, "span handle closed twice");
        let mut done = span.clone();
        done.end = end;
        done.arg = arg.or(done.arg);
        span.name = CLOSED;
        self.spans.push(done);
    }

    /// Records an already-complete span.
    ///
    /// # Panics
    ///
    /// Panics if `end < start`.
    pub fn record(
        &mut self,
        kind: SpanKind,
        name: &'static str,
        start: SimTime,
        end: SimTime,
        arg: Option<u64>,
    ) {
        assert!(start <= end, "span cannot end before it starts");
        self.spans.push(Span { kind, name, start, end, arg });
    }

    /// Completed spans in completion order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of completed spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no span has completed.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Completed spans of one kind.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.kind == kind)
    }

    /// Per-kind, per-name total simulated time, sorted for stable
    /// output.
    ///
    /// For [`SpanKind::ClockState`] this is exactly the sleep /
    /// divided / full-rate residency breakdown: the clock generator is
    /// always in exactly one state, so the three totals partition the
    /// simulation horizon.
    pub fn residency(&self, kind: SpanKind) -> Vec<(&'static str, SimDuration)> {
        let mut acc: BTreeMap<&'static str, SimDuration> = BTreeMap::new();
        for s in self.of_kind(kind) {
            let slot = acc.entry(s.name).or_insert(SimDuration::ZERO);
            *slot += s.duration();
        }
        acc.into_iter().collect()
    }

    /// Total simulated time across all spans of one kind.
    pub fn total_of_kind(&self, kind: SpanKind) -> SimDuration {
        self.of_kind(kind).map(|s| s.duration()).sum()
    }

    /// Serialises the log as a Chrome `trace_event` JSON document
    /// (the `{"traceEvents": [...]}` object form) with the default
    /// `"aetr"` process name.
    pub fn to_chrome_trace(&self) -> String {
        self.to_chrome_trace_with("aetr", &[])
    }

    /// Serialises the log as a Chrome `trace_event` JSON document.
    ///
    /// Each span becomes a complete (`"ph":"X"`) event; timestamps are
    /// microseconds as Chrome expects, carried as fractional values so
    /// picosecond starts survive. Tracks map to `tid`s in kind order.
    /// A `process_name` metadata record carries `process` (so traces
    /// from multiple runs stay distinguishable when merged in
    /// Perfetto), and `extra` holds pre-rendered JSON event objects —
    /// e.g. lineage flow events — appended verbatim to the array.
    pub fn to_chrome_trace_with(&self, process: &str, extra: &[String]) -> String {
        use std::fmt::Write as _;
        let tid = |kind: SpanKind| {
            SpanKind::all().iter().position(|k| *k == kind).expect("kind in table")
        };
        let escaped: String = process
            .chars()
            .flat_map(|c| match c {
                '"' => vec!['\\', '"'],
                '\\' => vec!['\\', '\\'],
                c if c.is_control() => vec![' '],
                c => vec![c],
            })
            .collect();
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{escaped}\"}}}}"
        );
        for kind in SpanKind::all() {
            let _ = write!(
                out,
                ",{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                tid(kind),
                kind.label()
            );
        }
        for s in &self.spans {
            let ts_us = s.start.as_ps() as f64 / 1e6;
            let dur_us = s.duration().as_ps() as f64 / 1e6;
            let _ = write!(
                out,
                ",{{\"ph\":\"X\",\"pid\":0,\"tid\":{},\"cat\":\"{}\",\"name\":\"{}\",\
                 \"ts\":{},\"dur\":{}",
                tid(s.kind),
                s.kind.label(),
                s.name,
                ts_us,
                dur_us
            );
            if let Some(arg) = s.arg {
                let _ = write!(out, ",\"args\":{{\"value\":{arg}}}");
            }
            out.push('}');
        }
        for e in extra {
            out.push(',');
            out.push_str(e);
        }
        out.push_str("]}");
        out
    }
}

/// Sentinel name marking a consumed open-span slot.
const CLOSED: &str = "\u{0}closed";

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_ns(ns)
    }

    #[test]
    fn open_close_records_duration() {
        let mut log = SpanLog::new();
        let h = log.open(SpanKind::Handshake, "req0", t(10));
        log.close(h, t(35));
        assert_eq!(log.len(), 1);
        assert_eq!(log.spans()[0].duration(), SimDuration::from_ns(25));
    }

    #[test]
    fn out_of_order_close_is_allowed() {
        let mut log = SpanLog::new();
        let a = log.open(SpanKind::Wake, "wake", t(0));
        let b = log.open(SpanKind::Handshake, "req", t(5));
        log.close(b, t(6));
        log.close(a, t(20));
        assert_eq!(log.len(), 2);
        assert_eq!(log.spans()[0].kind, SpanKind::Handshake);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn double_close_panics() {
        let mut log = SpanLog::new();
        let h = log.open(SpanKind::Wake, "wake", t(0));
        log.close(h, t(1));
        log.close(h, t(2));
    }

    #[test]
    #[should_panic(expected = "end before it starts")]
    fn backwards_span_panics() {
        let mut log = SpanLog::new();
        let h = log.open(SpanKind::Wake, "wake", t(10));
        log.close(h, t(5));
    }

    #[test]
    fn residency_partitions_time() {
        let mut log = SpanLog::new();
        log.record(SpanKind::ClockState, "full-rate", t(0), t(40), None);
        log.record(SpanKind::ClockState, "divided", t(40), t(90), Some(4));
        log.record(SpanKind::ClockState, "sleep", t(90), t(100), None);
        let res = log.residency(SpanKind::ClockState);
        let total: u64 = res.iter().map(|(_, d)| d.as_ps()).sum();
        assert_eq!(total, SimDuration::from_ns(100).as_ps());
        assert_eq!(res[0].0, "divided");
        assert_eq!(log.total_of_kind(SpanKind::ClockState), SimDuration::from_ns(100));
    }

    #[test]
    fn chrome_trace_is_wellformed_json_with_all_spans() {
        let mut log = SpanLog::new();
        log.record(SpanKind::I2sFrame, "frame", t(0), t(10), Some(2));
        log.record(SpanKind::Wake, "wake", t(3), t(5), None);
        let json = log.to_chrome_trace();
        let value = crate::json::parse(&json).expect("valid json");
        let events = value.get("traceEvents").and_then(|v| v.as_array()).expect("events array");
        // 1 process-name + 5 thread-name metadata records + 2 spans.
        assert_eq!(events.len(), 8);
        let complete: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(complete.len(), 2);
        assert_eq!(complete[0].get("args").unwrap().get("value").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn labeled_trace_names_the_process_and_appends_extra_events() {
        let mut log = SpanLog::new();
        log.record(SpanKind::Handshake, "req", t(0), t(4), None);
        let extra =
            vec!["{\"ph\":\"s\",\"pid\":0,\"tid\":0,\"name\":\"event\",\"id\":0,\"ts\":0}"
                .to_string()];
        let json = log.to_chrome_trace_with("run \"7\"", &extra);
        let value = crate::json::parse(&json).expect("valid json despite quoted label");
        let events = value.get("traceEvents").and_then(|v| v.as_array()).expect("events array");
        let process = &events[0];
        assert_eq!(process.get("name").and_then(|n| n.as_str()), Some("process_name"));
        assert_eq!(
            process.get("args").unwrap().get("name").and_then(|n| n.as_str()),
            Some("run \"7\"")
        );
        assert_eq!(events.last().unwrap().get("ph").and_then(|p| p.as_str()), Some("s"));
    }
}
