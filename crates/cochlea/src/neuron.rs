//! Half-wave rectification and leaky integrate-and-fire spike
//! generation — the inner hair cell + spiral ganglion stage of the
//! silicon cochlea.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

/// Parameters of one integrate-and-fire neuron.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NeuronConfig {
    /// Input gain applied to the rectified band signal.
    pub gain: f64,
    /// Membrane leak rate (1/s): `dv/dt = gain·max(x,0) − leak·v`.
    pub leak: f64,
    /// Firing threshold on the membrane potential.
    pub threshold: f64,
    /// Absolute refractory period after a spike.
    pub refractory: SimDuration,
}

impl Default for NeuronConfig {
    /// A responsive default tuned for unit-amplitude audio at 16 kHz:
    /// strong bands fire in the low-kHz range, silence does not fire.
    fn default() -> Self {
        NeuronConfig {
            gain: 30_000.0,
            leak: 1_000.0,
            threshold: 1.0,
            refractory: SimDuration::from_us(300),
        }
    }
}

/// Leaky integrate-and-fire neuron driven by a sampled band signal.
///
/// # Examples
///
/// ```
/// use aetr_cochlea::neuron::{IntegrateFireNeuron, NeuronConfig};
/// use aetr_sim::time::SimTime;
///
/// let mut n = IntegrateFireNeuron::new(NeuronConfig::default());
/// // A constant strong drive at 16 kHz sampling fires repeatedly.
/// let mut spikes = 0;
/// for i in 0..16_000 {
///     let t = SimTime::from_us(i as u64 * 62);
///     if n.step(t, 0.5, 1.0 / 16_000.0) {
///         spikes += 1;
///     }
/// }
/// assert!(spikes > 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntegrateFireNeuron {
    config: NeuronConfig,
    potential: f64,
    refractory_until: Option<SimTime>,
}

impl IntegrateFireNeuron {
    /// Creates a neuron at rest.
    ///
    /// # Panics
    ///
    /// Panics on non-positive gain or threshold, or negative leak.
    pub fn new(config: NeuronConfig) -> IntegrateFireNeuron {
        assert!(config.gain > 0.0, "gain must be positive");
        assert!(config.threshold > 0.0, "threshold must be positive");
        assert!(config.leak >= 0.0, "leak must be non-negative");
        IntegrateFireNeuron { config, potential: 0.0, refractory_until: None }
    }

    /// Advances one audio sample of width `dt_secs` with band input
    /// `x`, at absolute time `now`. Returns `true` if the neuron fired.
    pub fn step(&mut self, now: SimTime, x: f64, dt_secs: f64) -> bool {
        self.step_interpolated(now, x, dt_secs).is_some()
    }

    /// Like [`step`](Self::step), but on a spike returns the fractional
    /// position (in `[0, 1)`) of the threshold crossing *within* the
    /// sample, by linear interpolation of the membrane trajectory.
    ///
    /// Real silicon cochlea neurons fire asynchronously; without this
    /// interpolation every channel's spikes would snap to the audio
    /// sample grid and artificially coincide, which would wreck
    /// inter-spike-interval statistics downstream.
    pub fn step_interpolated(&mut self, now: SimTime, x: f64, dt_secs: f64) -> Option<f64> {
        if let Some(until) = self.refractory_until {
            if now < until {
                return None;
            }
            self.refractory_until = None;
        }
        let rectified = x.max(0.0); // half-wave rectification
        let before = self.potential;
        let after = before + (self.config.gain * rectified - self.config.leak * before) * dt_secs;
        self.potential = after;
        if after >= self.config.threshold {
            let rise = after - before;
            let frac = if rise > 0.0 {
                ((self.config.threshold - before) / rise).clamp(0.0, 0.999)
            } else {
                0.0
            };
            let crossing = now + SimDuration::from_secs_f64(frac * dt_secs);
            self.potential = 0.0;
            self.refractory_until = Some(crossing + self.config.refractory);
            Some(frac)
        } else {
            None
        }
    }

    /// Current membrane potential.
    pub fn potential(&self) -> f64 {
        self.potential
    }

    /// Resets to rest.
    pub fn reset(&mut self) {
        self.potential = 0.0;
        self.refractory_until = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(n: &mut IntegrateFireNeuron, x: f64, samples: usize) -> usize {
        let dt = 1.0 / 16_000.0;
        let mut count = 0;
        for i in 0..samples {
            let t = SimTime::from_ps((i as u64) * 62_500_000); // 62.5 µs
            if n.step(t, x, dt) {
                count += 1;
            }
        }
        count
    }

    #[test]
    fn silence_never_fires() {
        let mut n = IntegrateFireNeuron::new(NeuronConfig::default());
        assert_eq!(drive(&mut n, 0.0, 32_000), 0);
    }

    #[test]
    fn negative_input_is_rectified_away() {
        let mut n = IntegrateFireNeuron::new(NeuronConfig::default());
        assert_eq!(drive(&mut n, -1.0, 32_000), 0);
        assert_eq!(n.potential(), 0.0);
    }

    #[test]
    fn stronger_drive_fires_more() {
        let weak = drive(&mut IntegrateFireNeuron::new(NeuronConfig::default()), 0.1, 16_000);
        let strong = drive(&mut IntegrateFireNeuron::new(NeuronConfig::default()), 0.8, 16_000);
        assert!(strong > weak, "strong {strong} vs weak {weak}");
        assert!(strong > 0);
    }

    #[test]
    fn refractory_period_caps_the_rate() {
        let cfg = NeuronConfig { refractory: SimDuration::from_ms(1), ..NeuronConfig::default() };
        let mut n = IntegrateFireNeuron::new(cfg);
        // 1 s of saturated drive: the 1 ms refractory period caps the
        // rate at 1 kHz (plus the post-refractory charge time).
        let spikes = drive(&mut n, 10.0, 16_000);
        assert!(spikes <= 1_001, "spikes {spikes}");
        assert!(spikes >= 700, "spikes {spikes}");
    }

    #[test]
    fn leak_forgets_subthreshold_input() {
        let cfg = NeuronConfig { leak: 5_000.0, ..NeuronConfig::default() };
        let mut n = IntegrateFireNeuron::new(cfg);
        // With a huge leak, weak drive never accumulates to threshold.
        assert_eq!(drive(&mut n, 0.05, 32_000), 0);
        assert!(n.potential() < 1.0);
    }

    #[test]
    fn reset_returns_to_rest() {
        let mut n = IntegrateFireNeuron::new(NeuronConfig::default());
        drive(&mut n, 0.5, 100);
        n.reset();
        assert_eq!(n.potential(), 0.0);
    }

    #[test]
    #[should_panic(expected = "gain must be positive")]
    fn zero_gain_panics() {
        let _ = IntegrateFireNeuron::new(NeuronConfig { gain: 0.0, ..NeuronConfig::default() });
    }
}
