//! # aetr-analysis — experiment analysis toolkit
//!
//! Support code for regenerating the paper's evaluation:
//! [histograms](histogram) (Fig. 7b), [error summaries and region
//! classification](error_stats) (Fig. 6), [sweep grids](sweep)
//! (Figs. 6 & 8), and [table]/[plot] emitters used
//! by every figure harness.
//!
//! # Examples
//!
//! ```
//! use aetr_analysis::error_stats::ErrorSummary;
//! use aetr_analysis::sweep::log_space;
//!
//! let rates = log_space(100.0, 2e6, 9); // the Fig. 6 x axis
//! assert_eq!(rates.len(), 9);
//!
//! let summary = ErrorSummary::of(&[(0.01, false), (0.02, false)]).expect("non-empty");
//! assert!(summary.accuracy() > 0.97);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error_stats;
pub mod fit;
pub mod histogram;
pub mod plot;
pub mod sweep;
pub mod table;

pub use error_stats::{ErrorSummary, Region};
pub use fit::LinearFit;
pub use histogram::{Binning, Histogram};
pub use sweep::{log_space, run_sweep, SweepPoint};
pub use table::Table;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::histogram::{percentile, Binning, Histogram};
    use crate::sweep::log_space;

    proptest! {
        /// Every sample lands somewhere: in a bin, underflow or
        /// overflow — conservation of counts.
        #[test]
        fn histogram_conserves_samples(
            values in proptest::collection::vec(-10.0f64..10.0, 0..200),
            bins in 1usize..30,
        ) {
            let mut h = Histogram::new(Binning::Linear { lo: -1.0, hi: 1.0, bins }).unwrap();
            h.extend(values.iter().copied());
            let binned: u64 = h.bin_counts().iter().sum();
            prop_assert_eq!(binned + h.underflow + h.overflow, values.len() as u64);
        }

        /// Log bins have equal ratios and tile the range exactly.
        #[test]
        fn log_bins_tile_range(bins in 1usize..20, lo in 0.001f64..1.0, span in 1.5f64..1e6) {
            let hi = lo * span;
            let h = Histogram::new(Binning::Logarithmic { lo, hi, bins }).unwrap();
            let (first, _) = h.bin_edges(0);
            let (_, last) = h.bin_edges(bins - 1);
            prop_assert!((first - lo).abs() / lo < 1e-9);
            prop_assert!((last - hi).abs() / hi < 1e-6);
            for i in 1..bins {
                prop_assert!((h.bin_edges(i).0 - h.bin_edges(i - 1).1).abs()
                    / h.bin_edges(i).0 < 1e-9);
            }
        }

        /// Percentiles are monotone in p and bounded by the extremes.
        #[test]
        fn percentiles_monotone(
            mut values in proptest::collection::vec(-100.0f64..100.0, 1..100),
            p1 in 0.0f64..100.0,
            p2 in 0.0f64..100.0,
        ) {
            values.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let (lo_p, hi_p) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&values, lo_p).unwrap();
            let b = percentile(&values, hi_p).unwrap();
            prop_assert!(a <= b + 1e-9);
            prop_assert!(*values.first().unwrap() <= a + 1e-9);
            prop_assert!(b <= values.last().unwrap() + 1e-9);
        }

        /// log_space is sorted, bounded and strictly increasing.
        #[test]
        fn log_space_well_formed(lo in 0.001f64..10.0, ratio in 1.1f64..1e5, n in 2usize..50) {
            let hi = lo * ratio;
            let xs = log_space(lo, hi, n);
            prop_assert_eq!(xs.len(), n);
            prop_assert!(xs.windows(2).all(|w| w[1] > w[0]));
            prop_assert!((xs[0] - lo).abs() / lo < 1e-9);
            prop_assert!((xs[n - 1] - hi).abs() / hi < 1e-9);
        }
    }
}
