//! Spikes and spike trains.
//!
//! A [`Spike`] is an address-event: *which* neuron fired and *when*. A
//! [`SpikeTrain`] is a time-ordered sequence of spikes — the ground
//! truth against which AETR timestamp accuracy is measured.

use std::error::Error;
use std::fmt;
use std::slice;
use std::vec;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;

/// One address-event: a neuron address and the instant it fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Spike {
    /// When the sensor asserted the event.
    pub time: SimTime,
    /// Which "neuron" fired.
    pub addr: Address,
}

impl Spike {
    /// Creates a spike.
    pub fn new(time: SimTime, addr: Address) -> Spike {
        Spike { time, addr }
    }
}

impl fmt::Display for Spike {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {}", self.addr, self.time)
    }
}

/// Error returned when constructing a [`SpikeTrain`] from spikes that
/// are not sorted by time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsortedSpikesError {
    /// Index of the first spike that precedes its predecessor.
    pub index: usize,
}

impl fmt::Display for UnsortedSpikesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spike at index {} is earlier than its predecessor", self.index)
    }
}

impl Error for UnsortedSpikesError {}

/// A time-ordered sequence of spikes.
///
/// The ordering invariant (non-decreasing time) is maintained by
/// construction: [`SpikeTrain::from_sorted`] validates, while
/// [`SpikeTrain::from_unsorted`] sorts (stably, so simultaneous spikes
/// keep their relative order).
///
/// # Examples
///
/// ```
/// use aetr_aer::address::Address;
/// use aetr_aer::spike::{Spike, SpikeTrain};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let train = SpikeTrain::from_sorted(vec![
///     Spike::new(SimTime::from_us(10), Address::new(3)?),
///     Spike::new(SimTime::from_us(25), Address::new(7)?),
/// ])?;
/// assert_eq!(train.len(), 2);
/// assert_eq!(train.duration(), aetr_sim::time::SimDuration::from_us(25));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpikeTrain {
    spikes: Vec<Spike>,
}

impl SpikeTrain {
    /// Creates an empty train.
    pub fn new() -> SpikeTrain {
        SpikeTrain::default()
    }

    /// Creates a train from already time-sorted spikes.
    ///
    /// # Errors
    ///
    /// Returns [`UnsortedSpikesError`] identifying the first offending
    /// index if the input is not sorted by non-decreasing time.
    pub fn from_sorted(spikes: Vec<Spike>) -> Result<SpikeTrain, UnsortedSpikesError> {
        for (i, pair) in spikes.windows(2).enumerate() {
            if pair[1].time < pair[0].time {
                return Err(UnsortedSpikesError { index: i + 1 });
            }
        }
        Ok(SpikeTrain { spikes })
    }

    /// Creates a train from spikes in any order (stable sort by time).
    pub fn from_unsorted(mut spikes: Vec<Spike>) -> SpikeTrain {
        spikes.sort_by_key(|s| s.time);
        SpikeTrain { spikes }
    }

    /// Appends a spike.
    ///
    /// # Panics
    ///
    /// Panics if `spike.time` precedes the last spike in the train.
    pub fn push(&mut self, spike: Spike) {
        if let Some(last) = self.spikes.last() {
            assert!(
                spike.time >= last.time,
                "pushed spike at {} precedes train tail at {}",
                spike.time,
                last.time
            );
        }
        self.spikes.push(spike);
    }

    /// Number of spikes.
    pub fn len(&self) -> usize {
        self.spikes.len()
    }

    /// `true` if the train has no spikes.
    pub fn is_empty(&self) -> bool {
        self.spikes.is_empty()
    }

    /// The spikes as a slice.
    pub fn as_slice(&self) -> &[Spike] {
        &self.spikes
    }

    /// Time of the first spike, if any.
    pub fn first_time(&self) -> Option<SimTime> {
        self.spikes.first().map(|s| s.time)
    }

    /// Time of the last spike, if any.
    pub fn last_time(&self) -> Option<SimTime> {
        self.spikes.last().map(|s| s.time)
    }

    /// Span from time zero to the last spike ([`SimDuration::ZERO`] for
    /// an empty train).
    pub fn duration(&self) -> SimDuration {
        self.last_time().map_or(SimDuration::ZERO, |t| t.saturating_duration_since(SimTime::ZERO))
    }

    /// Mean event rate in events per second over the train's duration
    /// (first to last spike). Returns 0 for trains with fewer than two
    /// spikes.
    pub fn mean_rate(&self) -> f64 {
        if self.spikes.len() < 2 {
            return 0.0;
        }
        let span = self.last_time().unwrap() - self.first_time().unwrap();
        if span.is_zero() {
            return f64::INFINITY;
        }
        (self.spikes.len() - 1) as f64 / span.as_secs_f64()
    }

    /// Iterator over the inter-spike intervals (one fewer than spikes).
    pub fn inter_spike_intervals(&self) -> impl Iterator<Item = SimDuration> + '_ {
        self.spikes.windows(2).map(|w| w[1].time - w[0].time)
    }

    /// The sub-train with spike times in `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> SpikeTrain {
        let start = self.spikes.partition_point(|s| s.time < from);
        let end = self.spikes.partition_point(|s| s.time < to);
        SpikeTrain { spikes: self.spikes[start..end].to_vec() }
    }

    /// Merges two trains into a new sorted train (stable: on ties,
    /// `self`'s spikes come first).
    pub fn merge(&self, other: &SpikeTrain) -> SpikeTrain {
        let mut merged = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0, 0);
        while i < self.spikes.len() && j < other.spikes.len() {
            if other.spikes[j].time < self.spikes[i].time {
                merged.push(other.spikes[j]);
                j += 1;
            } else {
                merged.push(self.spikes[i]);
                i += 1;
            }
        }
        merged.extend_from_slice(&self.spikes[i..]);
        merged.extend_from_slice(&other.spikes[j..]);
        SpikeTrain { spikes: merged }
    }

    /// Partitions the train by an address key: spikes whose key maps
    /// to the same value land in the same (still time-ordered) train.
    /// Useful to split a merged binaural/multi-sensor stream back into
    /// its sources.
    ///
    /// # Examples
    ///
    /// ```
    /// use aetr_aer::address::Address;
    /// use aetr_aer::spike::{Spike, SpikeTrain};
    /// use aetr_sim::time::SimTime;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let train = SpikeTrain::from_sorted(vec![
    ///     Spike::new(SimTime::from_us(1), Address::new(3)?),
    ///     Spike::new(SimTime::from_us(2), Address::new(700)?),
    /// ])?;
    /// let by_half = train.split_by(|a| a.value() >= 512);
    /// assert_eq!(by_half[&false].len(), 1);
    /// assert_eq!(by_half[&true].len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn split_by<K: Ord>(
        &self,
        mut key: impl FnMut(Address) -> K,
    ) -> std::collections::BTreeMap<K, SpikeTrain> {
        let mut out: std::collections::BTreeMap<K, SpikeTrain> = std::collections::BTreeMap::new();
        for s in &self.spikes {
            out.entry(key(s.addr)).or_default().push(*s);
        }
        out
    }

    /// Iterator over borrowed spikes.
    pub fn iter(&self) -> slice::Iter<'_, Spike> {
        self.spikes.iter()
    }

    /// Consumes the train, returning the underlying vector.
    pub fn into_inner(self) -> Vec<Spike> {
        self.spikes
    }
}

impl<'a> IntoIterator for &'a SpikeTrain {
    type Item = &'a Spike;
    type IntoIter = slice::Iter<'a, Spike>;
    fn into_iter(self) -> Self::IntoIter {
        self.spikes.iter()
    }
}

impl IntoIterator for SpikeTrain {
    type Item = Spike;
    type IntoIter = vec::IntoIter<Spike>;
    fn into_iter(self) -> Self::IntoIter {
        self.spikes.into_iter()
    }
}

impl FromIterator<Spike> for SpikeTrain {
    /// Collects spikes, sorting them by time if needed.
    fn from_iter<I: IntoIterator<Item = Spike>>(iter: I) -> SpikeTrain {
        SpikeTrain::from_unsorted(iter.into_iter().collect())
    }
}

impl Extend<Spike> for SpikeTrain {
    /// Extends the train; re-sorts only if the new spikes break order.
    fn extend<I: IntoIterator<Item = Spike>>(&mut self, iter: I) {
        let tail_start = self.spikes.len();
        self.spikes.extend(iter);
        let needs_sort =
            self.spikes[tail_start.saturating_sub(1)..].windows(2).any(|w| w[1].time < w[0].time);
        if needs_sort {
            self.spikes.sort_by_key(|s| s.time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike(us: u64, addr: u16) -> Spike {
        Spike::new(SimTime::from_us(us), Address::new(addr).unwrap())
    }

    #[test]
    fn from_sorted_validates() {
        assert!(SpikeTrain::from_sorted(vec![spike(1, 0), spike(2, 1)]).is_ok());
        let err = SpikeTrain::from_sorted(vec![spike(2, 0), spike(1, 1)]).unwrap_err();
        assert_eq!(err.index, 1);
    }

    #[test]
    fn from_unsorted_sorts_stably() {
        let train = SpikeTrain::from_unsorted(vec![spike(5, 2), spike(1, 0), spike(5, 1)]);
        let addrs: Vec<u16> = train.iter().map(|s| s.addr.value()).collect();
        assert_eq!(addrs, vec![0, 2, 1]);
    }

    #[test]
    fn push_maintains_order() {
        let mut train = SpikeTrain::new();
        train.push(spike(1, 0));
        train.push(spike(1, 1)); // equal times allowed
        train.push(spike(3, 2));
        assert_eq!(train.len(), 3);
    }

    #[test]
    #[should_panic(expected = "precedes train tail")]
    fn push_out_of_order_panics() {
        let mut train = SpikeTrain::new();
        train.push(spike(5, 0));
        train.push(spike(1, 0));
    }

    #[test]
    fn intervals_and_rate() {
        let train =
            SpikeTrain::from_sorted(vec![spike(0, 0), spike(100, 0), spike(300, 0)]).unwrap();
        let isis: Vec<u64> = train.inter_spike_intervals().map(|d| d.as_us()).collect();
        assert_eq!(isis, vec![100, 200]);
        // 2 intervals over 300 us
        let rate = train.mean_rate();
        assert!((rate - 2.0 / 300e-6).abs() / rate < 1e-9);
    }

    #[test]
    fn empty_and_single_spike_edge_cases() {
        let empty = SpikeTrain::new();
        assert!(empty.is_empty());
        assert_eq!(empty.mean_rate(), 0.0);
        assert_eq!(empty.duration(), SimDuration::ZERO);
        assert_eq!(empty.first_time(), None);

        let single = SpikeTrain::from_sorted(vec![spike(10, 0)]).unwrap();
        assert_eq!(single.mean_rate(), 0.0);
        assert_eq!(single.duration(), SimDuration::from_us(10));
    }

    #[test]
    fn window_selects_half_open_range() {
        let train =
            SpikeTrain::from_sorted(vec![spike(10, 0), spike(20, 1), spike(30, 2)]).unwrap();
        let w = train.window(SimTime::from_us(10), SimTime::from_us(30));
        assert_eq!(w.len(), 2);
        assert_eq!(w.as_slice()[0].addr.value(), 0);
        assert_eq!(w.as_slice()[1].addr.value(), 1);
    }

    #[test]
    fn merge_interleaves() {
        let a = SpikeTrain::from_sorted(vec![spike(1, 0), spike(5, 0)]).unwrap();
        let b = SpikeTrain::from_sorted(vec![spike(3, 1), spike(7, 1)]).unwrap();
        let m = a.merge(&b);
        let times: Vec<u64> = m.iter().map(|s| s.time.as_ps() / 1_000_000).collect();
        assert_eq!(times, vec![1, 3, 5, 7]);
    }

    #[test]
    fn collect_and_extend() {
        let train: SpikeTrain = vec![spike(9, 0), spike(2, 1)].into_iter().collect();
        assert_eq!(train.first_time(), Some(SimTime::from_us(2)));

        let mut t2 = SpikeTrain::new();
        t2.extend(vec![spike(4, 0), spike(1, 1)]);
        assert_eq!(t2.first_time(), Some(SimTime::from_us(1)));

        // Extending with already-later spikes keeps order without sorting.
        t2.extend(vec![spike(10, 2)]);
        assert_eq!(t2.last_time(), Some(SimTime::from_us(10)));
    }

    #[test]
    fn split_by_partitions_and_preserves_order() {
        let train =
            SpikeTrain::from_sorted(vec![spike(1, 0), spike(2, 10), spike(3, 1), spike(4, 11)])
                .unwrap();
        let parts = train.split_by(|a| a.value() >= 10);
        assert_eq!(parts.len(), 2);
        let lows: Vec<u16> = parts[&false].iter().map(|s| s.addr.value()).collect();
        let highs: Vec<u16> = parts[&true].iter().map(|s| s.addr.value()).collect();
        assert_eq!(lows, vec![0, 1]);
        assert_eq!(highs, vec![10, 11]);
        assert!(parts[&false]
            .iter()
            .zip(parts[&false].iter().skip(1))
            .all(|(a, b)| a.time <= b.time));
    }

    #[test]
    fn into_iterator_forms() {
        let train = SpikeTrain::from_sorted(vec![spike(1, 0)]).unwrap();
        for s in &train {
            assert_eq!(s.addr.value(), 0);
        }
        let owned: Vec<Spike> = train.into_iter().collect();
        assert_eq!(owned.len(), 1);
    }
}
