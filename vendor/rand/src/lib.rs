//! Offline stub of the `rand` facade.
//!
//! Part of the sandboxed-build vendor set (see `vendor/serde/src/lib.rs`
//! for the rationale). The workspace uses `rand` exclusively as a
//! *seeded, deterministic* stream source — every construction is
//! `StdRng::seed_from_u64(seed)`; there is no entropy, thread-local RNG,
//! or distribution machinery in play. The stub therefore implements:
//!
//! - [`rngs::StdRng`] backed by SplitMix64 (Steele, Lea & Flood 2014) —
//!   a different generator from upstream's ChaCha12, but the workspace
//!   only promises *determinism per seed*, not a particular stream;
//! - [`SeedableRng::seed_from_u64`] / [`SeedableRng::from_seed`];
//! - [`Rng::gen`] for `f64` (53-bit mantissa-uniform in `[0, 1)`), the
//!   integer primitives, and `bool`;
//! - [`Rng::gen_range`] over half-open integer ranges (Lemire-style
//!   widening multiply, bias negligible at these range sizes).
//!
//! Statistical tests in the workspace assert distribution *properties*
//! (rates within tolerance, jitter RMS bounds), not golden values tied
//! to ChaCha streams, so the substitution is behaviour-preserving at
//! the test level.

use std::ops::Range;

/// Core RNG interface: everything derives from a 64-bit word stream.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform on [0, 1) with full mantissa coverage.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable as [`Rng::gen_range`] bounds.
pub trait UniformInt: Copy {
    /// Uniform draw from `[low, high)`; callers guarantee `low < high`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                let span = (high as u64).wrapping_sub(low as u64);
                // Widening multiply maps 64 random bits onto the span
                // with bias < span / 2^64 — immaterial for simulation.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution for `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, matching upstream behaviour.
    fn gen_range<T: UniformInt + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Byte-array seed type (fixed at 32 bytes for [`rngs::StdRng`]).
    type Seed;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Stub RNG implementations.

    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (SplitMix64).
    ///
    /// Passes BigCrush as a component generator and is more than
    /// adequate for simulation workloads; NOT cryptographically secure,
    /// unlike the upstream ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut first = [0u8; 8];
            first.copy_from_slice(&seed[..8]);
            Self::seed_from_u64(u64::from_le_bytes(first))
        }

        fn seed_from_u64(state: u64) -> Self {
            // One scramble round so that small consecutive seeds do not
            // produce correlated opening draws.
            let mut rng = StdRng { state };
            let _ = rng.next_u64();
            StdRng { state: rng.state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 16];
        for _ in 0..1_000 {
            let v: u16 = rng.gen_range(0..16u16);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 16 values reachable");
    }
}
