//! Figure 2 — the recursively divided sampling clock waveform.
//!
//! Reproduces the illustrative waveform with `θ_div = 8`, `N_div = 3`:
//! eight ticks at `T_min`, eight at `2·T_min`, eight at `4·T_min`,
//! eight at `8·T_min`, then clock shutdown; a later AER request wakes
//! the oscillator and resets the division. The full trace is written
//! as a VCD file viewable in GTKWave.

use aetr_bench::{banner, write_result};
use aetr_clockgen::config::ClockGenConfig;
use aetr_clockgen::schedule::record_waveform;
use aetr_sim::time::SimTime;

fn main() {
    banner("Figure 2", "AER sampling clock with N_div = 3, theta_div = 8", 0);

    let config = ClockGenConfig::prototype().with_theta_div(8).with_n_div(3);
    let base = config.base_sampling_period();
    println!("T_min = {base} (reference clock {})", config.reference_frequency());

    // Idle run-down followed by a wake-up request at 50 µs.
    let wave = record_waveform(&config, &[SimTime::from_us(50)], SimTime::from_us(80));

    println!("\nrising edges and their spacing:");
    let edges = wave.rising_edges();
    for (i, pair) in edges.windows(2).enumerate() {
        let gap = pair[1] - pair[0];
        let mult = gap.as_ps() / base.as_ps();
        println!("  tick {:>2} -> {:>2}: gap {gap} ({}x T_min)", i, i + 1, mult);
    }

    println!("\ndivisions:");
    for &(t, m) in &wave.divisions {
        println!("  {t}: period -> {m}x T_min");
    }
    println!("shutdowns: {:?}", wave.shutdowns.iter().map(ToString::to_string).collect::<Vec<_>>());
    println!("samples:   {:?}", wave.samples.iter().map(ToString::to_string).collect::<Vec<_>>());

    let mut vcd = Vec::new();
    aetr_sim::vcd::write_vcd(&wave.tracer, &mut vcd).expect("in-memory write cannot fail");
    let text = String::from_utf8(vcd).expect("VCD is ASCII");
    let path = write_result("fig2_waveform.vcd", &text).expect("write results");
    println!("\nVCD written to {} (open with GTKWave)", path.display());
}
