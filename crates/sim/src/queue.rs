//! A deterministic discrete-event queue.
//!
//! The queue orders events by `(time, sequence number)`: two events
//! scheduled for the same instant pop in the order they were scheduled.
//! This guarantees that a simulation is a pure function of its inputs —
//! an essential property for reproducing the paper's experiments, which
//! must give identical numbers on every run with the same seed.
//!
//! # Cancellation via tombstones
//!
//! Cancellation is lazy. Each pending event owns a *slot* in a slab of
//! generation counters; its [`EventHandle`] packs the slot index with
//! the generation observed at schedule time. [`cancel`] simply bumps
//! the slot's generation — O(1), no heap surgery, no hashing — which
//! turns the event's heap entry into a *tombstone*. [`pop`] discards
//! tombstones by comparing each entry's recorded generation against the
//! slab with a single indexed load, so the hot path carries no
//! per-event `HashSet` lookup. Slot generations use parity to encode
//! occupancy (odd = live), so freed slots can be reused immediately
//! while stale handles — including handles that survive a
//! [`clear`](EventQueue::clear) — can never cancel a later event.
//!
//! [`cancel`]: EventQueue::cancel
//! [`pop`]: EventQueue::pop

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::error::Error;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, usable to [cancel] it.
///
/// Packs the event's slab slot (low 32 bits) with the slot's generation
/// at schedule time (high 32 bits); the handle stays valid — and
/// unambiguous — across slot reuse.
///
/// [cancel]: EventQueue::cancel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(slot: u32, gen: u32) -> Self {
        EventHandle(u64::from(slot) | (u64::from(gen) << 32))
    }

    fn slot(self) -> u32 {
        (self.0 & 0xFFFF_FFFF) as u32
    }

    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// Error returned when scheduling an event in the simulated past.
///
/// A discrete-event simulation must never travel backwards; allowing it
/// silently would reorder causality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The current simulation time.
    pub now: SimTime,
    /// The (invalid) requested activation time.
    pub requested: SimTime,
}

impl fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot schedule event at {} in the past of simulation time {}",
            self.requested, self.now
        )
    }
}

impl Error for SchedulePastError {}

/// One slab slot. `gen` parity encodes occupancy: odd = a live event
/// owns the slot (and `event` is `Some`), even = free / tombstoned.
#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    event: Option<E>,
}

/// Heap entries carry only ordering keys plus the slot coordinates;
/// payloads stay in the slab so sift operations move 24 bytes
/// regardless of the event type.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A monotonic, deterministic event queue over an arbitrary event type.
///
/// # Examples
///
/// ```
/// use aetr_sim::queue::EventQueue;
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_ns(10), "b")?;
/// q.schedule_at(SimTime::from_ns(5), "a")?;
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "a")));
/// assert_eq!(q.now(), SimTime::from_ns(5));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "b")));
/// assert_eq!(q.pop(), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<HeapEntry>>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    /// Exact number of live (scheduled, not cancelled, not popped)
    /// events; maintained incrementally so `len()` stays O(1) even
    /// while the heap carries tombstones.
    live: usize,
    now: SimTime,
    next_seq: u64,
    ops: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            ops: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` concurrently
    /// pending events before any allocation.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::with_capacity(capacity),
            live: 0,
            now: SimTime::ZERO,
            next_seq: 0,
            ops: 0,
        }
    }

    /// Reserves room for at least `additional` more concurrently
    /// pending events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
        self.slots.reserve(additional);
    }

    /// Lifetime count of queue operations (successful schedules plus
    /// pops of live events). Tombstoned entries skipped during a pop
    /// are *not* counted: a cancelled event costs one op when it is
    /// scheduled and none afterwards.
    ///
    /// This is the denominator for the telemetry profiling hook "queue
    /// ops per wall-clock second"; it is monotone and survives
    /// [`clear`](EventQueue::clear).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current simulation time: the activation time of the most recently
    /// popped event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Claims a slot for a new event, returning `(slot, gen)` with the
    /// generation already bumped to odd (occupied).
    fn alloc_slot(&mut self, event: E) -> (u32, u32) {
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.gen.is_multiple_of(2), "free-list slot marked occupied");
            s.gen = s.gen.wrapping_add(1);
            s.event = Some(event);
            (slot, s.gen)
        } else {
            let slot = u32::try_from(self.slots.len())
                .expect("event queue slab exceeded u32::MAX concurrent events");
            self.slots.push(Slot { gen: 1, event: Some(event) });
            (slot, 1)
        }
    }

    /// Releases `slot`, bumping its generation to even (free) and
    /// dropping the payload. Any outstanding handle or heap entry that
    /// recorded the old generation is now a tombstone.
    fn release_slot(&mut self, slot: u32) -> Option<E> {
        let s = &mut self.slots[slot as usize];
        debug_assert!(!s.gen.is_multiple_of(2), "releasing a slot that is not occupied");
        s.gen = s.gen.wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
        s.event.take()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulePastError`] if `at` is earlier than [`now`].
    /// Scheduling exactly *at* the current time is allowed (a delta
    /// event) and pops after all already-queued events at that instant.
    ///
    /// [`now`]: EventQueue::now
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> Result<EventHandle, SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { now: self.now, requested: at });
        }
        let (slot, gen) = self.alloc_slot(event);
        self.heap.push(Reverse(HeapEntry { time: at, seq: self.next_seq, slot, gen }));
        self.next_seq += 1;
        self.ops += 1;
        self.live += 1;
        Ok(EventHandle::new(slot, gen))
    }

    /// Schedules `event` a relative `delay` after the current time.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulePastError`] only if `now + delay` overflows the
    /// timeline (treated as scheduling at an unreachable instant).
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        event: E,
    ) -> Result<EventHandle, SchedulePastError> {
        let at = self
            .now
            .checked_add(delay)
            .ok_or(SchedulePastError { now: self.now, requested: SimTime::MAX })?;
        self.schedule_at(at, event)
    }

    /// Cancels a previously scheduled event in O(1): the event's slot
    /// generation is bumped, turning its heap entry into a tombstone
    /// that [`pop`](EventQueue::pop) will skip.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already popped or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let slot = handle.slot();
        match self.slots.get(slot as usize) {
            Some(s) if s.gen == handle.gen() => {
                self.release_slot(slot);
                true
            }
            _ => false,
        }
    }

    /// `true` if `entry` still refers to the live generation of its slot.
    fn entry_is_live(&self, entry: &HeapEntry) -> bool {
        self.slots[entry.slot as usize].gen == entry.gen
    }

    /// Pops the next live event, advancing the simulation clock to its
    /// activation time. Tombstones of cancelled events are discarded
    /// along the way without counting towards [`ops`](EventQueue::ops).
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.entry_is_live(&entry) {
                continue;
            }
            let event = self.release_slot(entry.slot).expect("live slot missing its payload");
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.ops += 1;
            return Some((entry.time, event));
        }
        None
    }

    /// Activation time of the next live event without popping it.
    ///
    /// The top of the heap is almost always live (tombstones only
    /// appear after a cancel), so the fast path is a single peek; a
    /// stale top falls back to a linear scan for the earliest live
    /// entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        let Reverse(top) = self.heap.peek()?;
        if self.entry_is_live(top) {
            return Some(top.time);
        }
        self.heap.iter().filter(|Reverse(e)| self.entry_is_live(e)).map(|Reverse(e)| e.time).min()
    }

    /// The next live event — exactly what [`pop`](EventQueue::pop)
    /// would return — without popping it, advancing the clock, or
    /// counting an op.
    ///
    /// Tombstone-skip semantics match `pop`: cancelled entries are
    /// ignored (though, being non-consuming, this leaves them in the
    /// heap), and ties at one instant resolve in schedule order.
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        let payload = |e: &HeapEntry| {
            let ev =
                self.slots[e.slot as usize].event.as_ref().expect("live slot missing its payload");
            (e.time, ev)
        };
        let Reverse(top) = self.heap.peek()?;
        if self.entry_is_live(top) {
            return Some(payload(top));
        }
        self.heap
            .iter()
            .map(|Reverse(e)| e)
            .filter(|e| self.entry_is_live(e))
            .min_by(|a, b| a.cmp(b))
            .map(payload)
    }

    /// Advances the clock to `t` without popping anything.
    ///
    /// This is the fast-forward path's analogue of popping a
    /// self-rescheduling event at `t` and discarding it: batch-advance
    /// consumers (the interface's analytic idle fast-forward) replace a
    /// run of tick events with a closed-form jump, but downstream
    /// bookkeeping still reads [`now`](EventQueue::now) as "the instant
    /// the simulation last acted at".
    ///
    /// Does not count as an op — skipped work is the whole point.
    ///
    /// # Panics
    ///
    /// Panics if `t` is in the past: the clock is monotone.
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot advance the clock backwards from {} to {}", self.now, t);
        self.now = t;
    }

    /// Drops every pending event; the clock is left where it is.
    ///
    /// Occupied slots are tombstoned (generation bumped) rather than
    /// reset, so handles issued before the clear can never cancel an
    /// event scheduled after it.
    pub fn clear(&mut self) {
        self.heap.clear();
        for (i, s) in self.slots.iter_mut().enumerate() {
            if !s.gen.is_multiple_of(2) {
                s.gen = s.gen.wrapping_add(1);
                s.event = None;
                self.free.push(i as u32);
            }
        }
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), 3).unwrap();
        q.schedule_at(SimTime::from_ns(10), 1).unwrap();
        q.schedule_at(SimTime::from_ns(20), 2).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        for i in 0..10 {
            q.schedule_at(t, i).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ()).unwrap();
        q.pop();
        let err = q.schedule_at(SimTime::from_ns(5), ()).unwrap_err();
        assert_eq!(err.now, SimTime::from_ns(10));
        assert_eq!(err.requested, SimTime::from_ns(5));
        assert!(err.to_string().contains("in the past"));
    }

    #[test]
    fn delta_events_at_now_are_allowed() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "first").unwrap();
        q.pop();
        q.schedule_at(SimTime::from_ns(10), "delta").unwrap();
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "delta")));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(100), ()).unwrap();
        q.pop();
        q.schedule_after(SimDuration::from_ns(50), ()).unwrap();
        assert_eq!(q.pop().unwrap().0, SimTime::from_ns(150));
    }

    #[test]
    fn cancelled_events_never_pop() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_ns(1), "keep").unwrap();
        let drop_ = q.schedule_at(SimTime::from_ns(2), "drop").unwrap();
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), "keep")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(keep), "cancelling a popped event reports false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        q.schedule_at(SimTime::from_ns(2), ()).unwrap();
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
    }

    #[test]
    fn len_and_is_empty_track_cancellations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        assert_eq!(q.len(), 1);
        q.cancel(h);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_drops_everything_but_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(5), ()).unwrap();
        q.pop();
        q.schedule_at(SimTime::from_ns(9), ()).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(5));
    }

    #[test]
    fn ops_counts_schedules_and_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.ops(), 0);
        let a = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        q.schedule_at(SimTime::from_ns(2), ()).unwrap();
        assert_eq!(q.ops(), 2);
        q.cancel(a);
        q.pop(); // pops the live event only
        assert_eq!(q.ops(), 3);
        assert_eq!(q.pop(), None);
        assert_eq!(q.ops(), 3, "popping nothing is not an op");
    }

    #[test]
    fn overflow_schedule_after_errors() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(SimTime::MAX - SimDuration::from_ns(1), ()).unwrap();
        q.pop();
        assert!(q.schedule_after(SimDuration::MAX, ()).is_err());
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(64);
        assert!(q.is_empty());
        q.reserve(16);
        q.schedule_at(SimTime::from_ns(3), "x").unwrap();
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), "x")));
    }

    #[test]
    fn stale_handle_cannot_cancel_reused_slot() {
        let mut q = EventQueue::new();
        let old = q.schedule_at(SimTime::from_ns(1), "old").unwrap();
        q.pop(); // frees the slot
        let new = q.schedule_at(SimTime::from_ns(2), "new").unwrap();
        assert!(!q.cancel(old), "stale handle must not cancel the slot's new tenant");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(new));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn handles_issued_before_clear_are_dead_after_it() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(SimTime::from_ns(4), "doomed").unwrap();
        q.clear();
        let fresh = q.schedule_at(SimTime::from_ns(6), "fresh").unwrap();
        assert!(!q.cancel(h), "pre-clear handle must be inert");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ns(6), "fresh")));
        assert!(!q.cancel(fresh));
    }

    #[test]
    fn cancel_then_reschedule_interleavings_keep_len_exact() {
        let mut q = EventQueue::new();
        let mut handles = Vec::new();
        for i in 0..16u64 {
            handles.push(q.schedule_at(SimTime::from_ns(i), i).unwrap());
        }
        // Cancel every other event, then refill the freed slots.
        for h in handles.iter().step_by(2) {
            assert!(q.cancel(*h));
        }
        assert_eq!(q.len(), 8);
        for i in 16..24u64 {
            q.schedule_at(SimTime::from_ns(i), i).unwrap();
        }
        assert_eq!(q.len(), 16);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 16);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn peek_returns_what_pop_would() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(9), "late").unwrap();
        q.schedule_at(SimTime::from_ns(2), "early").unwrap();
        assert_eq!(q.peek(), Some((SimTime::from_ns(2), &"early")));
        assert_eq!(q.now(), SimTime::ZERO, "peek does not advance the clock");
        assert_eq!(q.ops(), 2, "peek is not an op");
        assert_eq!(q.pop(), Some((SimTime::from_ns(2), "early")));
        assert_eq!(q.peek(), Some((SimTime::from_ns(9), &"late")));
        q.pop();
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn peek_resolves_ties_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(4);
        q.schedule_at(t, "first").unwrap();
        q.schedule_at(t, "second").unwrap();
        assert_eq!(q.peek(), Some((t, &"first")));
        q.pop();
        assert_eq!(q.peek(), Some((t, &"second")));
    }

    #[test]
    fn peek_skips_tombstones_like_pop() {
        let mut q = EventQueue::new();
        let early = q.schedule_at(SimTime::from_ns(1), "dead").unwrap();
        let mid = q.schedule_at(SimTime::from_ns(5), "also dead").unwrap();
        q.schedule_at(SimTime::from_ns(9), "live").unwrap();
        q.cancel(early);
        q.cancel(mid);
        assert_eq!(q.peek(), Some((SimTime::from_ns(9), &"live")));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9), "live")));
        assert_eq!(q.peek(), None);
    }

    #[test]
    fn advance_to_moves_the_clock_without_popping() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(50), "ev").unwrap();
        let ops = q.ops();
        q.advance_to(SimTime::from_ns(30));
        assert_eq!(q.now(), SimTime::from_ns(30));
        assert_eq!(q.len(), 1, "nothing popped");
        assert_eq!(q.ops(), ops, "advance is not an op");
        q.advance_to(SimTime::from_ns(30)); // idempotent at the same instant
        assert_eq!(q.pop(), Some((SimTime::from_ns(50), "ev")));
        // The clock really moved: the past is now rejected.
        assert!(q.schedule_at(SimTime::from_ns(40), "late").is_err());
    }

    #[test]
    #[should_panic(expected = "advance the clock backwards")]
    fn advance_to_rejects_the_past() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_ns(10));
        q.advance_to(SimTime::from_ns(9));
    }

    #[test]
    fn peek_falls_back_when_top_is_tombstoned() {
        let mut q = EventQueue::new();
        let early = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        let mid = q.schedule_at(SimTime::from_ns(5), ()).unwrap();
        q.schedule_at(SimTime::from_ns(9), ()).unwrap();
        q.cancel(early);
        q.cancel(mid);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        assert_eq!(q.pop().unwrap().0, SimTime::from_ns(9));
        assert_eq!(q.peek_time(), None);
    }
}
