//! Ring-oscillator trimming and PVT drift.
//!
//! A fabric ring oscillator's frequency moves with process, voltage
//! and temperature; the paper's design allows frequency selection "by
//! removing/inserting a pair of inverters" (§4.1). This module models
//! both: a PVT operating point that scales the stage delay, and the
//! trim search that picks the stage count bringing the output closest
//! to a target frequency at that operating point — the calibration a
//! real deployment would run against a crystal reference at boot.

use serde::{Deserialize, Serialize};

use aetr_sim::time::Frequency;

use crate::ring::RingOscillatorConfig;

/// A process/voltage/temperature operating point, expressed as delay
/// multipliers relative to the characterised typical corner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PvtPoint {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Junction temperature in °C.
    pub temp_c: f64,
}

impl PvtPoint {
    /// The characterised typical corner (1.2 V, 25 °C).
    pub fn typical() -> PvtPoint {
        PvtPoint { vdd: 1.2, temp_c: 25.0 }
    }

    /// Stage-delay multiplier at this operating point, from a simple
    /// first-order model: delay rises as VDD drops (~1.5 %/10 mV near
    /// nominal is far too strong for flash FPGAs; we use a gentle
    /// alpha-power-law fit) and as temperature rises (~0.1 %/°C).
    ///
    /// # Panics
    ///
    /// Panics for non-physical operating points (VDD outside
    /// 0.8–1.6 V, temperature outside −55–150 °C).
    pub fn delay_factor(&self) -> f64 {
        assert!(
            (0.8..=1.6).contains(&self.vdd),
            "VDD {} V outside the supported 0.8-1.6 V",
            self.vdd
        );
        assert!(
            (-55.0..=150.0).contains(&self.temp_c),
            "temperature {} C outside the supported -55..150 C",
            self.temp_c
        );
        let typ = PvtPoint::typical();
        // Alpha-power-law-ish voltage term, linear temperature term.
        let v_term = (typ.vdd / self.vdd).powf(1.3);
        let t_term = 1.0 + 0.001 * (self.temp_c - typ.temp_c);
        v_term * t_term
    }

    /// The effective ring configuration at this operating point: same
    /// stages, scaled stage delay.
    pub fn apply(&self, nominal: &RingOscillatorConfig) -> RingOscillatorConfig {
        let factor = self.delay_factor();
        let ps = (nominal.stage_delay.as_ps() as f64 * factor).round().max(1.0) as u64;
        RingOscillatorConfig { stage_delay: aetr_sim::time::SimDuration::from_ps(ps), ..*nominal }
    }
}

impl Default for PvtPoint {
    fn default() -> Self {
        Self::typical()
    }
}

/// Result of a trim search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrimResult {
    /// The chosen (odd) stage count.
    pub stages: u32,
    /// The achieved output frequency at the operating point.
    pub achieved: Frequency,
    /// Relative frequency error vs the target.
    pub error: f64,
}

/// Finds the odd stage count in `[min_stages, max_stages]` whose
/// oscillation frequency at the given PVT point lands closest to
/// `target`. This mirrors the inverter-pair insertion/removal trim of
/// the prototype.
///
/// # Panics
///
/// Panics if the stage range is empty or contains no odd counts ≥ 3.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::ring::RingOscillatorConfig;
/// use aetr_clockgen::trim::{trim_to_target, PvtPoint};
/// use aetr_sim::time::Frequency;
///
/// let result = trim_to_target(
///     &RingOscillatorConfig::igloo_nano(),
///     Frequency::from_mhz(120),
///     PvtPoint::typical(),
///     3,
///     41,
/// );
/// assert!(result.error < 0.1);
/// ```
pub fn trim_to_target(
    nominal: &RingOscillatorConfig,
    target: Frequency,
    pvt: PvtPoint,
    min_stages: u32,
    max_stages: u32,
) -> TrimResult {
    assert!(min_stages <= max_stages, "empty stage range");
    let effective = pvt.apply(nominal);
    let mut best: Option<TrimResult> = None;
    let mut stages = if min_stages % 2 == 1 { min_stages } else { min_stages + 1 };
    stages = stages.max(3);
    while stages <= max_stages {
        let candidate = RingOscillatorConfig { stages, ..effective };
        let achieved = candidate.period().to_frequency();
        let error = (achieved.as_hz_f64() - target.as_hz_f64()).abs() / target.as_hz_f64();
        if best.is_none_or(|b| error < b.error) {
            best = Some(TrimResult { stages, achieved, error });
        }
        stages += 2; // inverter pairs only: parity is preserved
    }
    best.expect("stage range contains at least one odd count >= 3")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_sim::time::SimDuration;

    #[test]
    fn typical_corner_is_identity() {
        let f = PvtPoint::typical().delay_factor();
        assert!((f - 1.0).abs() < 1e-12);
        let nominal = RingOscillatorConfig::igloo_nano();
        assert_eq!(PvtPoint::typical().apply(&nominal), nominal);
    }

    #[test]
    fn lower_voltage_slows_the_ring() {
        let slow = PvtPoint { vdd: 1.0, temp_c: 25.0 }.delay_factor();
        let fast = PvtPoint { vdd: 1.4, temp_c: 25.0 }.delay_factor();
        assert!(slow > 1.0);
        assert!(fast < 1.0);
    }

    #[test]
    fn heat_slows_the_ring() {
        let hot = PvtPoint { vdd: 1.2, temp_c: 85.0 }.delay_factor();
        let cold = PvtPoint { vdd: 1.2, temp_c: -20.0 }.delay_factor();
        assert!(hot > 1.0);
        assert!(cold < 1.0);
        // ~0.1%/°C: 60 °C above typical ≈ +6 %.
        assert!((hot - 1.06).abs() < 0.01);
    }

    #[test]
    fn trim_recovers_target_after_drift() {
        // At a hot, low-voltage corner the untrimmed ring runs slow;
        // trimming (removing inverter pairs) brings it back.
        let nominal = RingOscillatorConfig::igloo_nano();
        let corner = PvtPoint { vdd: 1.08, temp_c: 85.0 };
        let drifted = corner.apply(&nominal).period().to_frequency();
        let target = Frequency::from_mhz(120);
        let drift_err = (drifted.as_hz_f64() - target.as_hz_f64()).abs() / target.as_hz_f64();
        let trimmed = trim_to_target(&nominal, target, corner, 3, 41);
        assert!(trimmed.error < drift_err, "trim {:.4} vs drift {:.4}", trimmed.error, drift_err);
        assert!(trimmed.stages < nominal.stages, "hot+slow corner needs fewer stages");
        assert!(trimmed.stages % 2 == 1);
    }

    #[test]
    fn trim_is_exact_when_target_is_reachable() {
        // Target exactly the 13-stage frequency at typical corner.
        let nominal = RingOscillatorConfig::igloo_nano();
        let target = nominal.period().to_frequency();
        let r = trim_to_target(&nominal, target, PvtPoint::typical(), 3, 41);
        assert_eq!(r.stages, 13);
        assert!(r.error < 1e-6);
    }

    #[test]
    fn trim_only_returns_odd_stage_counts() {
        let nominal = RingOscillatorConfig::igloo_nano();
        for target_mhz in [60u64, 90, 150, 250] {
            let r = trim_to_target(
                &nominal,
                Frequency::from_mhz(target_mhz),
                PvtPoint::typical(),
                3,
                61,
            );
            assert_eq!(r.stages % 2, 1, "target {target_mhz} MHz chose {}", r.stages);
            let check = RingOscillatorConfig { stages: r.stages, ..nominal };
            assert!(check.validate().is_ok() || check.sleep_pulse_width() <= check.period() / 2);
        }
    }

    #[test]
    fn pvt_apply_preserves_other_fields() {
        let nominal = RingOscillatorConfig::igloo_nano();
        let shifted = PvtPoint { vdd: 1.0, temp_c: 70.0 }.apply(&nominal);
        assert_eq!(shifted.stages, nominal.stages);
        assert_eq!(shifted.wake_latency, nominal.wake_latency);
        assert!(shifted.stage_delay > nominal.stage_delay);
        assert!(shifted.stage_delay < SimDuration::from_ps(500));
    }

    #[test]
    #[should_panic(expected = "VDD")]
    fn non_physical_vdd_panics() {
        let _ = PvtPoint { vdd: 0.5, temp_c: 25.0 }.delay_factor();
    }
}
