//! Cycle-accurate waveform generation (Fig. 2).
//!
//! Walks the [`crate::fsm::SamplerFsm`] tick by tick over a
//! short horizon and records the sampling clock, the `SLEEP` line and
//! the `REQ` input into a [`Tracer`], from which the Fig. 2 waveform
//! (recursively divided clock, `N_div = 3`, `θ_div = 8`) can be dumped
//! to VCD or checked programmatically.
//!
//! This walker is O(ticks) — use it for visualisation horizons (µs to
//! ms); the sweeps use the O(events) engine in [`crate::engine`].

use aetr_sim::time::SimTime;
use aetr_sim::trace::{SignalId, TraceValue, Tracer};

use crate::config::ClockGenConfig;
use crate::fsm::{FsmAction, SamplerFsm};

/// A recorded clock waveform with handles to its signals.
#[derive(Debug, Clone)]
pub struct ClockWaveform {
    /// The recorded trace (dump with [`aetr_sim::vcd::write_vcd`]).
    pub tracer: Tracer,
    /// Sampling clock signal.
    pub clk: SignalId,
    /// Sleep (clock-stopped) indicator.
    pub sleep: SignalId,
    /// AER request input.
    pub req: SignalId,
    /// `(time, new period multiplier)` at each division.
    pub divisions: Vec<(SimTime, u64)>,
    /// Times at which the clock shut down.
    pub shutdowns: Vec<SimTime>,
    /// Times at which events were sampled.
    pub samples: Vec<SimTime>,
}

impl ClockWaveform {
    /// Rising edges of the sampling clock.
    pub fn rising_edges(&self) -> Vec<SimTime> {
        self.tracer.edges_to(self.clk, true)
    }
}

/// Simulates the sampling clock over `[0, horizon]` with AER requests
/// at the given (sorted) times, recording the waveform.
///
/// # Panics
///
/// Panics if `config` is invalid or `requests` is not time-sorted.
pub fn record_waveform(
    config: &ClockGenConfig,
    requests: &[SimTime],
    horizon: SimTime,
) -> ClockWaveform {
    assert!(requests.windows(2).all(|w| w[1] >= w[0]), "requests must be time-sorted");
    let base = config.base_sampling_period();
    let wake = config.ring.wake_latency;

    let mut tracer = Tracer::new();
    let clk = tracer.declare_bit("clk_sample", "clockgen");
    let sleep = tracer.declare_bit("sleep", "clockgen");
    let req = tracer.declare_bit("req", "aer");

    let mut fsm = SamplerFsm::new(config);
    let mut divisions = Vec::new();
    let mut shutdowns = Vec::new();
    let mut samples = Vec::new();

    tracer.record(SimTime::ZERO, clk, TraceValue::Bit(false));
    tracer.record(SimTime::ZERO, sleep, TraceValue::Bit(false));
    tracer.record(SimTime::ZERO, req, TraceValue::Bit(false));

    let mut pending: std::collections::VecDeque<SimTime> = requests.iter().copied().collect();
    let mut req_high_since: Option<SimTime> = None;
    let mut next_tick = SimTime::ZERO + base;

    while next_tick <= horizon {
        // Raise REQ for any request whose time has come before this tick.
        if req_high_since.is_none() {
            if let Some(&r) = pending.front() {
                if r <= next_tick {
                    tracer.record(r, req, TraceValue::Bit(true));
                    req_high_since = Some(r);
                    pending.pop_front();
                }
            }
        }

        let period = fsm.current_period();
        let request_pending = req_high_since.is_some();
        // Rising edge, falling edge at the semi-period.
        tracer.record(next_tick, clk, TraceValue::Bit(true));
        let action = fsm.on_tick(request_pending);
        match action {
            FsmAction::Sampled { .. } => {
                samples.push(next_tick);
                // Acknowledge: REQ drops shortly after the sampling edge.
                tracer.record(next_tick + period / 8, req, TraceValue::Bit(false));
                req_high_since = None;
            }
            FsmAction::Divided { multiplier } => divisions.push((next_tick, multiplier)),
            FsmAction::ShutDown => shutdowns.push(next_tick),
            FsmAction::Ticked => {}
        }
        let fall = next_tick + fsm.current_period().min(period) / 2;
        if fall <= horizon {
            tracer.record(fall, clk, TraceValue::Bit(false));
        }

        if fsm.is_asleep() {
            tracer.record(next_tick + period / 2, sleep, TraceValue::Bit(true));
            // Wait for the next request (if any) to restart the clock.
            let Some(&r) = pending.front() else { break };
            if r > horizon {
                break;
            }
            pending.pop_front();
            tracer.record(r, req, TraceValue::Bit(true));
            tracer.record(r + wake, sleep, TraceValue::Bit(false));
            let frozen = fsm.wake();
            let _ = frozen; // timestamp handling is the engine's job
            samples.push(r + wake + base);
            tracer.record(r + wake + base / 8, req, TraceValue::Bit(false));
            next_tick = r + wake + base;
            // The wake tick itself samples the event; model it as a
            // clock pulse.
            if next_tick <= horizon {
                tracer.record(next_tick, clk, TraceValue::Bit(true));
                let fall2 = next_tick + base / 2;
                if fall2 <= horizon {
                    tracer.record(fall2, clk, TraceValue::Bit(false));
                }
            }
            next_tick += base;
        } else {
            next_tick += fsm.current_period();
        }
    }

    ClockWaveform { tracer, clk, sleep, req, divisions, shutdowns, samples }
}

/// Returns, for the Fig. 2 scenario (no requests), the expected
/// sequence of period multipliers over time: `θ_div` ticks each of
/// `1, 2, 4, ..., 2^N_div`, then off.
pub fn expected_idle_multipliers(config: &ClockGenConfig) -> Vec<u64> {
    let table = crate::segments::SegmentTable::new(config);
    table.segments().iter().map(|s| s.multiplier).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 2 configuration: θ_div = 8, N_div = 3.
    fn fig2_config() -> ClockGenConfig {
        ClockGenConfig::prototype().with_theta_div(8).with_n_div(3)
    }

    #[test]
    fn idle_waveform_divides_then_stops() {
        let cfg = fig2_config();
        let wave = record_waveform(&cfg, &[], SimTime::from_ms(1));
        // Divisions to multipliers 2, 4, 8, then shutdown.
        let mults: Vec<u64> = wave.divisions.iter().map(|&(_, m)| m).collect();
        assert_eq!(mults, vec![2, 4, 8]);
        assert_eq!(wave.shutdowns.len(), 1);
        // 8 ticks per segment, 4 segments = 32 rising edges.
        assert_eq!(wave.rising_edges().len(), 32);
    }

    #[test]
    fn edge_spacing_doubles_per_segment() {
        let cfg = fig2_config();
        let base = cfg.base_sampling_period();
        let wave = record_waveform(&cfg, &[], SimTime::from_ms(1));
        let edges = wave.rising_edges();
        // First segment: edges 0..8 spaced base.
        for w in edges[..8].windows(2) {
            assert_eq!(w[1] - w[0], base);
        }
        // Second segment: spacing 2·base (edge 8 is the first divided one).
        for w in edges[8..16].windows(2) {
            assert_eq!(w[1] - w[0], base * 2);
        }
        // Fourth segment: spacing 8·base.
        for w in edges[24..32].windows(2) {
            assert_eq!(w[1] - w[0], base * 8);
        }
    }

    #[test]
    fn request_resets_the_division() {
        let cfg = fig2_config();
        let base = cfg.base_sampling_period();
        // Let it divide once (tick 8), then fire a request mid-segment-1
        // (offset 20·base is tick 14, before the second division at
        // tick 16 / offset 24·base).
        let req_time = SimTime::ZERO + base * 20;
        let wave = record_waveform(&cfg, &[req_time], SimTime::from_ms(1));
        assert_eq!(wave.samples.len(), 1);
        // One division before the sample, then the full 3-division idle
        // run-down after the reset.
        let mults: Vec<u64> = wave.divisions.iter().map(|&(_, m)| m).collect();
        assert_eq!(mults, vec![2, 2, 4, 8]);
    }

    #[test]
    fn request_during_sleep_wakes_the_clock() {
        let cfg = fig2_config();
        let wave = record_waveform(
            &cfg,
            &[SimTime::from_us(50)], // far past shutdown (~8·15·66.6ns ≈ 8 µs)
            SimTime::from_us(200),
        );
        // One shutdown before the request, and — after the wake, sample
        // and idle run-down — a second one before the horizon.
        assert_eq!(wave.shutdowns.len(), 2);
        assert!(wave.shutdowns[0] < SimTime::from_us(50));
        assert!(wave.shutdowns[1] > SimTime::from_us(50));
        assert_eq!(wave.samples.len(), 1);
        let sample = wave.samples[0];
        assert_eq!(
            sample,
            SimTime::from_us(50) + cfg.ring.wake_latency + cfg.base_sampling_period()
        );
        // Sleep went high, low at the wake, then high again at the
        // second shutdown.
        let sleep_highs = wave.tracer.edges_to(wave.sleep, true);
        let sleep_lows = wave.tracer.edges_to(wave.sleep, false);
        assert_eq!(sleep_highs.len(), 2);
        assert!(sleep_lows.iter().any(|&t| t > sleep_highs[0] && t < sleep_highs[1]));
    }

    #[test]
    fn expected_idle_multipliers_match_table() {
        assert_eq!(expected_idle_multipliers(&fig2_config()), vec![1, 2, 4, 8]);
    }

    #[test]
    fn vcd_export_of_fig2_works() {
        let wave = record_waveform(&fig2_config(), &[], SimTime::from_us(30));
        let mut buf = Vec::new();
        aetr_sim::vcd::write_vcd(&wave.tracer, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("clk_sample"));
        assert!(text.contains("$scope module clockgen $end"));
    }
}
