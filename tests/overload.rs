//! Failure-injection and overload behaviour: what happens when the
//! workload exceeds what the architecture was provisioned for.

use aetr::fifo::{FifoConfig, OverflowPolicy};
use aetr::i2s::I2sConfig;
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr_aer::generator::{LfsrGenerator, RegularGenerator, SpikeSource};
use aetr_sim::time::{Frequency, SimDuration, SimTime};

#[test]
fn slow_i2s_link_overflows_the_fifo_not_the_sim() {
    // Cripple the I2S link to 100 kHz SCK (~3.1 kevt/s) and a tiny
    // FIFO, then offer 200 kevt/s: the FIFO must drop events and say
    // so, while the simulation completes cleanly.
    let cfg = InterfaceConfig {
        i2s: I2sConfig { sck: Frequency::from_khz(100), bits_per_slot: 32 },
        fifo: FifoConfig {
            capacity_bytes: 256, // 64 events
            watermark: 8,
            overflow: OverflowPolicy::DropNewest,
        },
        ..InterfaceConfig::prototype()
    };
    let interface = AerToI2sInterface::new(cfg).unwrap();
    let train = LfsrGenerator::new(200_000.0, 0xBAD).generate(SimTime::from_ms(20));
    let offered = train.len() as u64;
    let report = interface.run(&train, SimTime::from_ms(20));

    assert!(report.fifo_stats.dropped > 0, "expected overflow drops");
    assert_eq!(report.fifo_stats.pushed + report.fifo_stats.dropped, offered);
    assert!(report.fifo_stats.loss_ratio() > 0.5, "loss {:.2}", report.fifo_stats.loss_ratio());
    // Whatever made it into the FIFO went out on I2S.
    assert_eq!(report.i2s.event_count() as u64, report.fifo_stats.popped);
    report.handshake.verify_protocol().unwrap();
}

#[test]
fn drop_oldest_policy_keeps_the_freshest_events() {
    let cfg = InterfaceConfig {
        i2s: I2sConfig { sck: Frequency::from_khz(100), bits_per_slot: 32 },
        fifo: FifoConfig {
            capacity_bytes: 64, // 16 events
            watermark: 16,
            overflow: OverflowPolicy::DropOldest,
        },
        ..InterfaceConfig::prototype()
    };
    let interface = AerToI2sInterface::new(cfg).unwrap();
    let train = RegularGenerator::from_rate(100_000.0, 1000).generate(SimTime::from_ms(10));
    let last_addr = train.as_slice().last().unwrap().addr;
    let report = interface.run(&train, SimTime::from_ms(10));
    assert!(report.fifo_stats.dropped > 0);
    // The newest event always survives under DropOldest.
    let delivered: Vec<u16> =
        report.i2s.frames().iter().flat_map(|f| f.events()).map(|e| e.addr.value()).collect();
    assert_eq!(delivered.last().copied(), Some(last_addr.value()));
}

#[test]
fn sustained_rate_beyond_service_rate_backpressures_the_sensor() {
    // The interface serves one event per ~3 sampling ticks (2-FF sync
    // + acknowledge), ~5 Mevt/s. Offer 12 Mevt/s: AER never loses
    // events — the sensor-side queue absorbs them, and the queuing
    // delay grows linearly with the backlog.
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
    let train = RegularGenerator::from_rate(12_000_000.0, 16).generate(SimTime::from_us(100));
    let n = train.len();
    let report = interface.run(&train, SimTime::from_us(100));
    assert_eq!(report.events.len(), n, "AER never loses events, it backpressures");
    let max_queue = report.handshake.max_queue_delay().unwrap();
    assert!(
        max_queue > SimDuration::from_us(10),
        "expected sensor-side queuing, max delay {max_queue}"
    );
    // Note the handshakes themselves stay CAVIAR-clean: the wait
    // happens *before* REQ rises (that is the point of AER flow
    // control), so the 700 ns per-event budget is still honoured.
    report.handshake.verify_caviar().unwrap();
}

#[test]
fn minimum_fifo_still_functions() {
    let cfg = InterfaceConfig {
        fifo: FifoConfig {
            capacity_bytes: 4, // exactly one event
            watermark: 1,
            overflow: OverflowPolicy::DropNewest,
        },
        ..InterfaceConfig::prototype()
    };
    let interface = AerToI2sInterface::new(cfg).unwrap();
    let train = RegularGenerator::from_rate(10_000.0, 4).generate(SimTime::from_ms(5));
    let n = train.len();
    let report = interface.run(&train, SimTime::from_ms(5));
    // At 10 kevt/s one event drains long before the next arrives.
    assert_eq!(report.fifo_stats.dropped, 0);
    assert_eq!(report.i2s.event_count(), n);
}

#[test]
fn horizon_before_last_spike_still_completes_all_events() {
    // The run contract: input events are all processed even if the
    // nominal horizon (power-integration window) ends earlier.
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
    let train = RegularGenerator::from_rate(1_000.0, 4).generate(SimTime::from_ms(50));
    let n = train.len();
    let report = interface.run(&train, SimTime::from_ms(10));
    assert_eq!(report.events.len(), n);
    assert_eq!(report.i2s.event_count(), n);
}
