//! Deterministic fixed-interval spike generator.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::Spike;

use super::SpikeSource;

/// Emits one spike every `interval`, cycling round-robin through
/// `0..num_addresses`. Ideal for corner-case tests where exact event
/// times matter (Nyquist-limit checks, FIFO watermark tests, CAVIAR
/// timing).
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{RegularGenerator, SpikeSource};
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let mut gen = RegularGenerator::new(SimDuration::from_us(100), 4);
/// let train = gen.generate(SimTime::from_ms(1));
/// assert_eq!(train.len(), 9); // spikes at 100us..900us
/// assert_eq!(train.as_slice()[5].addr.value(), 1); // round-robin
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegularGenerator {
    interval: SimDuration,
    num_addresses: u16,
    next_addr: u16,
    now: SimTime,
}

impl RegularGenerator {
    /// Creates a generator emitting every `interval` over addresses
    /// `0..num_addresses`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero or `num_addresses` is zero or
    /// exceeds the 10-bit bus.
    pub fn new(interval: SimDuration, num_addresses: u16) -> RegularGenerator {
        assert!(!interval.is_zero(), "interval must be non-zero");
        assert!(
            (1..=crate::address::MAX_ADDRESS + 1).contains(&num_addresses),
            "num_addresses must be 1..=1024, got {num_addresses}"
        );
        RegularGenerator { interval, num_addresses, next_addr: 0, now: SimTime::ZERO }
    }

    /// Creates a generator with the interval derived from a rate in
    /// events per second.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn from_rate(rate_hz: f64, num_addresses: u16) -> RegularGenerator {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "rate must be positive and finite, got {rate_hz}"
        );
        RegularGenerator::new(SimDuration::from_secs_f64(1.0 / rate_hz), num_addresses)
    }

    /// The fixed inter-spike interval.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }
}

impl SpikeSource for RegularGenerator {
    fn next_spike(&mut self) -> Option<Spike> {
        self.now = self.now.saturating_add(self.interval);
        let addr = Address::new(self.next_addr).expect("range validated at construction");
        self.next_addr = (self.next_addr + 1) % self.num_addresses;
        Some(Spike::new(self.now, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_spike_times() {
        let mut gen = RegularGenerator::new(SimDuration::from_us(50), 2);
        let train = gen.generate(SimTime::from_us(201));
        let times: Vec<u64> = train.iter().map(|s| s.time.as_ps() / 1_000_000).collect();
        assert_eq!(times, vec![50, 100, 150, 200]);
    }

    #[test]
    fn round_robin_addresses() {
        let mut gen = RegularGenerator::new(SimDuration::from_us(1), 3);
        let train = gen.generate(SimTime::from_us(7));
        let addrs: Vec<u16> = train.iter().map(|s| s.addr.value()).collect();
        assert_eq!(addrs, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn from_rate_matches_interval() {
        let gen = RegularGenerator::from_rate(1_000_000.0, 1);
        assert_eq!(gen.interval(), SimDuration::from_us(1));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_interval_panics() {
        let _ = RegularGenerator::new(SimDuration::ZERO, 1);
    }
}
