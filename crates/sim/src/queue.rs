//! A deterministic discrete-event queue.
//!
//! The queue orders events by `(time, sequence number)`: two events
//! scheduled for the same instant pop in the order they were scheduled.
//! This guarantees that a simulation is a pure function of its inputs —
//! an essential property for reproducing the paper's experiments, which
//! must give identical numbers on every run with the same seed.

use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashSet};
use std::error::Error;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event, usable to [cancel] it.
///
/// [cancel]: EventQueue::cancel
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

/// Error returned when scheduling an event in the simulated past.
///
/// A discrete-event simulation must never travel backwards; allowing it
/// silently would reorder causality.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulePastError {
    /// The current simulation time.
    pub now: SimTime,
    /// The (invalid) requested activation time.
    pub requested: SimTime,
}

impl fmt::Display for SchedulePastError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot schedule event at {} in the past of simulation time {}",
            self.requested, self.now
        )
    }
}

impl Error for SchedulePastError {}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    handle: EventHandle,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A monotonic, deterministic event queue over an arbitrary event type.
///
/// # Examples
///
/// ```
/// use aetr_sim::queue::EventQueue;
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut q = EventQueue::new();
/// q.schedule_after(SimDuration::from_ns(10), "b")?;
/// q.schedule_at(SimTime::from_ns(5), "a")?;
///
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "a")));
/// assert_eq!(q.now(), SimTime::from_ns(5));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(10), "b")));
/// assert_eq!(q.pop(), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    cancelled: HashSet<EventHandle>,
    now: SimTime,
    next_seq: u64,
    ops: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            ops: 0,
        }
    }

    /// Lifetime count of queue operations (successful schedules plus
    /// pops of live events).
    ///
    /// This is the denominator for the telemetry profiling hook "queue
    /// ops per wall-clock second"; it is monotone and survives
    /// [`clear`](EventQueue::clear).
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Current simulation time: the activation time of the most recently
    /// popped event (zero before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulePastError`] if `at` is earlier than [`now`].
    /// Scheduling exactly *at* the current time is allowed (a delta
    /// event) and pops after all already-queued events at that instant.
    ///
    /// [`now`]: EventQueue::now
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> Result<EventHandle, SchedulePastError> {
        if at < self.now {
            return Err(SchedulePastError { now: self.now, requested: at });
        }
        let handle = EventHandle(self.next_seq);
        self.heap.push(Reverse(Entry { time: at, seq: self.next_seq, handle, event }));
        self.next_seq += 1;
        self.ops += 1;
        Ok(handle)
    }

    /// Schedules `event` a relative `delay` after the current time.
    ///
    /// # Errors
    ///
    /// Returns [`SchedulePastError`] only if `now + delay` overflows the
    /// timeline (treated as scheduling at an unreachable instant).
    pub fn schedule_after(
        &mut self,
        delay: SimDuration,
        event: E,
    ) -> Result<EventHandle, SchedulePastError> {
        let at = self
            .now
            .checked_add(delay)
            .ok_or(SchedulePastError { now: self.now, requested: SimTime::MAX })?;
        self.schedule_at(at, event)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending, `false` if it had
    /// already popped or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        // Only insert if the event is plausibly still queued; a stale
        // handle for an already-popped event is filtered on pop anyway,
        // but we avoid unbounded growth by checking membership.
        if self.heap.iter().any(|Reverse(e)| e.handle == handle) {
            self.cancelled.insert(handle)
        } else {
            false
        }
    }

    /// Pops the next live event, advancing the simulation clock to its
    /// activation time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if self.cancelled.remove(&entry.handle) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.ops += 1;
            return Some((entry.time, entry.event));
        }
        None
    }

    /// Activation time of the next live event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.handle))
            .map(|Reverse(e)| e.time)
            .min()
    }

    /// Drops every pending event and resets the cancellation set; the
    /// clock is left where it is.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(30), 3).unwrap();
        q.schedule_at(SimTime::from_ns(10), 1).unwrap();
        q.schedule_at(SimTime::from_ns(20), 2).unwrap();
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_pop_in_schedule_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ns(7);
        for i in 0..10 {
            q.schedule_at(t, i).unwrap();
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_scheduling_in_the_past() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), ()).unwrap();
        q.pop();
        let err = q.schedule_at(SimTime::from_ns(5), ()).unwrap_err();
        assert_eq!(err.now, SimTime::from_ns(10));
        assert_eq!(err.requested, SimTime::from_ns(5));
        assert!(err.to_string().contains("in the past"));
    }

    #[test]
    fn delta_events_at_now_are_allowed() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(10), "first").unwrap();
        q.pop();
        q.schedule_at(SimTime::from_ns(10), "delta").unwrap();
        assert_eq!(q.pop(), Some((SimTime::from_ns(10), "delta")));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(100), ()).unwrap();
        q.pop();
        q.schedule_after(SimDuration::from_ns(50), ()).unwrap();
        assert_eq!(q.pop().unwrap().0, SimTime::from_ns(150));
    }

    #[test]
    fn cancelled_events_never_pop() {
        let mut q = EventQueue::new();
        let keep = q.schedule_at(SimTime::from_ns(1), "keep").unwrap();
        let drop_ = q.schedule_at(SimTime::from_ns(2), "drop").unwrap();
        assert!(q.cancel(drop_));
        assert!(!q.cancel(drop_), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((SimTime::from_ns(1), "keep")));
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(keep), "cancelling a popped event reports false");
    }

    #[test]
    fn peek_skips_cancelled() {
        let mut q = EventQueue::new();
        let first = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        q.schedule_at(SimTime::from_ns(2), ()).unwrap();
        q.cancel(first);
        assert_eq!(q.peek_time(), Some(SimTime::from_ns(2)));
    }

    #[test]
    fn len_and_is_empty_track_cancellations() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        assert_eq!(q.len(), 1);
        q.cancel(h);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn clear_drops_everything_but_keeps_time() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_ns(5), ()).unwrap();
        q.pop();
        q.schedule_at(SimTime::from_ns(9), ()).unwrap();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), SimTime::from_ns(5));
    }

    #[test]
    fn ops_counts_schedules_and_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.ops(), 0);
        let a = q.schedule_at(SimTime::from_ns(1), ()).unwrap();
        q.schedule_at(SimTime::from_ns(2), ()).unwrap();
        assert_eq!(q.ops(), 2);
        q.cancel(a);
        q.pop(); // pops the live event only
        assert_eq!(q.ops(), 3);
        assert_eq!(q.pop(), None);
        assert_eq!(q.ops(), 3, "popping nothing is not an op");
    }

    #[test]
    fn overflow_schedule_after_errors() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(SimTime::MAX - SimDuration::from_ns(1), ()).unwrap();
        q.pop();
        assert!(q.schedule_after(SimDuration::MAX, ()).is_err());
    }
}
