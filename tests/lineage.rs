//! Acceptance tests for the per-event lineage layer (DESIGN.md §14).
//!
//! The load-bearing guarantees:
//!
//! 1. lineage is *purely observational* — with collection disabled the
//!    report (including the golden literals from the seed build) is
//!    bit-identical, and enabling it changes no functional field;
//! 2. the error-budget attribution is *exact*: per-cause totals sum to
//!    the measured total timestamp error, and on a fault-free run every
//!    clean event respects the analytic alignment budget behind the
//!    paper's `~1/θ_div` accuracy claim;
//! 3. the JSONL export validates line-by-line against the checked-in
//!    schema (the same check CI's lineage-smoke job runs via the CLI).

use aetr::interface::{AerToI2sInterface, InterfaceConfig, InterfaceReport, TelemetryConfig};
use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_faults::FaultPlan;
use aetr_sim::time::{SimDuration, SimTime};
use aetr_telemetry::json;
use aetr_telemetry::lineage::{relative_error_bound, DropCause, ErrorBudget};

fn prototype() -> AerToI2sInterface {
    AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap()
}

/// The golden workload of `tests/telemetry.rs`: Poisson 50 kevt/s,
/// seed 7, 10 ms. Mean gap 20 µs sits in the divided-clock region
/// (level-1 division starts after θ·T_min ≈ 4.2 µs of silence), with
/// occasional gaps long enough to sleep and wake.
fn golden_run(tel: &TelemetryConfig) -> InterfaceReport {
    let horizon = SimTime::from_ms(10);
    let train = PoissonGenerator::new(50_000.0, 64, 7).generate(horizon);
    prototype().run_with_telemetry(&train, horizon, &FaultPlan::nominal(0), tel)
}

fn assert_functionally_identical(a: &InterfaceReport, b: &InterfaceReport) {
    assert_eq!(a.events, b.events);
    assert_eq!(a.handshake, b.handshake);
    assert_eq!(a.fifo_stats, b.fifo_stats);
    assert_eq!(a.i2s, b.i2s);
    assert_eq!(a.activity, b.activity);
    assert_eq!(a.power, b.power);
    assert_eq!(a.wake_count, b.wake_count);
    assert_eq!(a.health, b.health);
}

/// Lineage off leaves everything exactly as before (the golden
/// literals are from the seed build, via `tests/telemetry.rs`);
/// lineage on changes no functional field and records every event.
#[test]
fn lineage_is_purely_observational() {
    let base = TelemetryConfig::with_cadence(SimDuration::from_us(50));
    let without = golden_run(&base);
    let with = golden_run(&base.with_lineage());

    assert!(without.telemetry.lineage.is_empty(), "disabled lineage records nothing");
    assert_eq!(without.events.len(), 519, "golden event count (seed build)");
    assert_eq!(without.wake_count, 23, "golden wake count (seed build)");
    assert_eq!(without.i2s.len(), 260, "golden frame count (seed build)");

    assert_functionally_identical(&without, &with);
    // Aggregate metrics shared by both runs agree too; only the lineage
    // additions (records + e2e histogram) may differ.
    assert_eq!(
        without.telemetry.metrics.counter_by_name("interface.events.captured"),
        with.telemetry.metrics.counter_by_name("interface.events.captured"),
    );
    assert_eq!(with.telemetry.lineage.len(), with.events.len(), "one record per captured event");
}

/// The error budget is exact by construction: cause buckets sum to the
/// per-event error, totals telescope, and on this fault-free run every
/// clean event sits inside the analytic alignment budget — and the
/// clean per-level envelope respects the paper's `~1/θ_div` claim.
#[test]
fn error_budget_attribution_is_exact_and_bounded() {
    let report =
        golden_run(&TelemetryConfig::with_cadence(SimDuration::from_us(50)).with_lineage());
    let records = report.telemetry.lineage.records();
    let t_min = InterfaceConfig::prototype().clock.base_sampling_period();
    let budget = ErrorBudget::from_records(records, t_min);

    // Exactness: per-cause totals sum to the signed total, which in
    // turn is the sum of the independently recomputed per-event errors.
    assert_eq!(budget.causes.total_ps(), budget.total_error_ps);
    let recomputed: i128 = records
        .iter()
        .scan(0i128, |prev_arrival, r| {
            let measured = r.timestamp_ticks as i128 * t_min.as_ps() as i128;
            let true_interval = r.arrival.as_ps() as i128 - *prev_arrival;
            *prev_arrival = r.arrival.as_ps() as i128;
            Some(measured - true_interval)
        })
        .sum();
    assert_eq!(budget.total_error_ps, recomputed, "budget total = Σ (measured − true)");
    for row in &budget.rows {
        assert_eq!(row.causes.total_ps(), row.error_ps, "event {} split is exact", row.index);
    }
    // Telescoping: the true intervals sum to the last arrival.
    let sum_true: i128 = budget.rows.iter().map(|r| r.true_interval_ps).sum();
    assert_eq!(sum_true, records.last().unwrap().arrival.as_ps() as i128);

    // The workload actually exercises the divided-clock region, and the
    // occasional sleep/wake cycle routes into the wake bucket.
    assert!(
        budget.by_level.iter().any(|l| l.division_level >= 1),
        "levels: {:?}",
        budget.by_level.iter().map(|l| l.division_level).collect::<Vec<_>>()
    );
    assert!(budget.causes.wake_ps > 0, "23 wakes must charge the wake bucket");

    // Fault-free acceptance: no clean event exceeds the analytic
    // per-event alignment budget (sync_stages = 2 on the prototype).
    assert_eq!(budget.bound_violations(2), Vec::<u32>::new());
    // Relative form in the active region: a clean capture at level
    // d ≥ 1 implies at least ~θ_div(2^d − 1) quiet ticks of true
    // interval, so the alignment budget divides through to
    // (sync+2)(m_i + m_{i−1}) / (θ_div(2^d − 1)) — the paper's
    // `~1/θ_div` quantization envelope (`relative_error_bound`) widened
    // by the alignment endpoints (DESIGN.md §14 derives both).
    let theta = InterfaceConfig::prototype().clock.theta_div;
    let max_mult = 2f64.powi(InterfaceConfig::prototype().clock.n_div as i32);
    for level in budget.by_level.iter().filter(|l| l.division_level >= 1) {
        let m = 2f64.powi(level.division_level as i32);
        let rel_bound = 4.0 * (m + max_mult) / (f64::from(theta) * (m - 1.0));
        assert!(
            level.max_relative_error <= rel_bound,
            "level {}: {} > bound {}",
            level.division_level,
            level.max_relative_error,
            rel_bound,
        );
        // The quantization-only envelope is the tight inner core of
        // that bound.
        assert!(relative_error_bound(theta, level.division_level) < rel_bound);
    }
}

/// Every delivered event's arrival→I2S latency lands in the metrics
/// registry's `interface.lineage.e2e_latency_ns` histogram.
#[test]
fn end_to_end_latency_reaches_the_metrics_registry() {
    let report =
        golden_run(&TelemetryConfig::with_cadence(SimDuration::from_us(50)).with_lineage());
    let delivered = report
        .telemetry
        .lineage
        .records()
        .iter()
        .filter(|r| r.end_to_end_latency().is_some())
        .count();
    assert!(delivered > 0, "the golden run delivers events");
    assert_eq!(
        report
            .telemetry
            .lineage
            .records()
            .iter()
            .filter(|r| r.drop_cause == DropCause::Delivered)
            .count(),
        delivered,
        "fault-free: all delivered events complete their I2S frame"
    );
    let hist = report
        .telemetry
        .metrics
        .histogram_by_name("interface.lineage.e2e_latency_ns")
        .expect("lineage registers the latency histogram");
    assert_eq!(hist.count(), delivered as u64);
    assert_eq!(hist.non_finite(), 0);
}

/// JSONL export: one schema-valid object per captured event — the same
/// check CI's lineage-smoke job performs through
/// `aetr-cli validate --jsonl true`.
#[test]
fn jsonl_export_validates_line_by_line() {
    let report =
        golden_run(&TelemetryConfig::with_cadence(SimDuration::from_us(50)).with_lineage());
    let jsonl = report.telemetry.lineage.to_jsonl();
    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/lineage.schema.json"
    ))
    .expect("schema file present");
    let schema = json::parse(&schema_text).expect("schema parses");
    let mut lines = 0;
    for (n, line) in jsonl.lines().enumerate() {
        let doc = json::parse(line).unwrap_or_else(|e| panic!("line {}: {e}", n + 1));
        let violations = json::validate(&doc, &schema);
        assert!(violations.is_empty(), "line {}: {violations:?}", n + 1);
        lines += 1;
    }
    assert_eq!(lines, report.events.len());
}
