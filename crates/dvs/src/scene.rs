//! Analytic scenes: continuous brightness fields the sensor watches.
//!
//! A DVS pixel responds to *temporal contrast* — changes in
//! log-brightness — so scenes are defined as closed-form functions of
//! `(x, y, t)`, not frame stacks. That keeps the stimulus exact at any
//! time resolution, which matters because the whole point of the AETR
//! interface is sub-microsecond event timing.

use serde::{Deserialize, Serialize};

/// A time-varying brightness field over the unit square.
///
/// Coordinates are normalised to `[0, 1]`; brightness is linear
/// radiance, strictly positive (the pixel takes its logarithm).
pub trait Scene {
    /// Brightness at position `(x, y)` and time `t` (seconds).
    fn brightness(&self, x: f64, y: f64, t_secs: f64) -> f64;
}

/// A bright bar sweeping across the field of view at constant speed —
/// the classic DVS demo stimulus (pole balancing, vehicle counting).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovingBar {
    /// Bar width as a fraction of the field of view.
    pub width: f64,
    /// Sweep speed in fields-of-view per second.
    pub speed: f64,
    /// Background radiance.
    pub background: f64,
    /// Bar radiance (contrast = bar / background).
    pub bar: f64,
}

impl MovingBar {
    /// A high-contrast bar crossing the view in half a second.
    pub fn demo() -> MovingBar {
        MovingBar { width: 0.1, speed: 2.0, background: 0.2, bar: 1.0 }
    }
}

impl Scene for MovingBar {
    fn brightness(&self, x: f64, _y: f64, t_secs: f64) -> f64 {
        // Bar's leading edge wraps around the unit interval.
        let edge = (self.speed * t_secs).rem_euclid(1.0);
        let in_bar = if edge >= self.width {
            x > edge - self.width && x <= edge
        } else {
            // Wrapped: bar occupies [0, edge] ∪ [1 - (width - edge), 1].
            x <= edge || x > 1.0 - (self.width - edge)
        };
        if in_bar {
            self.bar
        } else {
            self.background
        }
    }
}

/// A drifting sinusoidal grating — the standard contrast-sensitivity
/// stimulus; produces smooth, dense, periodic event activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftingGrating {
    /// Spatial frequency in cycles per field of view.
    pub cycles: f64,
    /// Drift speed in cycles per second.
    pub drift_hz: f64,
    /// Mean radiance.
    pub mean: f64,
    /// Michelson contrast in `[0, 1)`.
    pub contrast: f64,
}

impl Scene for DriftingGrating {
    fn brightness(&self, x: f64, _y: f64, t_secs: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * (self.cycles * x - self.drift_hz * t_secs);
        self.mean * (1.0 + self.contrast * phase.sin())
    }
}

/// A static scene: no change, so an ideal change detector emits
/// nothing — the sensor-side analogue of the paper's "absence of
/// spikes" power floor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticScene {
    /// The constant radiance.
    pub level: f64,
}

impl Scene for StaticScene {
    fn brightness(&self, _x: f64, _y: f64, _t: f64) -> f64 {
        self.level
    }
}

/// A square-wave flickering patch (an LED in the corner of the view):
/// localised, high-rate activity against a static background.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlickerPatch {
    /// Patch centre.
    pub cx: f64,
    /// Patch centre.
    pub cy: f64,
    /// Patch radius.
    pub radius: f64,
    /// Flicker frequency in Hz.
    pub freq_hz: f64,
    /// Off-state radiance (also the background).
    pub low: f64,
    /// On-state radiance.
    pub high: f64,
}

impl Scene for FlickerPatch {
    fn brightness(&self, x: f64, y: f64, t_secs: f64) -> f64 {
        let inside = (x - self.cx).powi(2) + (y - self.cy).powi(2) <= self.radius.powi(2);
        if !inside {
            return self.low;
        }
        let phase = (self.freq_hz * t_secs).rem_euclid(1.0);
        if phase < 0.5 {
            self.high
        } else {
            self.low
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_bar_sweeps_and_wraps() {
        let bar = MovingBar::demo();
        // At t=0 the edge is at 0: bar wrapped to the right end.
        assert_eq!(bar.brightness(0.99, 0.5, 0.0), bar.bar);
        assert_eq!(bar.brightness(0.5, 0.5, 0.0), bar.background);
        // At t=0.125 (speed 2): edge at 0.25, bar covers (0.15, 0.25].
        assert_eq!(bar.brightness(0.2, 0.5, 0.125), bar.bar);
        assert_eq!(bar.brightness(0.1, 0.5, 0.125), bar.background);
        // One full period later the pattern repeats.
        assert_eq!(bar.brightness(0.2, 0.5, 0.625), bar.bar);
    }

    #[test]
    fn grating_is_periodic_and_positive() {
        let g = DriftingGrating { cycles: 4.0, drift_hz: 8.0, mean: 0.5, contrast: 0.9 };
        for i in 0..100 {
            let x = i as f64 / 100.0;
            let b = g.brightness(x, 0.0, 0.123);
            assert!(b > 0.0, "brightness must stay positive, got {b}");
        }
        let a = g.brightness(0.3, 0.0, 0.0);
        let b = g.brightness(0.3, 0.0, 1.0 / 8.0); // one drift period
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn static_scene_never_changes() {
        let s = StaticScene { level: 0.7 };
        assert_eq!(s.brightness(0.1, 0.2, 0.0), s.brightness(0.9, 0.8, 123.0));
    }

    #[test]
    fn flicker_toggles_inside_patch_only() {
        let f = FlickerPatch { cx: 0.5, cy: 0.5, radius: 0.1, freq_hz: 100.0, low: 0.1, high: 1.0 };
        assert_eq!(f.brightness(0.5, 0.5, 0.001), 1.0); // on phase
        assert_eq!(f.brightness(0.5, 0.5, 0.006), 0.1); // off phase
        assert_eq!(f.brightness(0.9, 0.9, 0.001), 0.1); // outside
    }
}
