//! Deterministic parallel execution of independent simulation points.
//!
//! Campaign and sweep workloads in this repository are embarrassingly
//! parallel: every point owns its own seeded RNG streams and its own
//! [`EventQueue`](crate::queue::EventQueue), so points never share
//! mutable state. This module shards such points over OS threads with
//! [`std::thread::scope`] — no external crates, the vendor tree is
//! offline — while keeping the output *bit-identical* to a sequential
//! run.
//!
//! # Determinism argument
//!
//! Thread scheduling only decides *which worker* computes a point and
//! *when*; it never decides *what* the point computes, because
//!
//! 1. each item is mapped by a pure-per-item function `f(index, item)`
//!    that takes no mutable shared state (enforced by `F: Fn + Sync`
//!    taking `&T`),
//! 2. every result is tagged with its input index at the moment it is
//!    produced, and
//! 3. the tagged results are sorted by input index before being
//!    returned.
//!
//! Consequently `par_map(jobs, items, f)` returns the same `Vec` for
//! every `jobs >= 1`, including `jobs == 1`, which short-circuits to a
//! plain sequential loop with no thread machinery at all.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Number of worker threads the host can usefully run, for `--jobs 0`
/// style "pick for me" knobs. Falls back to 1 if the OS refuses to say.
pub fn available_jobs() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Maps `f` over `items` on up to `jobs` worker threads, returning the
/// results **in input order** — bit-identical to the sequential
/// `items.iter().enumerate().map(|(i, t)| f(i, t)).collect()`.
///
/// `f` receives `(index, &item)` so callers can derive per-point seeds
/// from the position, exactly as a sequential loop would. Work is
/// handed out through an atomic cursor, so stragglers never idle a
/// worker; `jobs` is clamped to `1..=items.len()`.
///
/// # Examples
///
/// ```
/// use aetr_sim::parallel::par_map;
///
/// let xs = [1u64, 2, 3, 4, 5];
/// let doubled = par_map(4, &xs, |_, &x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6, 8, 10]);
/// ```
pub fn par_map<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let jobs = jobs.max(1).min(items.len().max(1));
    if jobs <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let tagged: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));

    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Compute into a worker-local buffer first so the lock
                // is touched once per worker, not once per item.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(i, &items[i])));
                }
                tagged.lock().expect("worker poisoned result buffer").extend(local);
            });
        }
    });

    let mut tagged = tagged.into_inner().expect("worker poisoned result buffer");
    tagged.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), items.len());
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let seq: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 3 + i as u64).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            let par = par_map(jobs, &items, |i, &x| x * 3 + i as u64);
            assert_eq!(par, seq, "jobs={jobs} diverged from sequential");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[42u32], |_, &x| x + 1), vec![43]);
    }

    #[test]
    fn jobs_zero_behaves_like_one() {
        let items = [10u32, 20, 30];
        assert_eq!(par_map(0, &items, |i, &x| x + i as u32), vec![10, 21, 32]);
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..100).collect();
        let echoed = par_map(7, &items, |i, &x| {
            assert_eq!(i, x, "index must match the item's position");
            i
        });
        assert_eq!(echoed, items);
    }

    #[test]
    fn available_jobs_is_at_least_one() {
        assert!(available_jobs() >= 1);
    }
}
