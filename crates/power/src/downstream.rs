//! Downstream (MCU-side) energy model — the paper's §3 argument,
//! quantified.
//!
//! > "the time domain information must be extracted explicitly. The
//! > former behavior can only be implemented in a typical
//! > microcontroller by forcing it to remain always-on ... conversely,
//! > making the time domain information explicit could enable storing
//! > and accumulating events so that they can be processed in batch,
//! > allowing more efficient usage of the downstream computing device."
//!
//! Two consumption strategies for the same event stream:
//!
//! * **always-on** — the MCU stays awake for the whole recording to
//!   observe implicit inter-spike times itself;
//! * **batched** — the AETR interface accumulates events; the MCU
//!   sleeps, wakes per batch, processes, and sleeps again.

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

use crate::units::{Energy, Power};

/// MCU power states and costs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct McuPowerModel {
    /// Active (run-mode) power.
    pub active: Power,
    /// Deep-sleep power.
    pub sleep: Power,
    /// Energy cost of one sleep→active transition.
    pub wake_energy: Energy,
    /// CPU time to process one event.
    pub per_event_cpu: SimDuration,
    /// Fixed CPU time per wake (context restore, DMA setup).
    pub per_wake_cpu: SimDuration,
}

impl McuPowerModel {
    /// An STM32-L476-class MCU at a modest clock: 8 mW active, 2 µW
    /// stop-mode, 5 µJ wake cost, 2 µs of CPU per event, 200 µs per
    /// wake.
    pub fn stm32l476() -> McuPowerModel {
        McuPowerModel {
            active: Power::from_milliwatts(8.0),
            sleep: Power::from_microwatts(2.0),
            wake_energy: Energy::from_nanojoules(5_000.0),
            per_event_cpu: SimDuration::from_us(2),
            per_wake_cpu: SimDuration::from_us(200),
        }
    }
}

impl Default for McuPowerModel {
    fn default() -> Self {
        Self::stm32l476()
    }
}

/// Energy comparison for one recording.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DownstreamComparison {
    /// MCU energy if it must stay awake for the whole span.
    pub always_on: Energy,
    /// MCU energy if it wakes once per batch.
    pub batched: Energy,
}

impl DownstreamComparison {
    /// `always_on / batched` — how much the explicit AETR timestamps
    /// save the downstream device.
    pub fn saving_factor(&self) -> f64 {
        let b = self.batched.as_picojoules();
        if b == 0.0 {
            f64::INFINITY
        } else {
            self.always_on.as_picojoules() / b
        }
    }
}

/// Compares the two strategies over a recording of `span` containing
/// `events` events delivered in `batches` batches.
///
/// # Panics
///
/// Panics if `batches` is zero while `events` is not.
pub fn compare(
    model: &McuPowerModel,
    span: SimDuration,
    events: u64,
    batches: u64,
) -> DownstreamComparison {
    assert!(events == 0 || batches > 0, "events need at least one batch");
    // Always-on: active for the whole span (it cannot know when the
    // next event comes, so it cannot sleep).
    let always_on = model.active * span;

    // Batched: sleep for the whole span except the per-batch busy time.
    let busy = model
        .per_wake_cpu
        .saturating_mul(batches)
        .saturating_add_events(model.per_event_cpu, events);
    let busy = busy.min(span);
    let batched =
        model.active * busy + model.sleep * (span - busy) + model.wake_energy * batches as f64;
    DownstreamComparison { always_on, batched }
}

/// Helper: `self + per_event · events` with saturation.
trait AddEvents {
    fn saturating_add_events(self, per_event: SimDuration, events: u64) -> SimDuration;
}

impl AddEvents for SimDuration {
    fn saturating_add_events(self, per_event: SimDuration, events: u64) -> SimDuration {
        self + per_event.saturating_mul(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_wins_by_orders_of_magnitude_on_sparse_streams() {
        // 1000 events over 10 s, one batch per second.
        let cmp = compare(&McuPowerModel::stm32l476(), SimDuration::from_secs(10), 1_000, 10);
        // Always-on: 8 mW * 10 s = 80 mJ.
        assert!((cmp.always_on.as_microjoules() - 80_000.0).abs() < 1.0);
        // Batched: ~10 wakes * (200us*8mW + 5uJ) + 1000 * 2us * 8mW + sleep.
        assert!(cmp.batched.as_microjoules() < 150.0, "{}", cmp.batched);
        assert!(cmp.saving_factor() > 500.0, "factor {}", cmp.saving_factor());
    }

    #[test]
    fn dense_streams_shrink_the_advantage() {
        // 5M events over 10 s: the CPU is busy most of the time anyway.
        let cmp = compare(&McuPowerModel::stm32l476(), SimDuration::from_secs(10), 5_000_000, 10);
        assert!(cmp.saving_factor() < 2.0, "factor {}", cmp.saving_factor());
        // Fully CPU-bound: batching degenerates to always-on plus the
        // (small) wake overhead — factor just under 1.
        assert!(cmp.saving_factor() > 0.99, "factor {}", cmp.saving_factor());
    }

    #[test]
    fn more_batches_cost_more_wakes() {
        let model = McuPowerModel::stm32l476();
        let few = compare(&model, SimDuration::from_secs(10), 1_000, 2);
        let many = compare(&model, SimDuration::from_secs(10), 1_000, 500);
        assert!(many.batched > few.batched, "{} vs {}", many.batched, few.batched);
        assert_eq!(many.always_on, few.always_on);
    }

    #[test]
    fn zero_events_is_pure_sleep_vs_pure_active() {
        let model = McuPowerModel::stm32l476();
        let cmp = compare(&model, SimDuration::from_secs(1), 0, 0);
        assert!((cmp.batched.as_microjoules() - 2.0).abs() < 0.01, "{}", cmp.batched);
        assert!(cmp.saving_factor() > 3_000.0);
    }

    #[test]
    fn busy_time_is_clamped_to_span() {
        // Pathological: more CPU work than wall-clock; batched degrades
        // to always-on plus wake costs, never less than sleep floor.
        let model = McuPowerModel::stm32l476();
        let cmp = compare(&model, SimDuration::from_ms(1), 10_000_000, 1);
        assert!(cmp.batched >= cmp.always_on, "overloaded batching cannot beat always-on");
    }

    #[test]
    #[should_panic(expected = "at least one batch")]
    fn events_without_batches_panics() {
        let _ = compare(&McuPowerModel::stm32l476(), SimDuration::from_secs(1), 10, 0);
    }
}
