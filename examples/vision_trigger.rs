//! An always-on smart visual trigger (the Rusci et al. scenario from
//! the paper's related work): a DVS-style sensor watches a mostly
//! static scene; the AETR interface sleeps through the silence and
//! wakes for motion; a trivial event-count trigger on the MCU side
//! detects the moving object from the batched AETR stream.
//!
//! ```sh
//! cargo run --release -p aetr --example vision_trigger
//! ```

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::mcu::McuReceiver;
use aetr_dvs::scene::{MovingBar, Scene, StaticScene};
use aetr_dvs::sensor::{DvsConfig, DvsSensor};
use aetr_sim::time::{SimDuration, SimTime};

/// A scene that is static except for a bar crossing during
/// `[motion_start, motion_end]`.
struct Surveillance {
    bar: MovingBar,
    motion_start: f64,
    motion_end: f64,
}

impl Scene for Surveillance {
    fn brightness(&self, x: f64, y: f64, t_secs: f64) -> f64 {
        if (self.motion_start..self.motion_end).contains(&t_secs) {
            self.bar.brightness(x, y, t_secs - self.motion_start)
        } else {
            StaticScene { level: self.bar.background }.brightness(x, y, t_secs)
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scene = Surveillance { bar: MovingBar::demo(), motion_start: 0.4, motion_end: 0.65 };
    let sensor = DvsSensor::new(DvsConfig::aer10bit())?;
    let horizon = SimTime::from_secs(1);
    let events = sensor.observe(&scene, horizon);
    println!(
        "sensor: {} events over 1 s (all inside the {}..{} ms motion window)",
        events.len(),
        scene.motion_start * 1e3,
        scene.motion_end * 1e3
    );

    // Run the interface: it should sleep outside the motion window.
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype())?;
    let report = interface.run(&events, horizon);
    println!("\ninterface:");
    println!("  power over 1 s: {}", report.power.total);
    println!("  clock off for:  {} of 1 s", report.activity.off);
    println!("  wakes:          {}", report.wake_count);

    // MCU-side trigger: count events per 50 ms window of reconstructed
    // time; fire when a window exceeds a threshold.
    let mcu = McuReceiver::new(interface.config().clock.base_sampling_period());
    let rebuilt = mcu.receive(&report.i2s);
    let window = SimDuration::from_ms(50);
    let threshold = 30usize;
    // Note: idle gaps longer than the measurable range arrive with
    // saturated timestamps, so the reconstructed timeline *compresses*
    // silence — exactly what a trigger wants: burst density survives,
    // dead time shrinks.
    println!("\ntrigger scan over the reconstructed (silence-compressed) timeline:");
    let mut fired_windows = 0;
    let end = rebuilt.last_time().unwrap_or(SimTime::ZERO);
    let mut w_start = SimTime::ZERO;
    while w_start < end {
        let count = rebuilt.window(w_start, w_start + window).len();
        if count >= threshold {
            fired_windows += 1;
            println!("  TRIGGER at reconstructed t={} ({} events)", w_start, count);
        }
        w_start += window;
    }
    println!(
        "\n{} trigger window(s); the node slept at ~{} between them",
        fired_windows,
        aetr_power::Power::from_microwatts(50.0)
    );
    Ok(())
}
