//! The AER 4-phase handshake.
//!
//! AER transfers one event per handshake: the sender places the address
//! on the bus and raises `REQ`; the receiver raises `ACK`; the sender
//! lowers `REQ`; the receiver lowers `ACK`, completing the cycle. All
//! timing information is implicit in *when* `REQ` rises — which is
//! exactly what the AETR interface must measure.
//!
//! This module provides the sender-side state machine
//! ([`HandshakeSender`]) that serialises a [`SpikeTrain`] onto the
//! REQ/ACK/ADDR wires with realistic timing (including sensor-side
//! queuing when the receiver is slow), a [`Transaction`] record of each
//! completed handshake, and the CAVIAR timing compliance check the
//! paper cites (every event must complete within 700 ns).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::{Spike, SpikeTrain};

/// CAVIAR interface standard budget: each AER event must complete its
/// handshake within 700 ns (paper §5).
pub const CAVIAR_EVENT_BUDGET: SimDuration = SimDuration::from_ns(700);

/// Sender-side timing parameters of the 4-phase handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandshakeTiming {
    /// Address valid before `REQ` rises (AER requires ADDR stable at
    /// `REQ` assertion).
    pub addr_setup: SimDuration,
    /// Delay from observing `ACK` rise to lowering `REQ`.
    pub req_fall_delay: SimDuration,
    /// Recovery time from `ACK` fall to the earliest next `REQ` rise.
    pub recovery: SimDuration,
}

impl Default for HandshakeTiming {
    /// Plausible sensor-side delays for a DAS1-class device: 5 ns
    /// setup, 10 ns request release, 10 ns recovery.
    fn default() -> Self {
        HandshakeTiming {
            addr_setup: SimDuration::from_ns(5),
            req_fall_delay: SimDuration::from_ns(10),
            recovery: SimDuration::from_ns(10),
        }
    }
}

/// A completed 4-phase handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transaction {
    /// The event address transferred.
    pub addr: Address,
    /// When the sensor *wanted* to emit the event (spike time).
    pub event_time: SimTime,
    /// `REQ` rising edge (this is the instant the interface timestamps).
    pub req_rise: SimTime,
    /// `ACK` rising edge.
    pub ack_rise: SimTime,
    /// `REQ` falling edge.
    pub req_fall: SimTime,
    /// `ACK` falling edge.
    pub ack_fall: SimTime,
}

impl Transaction {
    /// Total handshake duration (`REQ` rise to `ACK` fall), the
    /// quantity CAVIAR bounds.
    pub fn duration(&self) -> SimDuration {
        self.ack_fall - self.req_rise
    }

    /// Sensor-side queuing delay: how long the event waited behind the
    /// previous handshake before its `REQ` could rise.
    pub fn queue_delay(&self) -> SimDuration {
        self.req_rise.saturating_duration_since(self.event_time)
    }

    /// `REQ`-rise → `ACK`-rise latency: how long the sensor held `REQ`
    /// before the interface answered (sync + sampling-grid wait, plus
    /// any wake). The lineage layer reports this per event.
    pub fn ack_latency(&self) -> SimDuration {
        self.ack_rise.saturating_duration_since(self.req_rise)
    }

    /// Checks the 4-phase ordering invariant.
    pub fn is_well_formed(&self) -> bool {
        self.req_rise <= self.ack_rise
            && self.ack_rise <= self.req_fall
            && self.req_fall <= self.ack_fall
    }
}

/// A protocol-order violation detected in a transaction log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// Index of the malformed transaction.
    pub index: usize,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transaction {} violates 4-phase edge ordering", self.index)
    }
}

impl Error for ProtocolError {}

/// A CAVIAR timing violation: an event exceeded the 700 ns budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaviarViolation {
    /// Index of the offending transaction.
    pub index: usize,
    /// Its measured duration.
    pub duration: SimDuration,
}

impl fmt::Display for CaviarViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transaction {} took {}, exceeding the CAVIAR budget of {}",
            self.index, self.duration, CAVIAR_EVENT_BUDGET
        )
    }
}

impl Error for CaviarViolation {}

/// Log of completed handshakes with protocol/timing verification and
/// summary statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HandshakeLog {
    transactions: Vec<Transaction>,
}

impl HandshakeLog {
    /// Creates an empty log.
    pub fn new() -> HandshakeLog {
        HandshakeLog::default()
    }

    /// Creates an empty log with room for `capacity` transactions, so
    /// a runner that knows its stimulus size never reallocates.
    pub fn with_capacity(capacity: usize) -> HandshakeLog {
        HandshakeLog { transactions: Vec::with_capacity(capacity) }
    }

    /// Appends a completed transaction.
    pub fn push(&mut self, t: Transaction) {
        self.transactions.push(t);
    }

    /// The recorded transactions.
    pub fn transactions(&self) -> &[Transaction] {
        &self.transactions
    }

    /// Number of recorded transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// Verifies 4-phase ordering for every transaction.
    ///
    /// # Errors
    ///
    /// Returns the index of the first malformed transaction.
    pub fn verify_protocol(&self) -> Result<(), ProtocolError> {
        for (index, t) in self.transactions.iter().enumerate() {
            if !t.is_well_formed() {
                return Err(ProtocolError { index });
            }
        }
        Ok(())
    }

    /// Verifies the CAVIAR 700 ns completion budget for every
    /// transaction.
    ///
    /// # Errors
    ///
    /// Returns the first violating transaction's index and duration.
    pub fn verify_caviar(&self) -> Result<(), CaviarViolation> {
        for (index, t) in self.transactions.iter().enumerate() {
            let duration = t.duration();
            if duration > CAVIAR_EVENT_BUDGET {
                return Err(CaviarViolation { index, duration });
            }
        }
        Ok(())
    }

    /// Longest handshake observed.
    pub fn max_duration(&self) -> Option<SimDuration> {
        self.transactions.iter().map(Transaction::duration).max()
    }

    /// Longest sensor-side queuing delay observed (backpressure).
    pub fn max_queue_delay(&self) -> Option<SimDuration> {
        self.transactions.iter().map(Transaction::queue_delay).max()
    }
}

impl FromIterator<Transaction> for HandshakeLog {
    fn from_iter<I: IntoIterator<Item = Transaction>>(iter: I) -> Self {
        HandshakeLog { transactions: iter.into_iter().collect() }
    }
}

/// Phase of the sender FSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SenderPhase {
    /// No handshake in flight.
    Idle,
    /// `REQ` is high, waiting for `ACK` rise.
    ReqHigh,
    /// `REQ` lowered, waiting for `ACK` fall.
    AwaitingAckFall,
}

/// Sender-side 4-phase handshake state machine.
///
/// Drive it from a discrete-event loop:
///
/// 1. [`next_req_rise`] tells you when `REQ` next rises (if an event is
///    pending and the link has recovered);
/// 2. call [`begin`] at that instant — the returned spike's address is
///    now stable on the bus and `REQ` is high;
/// 3. when the receiver raises `ACK`, call [`ack_rise`] to get the
///    `REQ` fall time;
/// 4. when the receiver lowers `ACK`, call [`ack_fall`] to complete the
///    [`Transaction`].
///
/// Events whose spike time arrives while a handshake is still in flight
/// queue up inside the sender (sensor-side backpressure), exactly like
/// the arbiter of a real AER sensor.
///
/// The sender *borrows* its stimulus: it replays a time-sorted
/// `&[Spike]` through a cursor instead of owning a copy, so running the
/// same train through many interface configurations (benches, fault
/// campaigns, sweeps) never clones event storage.
///
/// [`next_req_rise`]: HandshakeSender::next_req_rise
/// [`begin`]: HandshakeSender::begin
/// [`ack_rise`]: HandshakeSender::ack_rise
/// [`ack_fall`]: HandshakeSender::ack_fall
#[derive(Debug, Clone)]
pub struct HandshakeSender<'a> {
    timing: HandshakeTiming,
    pending: &'a [Spike],
    next: usize,
    ready_at: SimTime,
    phase: SenderPhase,
    in_flight: Option<(Spike, SimTime)>,
}

impl<'a> HandshakeSender<'a> {
    /// Creates a sender that will transmit `train` with the given
    /// timing, borrowing the train's storage (zero-copy).
    pub fn new(train: &'a SpikeTrain, timing: HandshakeTiming) -> HandshakeSender<'a> {
        HandshakeSender::over(train.as_slice(), timing)
    }

    /// Creates a sender over a raw event slice, for callers that hold
    /// spikes outside a [`SpikeTrain`] (e.g. a memory-mapped capture).
    ///
    /// The slice must be sorted by spike time — the invariant
    /// [`SpikeTrain`] enforces structurally — or `REQ` rise times would
    /// go backwards; this is debug-asserted.
    pub fn over(spikes: &'a [Spike], timing: HandshakeTiming) -> HandshakeSender<'a> {
        debug_assert!(
            spikes.windows(2).all(|w| w[0].time <= w[1].time),
            "spike slice must be sorted by time"
        );
        HandshakeSender {
            timing,
            pending: spikes,
            next: 0,
            ready_at: SimTime::ZERO,
            phase: SenderPhase::Idle,
            in_flight: None,
        }
    }

    /// `true` when every queued spike has completed its handshake.
    pub fn is_done(&self) -> bool {
        self.next == self.pending.len() && self.phase == SenderPhase::Idle
    }

    /// Number of spikes not yet transmitted (excluding one in flight).
    pub fn pending_len(&self) -> usize {
        self.pending.len() - self.next
    }

    /// When `REQ` will next rise: the later of the next spike's time
    /// and the link recovery instant. `None` if the sender is busy or
    /// out of spikes.
    pub fn next_req_rise(&self) -> Option<SimTime> {
        if self.phase != SenderPhase::Idle {
            return None;
        }
        self.pending.get(self.next).map(|s| s.time.max(self.ready_at))
    }

    /// Commits to the `REQ` rising edge at `now`, returning the spike
    /// whose address is now stable on the bus.
    ///
    /// # Panics
    ///
    /// Panics if the sender is busy, has no pending spike, or `now`
    /// precedes [`next_req_rise`](Self::next_req_rise).
    pub fn begin(&mut self, now: SimTime) -> Spike {
        assert_eq!(self.phase, SenderPhase::Idle, "begin() while a handshake is in flight");
        let expected = self.next_req_rise().expect("begin() with no pending spike");
        assert!(now >= expected, "begin() at {now} before the scheduled REQ rise at {expected}");
        let spike = self.pending[self.next];
        self.next += 1;
        self.phase = SenderPhase::ReqHigh;
        self.in_flight = Some((spike, now));
        spike
    }

    /// Handles the receiver's `ACK` rising edge at `now`; returns the
    /// instant at which this sender lowers `REQ`.
    ///
    /// # Panics
    ///
    /// Panics if no handshake is in flight with `REQ` high.
    pub fn ack_rise(&mut self, now: SimTime) -> SimTime {
        assert_eq!(self.phase, SenderPhase::ReqHigh, "ACK rise without REQ high");
        self.phase = SenderPhase::AwaitingAckFall;
        now + self.timing.req_fall_delay
    }

    /// Handles the receiver's `ACK` falling edge, completing the
    /// handshake. `req_fall` must be the time previously returned by
    /// [`ack_rise`](Self::ack_rise), and `ack_rise_time` the time that
    /// call was made at.
    ///
    /// # Panics
    ///
    /// Panics if called out of protocol order.
    pub fn ack_fall(
        &mut self,
        ack_rise_time: SimTime,
        req_fall: SimTime,
        now: SimTime,
    ) -> Transaction {
        assert_eq!(self.phase, SenderPhase::AwaitingAckFall, "ACK fall out of order");
        let (spike, req_rise) = self.in_flight.take().expect("in-flight spike present");
        self.phase = SenderPhase::Idle;
        self.ready_at = now + self.timing.recovery;
        Transaction {
            addr: spike.addr,
            event_time: spike.time,
            req_rise,
            ack_rise: ack_rise_time,
            req_fall,
            ack_fall: now,
        }
    }

    /// Abandons the in-flight handshake (watchdog recovery path): the
    /// receiver gave up waiting for the sensor's edges and resets the
    /// channel. The spike is dropped, `REQ` is considered released,
    /// and the link recovers normally before the next `REQ` rise.
    /// Returns the abandoned spike, or `None` if the sender was idle.
    pub fn abort(&mut self, now: SimTime) -> Option<Spike> {
        if self.phase == SenderPhase::Idle {
            return None;
        }
        let abandoned = self.in_flight.take().map(|(spike, _)| spike);
        self.phase = SenderPhase::Idle;
        self.ready_at = now + self.timing.recovery;
        abandoned
    }

    /// The sender's timing configuration.
    pub fn timing(&self) -> &HandshakeTiming {
        &self.timing
    }
}

/// Runs a complete spike train through a sender against an idealised
/// receiver that answers `REQ`/`REQ-fall` after fixed `ack_latency`.
///
/// This is the reference "fast receiver" used by tests and by the
/// behavioral pipeline; the full DES interface in the `aetr` core crate
/// plays the receiver role itself (with a synchroniser and possibly a
/// sleeping clock) instead.
pub fn run_with_fixed_latency(
    train: &SpikeTrain,
    timing: HandshakeTiming,
    ack_latency: SimDuration,
) -> HandshakeLog {
    let mut sender = HandshakeSender::new(train, timing);
    let mut log = HandshakeLog::new();
    while let Some(t_req) = sender.next_req_rise() {
        sender.begin(t_req);
        let t_ack_rise = t_req + ack_latency;
        let t_req_fall = sender.ack_rise(t_ack_rise);
        let t_ack_fall = t_req_fall + ack_latency;
        log.push(sender.ack_fall(t_ack_rise, t_req_fall, t_ack_fall));
    }
    log
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(times_ns: &[u64]) -> SpikeTrain {
        SpikeTrain::from_sorted(
            times_ns
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    Spike::new(SimTime::from_ns(t), Address::new(i as u16 % 1024).unwrap())
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn single_handshake_edge_ordering() {
        let log = run_with_fixed_latency(
            &train(&[100]),
            HandshakeTiming::default(),
            SimDuration::from_ns(20),
        );
        assert_eq!(log.len(), 1);
        let t = log.transactions()[0];
        assert!(t.is_well_formed());
        assert_eq!(t.req_rise, SimTime::from_ns(100));
        assert_eq!(t.ack_rise, SimTime::from_ns(120));
        assert_eq!(t.req_fall, SimTime::from_ns(130)); // +10ns req_fall_delay
        assert_eq!(t.ack_fall, SimTime::from_ns(150));
        assert_eq!(t.duration(), SimDuration::from_ns(50));
        assert_eq!(t.ack_latency(), SimDuration::from_ns(20));
        log.verify_protocol().unwrap();
        log.verify_caviar().unwrap();
    }

    #[test]
    fn backpressure_queues_fast_spikes() {
        // Two spikes 1 ns apart but the handshake takes 50 ns: the
        // second REQ rise must wait for recovery.
        let log = run_with_fixed_latency(
            &train(&[100, 101]),
            HandshakeTiming::default(),
            SimDuration::from_ns(20),
        );
        let t1 = log.transactions()[1];
        // ack_fall(0) = 150, recovery 10 -> req_rise >= 160.
        assert_eq!(t1.req_rise, SimTime::from_ns(160));
        assert_eq!(t1.queue_delay(), SimDuration::from_ns(59));
        assert_eq!(log.max_queue_delay(), Some(SimDuration::from_ns(59)));
    }

    #[test]
    fn idle_sender_reports_none_and_done() {
        let empty = SpikeTrain::new();
        let sender = HandshakeSender::new(&empty, HandshakeTiming::default());
        assert!(sender.is_done());
        assert_eq!(sender.next_req_rise(), None);
        let two = train(&[5]);
        let mut sender2 = HandshakeSender::new(&two, HandshakeTiming::default());
        assert!(!sender2.is_done());
        sender2.begin(SimTime::from_ns(5));
        assert_eq!(sender2.next_req_rise(), None, "busy sender advertises no REQ");
    }

    #[test]
    fn caviar_violation_detected() {
        let log = run_with_fixed_latency(
            &train(&[0]),
            HandshakeTiming::default(),
            SimDuration::from_ns(400), // 400 + 10 + 400 = 810 ns > 700 ns
        );
        let v = log.verify_caviar().unwrap_err();
        assert_eq!(v.index, 0);
        assert_eq!(v.duration, SimDuration::from_ns(810));
        assert!(v.to_string().contains("CAVIAR"));
    }

    #[test]
    fn protocol_violation_detected() {
        let mut log = HandshakeLog::new();
        log.push(Transaction {
            addr: Address::MIN,
            event_time: SimTime::ZERO,
            req_rise: SimTime::from_ns(10),
            ack_rise: SimTime::from_ns(5), // before req_rise!
            req_fall: SimTime::from_ns(20),
            ack_fall: SimTime::from_ns(30),
        });
        assert_eq!(log.verify_protocol().unwrap_err().index, 0);
    }

    #[test]
    fn all_spikes_complete_in_order() {
        let times: Vec<u64> = (0..100).map(|i| i * 1_000).collect();
        let log = run_with_fixed_latency(
            &train(&times),
            HandshakeTiming::default(),
            SimDuration::from_ns(15),
        );
        assert_eq!(log.len(), 100);
        for w in log.transactions().windows(2) {
            assert!(w[1].req_rise > w[0].ack_fall, "handshakes must not overlap");
        }
    }

    #[test]
    #[should_panic(expected = "in flight")]
    fn double_begin_panics() {
        let tr = train(&[1, 2]);
        let mut s = HandshakeSender::new(&tr, HandshakeTiming::default());
        s.begin(SimTime::from_ns(1));
        s.begin(SimTime::from_ns(2));
    }

    #[test]
    fn abort_resets_the_channel_and_drops_the_spike() {
        let tr = train(&[100, 200]);
        let mut s = HandshakeSender::new(&tr, HandshakeTiming::default());
        assert_eq!(s.abort(SimTime::from_ns(50)), None, "idle abort is a no-op");
        s.begin(SimTime::from_ns(100));
        let dropped = s.abort(SimTime::from_ns(500)).expect("in-flight spike returned");
        assert_eq!(dropped.time, SimTime::from_ns(100));
        assert!(!s.is_done(), "second spike still pending");
        // Recovery applies from the abort instant.
        assert_eq!(s.next_req_rise(), Some(SimTime::from_ns(510)));
        s.begin(SimTime::from_ns(510));
        let req_fall = s.ack_rise(SimTime::from_ns(530));
        s.ack_fall(SimTime::from_ns(530), req_fall, req_fall + SimDuration::from_ns(20));
        assert!(s.is_done());
    }

    #[test]
    fn abort_mid_ack_fall_wait_also_recovers() {
        let tr = train(&[100]);
        let mut s = HandshakeSender::new(&tr, HandshakeTiming::default());
        s.begin(SimTime::from_ns(100));
        s.ack_rise(SimTime::from_ns(120));
        assert!(s.abort(SimTime::from_ns(900)).is_some());
        assert!(s.is_done());
    }

    #[test]
    #[should_panic(expected = "without REQ high")]
    fn ack_rise_when_idle_panics() {
        let tr = train(&[1]);
        let mut s = HandshakeSender::new(&tr, HandshakeTiming::default());
        s.ack_rise(SimTime::from_ns(1));
    }
}
