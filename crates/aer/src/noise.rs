//! Channel impairments: what a real asynchronous link does to a
//! pristine spike train.
//!
//! Robustness experiments need controlled degradation — timing jitter
//! on the REQ wire, lost events (metastability, brown-outs), and
//! background noise events (dark counts in vision sensors, hum in
//! cochleas). All transformations are seeded and deterministic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::{Spike, SpikeTrain};

/// Adds zero-mean Gaussian timing jitter (std `sigma`) to every spike,
/// clamped so times stay non-negative; the result is re-sorted (jitter
/// can reorder close spikes, as on a real wire).
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{RegularGenerator, SpikeSource};
/// use aetr_aer::noise::add_jitter;
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let train = RegularGenerator::new(SimDuration::from_us(100), 4)
///     .generate(SimTime::from_ms(10));
/// let noisy = add_jitter(&train, SimDuration::from_us(1), 7);
/// assert_eq!(noisy.len(), train.len());
/// ```
pub fn add_jitter(train: &SpikeTrain, sigma: SimDuration, seed: u64) -> SpikeTrain {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma_ps = sigma.as_ps() as f64;
    let spikes = train
        .iter()
        .map(|s| {
            // Box–Muller.
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let dt = (z * sigma_ps).round() as i64;
            let t = (s.time.as_ps() as i64 + dt).max(0) as u64;
            Spike::new(SimTime::from_ps(t), s.addr)
        })
        .collect();
    SpikeTrain::from_unsorted(spikes)
}

/// Drops each spike independently with probability `p`.
///
/// # Panics
///
/// Panics unless `p` is in `[0, 1]`.
pub fn drop_random(train: &SpikeTrain, p: f64, seed: u64) -> SpikeTrain {
    assert!((0.0..=1.0).contains(&p), "drop probability must be in [0, 1], got {p}");
    let mut rng = StdRng::seed_from_u64(seed);
    train
        .iter()
        .filter(|_| rng.gen::<f64>() >= p)
        .copied()
        .collect::<Vec<Spike>>()
        .into_iter()
        .collect()
}

/// Injects background Poisson noise at `rate_hz` over the train's span
/// (uniform random addresses in `0..num_addresses`), merged in time
/// order — dark counts / hum.
///
/// # Panics
///
/// Panics on a non-positive or non-finite rate, or a zero address
/// range.
pub fn inject_background(
    train: &SpikeTrain,
    rate_hz: f64,
    num_addresses: u16,
    seed: u64,
) -> SpikeTrain {
    assert!(rate_hz.is_finite() && rate_hz > 0.0, "noise rate must be positive");
    assert!(num_addresses > 0, "need at least one noise address");
    let span = train.duration();
    if span.is_zero() {
        return train.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = SimTime::ZERO;
    let mut noise = Vec::new();
    loop {
        let u: f64 = 1.0 - rng.gen::<f64>();
        let dt = SimDuration::from_secs_f64((-u.ln() / rate_hz).max(1e-12));
        t = t.saturating_add(dt);
        if t.saturating_duration_since(SimTime::ZERO) > span {
            break;
        }
        let addr = Address::from_raw_masked(rng.gen_range(0..num_addresses));
        noise.push(Spike::new(t, addr));
    }
    train.merge(&SpikeTrain::from_unsorted(noise))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{PoissonGenerator, RegularGenerator, SpikeSource};

    fn base() -> SpikeTrain {
        RegularGenerator::new(SimDuration::from_us(50), 8).generate(SimTime::from_ms(20))
    }

    #[test]
    fn jitter_preserves_count_and_addresses() {
        let train = base();
        let noisy = add_jitter(&train, SimDuration::from_us(2), 3);
        assert_eq!(noisy.len(), train.len());
        let mut a: Vec<u16> = train.iter().map(|s| s.addr.value()).collect();
        let mut b: Vec<u16> = noisy.iter().map(|s| s.addr.value()).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn jitter_magnitude_matches_sigma() {
        let train = base();
        let noisy = add_jitter(&train, SimDuration::from_us(1), 5);
        // ISI std grows to ~sqrt(2)·sigma for independent jitter.
        let isis: Vec<f64> = noisy.inter_spike_intervals().map(|d| d.as_secs_f64()).collect();
        let mean = isis.iter().sum::<f64>() / isis.len() as f64;
        let std = (isis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / isis.len() as f64).sqrt();
        let expected = 2f64.sqrt() * 1e-6;
        assert!((std - expected).abs() / expected < 0.2, "ISI std {std}");
    }

    #[test]
    fn zero_jitter_is_identity() {
        let train = base();
        assert_eq!(add_jitter(&train, SimDuration::ZERO, 1), train);
    }

    #[test]
    fn drop_rate_is_respected() {
        let train = PoissonGenerator::new(100_000.0, 16, 9).generate(SimTime::from_ms(100));
        let kept = drop_random(&train, 0.3, 11);
        let ratio = kept.len() as f64 / train.len() as f64;
        assert!((ratio - 0.7).abs() < 0.03, "kept ratio {ratio}");
        assert_eq!(drop_random(&train, 0.0, 1), train);
        assert!(drop_random(&train, 1.0, 1).is_empty());
    }

    #[test]
    fn background_injection_raises_the_rate() {
        let train = base(); // 20 kevt/s
        let noisy = inject_background(&train, 20_000.0, 8, 13);
        assert!(noisy.len() > train.len());
        let added = noisy.len() - train.len();
        // ~20k over 20 ms ≈ 400 noise events.
        assert!((300..500).contains(&added), "added {added}");
        // Still sorted.
        assert!(SpikeTrain::from_sorted(noisy.into_inner()).is_ok());
    }

    #[test]
    fn empty_train_survives_injection() {
        let empty = SpikeTrain::new();
        assert_eq!(inject_background(&empty, 1_000.0, 4, 1), empty);
    }

    #[test]
    fn deterministic_per_seed() {
        let train = base();
        assert_eq!(
            add_jitter(&train, SimDuration::from_us(1), 42),
            add_jitter(&train, SimDuration::from_us(1), 42)
        );
        assert_ne!(
            add_jitter(&train, SimDuration::from_us(1), 42),
            add_jitter(&train, SimDuration::from_us(1), 43)
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_drop_probability_panics() {
        let _ = drop_random(&SpikeTrain::new(), 1.5, 0);
    }
}
