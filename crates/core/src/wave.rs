//! Waveform reconstruction from an [`InterfaceReport`]: turns a
//! completed run into a [`Tracer`] (and from there a VCD file) the way
//! a logic analyser on the FPGA pins would have seen it — `REQ`/`ACK`
//! handshake edges, event-capture strobes, FIFO occupancy and I2S bus
//! activity.
//!
//! Reconstructing post-hoc keeps the simulation hot path free of
//! tracing overhead while still giving full visibility for debugging
//! and documentation.
//!
//! [`InterfaceReport`]: crate::interface::InterfaceReport

use aetr_sim::time::SimTime;
use aetr_sim::trace::{SignalId, TraceValue, Tracer};

use crate::i2s::I2sConfig;
use crate::interface::InterfaceReport;

/// Signal handles of a reconstructed interface waveform.
#[derive(Debug, Clone)]
pub struct InterfaceWave {
    /// The reconstructed trace.
    pub tracer: Tracer,
    /// AER request line.
    pub req: SignalId,
    /// AER acknowledge line.
    pub ack: SignalId,
    /// One-cycle strobe at each event capture.
    pub capture: SignalId,
    /// FIFO occupancy (12-bit bus).
    pub fifo_occupancy: SignalId,
    /// I2S transmitter busy.
    pub i2s_busy: SignalId,
}

/// Reconstructs the interface waveform from a run report.
///
/// The I2S configuration supplies the frame duration (the report
/// stores only frame start times).
///
/// # Examples
///
/// ```
/// use aetr::interface::{AerToI2sInterface, InterfaceConfig};
/// use aetr::wave::trace_report;
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let config = InterfaceConfig::prototype();
/// let interface = AerToI2sInterface::new(config)?;
/// let train = PoissonGenerator::new(50_000.0, 64, 3).generate(SimTime::from_ms(2));
/// let report = interface.run(&train, SimTime::from_ms(2));
///
/// let wave = trace_report(&report, &config.i2s);
/// let mut vcd = Vec::new();
/// aetr_sim::vcd::write_vcd(&wave.tracer, &mut vcd)?;
/// assert!(!vcd.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn trace_report(report: &InterfaceReport, i2s: &I2sConfig) -> InterfaceWave {
    let mut tracer = Tracer::new();
    let req = tracer.declare_bit("req", "aer");
    let ack = tracer.declare_bit("ack", "aer");
    let capture = tracer.declare_bit("capture", "interface");
    let fifo_occupancy = tracer.declare_vector("fifo_occupancy", "interface", 12);
    let i2s_busy = tracer.declare_bit("busy", "i2s");

    // Collect (time, signal, value) changes, then sort per signal so
    // the Tracer's monotonicity holds regardless of source ordering.
    let mut changes: Vec<(SimTime, SignalId, TraceValue)> = vec![
        (SimTime::ZERO, req, TraceValue::Bit(false)),
        (SimTime::ZERO, ack, TraceValue::Bit(false)),
        (SimTime::ZERO, capture, TraceValue::Bit(false)),
        (SimTime::ZERO, i2s_busy, TraceValue::Bit(false)),
    ];

    for t in report.handshake.transactions() {
        changes.push((t.req_rise, req, TraceValue::Bit(true)));
        changes.push((t.req_fall, req, TraceValue::Bit(false)));
        changes.push((t.ack_rise, ack, TraceValue::Bit(true)));
        changes.push((t.ack_fall, ack, TraceValue::Bit(false)));
    }

    // Capture strobes: high at detection for 1 ns.
    for e in &report.events {
        changes.push((e.detection, capture, TraceValue::Bit(true)));
        changes.push((
            e.detection + aetr_sim::time::SimDuration::from_ns(1),
            capture,
            TraceValue::Bit(false),
        ));
    }

    // FIFO occupancy: +1 at each capture (push), −N at each frame
    // start (pop of its payload).
    let mut deltas: Vec<(SimTime, i64)> =
        report.events.iter().map(|e| (e.detection, 1i64)).collect();
    for f in report.i2s.frames() {
        deltas.push((f.start, -(f.events().count() as i64)));
    }
    deltas.sort_by_key(|&(t, delta)| (t, delta)); // pops before pushes on ties? pushes first: +1 sorts after -N
    let mut occ = 0i64;
    for (t, d) in deltas {
        occ = (occ + d).max(0);
        changes.push((t, fifo_occupancy, TraceValue::Vector(occ as u64)));
    }

    // I2S busy window per frame.
    let frame = i2s.frame_duration();
    for f in report.i2s.frames() {
        changes.push((f.start, i2s_busy, TraceValue::Bit(true)));
        changes.push((f.start + frame, i2s_busy, TraceValue::Bit(false)));
    }

    // Stable sort by time, then record: per-signal monotonicity follows.
    changes.sort_by_key(|&(t, _, _)| t);
    for (t, sig, val) in changes {
        tracer.record(t, sig, val);
    }

    InterfaceWave { tracer, req, ack, capture, fifo_occupancy, i2s_busy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::{AerToI2sInterface, InterfaceConfig};
    use aetr_aer::generator::{RegularGenerator, SpikeSource};
    use aetr_sim::time::SimTime;

    fn run() -> (InterfaceReport, I2sConfig) {
        let config = InterfaceConfig::prototype();
        let interface = AerToI2sInterface::new(config).unwrap();
        let train = RegularGenerator::from_rate(100_000.0, 8).generate(SimTime::from_ms(1));
        (interface.run(&train, SimTime::from_ms(1)), config.i2s)
    }

    #[test]
    fn req_edges_match_the_handshake_log() {
        let (report, i2s) = run();
        let wave = trace_report(&report, &i2s);
        let rises = wave.tracer.edges_to(wave.req, true);
        assert_eq!(rises.len(), report.handshake.len());
        for (edge, t) in rises.iter().zip(report.handshake.transactions()) {
            assert_eq!(*edge, t.req_rise);
        }
    }

    #[test]
    fn capture_strobes_match_events() {
        let (report, i2s) = run();
        let wave = trace_report(&report, &i2s);
        let strobes = wave.tracer.edges_to(wave.capture, true);
        assert_eq!(strobes.len(), report.events.len());
    }

    #[test]
    fn fifo_occupancy_returns_to_zero() {
        let (report, i2s) = run();
        let wave = trace_report(&report, &i2s);
        let last = wave.tracer.changes_of(wave.fifo_occupancy).last().expect("occupancy recorded");
        assert_eq!(last.value, TraceValue::Vector(0), "everything drains by the end");
    }

    #[test]
    fn i2s_busy_windows_do_not_overlap() {
        let (report, i2s) = run();
        let wave = trace_report(&report, &i2s);
        let rises = wave.tracer.edges_to(wave.i2s_busy, true);
        let falls = wave.tracer.edges_to(wave.i2s_busy, false);
        // First fall is the t=0 init; pair the rest.
        let falls = &falls[1..];
        assert_eq!(rises.len(), falls.len());
        for w in rises.windows(2).zip(falls.windows(2)) {
            let (r, f) = w;
            assert!(f[0] <= r[1], "frame {} .. {} overlaps next at {}", r[0], f[0], r[1]);
        }
    }

    #[test]
    fn vcd_export_works() {
        let (report, i2s) = run();
        let wave = trace_report(&report, &i2s);
        let mut buf = Vec::new();
        aetr_sim::vcd::write_vcd(&wave.tracer, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("fifo_occupancy"));
        assert!(text.contains("$scope module aer $end"));
    }
}
