//! Criterion benchmarks of the simulation kernel: event queue, signal
//! tracing, CDC FIFO, and online statistics.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use aetr::cdc_fifo::{CdcFifo, CdcFifoConfig};
use aetr_sim::queue::EventQueue;
use aetr_sim::stats::OnlineStats;
use aetr_sim::time::{SimDuration, SimTime};
use aetr_sim::trace::{TraceValue, Tracer};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0u64..10_000 {
                // Pseudo-random times to stress the heap.
                let t = (i * 2_654_435_761) % 1_000_000_000;
                q.schedule_at(SimTime::from_ps(t), i).expect("fresh queue");
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
    group.bench_function("delta_chain_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            q.schedule_at(SimTime::ZERO, 0u64).expect("fresh queue");
            let mut n = 0u64;
            while let Some((_, v)) = q.pop() {
                n += 1;
                if n < 10_000 {
                    q.schedule_after(SimDuration::from_ns(66), v + 1).expect("monotone");
                }
            }
            n
        });
    });
    group.finish();
}

fn bench_tracer(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracer");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("record_10k_toggles", |b| {
        b.iter(|| {
            let mut t = Tracer::new();
            let clk = t.declare_bit("clk", "top");
            for i in 0..10_000u64 {
                t.record(SimTime::from_ps(i * 100), clk, TraceValue::Bit(i % 2 == 0));
            }
            t.changes().len()
        });
    });
    group.bench_function("vcd_render_10k", |b| {
        let mut t = Tracer::new();
        let clk = t.declare_bit("clk", "top");
        for i in 0..10_000u64 {
            t.record(SimTime::from_ps(i * 100), clk, TraceValue::Bit(i % 2 == 0));
        }
        b.iter(|| {
            let mut buf = Vec::new();
            aetr_sim::vcd::write_vcd(&t, &mut buf).expect("in-memory write");
            buf.len()
        });
    });
    group.finish();
}

fn bench_cdc_fifo(c: &mut Criterion) {
    c.bench_function("cdc_fifo/push_pop_cycle", |b| {
        let mut fifo: CdcFifo<u64> = CdcFifo::new(CdcFifoConfig {
            depth: 64,
            write_period: SimDuration::from_ns(66),
            read_period: SimDuration::from_ns(33),
        })
        .expect("valid config");
        let mut t = SimTime::from_ns(100);
        b.iter(|| {
            let _ = fifo.push(t, 1);
            t += SimDuration::from_ns(66);
            let popped = fifo.pop(t);
            t += SimDuration::from_ns(66);
            popped
        });
    });
}

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_stats");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("welford_100k", |b| {
        b.iter(|| {
            let mut s = OnlineStats::new();
            for i in 0..100_000u64 {
                s.add(((i * 37) % 1_000) as f64);
            }
            s.population_variance()
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_event_queue, bench_tracer, bench_cdc_fifo, bench_stats
}
criterion_main!(benches);
