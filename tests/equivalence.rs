//! Model-equivalence integration tests: the fast behavioral engine and
//! the cycle-accurate discrete-event interface must tell the same
//! story — timestamps, saturation, wakes, and power.

use aetr::front_end::FrontEndConfig;
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::quantizer::quantize_train;
use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_power::model::PowerModel;
use aetr_sim::time::SimTime;

fn ideal_front_end(clock: ClockGenConfig) -> InterfaceConfig {
    InterfaceConfig { clock, front_end: FrontEndConfig::ideal(), ..InterfaceConfig::prototype() }
}

#[test]
fn timestamps_agree_across_policies() {
    for policy in [DivisionPolicy::Recursive, DivisionPolicy::DivideOnly] {
        let clock = ClockGenConfig::prototype().with_theta_div(16).with_policy(policy);
        let cfg = ideal_front_end(clock);
        let train = PoissonGenerator::new(60_000.0, 32, 31).generate(SimTime::from_ms(10));

        let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(10));
        let behav = quantize_train(&clock, &train, SimTime::from_ms(10));

        assert_eq!(des.events.len(), behav.records.len());
        // Handshake-timing skew moves detections by a tick or two of
        // the *current* (possibly divided) period, i.e. up to
        // 2·2^N_div base ticks.
        let tol = 2 * (1i64 << clock.n_div);
        let close = des
            .events
            .iter()
            .zip(&behav.records)
            .filter(|(d, b)| {
                let dt = d.event.timestamp.ticks() as i64 - b.event.timestamp.ticks() as i64;
                dt.abs() <= tol
            })
            .count();
        assert!(
            close as f64 / des.events.len() as f64 > 0.98,
            "policy {policy:?}: only {close}/{} timestamps agree within {tol} ticks",
            des.events.len()
        );
    }
}

#[test]
fn wake_counts_agree() {
    let clock = ClockGenConfig::prototype();
    let cfg = ideal_front_end(clock);
    // Sparse stream: every event beyond the ~64 us range.
    let train = PoissonGenerator::new(500.0, 8, 37).generate(SimTime::from_ms(200));
    let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(200));
    let behav = quantize_train(&clock, &train, SimTime::from_ms(200));
    let diff = (des.wake_count as i64 - behav.activity.wake_count as i64).abs();
    assert!(
        diff <= 2,
        "wake counts diverge: DES {} vs behavioral {}",
        des.wake_count,
        behav.activity.wake_count
    );
}

#[test]
fn power_agrees_within_ten_percent_across_rates() {
    let model = PowerModel::igloo_nano();
    for (rate, ms) in [(2_000.0, 100u64), (50_000.0, 50), (300_000.0, 20)] {
        let clock = ClockGenConfig::prototype();
        let cfg = ideal_front_end(clock);
        let horizon = SimTime::from_ms(ms);
        let train = LfsrGenerator::new(rate, 0xE0).generate(horizon);
        let des = AerToI2sInterface::new(cfg).unwrap().run(&train, horizon);
        let behav = quantize_train(&clock, &train, horizon);
        let p_des = des.power.total.as_microwatts();
        let p_behav = model.evaluate(&behav.activity).total.as_microwatts();
        let rel = (p_des - p_behav).abs() / p_behav;
        assert!(rel < 0.1, "rate {rate}: DES {p_des} uW vs behavioral {p_behav} uW");
    }
}

#[test]
fn saturation_flags_agree() {
    let clock = ClockGenConfig::prototype();
    let cfg = ideal_front_end(clock);
    let train = PoissonGenerator::new(8_000.0, 16, 41).generate(SimTime::from_ms(100));
    let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(100));
    let behav = quantize_train(&clock, &train, SimTime::from_ms(100));
    let max_ticks =
        aetr_clockgen::segments::SegmentTable::new(&clock).max_counter().expect("recursive policy");
    let des_sat =
        des.events.iter().filter(|e| e.event.timestamp.ticks() as u64 == max_ticks).count();
    let behav_sat = behav.records.iter().filter(|r| r.saturated).count();
    // Borderline intervals (just at the shutdown boundary) may tip
    // either way between the models: allow 1.5% of events to disagree.
    let diff = (des_sat as i64 - behav_sat as i64).abs();
    let budget = (des.events.len() as f64 * 0.015).ceil() as i64;
    assert!(
        diff <= budget.max(3),
        "saturation counts diverge: DES {des_sat} vs behavioral {behav_sat}"
    );
}

#[test]
fn prototype_front_end_only_degrades_accuracy_slightly() {
    // The 2-FF synchroniser delays each detection by up to two ticks
    // of the current (possibly divided) period. Individual timestamps
    // shift, but the *accuracy* of the measured inter-spike intervals
    // must stay within a couple of percent of the ideal front end's.
    let clock = ClockGenConfig::prototype();
    let train = PoissonGenerator::new(50_000.0, 32, 43).generate(SimTime::from_ms(10));
    let base = clock.base_sampling_period().as_secs_f64();

    let mean_err = |front_end| {
        let cfg = InterfaceConfig { clock, front_end, ..InterfaceConfig::prototype() };
        let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(10));
        let errs: Vec<f64> = des
            .events
            .windows(2)
            .map(|w| {
                let truth = (w[1].request - w[0].request).as_secs_f64();
                let measured = w[1].event.timestamp.ticks() as f64 * base;
                (measured - truth).abs() / truth.max(measured)
            })
            .collect();
        errs.iter().sum::<f64>() / errs.len() as f64
    };
    let ideal = mean_err(FrontEndConfig::ideal());
    let proto = mean_err(FrontEndConfig::prototype());
    // At 50 kevt/s the local period is 2–4× T_min, so a ±2-tick
    // synchroniser skew costs up to ~2 divided periods per interval —
    // a few percent of the 20 µs mean ISI.
    assert!(
        proto - ideal < 0.05,
        "2-FF sync cost {:.4} on top of ideal {:.4}",
        proto - ideal,
        ideal
    );
}
