//! Criterion benchmarks of the full discrete-event interface: how many
//! simulated events per second the DES sustains, and the cost of its
//! building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aetr::aetr_format::{AetrEvent, Timestamp};
use aetr::config_bus::{Register, RegisterFile};
use aetr::fifo::{AetrFifo, FifoConfig};
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::spi::{run_frame, write_frame, SpiSlave};
use aetr_aer::address::Address;
use aetr_aer::generator::{LfsrGenerator, SpikeSource};
use aetr_sim::time::SimTime;

fn bench_des_interface(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_interface");
    for &rate in &[10_000.0f64, 100_000.0, 400_000.0] {
        let horizon = SimTime::from_ms(10);
        let train = LfsrGenerator::new(rate, 0xB).generate(horizon);
        group.throughput(Throughput::Elements(train.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}kevts", rate / 1_000.0)),
            &train,
            |b, train| {
                let interface =
                    AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid");
                b.iter(|| interface.run(train, horizon));
            },
        );
    }
    group.finish();
}

fn bench_fifo(c: &mut Criterion) {
    let ev = AetrEvent::new(Address::MIN, Timestamp::from_ticks(1));
    c.bench_function("fifo/push_pop", |b| {
        let mut fifo = AetrFifo::new(FifoConfig::prototype());
        b.iter(|| {
            fifo.push(ev);
            std::hint::black_box(fifo.pop())
        });
    });
}

fn bench_spi(c: &mut Criterion) {
    c.bench_function("spi/write_frame_40bit", |b| {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        let frame = write_frame(Register::ThetaDiv as u8, 32);
        b.iter(|| std::hint::black_box(run_frame(&mut spi, &mut regs, &frame)));
    });
}

fn bench_codec(c: &mut Criterion) {
    let events: Vec<AetrEvent> = (0..1024)
        .map(|i| AetrEvent::new(Address::from_raw_masked(i), Timestamp::from_ticks(i as u64)))
        .collect();
    let mut group = c.benchmark_group("aetr_codec");
    group.throughput(Throughput::Elements(events.len() as u64));
    group.bench_function("encode_decode_1k", |b| {
        b.iter(|| {
            let bytes = aetr::aetr_format::encode_stream(&events);
            std::hint::black_box(aetr::aetr_format::decode_stream(&bytes).expect("aligned"))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_des_interface, bench_fifo, bench_spi, bench_codec
}
criterion_main!(benches);
