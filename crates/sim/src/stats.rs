//! Online (single-pass) statistics.
//!
//! Long simulations produce streams too large to buffer just to
//! compute a mean; [`OnlineStats`] accumulates count/mean/variance/
//! extrema in O(1) memory using Welford's algorithm, numerically
//! stable over billions of samples.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Welford-style running statistics.
///
/// # Examples
///
/// ```
/// use aetr_sim::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.add(x);
/// }
/// assert_eq!(s.count(), 8);
/// assert!((s.mean() - 5.0).abs() < 1e-12);
/// assert!((s.population_std_dev() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> OnlineStats {
        OnlineStats { count: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    ///
    /// # Panics
    ///
    /// Panics on NaN (statistics over NaN are meaningless and would
    /// silently poison every later query).
    pub fn add(&mut self, x: f64) {
        assert!(!x.is_nan(), "cannot accumulate NaN");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds many samples.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    /// Samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when empty).
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance with Bessel's correction (0 for < 2 samples).
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another accumulator (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> OnlineStats {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl fmt::Display for OnlineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={}, mean {:.6}, std {:.6}, min {:.6}, max {:.6}",
            self.count,
            self.mean,
            self.population_std_dev(),
            self.min,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_well_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.population_variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn matches_two_pass_computation() {
        let data: Vec<f64> = (0..1_000).map(|i| ((i * 37) % 101) as f64 / 7.0).collect();
        let s: OnlineStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / data.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-9);
        assert!((s.population_variance() - var).abs() < 1e-9);
        assert_eq!(s.min(), data.iter().cloned().reduce(f64::min));
        assert_eq!(s.max(), data.iter().cloned().reduce(f64::max));
    }

    #[test]
    fn merge_equals_concatenation() {
        let a_data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b_data: Vec<f64> = (0..50).map(|i| (i * 3) as f64 - 20.0).collect();
        let mut a: OnlineStats = a_data.iter().copied().collect();
        let b: OnlineStats = b_data.iter().copied().collect();
        a.merge(&b);
        let all: OnlineStats = a_data.iter().chain(&b_data).copied().collect();
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.population_variance() - all.population_variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn sample_variance_uses_bessel() {
        let s: OnlineStats = [1.0, 3.0].into_iter().collect();
        assert!((s.population_variance() - 1.0).abs() < 1e-12);
        assert!((s.sample_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        OnlineStats::new().add(f64::NAN);
    }
}

#[cfg(test)]
mod merge_properties {
    use proptest::prelude::*;

    use super::*;

    /// Tolerant equality for accumulator states: counts and extrema
    /// exact, mean/variance within floating-point reassociation noise.
    fn assert_close(a: &OnlineStats, b: &OnlineStats) {
        assert_eq!(a.count(), b.count());
        assert_eq!(a.min(), b.min());
        assert_eq!(a.max(), b.max());
        let scale = 1.0 + a.mean().abs().max(b.mean().abs());
        assert!((a.mean() - b.mean()).abs() <= 1e-9 * scale, "mean {} vs {}", a.mean(), b.mean());
        let vscale = 1.0 + a.population_variance().abs().max(b.population_variance().abs());
        assert!(
            (a.population_variance() - b.population_variance()).abs() <= 1e-6 * vscale,
            "variance {} vs {}",
            a.population_variance(),
            b.population_variance()
        );
    }

    fn samples() -> impl Strategy<Value = Vec<f64>> {
        proptest::collection::vec(-1e6..1e6f64, 0..40)
    }

    proptest! {
        #[test]
        fn merge_is_commutative(xs in samples(), ys in samples()) {
            let a: OnlineStats = xs.iter().copied().collect();
            let b: OnlineStats = ys.iter().copied().collect();
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            assert_close(&ab, &ba);
        }

        #[test]
        fn merge_is_associative(xs in samples(), ys in samples(), zs in samples()) {
            let a: OnlineStats = xs.iter().copied().collect();
            let b: OnlineStats = ys.iter().copied().collect();
            let c: OnlineStats = zs.iter().copied().collect();
            // (a ∪ b) ∪ c
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            // a ∪ (b ∪ c)
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            assert_close(&left, &right);
        }

        #[test]
        fn merge_equals_sequential_accumulation(xs in samples(), ys in samples()) {
            let mut merged: OnlineStats = xs.iter().copied().collect();
            merged.merge(&ys.iter().copied().collect());
            let sequential: OnlineStats = xs.iter().chain(&ys).copied().collect();
            assert_close(&merged, &sequential);
        }
    }
}
