//! AEDAT 2.0 interchange format.
//!
//! The iniLabs/jAER ecosystem (DVS128, DAS1, ...) stores address-event
//! recordings as `.aedat` files: an ASCII header of `#`-prefixed lines
//! followed by big-endian records of `(address: u32, timestamp_us:
//! u32)`. Supporting it means recordings captured from real sensors
//! can be replayed through this simulator, and simulated streams can
//! be inspected with jAER.
//!
//! Timestamps are microseconds (the jAER convention); sub-microsecond
//! structure is rounded. Addresses on the wire are 32-bit; this
//! implementation uses the low 10 bits (the interface's bus) and
//! rejects events whose address exceeds it.

use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, Read, Write};

use aetr_sim::time::SimTime;

use crate::address::{Address, MAX_ADDRESS};
use crate::spike::{Spike, SpikeTrain};

/// The header magic line for AEDAT 2.0.
pub const AEDAT_MAGIC: &str = "#!AER-DAT2.0";

/// Errors decoding an AEDAT stream.
#[derive(Debug)]
pub enum AedatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Missing or wrong magic line.
    BadMagic {
        /// The line actually found.
        found: String,
    },
    /// Payload length not a multiple of the 8-byte record size.
    TruncatedRecord {
        /// Bytes left over.
        trailing: usize,
    },
    /// An event address above the 10-bit bus.
    AddressOverflow {
        /// Record index.
        index: usize,
        /// The raw address value.
        address: u32,
    },
    /// Timestamps must be non-decreasing.
    NonMonotonicTimestamp {
        /// Record index.
        index: usize,
    },
}

impl fmt::Display for AedatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AedatError::Io(e) => write!(f, "i/o error: {e}"),
            AedatError::BadMagic { found } => {
                write!(f, "expected {AEDAT_MAGIC} header, found {found:?}")
            }
            AedatError::TruncatedRecord { trailing } => {
                write!(f, "payload ends with {trailing} trailing bytes (records are 8 bytes)")
            }
            AedatError::AddressOverflow { index, address } => {
                write!(f, "record {index}: address {address} exceeds the 10-bit bus")
            }
            AedatError::NonMonotonicTimestamp { index } => {
                write!(f, "record {index}: timestamp went backwards")
            }
        }
    }
}

impl Error for AedatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AedatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for AedatError {
    fn from(e: io::Error) -> Self {
        AedatError::Io(e)
    }
}

/// Writes a spike train as an AEDAT 2.0 document.
///
/// Timestamps are rounded to whole microseconds. `comment` lines are
/// embedded in the header (a `#` and newline are added per line).
///
/// # Errors
///
/// Propagates I/O errors from `out`. Note a `&mut Vec<u8>` can be
/// passed wherever a `W: Write` is expected.
///
/// # Examples
///
/// ```
/// use aetr_aer::aedat::{read_aedat, write_aedat};
/// use aetr_aer::address::Address;
/// use aetr_aer::spike::{Spike, SpikeTrain};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let train = SpikeTrain::from_sorted(vec![
///     Spike::new(SimTime::from_us(10), Address::new(3)?),
/// ])?;
/// let mut buf = Vec::new();
/// write_aedat(&train, &["simulated"], &mut buf)?;
/// let back = read_aedat(&buf[..])?;
/// assert_eq!(back, train);
/// # Ok(())
/// # }
/// ```
pub fn write_aedat<W: Write>(train: &SpikeTrain, comments: &[&str], mut out: W) -> io::Result<()> {
    writeln!(out, "{AEDAT_MAGIC}")?;
    writeln!(out, "# This is a raw AE data file - do not edit")?;
    writeln!(out, "# Data format is int32 address, int32 timestamp (1us), big endian")?;
    for c in comments {
        writeln!(out, "# {c}")?;
    }
    for spike in train {
        let ts_us = (spike.time.as_ps() / 1_000_000) as u32;
        out.write_all(&u32::from(spike.addr.value()).to_be_bytes())?;
        out.write_all(&ts_us.to_be_bytes())?;
    }
    Ok(())
}

/// Reads an AEDAT 2.0 document into a spike train.
///
/// # Errors
///
/// Returns [`AedatError`] on I/O failure, a missing magic line,
/// truncated records, out-of-bus addresses, or non-monotonic
/// timestamps.
pub fn read_aedat<R: Read>(reader: R) -> Result<SpikeTrain, AedatError> {
    let mut reader = io::BufReader::new(reader);

    // Header: '#'-prefixed ASCII lines; the first must be the magic.
    let mut first = Vec::new();
    reader.read_until(b'\n', &mut first)?;
    let first_line = String::from_utf8_lossy(&first).trim_end().to_string();
    if first_line != AEDAT_MAGIC {
        return Err(AedatError::BadMagic { found: first_line });
    }
    loop {
        let peek = reader.fill_buf()?;
        if peek.first() != Some(&b'#') {
            break;
        }
        let mut line = Vec::new();
        reader.read_until(b'\n', &mut line)?;
    }

    let mut payload = Vec::new();
    reader.read_to_end(&mut payload)?;
    if payload.len() % 8 != 0 {
        return Err(AedatError::TruncatedRecord { trailing: payload.len() % 8 });
    }

    let mut spikes = Vec::with_capacity(payload.len() / 8);
    let mut last_us = 0u32;
    for (index, rec) in payload.chunks_exact(8).enumerate() {
        let address = u32::from_be_bytes([rec[0], rec[1], rec[2], rec[3]]);
        let ts_us = u32::from_be_bytes([rec[4], rec[5], rec[6], rec[7]]);
        if address > MAX_ADDRESS as u32 {
            return Err(AedatError::AddressOverflow { index, address });
        }
        if ts_us < last_us {
            return Err(AedatError::NonMonotonicTimestamp { index });
        }
        last_us = ts_us;
        let addr = Address::new(address as u16).expect("range checked above");
        spikes.push(Spike::new(SimTime::from_us(ts_us as u64), addr));
    }
    Ok(SpikeTrain::from_sorted(spikes).expect("monotonicity checked above"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{PoissonGenerator, SpikeSource};

    fn roundtrip(train: &SpikeTrain) -> SpikeTrain {
        let mut buf = Vec::new();
        write_aedat(train, &["test"], &mut buf).unwrap();
        read_aedat(&buf[..]).unwrap()
    }

    #[test]
    fn roundtrip_preserves_addresses_and_us_timestamps() {
        let train = PoissonGenerator::new(10_000.0, 512, 5).generate(SimTime::from_ms(50));
        let back = roundtrip(&train);
        assert_eq!(back.len(), train.len());
        for (a, b) in back.iter().zip(train.iter()) {
            assert_eq!(a.addr, b.addr);
            // Microsecond rounding only.
            assert_eq!(a.time.as_ps() / 1_000_000, b.time.as_ps() / 1_000_000);
        }
    }

    #[test]
    fn empty_train_roundtrips() {
        assert_eq!(roundtrip(&SpikeTrain::new()), SpikeTrain::new());
    }

    #[test]
    fn header_is_jaer_compatible() {
        let mut buf = Vec::new();
        write_aedat(&SpikeTrain::new(), &["src: aetr simulator"], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("#!AER-DAT2.0\n"));
        assert!(text.contains("# src: aetr simulator"));
        assert!(text.contains("big endian"));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = read_aedat(&b"#!AER-DAT1.0\n"[..]).unwrap_err();
        assert!(matches!(err, AedatError::BadMagic { .. }));
        assert!(err.to_string().contains("AER-DAT2.0"));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        write_aedat(&SpikeTrain::new(), &[], &mut buf).unwrap();
        buf.extend_from_slice(&[1, 2, 3]); // not a full record
        let err = read_aedat(&buf[..]).unwrap_err();
        assert!(matches!(err, AedatError::TruncatedRecord { trailing: 3 }));
    }

    #[test]
    fn oversized_address_rejected() {
        let mut buf = Vec::new();
        write_aedat(&SpikeTrain::new(), &[], &mut buf).unwrap();
        buf.extend_from_slice(&5000u32.to_be_bytes());
        buf.extend_from_slice(&1u32.to_be_bytes());
        let err = read_aedat(&buf[..]).unwrap_err();
        assert!(matches!(err, AedatError::AddressOverflow { index: 0, address: 5000 }));
    }

    #[test]
    fn backwards_time_rejected() {
        let mut buf = Vec::new();
        write_aedat(&SpikeTrain::new(), &[], &mut buf).unwrap();
        for ts in [10u32, 5] {
            buf.extend_from_slice(&1u32.to_be_bytes());
            buf.extend_from_slice(&ts.to_be_bytes());
        }
        let err = read_aedat(&buf[..]).unwrap_err();
        assert!(matches!(err, AedatError::NonMonotonicTimestamp { index: 1 }));
    }

    #[test]
    fn comment_only_header_then_empty_payload() {
        let text = format!("{AEDAT_MAGIC}\n# a\n# b\n");
        let train = read_aedat(text.as_bytes()).unwrap();
        assert!(train.is_empty());
    }
}
