//! Audio synthesis and buffers.
//!
//! The DAS1 cochlea in the paper listens to real speech; our
//! substitution synthesises audio with controlled spectral content —
//! pure tones, white noise, and formant-based "words" — so the Fig. 7
//! experiment can run on a reproducible stimulus.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

/// A mono audio buffer with samples in `[-1, 1]`.
///
/// # Examples
///
/// ```
/// use aetr_cochlea::audio::AudioBuffer;
///
/// let tone = AudioBuffer::tone(16_000, 440.0, 0.5, 0.1);
/// assert_eq!(tone.len(), 1_600);
/// assert!(tone.peak() <= 0.5 + 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioBuffer {
    sample_rate: u32,
    samples: Vec<f64>,
}

impl AudioBuffer {
    /// Creates a buffer from raw samples.
    ///
    /// # Panics
    ///
    /// Panics if `sample_rate` is zero.
    pub fn new(sample_rate: u32, samples: Vec<f64>) -> AudioBuffer {
        assert!(sample_rate > 0, "sample rate must be non-zero");
        AudioBuffer { sample_rate, samples }
    }

    /// A buffer of silence lasting `secs` seconds.
    pub fn silence(sample_rate: u32, secs: f64) -> AudioBuffer {
        let n = (secs * sample_rate as f64).round() as usize;
        AudioBuffer::new(sample_rate, vec![0.0; n])
    }

    /// A pure sine tone of `freq_hz` at `amplitude` lasting `secs`.
    pub fn tone(sample_rate: u32, freq_hz: f64, amplitude: f64, secs: f64) -> AudioBuffer {
        let n = (secs * sample_rate as f64).round() as usize;
        let samples = (0..n)
            .map(|i| amplitude * (2.0 * PI * freq_hz * i as f64 / sample_rate as f64).sin())
            .collect();
        AudioBuffer::new(sample_rate, samples)
    }

    /// Seeded white noise at `amplitude` lasting `secs`.
    pub fn white_noise(sample_rate: u32, amplitude: f64, secs: f64, seed: u64) -> AudioBuffer {
        let n = (secs * sample_rate as f64).round() as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..n).map(|_| amplitude * (2.0 * rng.gen::<f64>() - 1.0)).collect();
        AudioBuffer::new(sample_rate, samples)
    }

    /// Samples per second.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the buffer holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Buffer duration.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.samples.len() as f64 / self.sample_rate as f64)
    }

    /// Largest absolute sample value.
    pub fn peak(&self) -> f64 {
        self.samples.iter().fold(0.0f64, |m, &s| m.max(s.abs()))
    }

    /// Root-mean-square level.
    pub fn rms(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        (self.samples.iter().map(|s| s * s).sum::<f64>() / self.samples.len() as f64).sqrt()
    }

    /// Mixes another buffer into this one, sample by sample, extending
    /// if the other is longer.
    ///
    /// # Panics
    ///
    /// Panics on mismatched sample rates.
    pub fn mix(&mut self, other: &AudioBuffer) {
        assert_eq!(self.sample_rate, other.sample_rate, "sample-rate mismatch in mix");
        if other.samples.len() > self.samples.len() {
            self.samples.resize(other.samples.len(), 0.0);
        }
        for (dst, &src) in self.samples.iter_mut().zip(&other.samples) {
            *dst += src;
        }
    }

    /// Appends another buffer after this one.
    ///
    /// # Panics
    ///
    /// Panics on mismatched sample rates.
    pub fn append(&mut self, other: &AudioBuffer) {
        assert_eq!(self.sample_rate, other.sample_rate, "sample-rate mismatch in append");
        self.samples.extend_from_slice(&other.samples);
    }

    /// Applies a linear fade-in/fade-out envelope of `fade_secs` at both
    /// ends (clamped to half the buffer).
    pub fn faded(mut self, fade_secs: f64) -> AudioBuffer {
        let n = self.samples.len();
        let fade = ((fade_secs * self.sample_rate as f64) as usize).min(n / 2);
        for i in 0..fade {
            let g = i as f64 / fade as f64;
            self.samples[i] *= g;
            self.samples[n - 1 - i] *= g;
        }
        self
    }

    /// Rescales so the peak hits `target` (no-op on silence).
    pub fn normalized(mut self, target: f64) -> AudioBuffer {
        let peak = self.peak();
        if peak > 0.0 {
            let g = target / peak;
            for s in &mut self.samples {
                *s *= g;
            }
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tone_has_expected_frequency_content() {
        let sr = 16_000;
        let tone = AudioBuffer::tone(sr, 1_000.0, 1.0, 0.1);
        // Count zero crossings: ~2 per cycle -> 2 * 1000 * 0.1 = 200.
        let crossings =
            tone.samples().windows(2).filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0)).count();
        assert!((195..=205).contains(&crossings), "crossings {crossings}");
    }

    #[test]
    fn rms_of_sine_is_amplitude_over_sqrt2() {
        let tone = AudioBuffer::tone(16_000, 500.0, 0.8, 1.0);
        assert!((tone.rms() - 0.8 / 2f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn noise_is_reproducible_and_bounded() {
        let a = AudioBuffer::white_noise(16_000, 0.5, 0.05, 7);
        let b = AudioBuffer::white_noise(16_000, 0.5, 0.05, 7);
        assert_eq!(a, b);
        assert!(a.peak() <= 0.5);
        assert!(a.rms() > 0.1, "white noise rms {}", a.rms());
    }

    #[test]
    fn mix_extends_and_adds() {
        let mut a = AudioBuffer::tone(8_000, 100.0, 0.3, 0.01);
        let b = AudioBuffer::tone(8_000, 100.0, 0.3, 0.02);
        a.mix(&b);
        assert_eq!(a.len(), 160);
        // Where both overlap the amplitude doubles.
        assert!(a.peak() > 0.55);
    }

    #[test]
    fn append_concatenates() {
        let mut a = AudioBuffer::silence(8_000, 0.01);
        a.append(&AudioBuffer::tone(8_000, 100.0, 1.0, 0.01));
        assert_eq!(a.len(), 160);
        assert_eq!(a.samples()[0], 0.0);
    }

    #[test]
    fn fade_zeroes_the_ends() {
        let tone = AudioBuffer::tone(16_000, 50.0, 1.0, 0.1).faded(0.01);
        assert_eq!(tone.samples()[0], 0.0);
        assert_eq!(*tone.samples().last().unwrap(), 0.0);
    }

    #[test]
    fn normalize_hits_target_peak() {
        let tone = AudioBuffer::tone(16_000, 100.0, 0.1, 0.05).normalized(0.9);
        assert!((tone.peak() - 0.9).abs() < 1e-6);
        // Silence stays silent.
        let s = AudioBuffer::silence(16_000, 0.01).normalized(0.9);
        assert_eq!(s.peak(), 0.0);
    }

    #[test]
    fn duration_matches_length() {
        let b = AudioBuffer::silence(16_000, 0.25);
        assert_eq!(b.duration(), SimDuration::from_ms(250));
    }

    #[test]
    #[should_panic(expected = "sample-rate mismatch")]
    fn mix_rejects_rate_mismatch() {
        let mut a = AudioBuffer::silence(8_000, 0.01);
        a.mix(&AudioBuffer::silence(16_000, 0.01));
    }
}
