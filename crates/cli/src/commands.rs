//! CLI subcommand implementations.
//!
//! Each command is a pure function from parsed arguments to a report
//! string, so the whole surface is unit-testable without spawning
//! processes.

use std::error::Error;
use std::fmt::Write as _;
use std::fs;

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr::resources::UtilizationReport;
use aetr_aer::aedat;
use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_clockgen::schedule::record_waveform;
use aetr_power::model::PowerModel;
use aetr_sim::time::{SimDuration, SimTime};

use crate::args::{ArgsError, ParsedArgs};

/// Top-level usage text.
pub const USAGE: &str = "\
aetr-cli — simulator for the DAC'17 energy-proportional AER interface

USAGE:
  aetr-cli quantize --rate <evt/s> [--theta N] [--ndiv N] [--policy P]
                    [--duration-ms N] [--seed N] [--generator poisson|lfsr]
  aetr-cli run      --rate <evt/s> [--theta N] [--ndiv N] [--policy P]
                    [--duration-ms N] [--seed N]
                    [--engine fast-forward|per-tick]  (full DES interface)
  aetr-cli replay   <file.aedat> [--theta N] [--ndiv N] [--policy P]
  aetr-cli record   <file.aedat> --rate <evt/s> [--duration-ms N] [--seed N]
                    [--generator poisson|lfsr|word]
  aetr-cli sweep    [--points N] [--theta N] [--jobs N]
  aetr-cli faults   [--points N] [--rate <evt/s>] [--duration-ms N]
                    [--surface protocol|datapath|all] [--seed N]
                    [--min-fault-rate P] [--max-fault-rate P] [--jobs N]
                    (fault-rate sweep: accuracy/power degradation curves)
  aetr-cli telemetry [--rate <evt/s>] [--duration-ms N] [--seed N]
                    [--generator poisson|burst] [--cadence-us N]
                    [--format json|prometheus|chrome-trace] [--out file]
                    (instrumented DES run: metrics, spans, time series)
  aetr-cli lineage  [--rate <evt/s>] [--duration-ms N] [--seed N]
                    [--generator poisson|burst] [--cadence-us N]
                    [--engine fast-forward|per-tick]
                    [--format jsonl|chrome-trace] [--out file]
                    (per-event causal records; with --out, prints the
                    error-budget attribution footer)
  aetr-cli explain  <event-index> [--rate <evt/s>] [--duration-ms N]
                    [--seed N] [--generator poisson|burst]
                    [--cadence-us N] [--engine fast-forward|per-tick]
                    (re-runs deterministically and narrates one event's
                    journey: arrival, grid wait, wake, FIFO, I2S, and
                    its exact timestamp-error decomposition)
  aetr-cli validate <file.json> --schema <schema.json> [--jsonl true]
                    (offline JSON-schema check, e.g. telemetry output;
                    --jsonl true checks every line, e.g. lineage output)
  aetr-cli waveform [--theta N] [--ndiv N] [--out file.vcd]
  aetr-cli resources

POLICIES: recursive (default) | divide-only | never | linear
ENGINES:  fast-forward (default) skips idle tick chains analytically;
          per-tick is the reference model (one DES event per clock
          edge). Reports are bit-identical either way.
JOBS:     --jobs N shards sweep points over N worker threads (0 = all
          cores); output is bit-identical to --jobs 1 for any N.
";

/// Runs a command line, returning the report text.
///
/// # Errors
///
/// Returns argument or I/O errors; unknown commands yield the usage
/// text as an error message.
pub fn run(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    match args.command.as_deref() {
        Some("quantize") => cmd_quantize(args),
        Some("run") => cmd_run(args),
        Some("replay") => cmd_replay(args),
        Some("record") => cmd_record(args),
        Some("sweep") => cmd_sweep(args),
        Some("faults") => cmd_faults(args),
        Some("telemetry") => cmd_telemetry(args),
        Some("lineage") => cmd_lineage(args),
        Some("explain") => cmd_explain(args),
        Some("validate") => cmd_validate(args),
        Some("waveform") => cmd_waveform(args),
        Some("resources") => Ok(UtilizationReport::prototype().to_string()),
        _ => Err(USAGE.into()),
    }
}

fn clock_config(args: &ParsedArgs) -> Result<ClockGenConfig, Box<dyn Error>> {
    let theta: u32 = args.get_or("theta", 64, "integer")?;
    let ndiv: u32 = args.get_or("ndiv", 3, "integer")?;
    let policy = match args.get_str("policy").unwrap_or("recursive") {
        "recursive" => DivisionPolicy::Recursive,
        "divide-only" => DivisionPolicy::DivideOnly,
        "never" => DivisionPolicy::Never,
        "linear" => DivisionPolicy::Linear,
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "policy".into(),
                value: other.into(),
                expected: "policy (recursive|divide-only|never|linear)",
            }))
        }
    };
    let config =
        ClockGenConfig::prototype().with_theta_div(theta).with_n_div(ndiv).with_policy(policy);
    config.validate()?;
    Ok(config)
}

/// Simulation-engine selection: `--engine fast-forward|per-tick`. Both
/// engines produce bit-identical reports (pinned by the
/// `event_proportional` differential proptest); `per-tick` exists as a
/// reference model and for measuring the fast-forward speedup.
fn engine_arg(args: &ParsedArgs) -> Result<aetr::interface::SimEngine, Box<dyn Error>> {
    use aetr::interface::SimEngine;
    match args.get_str("engine").unwrap_or("fast-forward") {
        "fast-forward" => Ok(SimEngine::EventProportional),
        "per-tick" => Ok(SimEngine::PerTickReference),
        other => Err(Box::new(ArgsError::InvalidValue {
            flag: "engine".into(),
            value: other.into(),
            expected: "engine (fast-forward|per-tick)",
        })),
    }
}

/// Worker-thread count for sweep commands: `--jobs N`, where `0` means
/// "all available cores". Defaults to 1 (sequential); any value yields
/// bit-identical output, so this is purely a wall-clock knob.
fn jobs_arg(args: &ParsedArgs) -> Result<usize, Box<dyn Error>> {
    let jobs: usize = args.get_or("jobs", 1, "integer")?;
    Ok(if jobs == 0 { aetr_sim::parallel::available_jobs() } else { jobs })
}

fn report_for(config: &ClockGenConfig, train: &SpikeTrain, horizon: SimTime) -> String {
    let out = quantize_train(config, train, horizon);
    let samples = isi_error_samples(&out);
    let mean_err = if samples.is_empty() {
        0.0
    } else {
        samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len() as f64
    };
    let saturated = out.records.iter().filter(|r| r.saturated).count();
    let power = PowerModel::igloo_nano().evaluate(&out.activity);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "config: theta_div={}, n_div={}, policy={}, T_min={}",
        config.theta_div,
        config.n_div,
        config.policy,
        config.base_sampling_period()
    );
    let _ = writeln!(
        text,
        "events: {} ({} saturated, {:.1}%)",
        out.records.len(),
        saturated,
        100.0 * saturated as f64 / out.records.len().max(1) as f64
    );
    let _ = writeln!(text, "mean relative timestamp error: {:.3}%", mean_err * 100.0);
    let _ = writeln!(text, "average power: {}", power.total);
    text
}

fn cmd_quantize(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let rate: f64 = args.require("rate", "number")?;
    let duration_ms: u64 = args.get_or("duration-ms", 100, "integer")?;
    let seed: u64 = args.get_or("seed", 1, "integer")?;
    let config = clock_config(args)?;
    let horizon = SimTime::from_ms(duration_ms);
    let generator = args.get_str("generator").unwrap_or("poisson");
    let train = match generator {
        "poisson" => PoissonGenerator::new(rate, 64, seed).generate(horizon),
        "lfsr" => LfsrGenerator::new(rate, seed as u32).generate(horizon),
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "generator".into(),
                value: other.into(),
                expected: "generator (poisson|lfsr)",
            }))
        }
    };
    Ok(format!(
        "workload: {} events at {} evt/s over {duration_ms} ms ({generator})\n{}",
        train.len(),
        fmt_sig(rate),
        report_for(&config, &train, horizon)
    ))
}

fn cmd_run(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr::interface::{AerToI2sInterface, InterfaceConfig};
    use aetr::latency::LatencyReport;

    let rate: f64 = args.require("rate", "number")?;
    let duration_ms: u64 = args.get_or("duration-ms", 20, "integer")?;
    let seed: u64 = args.get_or("seed", 1, "integer")?;
    let clock = clock_config(args)?;
    let config = InterfaceConfig { clock, ..InterfaceConfig::prototype() };
    let horizon = SimTime::from_ms(duration_ms);
    let train = PoissonGenerator::new(rate, 64, seed).generate(horizon);
    let n = train.len();
    let interface = AerToI2sInterface::new(config)?.with_engine(engine_arg(args)?);
    let report = interface.run(&train, horizon);
    report.handshake.verify_protocol()?;

    let mut text = String::new();
    use std::fmt::Write as _;
    let _ =
        writeln!(text, "full DES run: {n} events at {} evt/s over {duration_ms} ms", fmt_sig(rate));
    let _ = writeln!(text, "power:  {}", report.power.total);
    let _ = writeln!(text, "wakes:  {}", report.wake_count);
    let _ = writeln!(text, "fifo:   {}", report.fifo_stats);
    let _ = writeln!(
        text,
        "i2s:    {} frames carrying {} events",
        report.i2s.len(),
        report.i2s.event_count()
    );
    if let Some(lat) = LatencyReport::from_report(&report, &config.i2s) {
        let _ = write!(text, "latency: {lat}");
    }
    Ok(text)
}

fn cmd_record(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let path = args.positional.first().ok_or("record needs an output .aedat file argument")?;
    let duration_ms: u64 = args.get_or("duration-ms", 100, "integer")?;
    let seed: u64 = args.get_or("seed", 1, "integer")?;
    let horizon = SimTime::from_ms(duration_ms);
    let generator = args.get_str("generator").unwrap_or("poisson");
    let (train, label) = match generator {
        "poisson" => {
            let rate: f64 = args.require("rate", "number")?;
            (
                PoissonGenerator::new(rate, 64, seed).generate(horizon),
                format!("poisson {rate} evt/s"),
            )
        }
        "lfsr" => {
            let rate: f64 = args.require("rate", "number")?;
            (LfsrGenerator::new(rate, seed as u32).generate(horizon), format!("lfsr {rate} evt/s"))
        }
        "word" => {
            use aetr_cochlea::model::{Cochlea, CochleaConfig};
            let mut cochlea = Cochlea::new(CochleaConfig::das1())?;
            (
                cochlea.process(&aetr_cochlea::word::fig7_word(16_000, seed)),
                "cochlea word".to_owned(),
            )
        }
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "generator".into(),
                value: other.into(),
                expected: "generator (poisson|lfsr|word)",
            }))
        }
    };
    let mut bytes = Vec::new();
    aedat::write_aedat(&train, &[&format!("aetr-cli record: {label}, seed {seed}")], &mut bytes)?;
    fs::write(path, &bytes)?;
    Ok(format!("recorded {} events ({label}) -> {path}", train.len()))
}

fn cmd_replay(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let path = args.positional.first().ok_or("replay needs a .aedat file argument")?;
    let bytes = fs::read(path)?;
    let train = aedat::read_aedat(&bytes[..])?;
    let horizon =
        train.last_time().unwrap_or(SimTime::ZERO).saturating_add(SimDuration::from_ms(1));
    let config = clock_config(args)?;
    Ok(format!(
        "replaying {path}: {} events over {}\n{}",
        train.len(),
        train.duration(),
        report_for(&config, &train, horizon)
    ))
}

fn cmd_sweep(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let points: usize = args.get_or("points", 9, "integer")?;
    let jobs = jobs_arg(args)?;
    let config = clock_config(args)?;
    let model = PowerModel::igloo_nano();
    // Each point is an independent simulation seeded by its index, so
    // the shards can run on worker threads; par_map returns rows in
    // input order, keeping the table bit-identical for any job count.
    let rates = log_space(100.0, 1e6, points.max(2));
    let rows = aetr_sim::par_map(jobs, &rates, |i, &rate| {
        let secs = (1_000.0 / rate).max(0.1);
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(secs);
        let train = PoissonGenerator::new(rate, 64, 10 + i as u64).generate(horizon);
        let out = quantize_train(&config, &train, horizon);
        let samples = isi_error_samples(&out);
        let mean_err =
            samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len().max(1) as f64;
        let sat = out.records.iter().filter(|r| r.saturated).count() as f64
            / out.records.len().max(1) as f64;
        let power = model.evaluate(&out.activity).total;
        vec![
            fmt_sig(rate),
            format!("{:.3}", mean_err * 100.0),
            format!("{:.1}", sat * 100.0),
            format!("{:.1}", power.as_microwatts()),
        ]
    });
    let mut table = Table::new(vec!["rate (evt/s)", "mean err %", "sat %", "power (uW)"]);
    for row in rows {
        table.row(row);
    }
    Ok(table.to_ascii())
}

fn cmd_faults(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr::campaign::{CampaignConfig, FaultCampaign, FaultSurface};
    use aetr::interface::InterfaceConfig;

    let points: usize = args.get_or("points", 7, "integer")?;
    let rate: f64 = args.get_or("rate", 50_000.0, "number")?;
    let duration_ms: u64 = args.get_or("duration-ms", 10, "integer")?;
    let seed: u64 = args.get_or("seed", 1, "integer")?;
    let lo: f64 = args.get_or("min-fault-rate", 1e-4, "number")?;
    let hi: f64 = args.get_or("max-fault-rate", 0.3, "number")?;
    if !(lo > 0.0 && lo < hi) {
        return Err(format!("fault-rate range needs 0 < min < max, got [{lo}, {hi}]").into());
    }
    let surface: FaultSurface = args
        .get_str("surface")
        .unwrap_or("all")
        .parse()
        .map_err(|e: String| -> Box<dyn Error> { e.into() })?;

    let config = CampaignConfig {
        interface: InterfaceConfig { clock: clock_config(args)?, ..InterfaceConfig::prototype() },
        event_rate_hz: rate,
        duration: SimDuration::from_ms(duration_ms),
        fault_seed: seed,
        surface,
        ..CampaignConfig::default()
    };
    let campaign = FaultCampaign::new(config)?;
    let result = campaign.run_with_jobs(&log_space(lo, hi, points.max(2)), jobs_arg(args)?);

    let mut table = Table::new(vec![
        "fault rate",
        "accuracy %",
        "loss %",
        "power (uW)",
        "power ratio",
        "faults",
        "recovered",
        "degraded",
    ]);
    for p in &result.points {
        table.row(vec![
            fmt_sig(p.fault_rate),
            format!("{:.2}", p.accuracy * 100.0),
            format!("{:.2}", p.loss_ratio * 100.0),
            format!("{:.1}", p.power_uw),
            format!("{:.3}", p.power_ratio),
            p.health.faults_injected().to_string(),
            p.health.acks_recovered.to_string(),
            if p.health.degraded { "yes".into() } else { "no".into() },
        ]);
    }
    let mut text = String::new();
    let _ = writeln!(
        text,
        "baseline: accuracy {:.2}%, power {:.1} uW ({surface:?} faults, seed {seed})",
        result.baseline_accuracy * 100.0,
        result.baseline_power_uw,
    );
    text.push_str(&table.to_ascii());
    // Same metric names as an instrumented `aetr-cli telemetry` run
    // (`InterfaceHealthReport::metrics` is the single source of truth),
    // so dashboards built on either output work on both.
    if let Some(worst) = result.points.last() {
        let _ = writeln!(text, "health metrics at fault rate {}:", fmt_sig(worst.fault_rate));
        for (name, value) in worst.health.metrics() {
            let _ = writeln!(text, "  {name} {value}");
        }
    }
    Ok(text)
}

/// Shared workload for the instrumented commands (`telemetry`,
/// `lineage`, `explain`): one parameter surface, so an `explain`
/// re-run reproduces exactly the run a `lineage` export came from.
struct InstrumentedRun {
    config: aetr::interface::InterfaceConfig,
    train: SpikeTrain,
    horizon: SimTime,
    rate: f64,
    duration_ms: u64,
    seed: u64,
    cadence_us: u64,
    generator: String,
}

fn instrumented_run(args: &ParsedArgs) -> Result<InstrumentedRun, Box<dyn Error>> {
    use aetr::interface::InterfaceConfig;
    use aetr_aer::generator::BurstGenerator;

    let rate: f64 = args.get_or("rate", 50_000.0, "number")?;
    let duration_ms: u64 = args.get_or("duration-ms", 10, "integer")?;
    let seed: u64 = args.get_or("seed", 1, "integer")?;
    let cadence_us: u64 = args.get_or("cadence-us", 100, "integer")?;
    if cadence_us == 0 {
        return Err("--cadence-us must be positive".into());
    }
    let config = InterfaceConfig { clock: clock_config(args)?, ..InterfaceConfig::prototype() };
    let horizon = SimTime::from_ms(duration_ms);
    let generator = args.get_str("generator").unwrap_or("poisson").to_owned();
    let train = match generator.as_str() {
        "poisson" => PoissonGenerator::new(rate, 64, seed).generate(horizon),
        "burst" => BurstGenerator::new(
            rate,
            0.0,
            SimDuration::from_ms(1),
            SimDuration::from_ms(3),
            64,
            seed,
        )
        .generate(horizon),
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "generator".into(),
                value: other.into(),
                expected: "generator (poisson|burst)",
            }))
        }
    };
    Ok(InstrumentedRun { config, train, horizon, rate, duration_ms, seed, cadence_us, generator })
}

fn cmd_telemetry(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr::interface::{AerToI2sInterface, TelemetryConfig};
    use aetr_faults::FaultPlan;

    let w = instrumented_run(args)?;
    let interface = AerToI2sInterface::new(w.config)?;
    let report = interface.run_with_telemetry(
        &w.train,
        w.horizon,
        &FaultPlan::nominal(w.seed),
        &TelemetryConfig::with_cadence(SimDuration::from_us(w.cadence_us)),
    );
    let format = args.get_str("format").unwrap_or("json");
    let text = match format {
        "json" => report.telemetry.to_json().to_string(),
        "prometheus" => report.telemetry.to_prometheus(),
        "chrome-trace" => report.telemetry.to_chrome_trace_named(&format!(
            "aetr telemetry seed={} rate={} gen={}",
            w.seed,
            fmt_sig(w.rate),
            w.generator
        )),
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "format".into(),
                value: other.into(),
                expected: "format (json|prometheus|chrome-trace)",
            }))
        }
    };
    match args.get_str("out") {
        None => Ok(text),
        Some(out) => {
            fs::write(out, &text)?;
            let mut summary = format!("wrote {} bytes ({format}) -> {out}\n", text.len());
            let _ = writeln!(summary, "clock residency over {} ms:", w.duration_ms);
            for (state, d) in report.telemetry.clock_residency() {
                let _ = writeln!(summary, "  {state:<9} {d}");
            }
            Ok(summary)
        }
    }
}

/// Runs the instrumented workload with lineage collection on, for
/// `lineage` and `explain`.
fn lineage_report(
    args: &ParsedArgs,
    w: &InstrumentedRun,
) -> Result<aetr::interface::InterfaceReport, Box<dyn Error>> {
    use aetr::interface::{AerToI2sInterface, TelemetryConfig};
    use aetr_faults::FaultPlan;

    let interface = AerToI2sInterface::new(w.config)?.with_engine(engine_arg(args)?);
    let tel = TelemetryConfig::with_cadence(SimDuration::from_us(w.cadence_us)).with_lineage();
    Ok(interface.run_with_telemetry(&w.train, w.horizon, &FaultPlan::nominal(w.seed), &tel))
}

fn cmd_lineage(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr_telemetry::lineage::ErrorBudget;

    let w = instrumented_run(args)?;
    let report = lineage_report(args, &w)?;
    let log = &report.telemetry.lineage;
    let format = args.get_str("format").unwrap_or("jsonl");
    let text = match format {
        "jsonl" => log.to_jsonl(),
        "chrome-trace" => report.telemetry.to_chrome_trace_named(&format!(
            "aetr lineage seed={} rate={} gen={}",
            w.seed,
            fmt_sig(w.rate),
            w.generator
        )),
        other => {
            return Err(Box::new(ArgsError::InvalidValue {
                flag: "format".into(),
                value: other.into(),
                expected: "format (jsonl|chrome-trace)",
            }))
        }
    };
    match args.get_str("out") {
        None => Ok(text),
        Some(out) => {
            fs::write(out, &text)?;
            let mut summary = format!(
                "wrote {} lineage records ({format}, {} bytes) -> {out}\n",
                log.len(),
                text.len()
            );
            let t_min = w.config.clock.base_sampling_period();
            let budget = ErrorBudget::from_records(log.records(), t_min);
            summary.push_str(&budget.summary());
            let violations = budget.bound_violations(w.config.front_end.sync_stages);
            if violations.is_empty() {
                let _ = writeln!(
                    summary,
                    "all clean events within the analytic alignment budget \
                     ((sync+2)x(m_i+m_i-1) ticks)"
                );
            } else {
                let _ = writeln!(
                    summary,
                    "WARNING: {} clean event(s) exceed the analytic alignment budget: {:?}",
                    violations.len(),
                    violations
                );
            }
            Ok(summary)
        }
    }
}

fn cmd_explain(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr_telemetry::lineage::{decompose, DropCause};

    let index: u32 = args
        .positional
        .first()
        .ok_or("explain needs an <event-index> argument")?
        .parse()
        .map_err(|e| format!("event index: {e}"))?;
    let w = instrumented_run(args)?;
    let report = lineage_report(args, &w)?;
    let log = &report.telemetry.lineage;
    let Some(r) = log.get(index) else {
        return Err(format!(
            "event {index} out of range: this run captured {} events (0..={})",
            log.len(),
            log.len().saturating_sub(1)
        )
        .into());
    };
    let prev = index.checked_sub(1).and_then(|p| log.get(p));
    let t_min = w.config.clock.base_sampling_period();
    let row = decompose(r, prev, t_min.as_ps());

    let us = |ps: u64| ps as f64 / 1e6;
    let ns = |ps: i128| ps as f64 / 1e3;
    let mut text = String::new();
    let _ = writeln!(
        text,
        "event {index} of {} (address {}) — {}",
        log.len(),
        r.address,
        r.drop_cause.label()
    );
    let _ = writeln!(text, "  arrival   {:.6} us: sensor REQ rise", us(r.arrival.as_ps()));
    let _ = writeln!(
        text,
        "  detection {:.6} us: captured {:.3} us after arrival (synchroniser + grid \
         wait) at division level {} (period {} = {} x T_min {})",
        us(r.detection.as_ps()),
        us(r.detection.as_ps() - r.arrival.as_ps()),
        r.division_level,
        r.sampling_period,
        r.multiplier,
        t_min,
    );
    if r.woke {
        let _ = writeln!(
            text,
            "  wake      REQ restarted the ring oscillator from sleep; wake penalty {}",
            r.wake_penalty
        );
    } else {
        let _ = writeln!(text, "  wake      oscillator already running (no wake penalty)");
    }
    let _ = writeln!(
        text,
        "  timestamp {} ticks x T_min = {:.3} us measured interval \
         (quantization error {:+.3} ticks){}",
        r.timestamp_ticks,
        ns(row.measured_ps) / 1e3,
        r.quantization_error_ticks,
        if r.saturated { " — SATURATED: frozen/clamped counter, marker not measure" } else { "" },
    );
    match (r.ack_rise(), r.ack_latency()) {
        (Some(ack), Some(lat)) => {
            let _ = writeln!(
                text,
                "  handshake ACK rose at {:.6} us (latency {}, {} watchdog re-drive(s))",
                us(ack.as_ps()),
                lat,
                r.ack_retries
            );
        }
        _ => {
            let _ = writeln!(
                text,
                "  handshake aborted: ACK never completed ({} watchdog re-drive(s))",
                r.ack_retries
            );
        }
    }
    match (r.fifo_enqueue(), r.fifo_dequeue()) {
        (Some(enq), Some(deq)) => {
            let _ = writeln!(
                text,
                "  fifo      enqueued {:.6} us, left {:.6} us (residency {})",
                us(enq.as_ps()),
                us(deq.as_ps()),
                r.fifo_residency().unwrap_or_default()
            );
        }
        (Some(enq), None) => {
            let _ = writeln!(
                text,
                "  fifo      enqueued {:.6} us, still buffered at the horizon",
                us(enq.as_ps())
            );
        }
        _ => {
            let _ =
                writeln!(text, "  fifo      never stored (drop cause: {})", r.drop_cause.label());
        }
    }
    match (r.i2s_start(), r.i2s_end()) {
        (Some(start), Some(end)) => {
            let _ = writeln!(
                text,
                "  i2s       frame on the wire {:.6}-{:.6} us{}",
                us(start.as_ps()),
                us(end.as_ps()),
                match r.end_to_end_latency() {
                    Some(lat) => format!("; end-to-end latency {lat}"),
                    None => String::new(),
                }
            );
            if r.drop_cause == DropCause::FrameSlip {
                let _ = writeln!(
                    text,
                    "            but the receiver slipped this frame — the event was lost"
                );
            }
        }
        _ => {
            let _ = writeln!(text, "  i2s       never transmitted");
        }
    }
    let _ = writeln!(
        text,
        "  error     measured - true = {:+.3} ns, exactly attributed:",
        ns(row.error_ps)
    );
    let _ = writeln!(
        text,
        "            grid {:+.3} ns, wake {:+.3} ns, origin {:+.3} ns, saturation {:+.3} ns",
        ns(row.causes.grid_ps),
        ns(row.causes.wake_ps),
        ns(row.causes.origin_ps),
        ns(row.causes.saturation_ps),
    );
    Ok(text)
}

fn cmd_validate(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    use aetr_telemetry::json;

    let path = args.positional.first().ok_or("validate needs a .json file argument")?;
    let schema_path =
        args.get_str("schema").ok_or("validate needs --schema <schema.json>")?.to_owned();
    let jsonl: bool = args.get_or("jsonl", false, "boolean")?;
    let text = fs::read_to_string(path)?;
    let schema = json::parse(&fs::read_to_string(&schema_path)?)
        .map_err(|e| format!("{schema_path}: {e}"))?;
    // Line-delimited mode (`--jsonl true`): the schema describes one
    // record; every non-empty line must parse and validate, and the
    // violation report carries 1-based line numbers.
    if jsonl {
        let mut violations = Vec::new();
        let mut lines = 0usize;
        for (n, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            lines += 1;
            match json::parse(line) {
                Err(e) => violations.push(format!("line {}: {e}", n + 1)),
                Ok(doc) => violations.extend(
                    json::validate(&doc, &schema)
                        .into_iter()
                        .map(|v| format!("line {}: {v}", n + 1)),
                ),
            }
        }
        return if violations.is_empty() {
            Ok(format!("{path}: {lines} JSONL record(s) valid against {schema_path}"))
        } else {
            Err(format!(
                "{path}: {} schema violation(s):\n  {}",
                violations.len(),
                violations.join("\n  ")
            )
            .into())
        };
    }
    let doc = json::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let violations = json::validate(&doc, &schema);
    if violations.is_empty() {
        Ok(format!("{path}: valid against {schema_path}"))
    } else {
        Err(format!(
            "{path}: {} schema violation(s):\n  {}",
            violations.len(),
            violations.join("\n  ")
        )
        .into())
    }
}

fn cmd_waveform(args: &ParsedArgs) -> Result<String, Box<dyn Error>> {
    let theta: u32 = args.get_or("theta", 8, "integer")?;
    let ndiv: u32 = args.get_or("ndiv", 3, "integer")?;
    let config = ClockGenConfig::prototype().with_theta_div(theta).with_n_div(ndiv);
    config.validate()?;
    let wave = record_waveform(&config, &[], SimTime::from_ms(1));
    let mut vcd = Vec::new();
    aetr_sim::vcd::write_vcd(&wave.tracer, &mut vcd)?;
    let out = args.get_str("out").unwrap_or("aetr_waveform.vcd");
    fs::write(out, &vcd)?;
    Ok(format!(
        "recorded {} clock edges, {} divisions, {} shutdowns -> {out}",
        wave.rising_edges().len(),
        wave.divisions.len(),
        wave.shutdowns.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_line(line: &[&str]) -> Result<String, Box<dyn Error>> {
        run(&ParsedArgs::parse(line.iter().map(|s| s.to_string())).expect("parse"))
    }

    #[test]
    fn quantize_reports_accuracy_and_power() {
        let text = run_line(&["quantize", "--rate", "100000", "--duration-ms", "50"]).unwrap();
        assert!(text.contains("mean relative timestamp error"), "{text}");
        assert!(text.contains("average power"), "{text}");
        assert!(text.contains("theta_div=64"), "{text}");
    }

    #[test]
    fn quantize_honours_policy_and_generator() {
        let text = run_line(&[
            "quantize",
            "--rate",
            "50000",
            "--policy",
            "never",
            "--generator",
            "lfsr",
            "--duration-ms",
            "20",
        ])
        .unwrap();
        assert!(text.contains("policy=no-division"), "{text}");
        assert!(text.contains("(lfsr)"), "{text}");
    }

    #[test]
    fn sweep_produces_a_table() {
        let text = run_line(&["sweep", "--points", "4"]).unwrap();
        assert!(text.contains("rate (evt/s)"));
        assert_eq!(text.lines().count(), 6, "{text}"); // header + rule + 4 rows
    }

    #[test]
    fn faults_sweep_reports_degradation_curve() {
        let text = run_line(&[
            "faults",
            "--points",
            "3",
            "--rate",
            "30000",
            "--duration-ms",
            "5",
            "--max-fault-rate",
            "0.2",
        ])
        .unwrap();
        assert!(text.contains("baseline: accuracy"), "{text}");
        assert!(text.contains("fault rate"), "{text}");
        // baseline + header + rule + 3 rows + metrics header + 19
        // `interface.health.*` lines (shared with `telemetry` runs).
        assert_eq!(text.lines().count(), 26, "{text}");
        assert!(text.contains("interface.health.lost_acks"), "{text}");
        // Deterministic: running the identical line again reproduces it.
        let again = run_line(&[
            "faults",
            "--points",
            "3",
            "--rate",
            "30000",
            "--duration-ms",
            "5",
            "--max-fault-rate",
            "0.2",
        ])
        .unwrap();
        assert_eq!(text, again);
    }

    #[test]
    fn faults_with_jobs_is_byte_identical_to_sequential() {
        let line = |jobs: &str| {
            run_line(&[
                "faults",
                "--points",
                "4",
                "--rate",
                "30000",
                "--duration-ms",
                "5",
                "--max-fault-rate",
                "0.2",
                "--jobs",
                jobs,
            ])
            .unwrap()
        };
        let sequential = line("1");
        assert_eq!(line("4"), sequential, "--jobs 4 must not change a single byte");
        assert_eq!(line("0"), sequential, "--jobs 0 (all cores) must not either");
    }

    #[test]
    fn sweep_with_jobs_is_byte_identical_to_sequential() {
        let sequential = run_line(&["sweep", "--points", "5"]).unwrap();
        let parallel = run_line(&["sweep", "--points", "5", "--jobs", "3"]).unwrap();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn faults_rejects_unknown_surface() {
        let err = run_line(&["faults", "--surface", "cosmic"]).unwrap_err();
        assert!(err.to_string().contains("cosmic"), "{err}");
    }

    #[test]
    fn faults_rejects_inverted_rate_range() {
        let err = run_line(&["faults", "--min-fault-rate", "0.5", "--max-fault-rate", "0.001"])
            .unwrap_err();
        assert!(err.to_string().contains("0 < min < max"), "{err}");
    }

    #[test]
    fn replay_roundtrips_an_aedat_file() {
        let train = PoissonGenerator::new(20_000.0, 64, 9).generate(SimTime::from_ms(50));
        let mut bytes = Vec::new();
        aedat::write_aedat(&train, &["cli test"], &mut bytes).unwrap();
        let dir = std::env::temp_dir().join("aetr_cli_test.aedat");
        fs::write(&dir, &bytes).unwrap();
        let text = run_line(&["replay", dir.to_str().unwrap(), "--theta", "32"]).unwrap();
        assert!(text.contains("replaying"), "{text}");
        assert!(text.contains("theta_div=32"), "{text}");
        let _ = fs::remove_file(dir);
    }

    fn schema_path() -> String {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/telemetry.schema.json").to_owned()
    }

    #[test]
    fn telemetry_emits_schema_valid_json() {
        use aetr_telemetry::json;
        let text = run_line(&["telemetry", "--rate", "50000", "--duration-ms", "5"]).unwrap();
        let doc = json::parse(&text).expect("telemetry output parses as JSON");
        let schema = json::parse(&fs::read_to_string(schema_path()).unwrap()).unwrap();
        assert!(json::validate(&doc, &schema).is_empty());
        assert!(doc.get("metrics").and_then(|m| m.get("counters")).is_some());
    }

    #[test]
    fn telemetry_prometheus_and_chrome_trace_formats() {
        let prom =
            run_line(&["telemetry", "--duration-ms", "5", "--format", "prometheus"]).unwrap();
        assert!(prom.contains("# TYPE interface_events_captured counter"), "{prom}");
        let trace =
            run_line(&["telemetry", "--duration-ms", "5", "--format", "chrome-trace"]).unwrap();
        let doc = aetr_telemetry::json::parse(&trace).expect("chrome trace parses");
        assert!(doc.get("traceEvents").and_then(|e| e.as_array()).is_some());
        let err = run_line(&["telemetry", "--format", "yaml"]).unwrap_err();
        assert!(err.to_string().contains("format"), "{err}");
    }

    #[test]
    fn telemetry_out_reports_clock_residency() {
        let out = std::env::temp_dir().join("aetr_cli_telemetry.json");
        let text = run_line(&[
            "telemetry",
            "--generator",
            "burst",
            "--rate",
            "200000",
            "--duration-ms",
            "10",
            "--out",
            out.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("clock residency"), "{text}");
        assert!(text.contains("sleep"), "{text}");
        assert!(fs::read_to_string(&out).unwrap().starts_with('{'));
        let _ = fs::remove_file(out);
    }

    #[test]
    fn validate_accepts_telemetry_output_and_rejects_garbage() {
        let out = std::env::temp_dir().join("aetr_cli_validate.json");
        let p = out.to_str().unwrap().to_owned();
        run_line(&["telemetry", "--duration-ms", "5", "--out", &p]).unwrap();
        let text = run_line(&["validate", &p, "--schema", &schema_path()]).unwrap();
        assert!(text.contains("valid against"), "{text}");
        fs::write(&out, "{\"version\": \"nope\"}").unwrap();
        let err = run_line(&["validate", &p, "--schema", &schema_path()]).unwrap_err();
        assert!(err.to_string().contains("schema violation"), "{err}");
        let _ = fs::remove_file(out);
    }

    fn lineage_schema_path() -> String {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../schemas/lineage.schema.json").to_owned()
    }

    #[test]
    fn lineage_jsonl_validates_per_line_and_explain_narrates() {
        let out = std::env::temp_dir().join("aetr_cli_lineage.jsonl");
        let p = out.to_str().unwrap().to_owned();
        let line = ["lineage", "--rate", "50000", "--duration-ms", "5", "--out", &p];
        let summary = run_line(&line).unwrap();
        assert!(summary.contains("lineage records"), "{summary}");
        assert!(summary.contains("error budget over"), "{summary}");
        assert!(summary.contains("by cause: grid"), "{summary}");
        assert!(
            summary.contains("within the analytic alignment budget"),
            "fault-free run must satisfy the bound: {summary}"
        );
        let text =
            run_line(&["validate", &p, "--schema", &lineage_schema_path(), "--jsonl", "true"])
                .unwrap();
        assert!(text.contains("valid against"), "{text}");

        // Without --out, the raw JSONL streams to stdout; every line is
        // an object and the count matches the captured events.
        let raw = run_line(&["lineage", "--rate", "50000", "--duration-ms", "5"]).unwrap();
        let n = raw.lines().count();
        assert!(n > 10, "expected a few hundred events, got {n}");
        assert!(raw.lines().all(|l| l.starts_with('{')), "JSONL objects only");

        // explain re-runs the same workload deterministically and
        // narrates one event end to end.
        let story = run_line(&["explain", "7", "--rate", "50000", "--duration-ms", "5"]).unwrap();
        assert!(story.starts_with("event 7 of"), "{story}");
        assert!(story.contains("arrival"), "{story}");
        assert!(story.contains("division level"), "{story}");
        assert!(story.contains("exactly attributed"), "{story}");
        let _ = fs::remove_file(out);
    }

    #[test]
    fn lineage_chrome_trace_joins_flows_to_spans() {
        use aetr_telemetry::json::Json;
        let trace = run_line(&[
            "lineage",
            "--rate",
            "20000",
            "--duration-ms",
            "5",
            "--format",
            "chrome-trace",
        ])
        .unwrap();
        let doc = aetr_telemetry::json::parse(&trace).expect("trace parses");
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let ph = |e: &Json| e.get("ph").and_then(Json::as_str).map(str::to_owned);
        assert!(events.iter().any(|e| ph(e).as_deref() == Some("s")), "flow starts present");
        assert!(events.iter().any(|e| ph(e).as_deref() == Some("f")), "flow finishes present");
        let meta: Vec<&Json> = events.iter().filter(|e| ph(e).as_deref() == Some("M")).collect();
        assert!(
            meta.iter().any(|e| {
                e.get("name").and_then(Json::as_str) == Some("process_name")
                    && e.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str)
                        .is_some_and(|n| n.contains("aetr lineage"))
            }),
            "labelled process metadata present"
        );
    }

    #[test]
    fn explain_rejects_out_of_range_and_junk_indices() {
        let err =
            run_line(&["explain", "999999", "--rate", "1000", "--duration-ms", "2"]).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let err = run_line(&["explain", "seven"]).unwrap_err();
        assert!(err.to_string().contains("event index"), "{err}");
        let err = run_line(&["explain"]).unwrap_err();
        assert!(err.to_string().contains("event-index"), "{err}");
    }

    #[test]
    fn validate_jsonl_reports_line_numbers() {
        let out = std::env::temp_dir().join("aetr_cli_bad.jsonl");
        let p = out.to_str().unwrap().to_owned();
        fs::write(&out, "{\"index\": 0}\nnot json\n").unwrap();
        let err =
            run_line(&["validate", &p, "--schema", &lineage_schema_path(), "--jsonl", "true"])
                .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("line 1"), "missing required fields on line 1: {msg}");
        assert!(msg.contains("line 2"), "parse failure on line 2: {msg}");
        let _ = fs::remove_file(out);
    }

    #[test]
    fn waveform_writes_vcd() {
        let out = std::env::temp_dir().join("aetr_cli_test.vcd");
        let text = run_line(&["waveform", "--out", out.to_str().unwrap()]).unwrap();
        assert!(text.contains("divisions"), "{text}");
        let vcd = fs::read_to_string(&out).unwrap();
        assert!(vcd.contains("$timescale"));
        let _ = fs::remove_file(out);
    }

    #[test]
    fn record_then_replay_roundtrip() {
        let path = std::env::temp_dir().join("aetr_cli_record.aedat");
        let p = path.to_str().unwrap();
        let text = run_line(&["record", p, "--rate", "30000", "--duration-ms", "40"]).unwrap();
        assert!(text.contains("recorded"), "{text}");
        let text = run_line(&["replay", p]).unwrap();
        assert!(text.contains("replaying"), "{text}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn record_word_generator() {
        let path = std::env::temp_dir().join("aetr_cli_word.aedat");
        let p = path.to_str().unwrap();
        let text = run_line(&["record", p, "--generator", "word"]).unwrap();
        assert!(text.contains("cochlea word"), "{text}");
        let _ = fs::remove_file(path);
    }

    #[test]
    fn full_des_run_reports_everything() {
        let text = run_line(&["run", "--rate", "100000", "--duration-ms", "5"]).unwrap();
        assert!(text.contains("power:"), "{text}");
        assert!(text.contains("latency:"), "{text}");
        assert!(text.contains("i2s:"), "{text}");
    }

    #[test]
    fn run_engines_agree_and_bad_engine_errors() {
        let line = |engine: &str| {
            run_line(&["run", "--rate", "2000", "--duration-ms", "20", "--engine", engine]).unwrap()
        };
        assert_eq!(line("fast-forward"), line("per-tick"), "engines must report identically");
        let err = run_line(&["run", "--rate", "2000", "--engine", "warp"]).unwrap_err();
        assert!(err.to_string().contains("engine"), "{err}");
    }

    #[test]
    fn resources_prints_the_table() {
        let text = run_line(&["resources"]).unwrap();
        assert!(text.contains("IGLOOnano"));
    }

    #[test]
    fn unknown_command_yields_usage() {
        let err = run_line(&["frobnicate"]).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
        let err = run_line(&[]).unwrap_err();
        assert!(err.to_string().contains("USAGE"));
    }

    #[test]
    fn invalid_policy_is_a_clean_error() {
        let err = run_line(&["quantize", "--rate", "1000", "--policy", "warp"]).unwrap_err();
        assert!(err.to_string().contains("policy"), "{err}");
    }

    #[test]
    fn invalid_clock_config_is_rejected() {
        let err = run_line(&["quantize", "--rate", "1000", "--theta", "1"]).unwrap_err();
        assert!(err.to_string().contains("theta"), "{err}");
    }
}
