//! Ablation: ring-oscillator wake latency sensitivity.
//!
//! The paper argues the ~100 ns restart cost is negligible because it
//! is "comparable with a single clock period at the max freq". This
//! sweep makes that claim quantitative: acquisition delay and power of
//! a sparse (wake-heavy) workload as the wake latency grows from 0 to
//! 10 µs — the design stays insensitive until the latency rivals the
//! inter-burst spacing.

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr_aer::generator::{BurstGenerator, SpikeSource};
use aetr_analysis::table::Table;
use aetr_bench::{banner, write_result};
use aetr_clockgen::ring::RingOscillatorConfig;
use aetr_sim::time::{SimDuration, SimTime};

const SEED: u64 = 0xAB3;

fn main() {
    banner("Ablation", "ring-oscillator wake latency sensitivity", SEED);

    // A sparse, bursty workload: every burst onset wakes the clock.
    let train = BurstGenerator::new(
        150_000.0,
        0.0,
        SimDuration::from_ms(2),
        SimDuration::from_ms(8),
        64,
        SEED,
    )
    .generate(SimTime::from_ms(200));
    println!("workload: {} spikes in bursts over 200 ms\n", train.len());

    let mut table = Table::new(vec!["wake latency", "wakes", "mean acq delay (ns)", "power (uW)"]);
    for wake_ns in [0u64, 50, 100, 500, 2_000, 10_000] {
        let mut config = InterfaceConfig::prototype();
        config.clock.ring = RingOscillatorConfig {
            wake_latency: SimDuration::from_ns(wake_ns),
            ..RingOscillatorConfig::igloo_nano()
        };
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, SimTime::from_ms(200));
        let mean_delay_ns: f64 = report
            .events
            .iter()
            .map(|e| (e.detection - e.request).as_ps() as f64 / 1e3)
            .sum::<f64>()
            / report.events.len() as f64;
        table.row(vec![
            format!("{}", SimDuration::from_ns(wake_ns)),
            report.wake_count.to_string(),
            format!("{mean_delay_ns:.0}"),
            format!("{:.1}", report.power.total.as_microwatts()),
        ]);
    }
    println!("{}", table.to_ascii());
    println!(
        "reading: at the prototype's 100 ns the acquisition delay is dominated by the\n\
         sampling grid itself; only wake latencies of several microseconds (100x the\n\
         paper's) become visible — the paper's negligibility claim holds."
    );

    let path = write_result("ablation_wake_latency.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
