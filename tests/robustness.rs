//! Robustness under imperfect conditions: input timing jitter, event
//! loss, background noise, oscillator jitter, and PVT drift. The paper
//! assumes clean inputs and a perfect clock (§5.1); these tests bound
//! what reality costs.

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_aer::noise::{add_jitter, drop_random, inject_background};
use aetr_clockgen::config::ClockGenConfig;
use aetr_clockgen::trim::{trim_to_target, PvtPoint};
use aetr_sim::time::{SimDuration, SimTime};

fn mean_error(cfg: &ClockGenConfig, train: &aetr_aer::spike::SpikeTrain) -> f64 {
    let horizon = train.last_time().unwrap() + SimDuration::from_ms(1);
    let out = quantize_train(cfg, train, horizon);
    let s = isi_error_samples(&out);
    s.iter().map(|e| e.relative_error()).sum::<f64>() / s.len() as f64
}

#[test]
fn input_jitter_below_the_grid_is_invisible() {
    // Jitter far below T_min (66 ns) cannot move detections across
    // ticks often enough to matter.
    let cfg = ClockGenConfig::prototype();
    let train = PoissonGenerator::new(100_000.0, 64, 51).generate(SimTime::from_ms(100));
    let clean = mean_error(&cfg, &train);
    let jittered = mean_error(&cfg, &add_jitter(&train, SimDuration::from_ns(5), 1));
    assert!(
        (jittered - clean).abs() < 0.01,
        "5 ns jitter moved mean error from {clean} to {jittered}"
    );
}

#[test]
fn input_jitter_beyond_the_grid_degrades_gracefully() {
    let cfg = ClockGenConfig::prototype();
    let train = PoissonGenerator::new(100_000.0, 64, 52).generate(SimTime::from_ms(100));
    let clean = mean_error(&cfg, &train);
    // 1 µs of REQ-wire jitter at 10 µs mean ISI: error grows, but by
    // roughly the jitter-to-ISI ratio, not catastrophically.
    let jittered = mean_error(&cfg, &add_jitter(&train, SimDuration::from_us(1), 2));
    assert!(jittered > clean, "jitter must cost something");
    assert!(jittered < clean + 0.25, "clean {clean} vs jittered {jittered}");
}

#[test]
fn event_loss_does_not_break_the_quantizer() {
    // Dropped events just lengthen the measured intervals; the stream
    // stays valid and the survivors' timestamps stay coherent.
    let cfg = ClockGenConfig::prototype();
    let train = PoissonGenerator::new(50_000.0, 64, 53).generate(SimTime::from_ms(100));
    let lossy = drop_random(&train, 0.2, 3);
    let out = quantize_train(&cfg, &lossy, SimTime::from_ms(101));
    assert_eq!(out.records.len(), lossy.len());
    // Detections strictly increase even after loss.
    for w in out.records.windows(2) {
        assert!(w[1].detection > w[0].detection);
    }
}

#[test]
fn background_noise_raises_power_proportionally() {
    use aetr_power::model::PowerModel;
    let cfg = ClockGenConfig::prototype();
    let model = PowerModel::igloo_nano();
    let train = PoissonGenerator::new(5_000.0, 64, 54).generate(SimTime::from_secs(1));
    let horizon = SimTime::from_secs(1);
    let p_clean =
        model.evaluate(&quantize_train(&cfg, &train, horizon).activity).total.as_microwatts();
    let noisy = inject_background(&train, 20_000.0, 64, 4);
    let p_noisy =
        model.evaluate(&quantize_train(&cfg, &noisy, horizon).activity).total.as_microwatts();
    assert!(p_noisy > p_clean * 1.5, "background noise must cost power: {p_clean} -> {p_noisy}");
    // But still energy-proportional: nowhere near the 4.4 mW naive.
    assert!(p_noisy < 2_000.0, "noisy power {p_noisy} uW");
}

#[test]
fn oscillator_jitter_stays_below_quantization() {
    use aetr_clockgen::jitter::{interval_error_rms, JitterConfig};
    let cfg = ClockGenConfig::prototype();
    let t_min = cfg.base_sampling_period();
    // Across interval lengths spanning the active region, 1% RMS
    // period jitter contributes less than the θ=64 quantization floor.
    let floor = 1.0 / (2.0 * cfg.theta_div as f64);
    for n_ticks in [8u64, 64, 512] {
        let j = interval_error_rms(t_min, JitterConfig::igloo_nano(), n_ticks, 150, 5);
        assert!(j < floor, "jitter {j} vs floor {floor} at {n_ticks} ticks");
    }
}

#[test]
fn pvt_drift_is_recoverable_by_trim() {
    // The hot/low-voltage corner detunes the ring by several percent;
    // after trim the sampling grid error is back under 2%, so
    // timestamps (which are *relative* to the same grid) stay honest.
    let nominal = ClockGenConfig::prototype();
    let corner = PvtPoint { vdd: 1.1, temp_c: 70.0 };
    let drifted = corner.apply(&nominal.ring);
    let drift = (drifted.period().as_ps() as f64 - nominal.ring.period().as_ps() as f64)
        / nominal.ring.period().as_ps() as f64;
    assert!(drift.abs() > 0.03, "corner should detune noticeably, got {drift}");

    let trimmed = trim_to_target(&nominal.ring, nominal.ring.config_frequency(), corner, 3, 41);
    assert!(trimmed.error < 0.02, "post-trim error {}", trimmed.error);
}

#[test]
fn accuracy_ranking_is_stable_under_noise() {
    // The paper's θ ordering (Fig. 7b) survives realistic impairments.
    let train = {
        let t = PoissonGenerator::new(80_000.0, 64, 55).generate(SimTime::from_ms(100));
        let t = add_jitter(&t, SimDuration::from_ns(50), 6);
        inject_background(&t, 2_000.0, 64, 7)
    };
    let e16 = mean_error(&ClockGenConfig::prototype().with_theta_div(16), &train);
    let e64 = mean_error(&ClockGenConfig::prototype().with_theta_div(64), &train);
    assert!(e64 < e16, "θ=64 ({e64}) must stay more accurate than θ=16 ({e16})");
}
