//! Ablation: FIFO watermark (batch size) vs I2S duty and latency.
//!
//! §3 of the paper: "the actual achievable energy saving depends on
//! two main factors: i) the ratio between the input and output
//! bitrate; ii) the buffer size." A deeper watermark batches more
//! events per drain — fewer, longer I2S activations (fewer MCU
//! wake-ups downstream) at the cost of buffering latency.

use aetr::fifo::FifoConfig;
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::latency::LatencyReport;
use aetr_aer::generator::{LfsrGenerator, SpikeSource};
use aetr_analysis::table::Table;
use aetr_bench::{banner, write_result};
use aetr_sim::time::SimTime;

const SEED: u32 = 0xAB4;

fn main() {
    banner("Ablation", "FIFO watermark: batching vs buffering latency", SEED as u64);

    let horizon = SimTime::from_ms(50);
    let train = LfsrGenerator::new(100_000.0, SEED).generate(horizon);
    println!("workload: {} spikes at 100 kevt/s over 50 ms\n", train.len());

    let mut table = Table::new(vec![
        "watermark (events)",
        "drain bursts",
        "frames",
        "events/burst",
        "peak occupancy",
        "mean buffering",
        "p99 end-to-end",
    ]);
    for watermark in [1usize, 16, 64, 256, 1_024, 2_304] {
        let config = InterfaceConfig {
            fifo: FifoConfig { watermark, ..FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, horizon);
        let latency = LatencyReport::from_report(&report, &config.i2s).expect("non-empty run");
        let bursts = report.fifo_stats.watermark_crossings.max(1);
        table.row(vec![
            watermark.to_string(),
            report.fifo_stats.watermark_crossings.to_string(),
            report.i2s.len().to_string(),
            format!("{:.0}", report.i2s.event_count() as f64 / bursts as f64),
            report.fifo_stats.high_watermark.to_string(),
            format!("{:.1} us", latency.buffering.mean_secs * 1e6),
            format!("{:.1} us", latency.end_to_end.p99_secs * 1e6),
        ]);
    }
    println!("{}", table.to_ascii());
    println!(
        "reading: the watermark is the batching knob — larger batches let the\n\
         downstream MCU sleep between block transfers (the paper's motivation for\n\
         buffering events at all), bounded by the 9.2 kB SRAM."
    );

    let path = write_result("ablation_fifo_watermark.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
