//! Segment-table representation of the division schedule.
//!
//! Between two events, the sampling clock steps through a deterministic
//! sequence of *segments*: `θ_div` ticks at `T_min`, `θ_div` ticks at
//! `2·T_min`, ... until shutdown (or forever, depending on the
//! [`DivisionPolicy`]). Because that sequence restarts identically
//! after every event, it can be precomputed once as a table and every
//! inter-event interval quantized in O(segments) instead of O(ticks) —
//! this is what makes second-long sweeps at hundreds of kevt/s cheap.
//!
//! The cycle-accurate FSM in [`crate::fsm`] is the ground truth; the
//! equivalence of the two is property-tested there.

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

use crate::config::{ClockGenConfig, DivisionPolicy};

/// One constant-period stretch of the division schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// Sampling-period multiplier over `T_min` (1, 2, 4, ... for the
    /// recursive policy).
    pub multiplier: u64,
    /// Number of sampling ticks in this segment.
    pub ticks: u64,
    /// Offset of the segment start from the last event's detection.
    pub start: SimDuration,
    /// Offset of the segment's last tick (== start of the next).
    pub end: SimDuration,
}

/// What happens after the last finite segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Tail {
    /// The clock is switched off; the counter freezes (saturated
    /// timestamps).
    Shutdown,
    /// The clock keeps ticking at `multiplier · T_min` forever.
    Infinite {
        /// Period multiplier of the everlasting tail.
        multiplier: u64,
    },
}

/// Result of quantizing one inter-event interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantizeOutcome {
    /// The event was sampled by a running clock.
    Sampled {
        /// Offset of the detecting tick from the last reset.
        detection_offset: SimDuration,
        /// Counter value at detection, in `T_min` units (this *is* the
        /// timestamp, before width clamping).
        ticks: u64,
    },
    /// The clock was off when the event arrived: the timestamp is the
    /// frozen (saturated) counter, and detection must wait for the
    /// oscillator to restart.
    Asleep {
        /// The frozen counter value, in `T_min` units.
        frozen_ticks: u64,
        /// Offset at which the clock switched off.
        off_since: SimDuration,
    },
}

/// Precomputed division schedule.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::config::ClockGenConfig;
/// use aetr_clockgen::segments::SegmentTable;
///
/// let table = SegmentTable::new(&ClockGenConfig::prototype());
/// // θ=64, N=3: saturation after 64·(1+2+4+8) = 960 T_min ticks.
/// assert_eq!(table.max_counter(), Some(960));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentTable {
    base: SimDuration,
    segments: Vec<Segment>,
    tail: Tail,
}

impl SegmentTable {
    /// Builds the table for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not validate (construct via a
    /// validated [`ClockGenConfig`]).
    pub fn new(config: &ClockGenConfig) -> SegmentTable {
        config.validate().expect("segment table requires a valid configuration");
        let base = config.base_sampling_period();
        let theta = config.theta_div as u64;
        let multipliers: Vec<u64> = match config.policy {
            DivisionPolicy::Recursive | DivisionPolicy::DivideOnly => {
                (0..=config.n_div).map(|k| 1u64 << k).collect()
            }
            DivisionPolicy::Never => vec![1],
            DivisionPolicy::Linear => (0..=config.n_div).map(|k| k as u64 + 1).collect(),
        };
        let tail = match config.policy {
            DivisionPolicy::Recursive | DivisionPolicy::Linear => Tail::Shutdown,
            DivisionPolicy::DivideOnly | DivisionPolicy::Never => {
                Tail::Infinite { multiplier: *multipliers.last().expect("non-empty") }
            }
        };
        // For infinite tails, the last multiplier lives in the tail, not
        // a finite segment. For `Never`, there are no finite segments.
        let finite: &[u64] = match tail {
            Tail::Shutdown => &multipliers,
            Tail::Infinite { .. } => &multipliers[..multipliers.len() - 1],
        };
        let mut segments = Vec::with_capacity(finite.len());
        let mut offset = SimDuration::ZERO;
        for &m in finite {
            let len = base.saturating_mul(m).saturating_mul(theta);
            let seg = Segment { multiplier: m, ticks: theta, start: offset, end: offset + len };
            offset = seg.end;
            segments.push(seg);
        }
        SegmentTable { base, segments, tail }
    }

    /// The base sampling period `T_min`.
    pub fn base_period(&self) -> SimDuration {
        self.base
    }

    /// The finite segments, in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The post-segment behaviour.
    pub fn tail(&self) -> Tail {
        self.tail
    }

    /// Offset at which the clock shuts down, if it ever does.
    pub fn shutdown_offset(&self) -> Option<SimDuration> {
        match self.tail {
            Tail::Shutdown => Some(self.segments.last().map_or(SimDuration::ZERO, |s| s.end)),
            Tail::Infinite { .. } => None,
        }
    }

    /// The saturated counter value in `T_min` units (`None` for
    /// never-stopping policies, whose counter grows until the width
    /// clamp).
    pub fn max_counter(&self) -> Option<u64> {
        self.shutdown_offset().map(|off| off / self.base)
    }

    /// The longest interval measurable without saturation (the paper's
    /// "maximum time interval the interface is able to measure", §5.2).
    pub fn max_measurable(&self) -> Option<SimDuration> {
        self.shutdown_offset()
    }

    /// Quantizes the interval from the last event's detection (counter
    /// reset) to the next request.
    pub fn quantize(&self, delta: SimDuration) -> QuantizeOutcome {
        for seg in &self.segments {
            if delta <= seg.end {
                return QuantizeOutcome::Sampled {
                    detection_offset: self.detect_in(seg, delta),
                    ticks: self.detect_in(seg, delta) / self.base,
                };
            }
        }
        match self.tail {
            Tail::Shutdown => {
                let off = self.shutdown_offset().expect("shutdown tail has an offset");
                QuantizeOutcome::Asleep { frozen_ticks: off / self.base, off_since: off }
            }
            Tail::Infinite { multiplier } => {
                let start = self.segments.last().map_or(SimDuration::ZERO, |s| s.end);
                let step = self.base.saturating_mul(multiplier);
                let rel = delta - start;
                let j = div_ceil_duration(rel, step).max(1);
                let offset = start + step.saturating_mul(j);
                QuantizeOutcome::Sampled { detection_offset: offset, ticks: offset / self.base }
            }
        }
    }

    /// First tick offset ≥ `delta` inside `seg` (callers guarantee
    /// `delta <= seg.end`).
    fn detect_in(&self, seg: &Segment, delta: SimDuration) -> SimDuration {
        let step = self.base.saturating_mul(seg.multiplier);
        let rel = delta.saturating_duration_since_zero(seg.start);
        if rel.is_zero() && !seg.start.is_zero() {
            // Exactly on the segment boundary: the boundary tick (the
            // previous segment's last) detects it.
            return seg.start;
        }
        let j = div_ceil_duration(rel, step).max(1);
        seg.start + step.saturating_mul(j)
    }

    /// Splits the busy interval `[0, until]` after a reset into
    /// per-multiplier active time plus off time — the input to the
    /// power model.
    pub fn usage_until(&self, until: SimDuration) -> IntervalUsage {
        let mut usage = IntervalUsage::default();
        for seg in &self.segments {
            if until <= seg.start {
                return usage;
            }
            let span = until.min(seg.end) - seg.start;
            usage.add_active(seg.multiplier, span);
        }
        let tail_start = self.segments.last().map_or(SimDuration::ZERO, |s| s.end);
        if until > tail_start {
            match self.tail {
                Tail::Shutdown => usage.off += until - tail_start,
                Tail::Infinite { multiplier } => usage.add_active(multiplier, until - tail_start),
            }
        }
        usage
    }
}

/// Per-interval clock activity breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntervalUsage {
    /// `(period multiplier, time spent)` pairs, ascending multiplier.
    pub active: Vec<(u64, SimDuration)>,
    /// Time with the clock switched off.
    pub off: SimDuration,
}

impl IntervalUsage {
    /// Adds active time at a multiplier, merging with an existing entry.
    pub fn add_active(&mut self, multiplier: u64, span: SimDuration) {
        if span.is_zero() {
            return;
        }
        match self.active.binary_search_by_key(&multiplier, |&(m, _)| m) {
            Ok(i) => self.active[i].1 += span,
            Err(i) => self.active.insert(i, (multiplier, span)),
        }
    }

    /// Merges another usage record into this one.
    pub fn merge(&mut self, other: &IntervalUsage) {
        for &(m, d) in &other.active {
            self.add_active(m, d);
        }
        self.off += other.off;
    }

    /// Total accounted time (active + off).
    pub fn total(&self) -> SimDuration {
        self.active.iter().map(|&(_, d)| d).sum::<SimDuration>() + self.off
    }
}

/// `ceil(a / b)` for durations.
fn div_ceil_duration(a: SimDuration, b: SimDuration) -> u64 {
    let q = a / b;
    if (b.saturating_mul(q)) < a {
        q + 1
    } else {
        q
    }
}

/// Helper: saturating `a - b` clamped at zero, mirroring
/// `SimTime::saturating_duration_since` for durations.
trait SaturatingSinceZero {
    fn saturating_duration_since_zero(self, earlier: SimDuration) -> SimDuration;
}

impl SaturatingSinceZero for SimDuration {
    fn saturating_duration_since_zero(self, earlier: SimDuration) -> SimDuration {
        if self >= earlier {
            self - earlier
        } else {
            SimDuration::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proto() -> ClockGenConfig {
        ClockGenConfig::prototype()
    }

    fn base() -> SimDuration {
        proto().base_sampling_period()
    }

    #[test]
    fn recursive_table_layout() {
        let t = SegmentTable::new(&proto());
        assert_eq!(t.segments().len(), 4); // k = 0..=3
        let mults: Vec<u64> = t.segments().iter().map(|s| s.multiplier).collect();
        assert_eq!(mults, vec![1, 2, 4, 8]);
        assert_eq!(t.tail(), Tail::Shutdown);
        // Boundaries: 64·T, 64·3T, 64·7T, 64·15T.
        assert_eq!(t.segments()[0].end, base() * 64);
        assert_eq!(t.segments()[3].end, base() * (64 * 15));
        assert_eq!(t.max_counter(), Some(64 * 15));
    }

    #[test]
    fn never_policy_is_one_infinite_segment() {
        let t = SegmentTable::new(&proto().with_policy(DivisionPolicy::Never));
        assert!(t.segments().is_empty());
        assert_eq!(t.tail(), Tail::Infinite { multiplier: 1 });
        assert_eq!(t.max_counter(), None);
    }

    #[test]
    fn divide_only_ends_in_infinite_tail() {
        let t = SegmentTable::new(&proto().with_policy(DivisionPolicy::DivideOnly));
        assert_eq!(t.segments().len(), 3); // 1, 2, 4 finite; 8 infinite
        assert_eq!(t.tail(), Tail::Infinite { multiplier: 8 });
    }

    #[test]
    fn linear_policy_multipliers() {
        let t = SegmentTable::new(&proto().with_policy(DivisionPolicy::Linear));
        let mults: Vec<u64> = t.segments().iter().map(|s| s.multiplier).collect();
        assert_eq!(mults, vec![1, 2, 3, 4]);
        assert_eq!(t.tail(), Tail::Shutdown);
    }

    #[test]
    fn quantize_in_first_segment_rounds_up_to_tick() {
        let t = SegmentTable::new(&proto());
        // delta = 1.5 base periods -> detected at tick 2.
        let delta = base() + base() / 2;
        match t.quantize(delta) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                assert_eq!(detection_offset, base() * 2);
                assert_eq!(ticks, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_zero_delta_takes_first_tick() {
        let t = SegmentTable::new(&proto());
        match t.quantize(SimDuration::ZERO) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                assert_eq!(detection_offset, base());
                assert_eq!(ticks, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_exact_tick_is_exact() {
        let t = SegmentTable::new(&proto());
        let delta = base() * 17;
        match t.quantize(delta) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                assert_eq!(detection_offset, delta);
                assert_eq!(ticks, 17);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_in_divided_segment_has_coarser_grid() {
        let t = SegmentTable::new(&proto());
        // Just past the first division boundary (64 ticks): grid is 2·T.
        let delta = base() * 64 + SimDuration::from_ps(1);
        match t.quantize(delta) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                assert_eq!(detection_offset, base() * 66);
                assert_eq!(ticks, 66);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_on_boundary_belongs_to_boundary_tick() {
        let t = SegmentTable::new(&proto());
        let boundary = t.segments()[0].end; // 64·T
        match t.quantize(boundary) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                assert_eq!(detection_offset, boundary);
                assert_eq!(ticks, 64);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn quantize_past_shutdown_saturates() {
        let t = SegmentTable::new(&proto());
        let beyond = t.shutdown_offset().unwrap() + SimDuration::from_ms(5);
        match t.quantize(beyond) {
            QuantizeOutcome::Asleep { frozen_ticks, off_since } => {
                assert_eq!(frozen_ticks, 64 * 15);
                assert_eq!(off_since, t.shutdown_offset().unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn never_policy_never_saturates() {
        let t = SegmentTable::new(&proto().with_policy(DivisionPolicy::Never));
        let big = SimDuration::from_secs(1);
        match t.quantize(big) {
            QuantizeOutcome::Sampled { ticks, .. } => {
                // 1 s / 66.56 us... base is ~66.66 us? base ~66,656 ps
                let expected = div_ceil_duration(big, t.base_period());
                assert_eq!(ticks, expected);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn usage_splits_across_segments_and_off() {
        let t = SegmentTable::new(&proto());
        let shutdown = t.shutdown_offset().unwrap();
        let until = shutdown + SimDuration::from_ms(1);
        let usage = t.usage_until(until);
        assert_eq!(usage.off, SimDuration::from_ms(1));
        assert_eq!(usage.active.len(), 4);
        assert_eq!(usage.total(), until);
        // Active spans are theta·m·base each.
        for (i, &(m, d)) in usage.active.iter().enumerate() {
            assert_eq!(m, 1 << i);
            assert_eq!(d, t.base_period() * 64 * m);
        }
    }

    #[test]
    fn usage_partial_first_segment() {
        let t = SegmentTable::new(&proto());
        let until = t.base_period() * 10;
        let usage = t.usage_until(until);
        assert_eq!(usage.active, vec![(1, until)]);
        assert_eq!(usage.off, SimDuration::ZERO);
    }

    #[test]
    fn interval_usage_merge() {
        let mut a = IntervalUsage::default();
        a.add_active(1, SimDuration::from_us(5));
        let mut b = IntervalUsage::default();
        b.add_active(1, SimDuration::from_us(3));
        b.add_active(4, SimDuration::from_us(2));
        b.off = SimDuration::from_us(7);
        a.merge(&b);
        assert_eq!(a.active, vec![(1, SimDuration::from_us(8)), (4, SimDuration::from_us(2))]);
        assert_eq!(a.off, SimDuration::from_us(7));
        assert_eq!(a.total(), SimDuration::from_us(17));
    }
}
