//! `aetr-bench` — recorded throughput baseline for the DES interface.
//!
//! Runs the full AER→I2S interface at five operating points — the
//! three dense Criterion points (10 k / 100 k / 400 k evt/s over
//! 10 ms) plus two idle-heavy sparse points (100 evt/s and 1 k evt/s
//! over a full second, where the analytic idle fast-forward dominates)
//! — all with LFSR seed `0xB`, plus a fault-campaign sweep, and writes
//! the measured throughput (simulated events per wall-clock second,
//! median wall-clock per point, and event-queue operations per second
//! from the telemetry profiling hook) as machine-readable JSON.
//!
//! The committed `BENCH_interface.json` at the repo root is this tool's
//! output and doubles as the regression baseline: `--check <path>`
//! fails (exit 1) when the fresh measurement's `sim_events_per_sec`
//! falls more than `--tolerance` (default 20%) below any committed
//! point, and also when per-event lineage recording costs more than
//! 10% wall-clock over plain telemetry at the densest point. CI runs
//! `aetr-bench --quick --check BENCH_interface.json` as its
//! bench-smoke gate.
//!
//! ```text
//! aetr-bench [--quick] [--out <file.json>] [--check <baseline.json>]
//!            [--tolerance <fraction>] [--jobs N]
//!            [--engine fast-forward|per-tick]
//! ```

use std::process::ExitCode;
use std::time::Instant;

use aetr::campaign::{CampaignConfig, FaultCampaign};
use aetr::interface::{AerToI2sInterface, InterfaceConfig, SimEngine, TelemetryConfig};
use aetr_aer::generator::{LfsrGenerator, SpikeSource};
use aetr_analysis::sweep::log_space;
use aetr_faults::FaultPlan;
use aetr_sim::time::SimTime;
use aetr_telemetry::json::{self, Json};

const USAGE: &str = "\
aetr-bench — DES interface throughput baseline

USAGE:
  aetr-bench [--quick] [--out <file.json>] [--check <baseline.json>]
             [--tolerance <fraction>] [--jobs N]
             [--engine fast-forward|per-tick]

  --quick      3 timing iterations per point instead of 9 (CI smoke)
  --out        where to write the JSON report (default BENCH_interface.json)
  --check      compare against a committed baseline; exit 1 if any
               point's sim_events_per_sec regressed more than the
               tolerance
  --tolerance  allowed relative regression for --check (default 0.2)
  --jobs       worker threads for the campaign sweep (0 = all cores,
               the default); never changes simulation output
  --engine     simulation engine to time (default fast-forward);
               per-tick is the reference model whose hot path matches
               the pre-fast-forward code, used to record `pre_pr`
               medians — reports are bit-identical either way
";

/// Operating points as `(events per second, horizon in ms)`: the three
/// dense Criterion `des_interface` points over 10 ms, and two
/// idle-heavy sparse points over a full second where nearly all
/// simulated time is clock-idle silence.
const POINTS: [(f64, u64); 5] =
    [(100.0, 1_000), (1_000.0, 1_000), (10_000.0, 10), (100_000.0, 10), (400_000.0, 10)];
/// Stimulus seed shared with `benches/interface.rs`.
const SEED: u32 = 0xB;

/// Same-machine medians measured immediately before the analytic idle
/// fast-forward landed (equivalently: `--engine per-tick`, whose hot
/// path is the pre-PR code), so the committed report carries its own
/// before/after story. Wall-clock medians only — absolute numbers are
/// machine-specific; the before/after *ratio* is the claim.
const PRE_PR: [(f64, f64); 5] =
    [(100.0, 0.908), (1_000.0, 11.177), (10_000.0, 0.999), (100_000.0, 4.112), (400_000.0, 8.003)];

struct BenchArgs {
    quick: bool,
    out: String,
    check: Option<String>,
    tolerance: f64,
    jobs: usize,
    engine: SimEngine,
}

fn parse_args(argv: impl Iterator<Item = String>) -> Result<BenchArgs, String> {
    let mut args = BenchArgs {
        quick: false,
        out: "BENCH_interface.json".to_owned(),
        check: None,
        tolerance: 0.2,
        jobs: 0,
        engine: SimEngine::EventProportional,
    };
    let mut argv = argv;
    while let Some(arg) = argv.next() {
        let mut value = |flag: &str| argv.next().ok_or(format!("{flag} needs a value\n{USAGE}"));
        match arg.as_str() {
            "--quick" => args.quick = true,
            "--out" => args.out = value("--out")?,
            "--check" => args.check = Some(value("--check")?),
            "--tolerance" => {
                args.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}\n{USAGE}"))?;
                if !(0.0..1.0).contains(&args.tolerance) {
                    return Err(format!("--tolerance must be in [0, 1)\n{USAGE}"));
                }
            }
            "--jobs" => {
                args.jobs =
                    value("--jobs")?.parse().map_err(|e| format!("--jobs: {e}\n{USAGE}"))?;
            }
            "--engine" => {
                args.engine = match value("--engine")?.as_str() {
                    "fast-forward" => SimEngine::EventProportional,
                    "per-tick" => SimEngine::PerTickReference,
                    other => return Err(format!("unknown engine '{other}'\n{USAGE}")),
                };
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    if args.jobs == 0 {
        args.jobs = aetr_sim::parallel::available_jobs();
    }
    Ok(args)
}

/// One measured operating point.
struct PointResult {
    rate_hz: f64,
    horizon_ms: u64,
    events: u64,
    wall_ms_median: f64,
    sim_events_per_sec: f64,
    queue_ops: u64,
    queue_ops_per_sec: f64,
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("wall-clock times are finite"));
    samples[samples.len() / 2]
}

fn measure_point(
    rate_hz: f64,
    horizon_ms: u64,
    iterations: usize,
    engine: SimEngine,
) -> PointResult {
    let horizon = SimTime::from_ms(horizon_ms);
    let train = LfsrGenerator::new(rate_hz, SEED).generate(horizon);
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype())
        .expect("valid prototype")
        .with_engine(engine);

    // Timed iterations run the plain (telemetry-free) entry point —
    // exactly what the Criterion benchmark times. One warm-up first.
    std::hint::black_box(interface.run(&train, horizon));
    let mut walls = Vec::with_capacity(iterations);
    for _ in 0..iterations {
        let started = Instant::now();
        std::hint::black_box(interface.run(&train, horizon));
        walls.push(started.elapsed().as_secs_f64() * 1e3);
    }
    let wall_ms_median = median(&mut walls);

    // One instrumented run supplies the deterministic queue-op count
    // (the profiling hook from the telemetry subsystem); its rate is
    // reported against the *uninstrumented* median so the headline
    // numbers stay comparable to Criterion's.
    let report = interface.run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(1),
        &TelemetryConfig { enabled: true, sample_cadence: None, lineage: false },
    );
    let queue_ops = report.telemetry.profile.map_or(0, |p| p.queue_ops);

    let events = train.len() as u64;
    let wall_secs = wall_ms_median / 1e3;
    PointResult {
        rate_hz,
        horizon_ms,
        events,
        wall_ms_median,
        sim_events_per_sec: events as f64 / wall_secs,
        queue_ops,
        queue_ops_per_sec: queue_ops as f64 / wall_secs,
    }
}

/// Times the fault-campaign sweep (the other DES-heavy workload this
/// PR parallelised) at the CLI's default surface and rate.
fn measure_campaign(quick: bool, jobs: usize) -> (usize, f64) {
    let fault_points = if quick { 3 } else { 6 };
    let campaign = FaultCampaign::new(CampaignConfig::default()).expect("valid default");
    let rates = log_space(1e-4, 0.3, fault_points);
    let started = Instant::now();
    std::hint::black_box(campaign.run_with_jobs(&rates, jobs));
    (fault_points, started.elapsed().as_secs_f64() * 1e3)
}

/// Lineage-overhead measurement at the densest operating point.
struct LineageOverhead {
    rate_hz: f64,
    horizon_ms: u64,
    wall_ms_telemetry: f64,
    wall_ms_lineage: f64,
    overhead_fraction: f64,
}

/// Times telemetry-enabled runs with and without per-event lineage at
/// the densest operating point (400 k evt/s over 10 ms, where the
/// per-event record cost is most visible). `--check` fails when
/// lineage costs more than 10% wall-clock over plain telemetry.
///
/// Methodology: the two configs run as adjacent *pairs* — back-to-back
/// runs see the same machine load on a shared CI runner, so each
/// pair's wall-clock ratio isolates the lineage cost from load drift.
/// The pair order alternates, the per-pair ratios are bucketed by
/// order, and the reported overhead is the *average of the two
/// order-conditional medians*: medians absorb scheduler hiccups on
/// individual runs, and averaging the orders cancels the systematic
/// warm-second-position bias that would otherwise skew either order
/// alone by a point or two. The headline walls are each side's
/// best-of-N. One run is ~1 ms, so the probe uses a fixed iteration
/// count independent of `--quick`.
fn measure_lineage_overhead(engine: SimEngine) -> LineageOverhead {
    const PAIRS_PER_ORDER: usize = 25;
    let (rate_hz, horizon_ms) = (400_000.0, 10);
    let horizon = SimTime::from_ms(horizon_ms);
    let train = LfsrGenerator::new(rate_hz, SEED).generate(horizon);
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype())
        .expect("valid prototype")
        .with_engine(engine);
    let plan = FaultPlan::nominal(1);
    let time_once = |tel: &TelemetryConfig| {
        let started = Instant::now();
        std::hint::black_box(interface.run_with_telemetry(&train, horizon, &plan, tel));
        started.elapsed().as_secs_f64() * 1e3
    };
    let base = TelemetryConfig { enabled: true, sample_cadence: None, lineage: false };
    let with = TelemetryConfig { lineage: true, ..base };
    // Warm both paths (branch predictors, the allocator, and the
    // lineage layer's recycled record buffer) before timing.
    time_once(&base);
    time_once(&with);
    let (mut wall_ms_telemetry, mut wall_ms_lineage) = (f64::INFINITY, f64::INFINITY);
    // Adjacent-pair ratios, bucketed by run order. The second run of a
    // pair is systematically a little faster (warmer caches/allocator),
    // which biases (telemetry, lineage) pairs low and (lineage,
    // telemetry) pairs high by roughly the same margin. Taking the
    // median within each order and averaging the two cancels that
    // position bias; a single pooled median over alternating orders is
    // bimodal and lands unpredictably on either lobe.
    let mut ratios_tl = Vec::with_capacity(PAIRS_PER_ORDER);
    let mut ratios_lt = Vec::with_capacity(PAIRS_PER_ORDER);
    for i in 0..2 * PAIRS_PER_ORDER {
        let (t_ms, l_ms) = if i % 2 == 0 {
            let t = time_once(&base);
            (t, time_once(&with))
        } else {
            let l = time_once(&with);
            (time_once(&base), l)
        };
        wall_ms_telemetry = wall_ms_telemetry.min(t_ms);
        wall_ms_lineage = wall_ms_lineage.min(l_ms);
        if i % 2 == 0 {
            ratios_tl.push(l_ms / t_ms);
        } else {
            ratios_lt.push(l_ms / t_ms);
        }
    }
    LineageOverhead {
        rate_hz,
        horizon_ms,
        wall_ms_telemetry,
        wall_ms_lineage,
        overhead_fraction: (median(&mut ratios_tl) + median(&mut ratios_lt)) / 2.0 - 1.0,
    }
}

fn engine_label(engine: SimEngine) -> &'static str {
    match engine {
        SimEngine::EventProportional => "fast-forward",
        SimEngine::PerTickReference => "per-tick",
    }
}

fn report_json(
    args: &BenchArgs,
    points: &[PointResult],
    campaign: (usize, f64),
    lineage: &LineageOverhead,
) -> Json {
    Json::object([
        ("version", Json::from(2u64)),
        ("bench", Json::from("des_interface")),
        ("generator", Json::from(format!("lfsr seed 0x{SEED:X}"))),
        ("engine", Json::from(engine_label(args.engine))),
        ("quick", Json::from(args.quick)),
        (
            "points",
            Json::Array(
                points
                    .iter()
                    .map(|p| {
                        Json::object([
                            ("rate_hz", Json::from(p.rate_hz)),
                            ("horizon_ms", Json::from(p.horizon_ms)),
                            ("events", Json::from(p.events)),
                            ("wall_ms_median", Json::from(p.wall_ms_median)),
                            ("sim_events_per_sec", Json::from(p.sim_events_per_sec)),
                            ("queue_ops", Json::from(p.queue_ops)),
                            ("queue_ops_per_sec", Json::from(p.queue_ops_per_sec)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "campaign",
            Json::object([
                ("fault_points", Json::from(campaign.0 as u64)),
                ("jobs", Json::from(args.jobs as u64)),
                ("wall_ms", Json::from(campaign.1)),
            ]),
        ),
        (
            "lineage",
            Json::object([
                ("rate_hz", Json::from(lineage.rate_hz)),
                ("horizon_ms", Json::from(lineage.horizon_ms)),
                ("wall_ms_telemetry", Json::from(lineage.wall_ms_telemetry)),
                ("wall_ms_lineage", Json::from(lineage.wall_ms_lineage)),
                ("overhead_fraction", Json::from(lineage.overhead_fraction)),
            ]),
        ),
        (
            "pre_pr",
            Json::object([
                (
                    "note",
                    Json::from(
                        "same-machine medians recorded before the analytic idle \
                         fast-forward landed (the per-tick reference engine's hot \
                         path); compare wall_ms_median per rate for the speedup \
                         ratio",
                    ),
                ),
                (
                    "points",
                    Json::Array(
                        PRE_PR
                            .iter()
                            .map(|&(rate_hz, wall_ms_median)| {
                                Json::object([
                                    ("rate_hz", Json::from(rate_hz)),
                                    ("wall_ms_median", Json::from(wall_ms_median)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
    ])
}

/// Compares fresh points against a committed baseline report. Returns
/// the per-point verdict lines; `Err` when any point regressed beyond
/// the tolerance.
fn check_against(
    baseline_text: &str,
    points: &[PointResult],
    tolerance: f64,
) -> Result<Vec<String>, String> {
    let baseline =
        json::parse(baseline_text).map_err(|e| format!("baseline does not parse: {e}"))?;
    let committed =
        baseline.get("points").and_then(Json::as_array).ok_or("baseline has no 'points' array")?;
    let mut lines = Vec::new();
    let mut regressions = Vec::new();
    for p in points {
        let Some(old) = committed.iter().find(|c| {
            c.get("rate_hz").and_then(Json::as_f64).is_some_and(|r| (r - p.rate_hz).abs() < 0.5)
        }) else {
            lines.push(format!("  {:>9.0} evt/s: no committed point, skipped", p.rate_hz));
            continue;
        };
        let old_eps = old
            .get("sim_events_per_sec")
            .and_then(Json::as_f64)
            .ok_or("baseline point lacks sim_events_per_sec")?;
        let ratio = p.sim_events_per_sec / old_eps;
        let verdict = if ratio < 1.0 - tolerance { "REGRESSED" } else { "ok" };
        lines.push(format!(
            "  {:>9.0} evt/s: {:.3e} vs committed {:.3e} ev/s ({:+.1}%) {}",
            p.rate_hz,
            p.sim_events_per_sec,
            old_eps,
            (ratio - 1.0) * 100.0,
            verdict,
        ));
        if ratio < 1.0 - tolerance {
            regressions.push(p.rate_hz);
        }
    }
    if regressions.is_empty() {
        Ok(lines)
    } else {
        Err(format!(
            "{}\nthroughput regressed more than {:.0}% at {} operating point(s)",
            lines.join("\n"),
            tolerance * 100.0,
            regressions.len(),
        ))
    }
}

fn run(args: &BenchArgs) -> Result<String, String> {
    let iterations = if args.quick { 3 } else { 9 };
    let mut summary = String::new();
    summary.push_str(&format!(
        "aetr-bench: {iterations} iterations/point, {} engine, campaign jobs {}\n",
        engine_label(args.engine),
        args.jobs
    ));

    let points: Vec<PointResult> = POINTS
        .iter()
        .map(|&(rate, horizon_ms)| measure_point(rate, horizon_ms, iterations, args.engine))
        .collect();
    for p in &points {
        summary.push_str(&format!(
            "  {:>9.0} evt/s x {:>4} ms: {:>8.3} ms median, {:.3e} sim-ev/s, \
             {:.3e} queue-ops/s\n",
            p.rate_hz, p.horizon_ms, p.wall_ms_median, p.sim_events_per_sec, p.queue_ops_per_sec,
        ));
    }
    let campaign = measure_campaign(args.quick, args.jobs);
    summary.push_str(&format!(
        "  campaign: {} fault points in {:.1} ms ({} jobs)\n",
        campaign.0, campaign.1, args.jobs
    ));
    let lineage = measure_lineage_overhead(args.engine);
    summary.push_str(&format!(
        "  lineage: {:>9.0} evt/s x {:>4} ms: {:.3} ms with records vs {:.3} ms \
         without (best-of-N walls; {:+.1}% order-balanced paired overhead)\n",
        lineage.rate_hz,
        lineage.horizon_ms,
        lineage.wall_ms_lineage,
        lineage.wall_ms_telemetry,
        lineage.overhead_fraction * 100.0,
    ));

    let doc = report_json(args, &points, campaign, &lineage);
    std::fs::write(&args.out, format!("{doc}\n")).map_err(|e| format!("{}: {e}", args.out))?;
    summary.push_str(&format!("wrote {}\n", args.out));

    if let Some(path) = &args.check {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let lines = check_against(&text, &points, args.tolerance)?;
        summary.push_str(&format!("check against {path}:\n{}\n", lines.join("\n")));
        // Absolute gate, independent of the committed baseline: lineage
        // recording must stay within 10% of plain telemetry wall-clock.
        if lineage.overhead_fraction > 0.10 {
            return Err(format!(
                "{summary}lineage overhead {:.1}% (order-balanced paired ratio) exceeds the 10% \
                 budget (best walls: {:.3} ms with records vs {:.3} ms without)",
                lineage.overhead_fraction * 100.0,
                lineage.wall_ms_lineage,
                lineage.wall_ms_telemetry,
            ));
        }
        summary.push_str(&format!(
            "  lineage overhead {:+.1}% within the 10% budget\n",
            lineage.overhead_fraction * 100.0
        ));
    }
    Ok(summary)
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(summary) => {
            print!("{summary}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_defaults_and_flags() {
        let args = parse_args(std::iter::empty()).unwrap();
        assert!(!args.quick);
        assert_eq!(args.out, "BENCH_interface.json");
        assert!(args.check.is_none());
        assert_eq!(args.tolerance, 0.2);
        assert!(args.jobs >= 1, "0 resolves to all cores");
        assert_eq!(args.engine, SimEngine::EventProportional);

        let args = parse_args(
            [
                "--quick",
                "--out",
                "x.json",
                "--check",
                "b.json",
                "--tolerance",
                "0.5",
                "--jobs",
                "2",
                "--engine",
                "per-tick",
            ]
            .iter()
            .map(|s| s.to_string()),
        )
        .unwrap();
        assert!(args.quick);
        assert_eq!(args.out, "x.json");
        assert_eq!(args.check.as_deref(), Some("b.json"));
        assert_eq!(args.tolerance, 0.5);
        assert_eq!(args.jobs, 2);
        assert_eq!(args.engine, SimEngine::PerTickReference);
    }

    #[test]
    fn parse_args_rejects_junk() {
        assert!(parse_args(["--frob"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--out"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--tolerance", "1.5"].iter().map(|s| s.to_string())).is_err());
        assert!(parse_args(["--engine", "warp"].iter().map(|s| s.to_string())).is_err());
    }

    #[test]
    fn report_shape_matches_schema() {
        let args = parse_args(["--quick"].iter().map(|s| s.to_string())).unwrap();
        let points = vec![PointResult {
            rate_hz: 10_000.0,
            horizon_ms: 10,
            events: 100,
            wall_ms_median: 1.0,
            sim_events_per_sec: 100_000.0,
            queue_ops: 5_000,
            queue_ops_per_sec: 5_000_000.0,
        }];
        let lineage = LineageOverhead {
            rate_hz: 400_000.0,
            horizon_ms: 10,
            wall_ms_telemetry: 8.0,
            wall_ms_lineage: 8.4,
            overhead_fraction: 0.05,
        };
        let doc = report_json(&args, &points, (3, 12.5), &lineage);
        let schema_text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../schemas/bench.schema.json"
        ))
        .expect("schema is committed");
        let schema = json::parse(&schema_text).expect("schema parses");
        let reparsed = json::parse(&doc.to_string()).expect("report round-trips");
        assert_eq!(json::validate(&reparsed, &schema), Vec::<String>::new());
    }

    #[test]
    fn check_flags_regressions_and_passes_improvements() {
        let fresh = vec![PointResult {
            rate_hz: 400_000.0,
            horizon_ms: 10,
            events: 4_000,
            wall_ms_median: 5.0,
            sim_events_per_sec: 800_000.0,
            queue_ops: 150_000,
            queue_ops_per_sec: 3.0e7,
        }];
        let committed = |eps: f64| {
            format!("{{\"points\": [{{\"rate_hz\": 400000, \"sim_events_per_sec\": {eps}}}]}}")
        };
        assert!(check_against(&committed(700_000.0), &fresh, 0.2).is_ok(), "improvement passes");
        assert!(check_against(&committed(990_000.0), &fresh, 0.2).is_ok(), "within tolerance");
        let err = check_against(&committed(1_100_000.0), &fresh, 0.2).unwrap_err();
        assert!(err.contains("REGRESSED"), "{err}");
        assert!(check_against("not json", &fresh, 0.2).is_err());
    }

    #[test]
    fn median_takes_the_middle_sample() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [5.0]), 5.0);
    }
}
