//! Power and energy quantities.
//!
//! [`Power`] is kept in microwatts and [`Energy`] in picojoules —
//! the natural magnitudes of the paper's measurements (50 µW floor,
//! 4.5 mW ceiling, nanojoules per event). Both are `f64` newtypes:
//! power numbers are *reported* quantities fitted to a physical
//! prototype, so float arithmetic is appropriate (simulation *time*
//! stays integer).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

/// Electrical power in microwatts.
///
/// # Examples
///
/// ```
/// use aetr_power::units::Power;
/// use aetr_sim::time::SimDuration;
///
/// let p = Power::from_milliwatts(4.5);
/// let e = p * SimDuration::from_ms(10);
/// assert!((e.as_microjoules() - 45.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

/// Electrical energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Power {
    /// Zero power.
    pub const ZERO: Power = Power(0.0);

    /// Creates a power of `uw` microwatts.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn from_microwatts(uw: f64) -> Power {
        assert!(uw.is_finite() && uw >= 0.0, "power must be finite and non-negative, got {uw}");
        Power(uw)
    }

    /// Creates a power of `mw` milliwatts.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn from_milliwatts(mw: f64) -> Power {
        Power::from_microwatts(mw * 1_000.0)
    }

    /// Power in microwatts.
    pub fn as_microwatts(self) -> f64 {
        self.0
    }

    /// Power in milliwatts.
    pub fn as_milliwatts(self) -> f64 {
        self.0 / 1_000.0
    }
}

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy of `pj` picojoules.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn from_picojoules(pj: f64) -> Energy {
        assert!(pj.is_finite() && pj >= 0.0, "energy must be finite and non-negative, got {pj}");
        Energy(pj)
    }

    /// Creates an energy of `nj` nanojoules.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite values.
    pub fn from_nanojoules(nj: f64) -> Energy {
        Energy::from_picojoules(nj * 1_000.0)
    }

    /// Energy in picojoules.
    pub fn as_picojoules(self) -> f64 {
        self.0
    }

    /// Energy in nanojoules.
    pub fn as_nanojoules(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Energy in microjoules.
    pub fn as_microjoules(self) -> f64 {
        self.0 / 1e6
    }

    /// Average power when spread over `span`.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn over(self, span: SimDuration) -> Power {
        assert!(!span.is_zero(), "cannot average energy over a zero span");
        // pJ / s -> pW -> µW
        Power(self.0 / span.as_secs_f64() / 1e6)
    }
}

impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}

impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}

impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}

impl Div<f64> for Power {
    type Output = Power;
    fn div(self, rhs: f64) -> Power {
        Power(self.0 / rhs)
    }
}

impl Mul<SimDuration> for Power {
    type Output = Energy;
    fn mul(self, rhs: SimDuration) -> Energy {
        // µW · s = µJ = 1e6 pJ
        Energy(self.0 * rhs.as_secs_f64() * 1e6)
    }
}

impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::ZERO, Add::add)
    }
}

impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Mul<f64> for Energy {
    type Output = Energy;
    fn mul(self, rhs: f64) -> Energy {
        Energy(self.0 * rhs)
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000.0 {
            write!(f, "{:.3} mW", self.0 / 1_000.0)
        } else {
            write!(f, "{:.3} uW", self.0)
        }
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e6 {
            write!(f, "{:.3} uJ", self.0 / 1e6)
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.3} nJ", self.0 / 1_000.0)
        } else {
            write!(f, "{:.3} pJ", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_times_duration_is_energy() {
        let e = Power::from_microwatts(50.0) * SimDuration::from_secs(1);
        assert!((e.as_microjoules() - 50.0).abs() < 1e-9);
        let e2 = Power::from_milliwatts(4.5) * SimDuration::from_us(1);
        assert!((e2.as_nanojoules() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn energy_over_span_is_power() {
        let p = Energy::from_nanojoules(100.0).over(SimDuration::from_us(10));
        // 100 nJ / 10 µs = 10 mW
        assert!((p.as_milliwatts() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_sum() {
        let total: Power =
            [Power::from_microwatts(10.0), Power::from_microwatts(15.0)].into_iter().sum();
        assert!((total.as_microwatts() - 25.0).abs() < 1e-12);
        let e: Energy =
            [Energy::from_picojoules(1.0), Energy::from_picojoules(2.0)].into_iter().sum();
        assert!((e.as_picojoules() - 3.0).abs() < 1e-12);
        assert!((Power::from_microwatts(9.0) / 3.0).as_microwatts() - 3.0 < 1e-12);
    }

    #[test]
    fn power_sub_saturates_at_zero() {
        let p = Power::from_microwatts(5.0) - Power::from_microwatts(50.0);
        assert_eq!(p, Power::ZERO);
    }

    #[test]
    fn display_uses_sensible_units() {
        assert_eq!(Power::from_microwatts(50.0).to_string(), "50.000 uW");
        assert_eq!(Power::from_milliwatts(4.5).to_string(), "4.500 mW");
        assert_eq!(Energy::from_nanojoules(8.1).to_string(), "8.100 nJ");
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_power_panics() {
        let _ = Power::from_microwatts(-1.0);
    }

    #[test]
    #[should_panic(expected = "zero span")]
    fn energy_over_zero_span_panics() {
        let _ = Energy::from_picojoules(1.0).over(SimDuration::ZERO);
    }
}
