//! Handle-based metrics registry.
//!
//! The simulation kernel is a single-threaded event loop that turns
//! over millions of events per wall-clock second, so the hot path must
//! never hash a metric name or allocate. Metrics are therefore
//! *registered once* up front — registration returns a typed integer
//! handle ([`CounterId`], [`GaugeId`], [`HistogramId`]) — and every
//! record operation is a bare `Vec` index plus an add/store. Name
//! resolution, sorting, and formatting only happen at registration and
//! export time, off the hot path.
//!
//! Names are hierarchical dotted paths mirroring the tracer scopes
//! (`interface.clockgen.divisions`, `interface.fifo.occupancy`, …); see
//! DESIGN.md §11 for the naming scheme.

use crate::histogram::FixedHistogram;
use serde::{Deserialize, Serialize};

/// Handle to a registered monotonically increasing counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterId(usize);

/// Handle to a registered last-value gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeId(usize);

/// Handle to a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramId(usize);

/// Registry of counters, gauges, and histograms.
///
/// # Examples
///
/// ```
/// use aetr_telemetry::registry::MetricsRegistry;
///
/// let mut reg = MetricsRegistry::new();
/// let pushes = reg.counter("interface.fifo.pushed");
/// let depth = reg.gauge("interface.fifo.occupancy");
/// reg.inc(pushes, 3);
/// reg.set_gauge(depth, 42.0);
/// assert_eq!(reg.counter_value(pushes), 3);
/// assert_eq!(reg.gauge_value(depth), Some(42.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counter_names: Vec<String>,
    counters: Vec<u64>,
    gauge_names: Vec<String>,
    gauges: Vec<Option<f64>>,
    histogram_names: Vec<String>,
    histograms: Vec<FixedHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Registers (or re-resolves) a counter by hierarchical name.
    ///
    /// Registering the same name twice returns the same handle, so
    /// independent subsystems may share a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counter_names.iter().position(|n| n == name) {
            return CounterId(i);
        }
        self.counter_names.push(name.to_string());
        self.counters.push(0);
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or re-resolves) a gauge by hierarchical name.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauge_names.iter().position(|n| n == name) {
            return GaugeId(i);
        }
        self.gauge_names.push(name.to_string());
        self.gauges.push(None);
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or re-resolves) a histogram by hierarchical name.
    ///
    /// On first registration the provided bucket edges are installed;
    /// re-registration keeps the existing buckets.
    pub fn histogram(&mut self, name: &str, edges: Vec<f64>) -> HistogramId {
        if let Some(i) = self.histogram_names.iter().position(|n| n == name) {
            return HistogramId(i);
        }
        self.histogram_names.push(name.to_string());
        self.histograms.push(FixedHistogram::new(edges));
        HistogramId(self.histograms.len() - 1)
    }

    /// Adds `n` to a counter. Hot path: one index + add.
    #[inline]
    pub fn inc(&mut self, id: CounterId, n: u64) {
        self.counters[id.0] += n;
    }

    /// Stores the latest value of a gauge. Hot path: one index + store.
    #[inline]
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0] = Some(v);
    }

    /// Records a histogram sample. Hot path: one index + bucket search
    /// over the (small, fixed) edge list.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: f64) {
        self.histograms[id.0].observe(v);
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Latest value of a gauge (`None` if never set).
    pub fn gauge_value(&self, id: GaugeId) -> Option<f64> {
        self.gauges[id.0]
    }

    /// Read access to a histogram.
    pub fn histogram_value(&self, id: HistogramId) -> &FixedHistogram {
        &self.histograms[id.0]
    }

    /// Looks up a counter value by name (export/test convenience).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.counter_names.iter().position(|n| n == name).map(|i| self.counters[i])
    }

    /// Looks up a gauge value by name (export/test convenience).
    pub fn gauge_by_name(&self, name: &str) -> Option<f64> {
        self.gauge_names.iter().position(|n| n == name).and_then(|i| self.gauges[i])
    }

    /// Looks up a histogram by name (export/test convenience).
    pub fn histogram_by_name(&self, name: &str) -> Option<&FixedHistogram> {
        self.histogram_names.iter().position(|n| n == name).map(|i| &self.histograms[i])
    }

    /// All counters as `(name, value)` pairs sorted by name.
    pub fn counters(&self) -> Vec<(&str, u64)> {
        let mut v: Vec<_> = self
            .counter_names
            .iter()
            .map(String::as_str)
            .zip(self.counters.iter().copied())
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// All set gauges as `(name, value)` pairs sorted by name.
    pub fn gauges(&self) -> Vec<(&str, f64)> {
        let mut v: Vec<_> = self
            .gauge_names
            .iter()
            .map(String::as_str)
            .zip(self.gauges.iter())
            .filter_map(|(n, g)| g.map(|g| (n, g)))
            .collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// All histograms as `(name, histogram)` pairs sorted by name.
    pub fn histograms(&self) -> Vec<(&str, &FixedHistogram)> {
        let mut v: Vec<_> =
            self.histogram_names.iter().map(String::as_str).zip(self.histograms.iter()).collect();
        v.sort_by_key(|(n, _)| *n);
        v
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("a.b.c");
        reg.inc(c, 1);
        reg.inc(c, 41);
        assert_eq!(reg.counter_value(c), 42);
        assert_eq!(reg.counter_by_name("a.b.c"), Some(42));
        assert_eq!(reg.counter_by_name("missing"), None);
    }

    #[test]
    fn duplicate_registration_shares_the_metric() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("shared");
        let b = reg.counter("shared");
        assert_eq!(a, b);
        reg.inc(a, 1);
        reg.inc(b, 1);
        assert_eq!(reg.counter_value(a), 2);
    }

    #[test]
    fn gauges_keep_last_value() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        assert_eq!(reg.gauge_value(g), None);
        reg.set_gauge(g, 1.0);
        reg.set_gauge(g, 7.5);
        assert_eq!(reg.gauge_value(g), Some(7.5));
    }

    #[test]
    fn histograms_record_through_the_registry() {
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("lat", vec![1.0, 10.0]);
        reg.observe(h, 0.5);
        reg.observe(h, 5.0);
        reg.observe(h, 50.0);
        let hist = reg.histogram_value(h);
        assert_eq!(hist.bucket_counts(), &[1, 1]);
        assert_eq!(hist.overflow(), 1);
    }

    #[test]
    fn listings_are_sorted_by_name() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last");
        reg.counter("a.first");
        let names: Vec<_> = reg.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }
}
