//! Formant-based synthesis of "spoken word" stimuli.
//!
//! Fig. 7a shows the cochlea's response to one word extracted from a
//! real conversation (~800 ms). We substitute a reproducible formant
//! synthesizer: a word is a sequence of voiced segments (vowel-like,
//! two formants on a pitch harmonic comb) and noise bursts
//! (fricative/plosive-like), separated by short closures — enough to
//! reproduce the bursty, tonotopically structured spike pattern that
//! the error-distribution experiment (Fig. 7b) needs.

use serde::{Deserialize, Serialize};

use crate::audio::AudioBuffer;

/// One phoneme-like segment of a synthetic word.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum WordSegment {
    /// A voiced, vowel-like segment with two formant frequencies.
    Voiced {
        /// First formant (Hz).
        f1: f64,
        /// Second formant (Hz).
        f2: f64,
        /// Duration in seconds.
        secs: f64,
    },
    /// An unvoiced noise burst (fricative-like).
    Noise {
        /// Duration in seconds.
        secs: f64,
        /// Amplitude relative to voiced segments.
        level: f64,
    },
    /// Silence (closure / word boundary).
    Silence {
        /// Duration in seconds.
        secs: f64,
    },
}

/// Synthesises one segment.
fn render_segment(sample_rate: u32, pitch_hz: f64, seg: &WordSegment, seed: u64) -> AudioBuffer {
    match *seg {
        WordSegment::Voiced { f1, f2, secs } => {
            // A small harmonic comb near each formant approximates a
            // formant resonance excited by the glottal pulse train.
            let mut out = AudioBuffer::silence(sample_rate, secs);
            for &formant in &[f1, f2] {
                let k = (formant / pitch_hz).round().max(1.0);
                for dk in [-1.0, 0.0, 1.0] {
                    let f = (k + dk) * pitch_hz;
                    if f > 0.0 && f < sample_rate as f64 / 2.0 {
                        let a = if dk == 0.0 { 0.30 } else { 0.12 };
                        out.mix(&AudioBuffer::tone(sample_rate, f, a, secs));
                    }
                }
            }
            out.faded(0.01)
        }
        WordSegment::Noise { secs, level } => {
            AudioBuffer::white_noise(sample_rate, level, secs, seed).faded(0.005)
        }
        WordSegment::Silence { secs } => AudioBuffer::silence(sample_rate, secs),
    }
}

/// Synthesises a word from segments at the given pitch.
///
/// # Examples
///
/// ```
/// use aetr_cochlea::word::{synthesize_word, WordSegment};
///
/// let word = synthesize_word(16_000, 120.0, &[
///     WordSegment::Noise { secs: 0.05, level: 0.3 },
///     WordSegment::Voiced { f1: 700.0, f2: 1_200.0, secs: 0.2 },
/// ], 1);
/// assert_eq!(word.len(), 4_000);
/// ```
pub fn synthesize_word(
    sample_rate: u32,
    pitch_hz: f64,
    segments: &[WordSegment],
    seed: u64,
) -> AudioBuffer {
    let mut out = AudioBuffer::silence(sample_rate, 0.0);
    for (i, seg) in segments.iter().enumerate() {
        out.append(&render_segment(sample_rate, pitch_hz, seg, seed.wrapping_add(i as u64)));
    }
    out.normalized(0.8)
}

/// The reference Fig. 7a stimulus: a two-syllable word ("sensor"-like,
/// /s-e-n-s-o/) padded with leading/trailing silence, ~800 ms total.
pub fn fig7_word(sample_rate: u32, seed: u64) -> AudioBuffer {
    synthesize_word(
        sample_rate,
        120.0,
        &[
            WordSegment::Silence { secs: 0.10 },
            WordSegment::Noise { secs: 0.07, level: 0.35 }, // /s/
            WordSegment::Voiced { f1: 530.0, f2: 1_840.0, secs: 0.14 }, // /e/
            WordSegment::Voiced { f1: 400.0, f2: 1_600.0, secs: 0.09 }, // /n/
            WordSegment::Silence { secs: 0.03 },
            WordSegment::Noise { secs: 0.06, level: 0.3 }, // /s/
            WordSegment::Voiced { f1: 570.0, f2: 840.0, secs: 0.17 }, // /o/
            WordSegment::Silence { secs: 0.14 },
        ],
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_sim::time::SimDuration;

    #[test]
    fn fig7_word_is_about_800ms() {
        let word = fig7_word(16_000, 1);
        let ms = word.duration().as_us() / 1_000;
        assert!((750..=850).contains(&ms), "word duration {ms} ms");
    }

    #[test]
    fn word_is_reproducible() {
        assert_eq!(fig7_word(16_000, 9), fig7_word(16_000, 9));
        assert_ne!(fig7_word(16_000, 9), fig7_word(16_000, 10));
    }

    #[test]
    fn word_has_quiet_and_loud_parts() {
        let word = fig7_word(16_000, 1);
        let sr = word.sample_rate() as usize;
        // First 80 ms are silence, the /e/ around 250 ms is loud.
        let head = &word.samples()[..sr * 8 / 100];
        let vowel = &word.samples()[sr * 22 / 100..sr * 28 / 100];
        let head_rms = (head.iter().map(|s| s * s).sum::<f64>() / head.len() as f64).sqrt();
        let vowel_rms = (vowel.iter().map(|s| s * s).sum::<f64>() / vowel.len() as f64).sqrt();
        assert!(head_rms < 1e-9, "leading silence rms {head_rms}");
        assert!(vowel_rms > 0.05, "vowel rms {vowel_rms}");
    }

    #[test]
    fn voiced_segment_energy_sits_near_formants() {
        let seg = synthesize_word(
            16_000,
            120.0,
            &[WordSegment::Voiced { f1: 600.0, f2: 600.0, secs: 0.2 }],
            0,
        );
        // Count zero crossings: dominated by ~600 Hz content.
        let crossings = seg.samples().windows(2).filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0)).count();
        let implied_hz = crossings as f64 / 2.0 / 0.2;
        assert!((400.0..900.0).contains(&implied_hz), "implied {implied_hz} Hz");
    }

    #[test]
    fn empty_segment_list_gives_empty_audio() {
        let w = synthesize_word(16_000, 120.0, &[], 0);
        assert!(w.is_empty());
        assert_eq!(w.duration(), SimDuration::ZERO);
    }
}
