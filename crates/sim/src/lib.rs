//! # aetr-sim — deterministic discrete-event simulation kernel
//!
//! The foundation of the AETR reproduction: integer-picosecond time
//! ([`time`]), a deterministic event queue with stable tie-breaking and
//! O(1) tombstone cancellation ([`queue`]), signal tracing ([`trace`]),
//! VCD waveform export ([`vcd`]), and a deterministic parallel executor
//! for independent sweep points ([`parallel`]).
//!
//! Each simulation is single-threaded and allocation-light by design:
//! the DAC'17 experiments must be exactly reproducible, so the kernel
//! admits no source of nondeterminism. Parallelism exists only *across*
//! independently seeded simulations, and [`parallel::par_map`] returns
//! results in input order so a parallel sweep is bit-identical to the
//! sequential one.
//!
//! # Examples
//!
//! Simulate a free-running clock and dump its waveform:
//!
//! ```
//! use aetr_sim::queue::EventQueue;
//! use aetr_sim::time::{Frequency, SimTime};
//! use aetr_sim::trace::{TraceValue, Tracer};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let period = Frequency::from_mhz(30).period();
//! let mut queue = EventQueue::new();
//! let mut tracer = Tracer::new();
//! let clk = tracer.declare_bit("clk", "top");
//!
//! queue.schedule_at(SimTime::ZERO, false)?;
//! while let Some((t, level)) = queue.pop() {
//!     tracer.record(t, clk, TraceValue::Bit(level));
//!     if t < SimTime::from_ns(500) {
//!         queue.schedule_after(period / 2, !level)?;
//!     }
//! }
//!
//! let mut vcd = Vec::new();
//! aetr_sim::vcd::write_vcd(&tracer, &mut vcd)?;
//! assert!(!tracer.edges_to(clk, true).is_empty());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod parallel;
pub mod queue;
pub mod stats;
pub mod time;
pub mod trace;
pub mod vcd;

pub use parallel::{available_jobs, par_map};
pub use queue::{EventHandle, EventQueue, SchedulePastError};
pub use stats::OnlineStats;
pub use time::{Frequency, SimDuration, SimTime};
pub use trace::{TraceValue, Tracer};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::queue::EventQueue;
    use crate::time::{SimDuration, SimTime};

    proptest! {
        /// Popping always yields a non-decreasing time sequence,
        /// regardless of the order events were scheduled in.
        #[test]
        fn pops_are_monotonic(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.schedule_at(SimTime::from_ps(t), t).unwrap();
            }
            let mut last = SimTime::ZERO;
            while let Some((t, _)) = q.pop() {
                prop_assert!(t >= last);
                last = t;
            }
        }

        /// Every scheduled (non-cancelled) event pops exactly once.
        #[test]
        fn conservation_of_events(times in proptest::collection::vec(0u64..1_000, 0..100)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_ps(t), i).unwrap();
            }
            let mut popped: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, i)| i).collect();
            popped.sort_unstable();
            prop_assert_eq!(popped, (0..times.len()).collect::<Vec<_>>());
        }

        /// The tombstone queue pops the identical `(time, seq)` order as
        /// a naive reference model (linear scan for the minimum live
        /// entry) under random interleavings of schedule, cancel, and
        /// pop — and `len()`/`cancel()` return values agree at every
        /// step, including across slot reuse.
        #[test]
        fn tombstone_queue_matches_reference_model(
            ops in proptest::collection::vec((0u8..10, 0u64..1_000), 1..400),
        ) {
            // Model entry: (time, seq, cancelled, popped).
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut model: Vec<(SimTime, u64, bool, bool)> = Vec::new();
            let mut handles = Vec::new();
            let mut model_now = SimTime::ZERO;
            for &(sel, param) in &ops {
                match sel {
                    // Schedule (weighted 6/10 so the queue stays busy).
                    0..=5 => {
                        let at = model_now.checked_add(SimDuration::from_ps(param)).unwrap();
                        let seq = model.len() as u64;
                        handles.push(q.schedule_at(at, seq).unwrap());
                        model.push((at, seq, false, false));
                    }
                    // Cancel a (possibly stale) handle.
                    6 | 7 => {
                        if !handles.is_empty() {
                            let k = (param as usize) % handles.len();
                            let expect = !model[k].2 && !model[k].3;
                            prop_assert_eq!(q.cancel(handles[k]), expect);
                            model[k].2 = true;
                        }
                    }
                    // Pop, comparing against the model's minimum live entry.
                    _ => {
                        let pick = model
                            .iter()
                            .enumerate()
                            .filter(|(_, e)| !e.2 && !e.3)
                            .min_by_key(|(_, e)| (e.0, e.1))
                            .map(|(i, _)| i);
                        match (q.pop(), pick) {
                            (Some((t, seq)), Some(i)) => {
                                prop_assert_eq!((t, seq), (model[i].0, model[i].1));
                                model[i].3 = true;
                                model_now = t;
                                prop_assert_eq!(q.now(), model_now);
                            }
                            (None, None) => {}
                            (got, want) => {
                                prop_assert!(false, "pop mismatch: got {:?}, want {:?}", got, want);
                            }
                        }
                    }
                }
                let live = model.iter().filter(|e| !e.2 && !e.3).count();
                prop_assert_eq!(q.len(), live);
            }
            // Draining pops the surviving entries in exact (time, seq) order.
            let mut remaining: Vec<(SimTime, u64)> =
                model.iter().filter(|e| !e.2 && !e.3).map(|e| (e.0, e.1)).collect();
            remaining.sort();
            let drained: Vec<(SimTime, u64)> = std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(drained, remaining);
        }

        /// Duration arithmetic: (a + b) - b == a for non-overflowing pairs.
        #[test]
        fn duration_add_sub_roundtrip(a in 0u64..u64::MAX / 2, b in 0u64..u64::MAX / 2) {
            let da = SimDuration::from_ps(a);
            let db = SimDuration::from_ps(b);
            prop_assert_eq!((da + db) - db, da);
        }

        /// Frequency→period→frequency round-trip stays within the
        /// truncation error of one picosecond of period.
        #[test]
        fn frequency_period_roundtrip(hz in 1_000u64..500_000_000) {
            let f = crate::time::Frequency::from_hz(hz);
            let p = f.period();
            let back = p.to_frequency();
            // back >= f because period truncates; error bounded by one
            // period quantum.
            prop_assert!(back >= f);
            let p2 = SimDuration::from_ps(p.as_ps() + 1);
            prop_assert!(p2.to_frequency() <= f);
        }
    }
}
