//! # aetr-power — calibrated power/energy modelling
//!
//! The substitution for the paper's on-board FPGA power measurements:
//! [`units`] defines `Power`/`Energy` newtypes, [`model`] the
//! block-level power model calibrated to the IGLOO nano AGLN250
//! anchors (50 µW static floor, ≈4.5 mW at 550 kevt/s), [`ideal`] the
//! paper's Eq. (1) energy-proportional reference line, and [`meter`]
//! an integrating meter the discrete-event interface narrates its
//! activity to.
//!
//! # Examples
//!
//! Evaluate the power of a mostly-sleeping interface:
//!
//! ```
//! use aetr_power::model::{ActivityInput, PowerModel};
//! use aetr_sim::time::SimDuration;
//!
//! let model = PowerModel::igloo_nano();
//! let activity = ActivityInput {
//!     active: vec![(1, SimDuration::from_ms(10))],
//!     off: SimDuration::from_ms(990),
//!     wake_count: 100,
//!     event_count: 100,
//! };
//! let report = model.evaluate(&activity);
//! // ~1% duty at full speed: close to the 50 µW floor.
//! assert!(report.total.as_microwatts() < 150.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod battery;
pub mod downstream;
pub mod ideal;
pub mod meter;
pub mod model;
pub mod units;

pub use battery::{Battery, DutyProfile};
pub use downstream::{compare as compare_downstream, DownstreamComparison, McuPowerModel};
pub use ideal::IdealModel;
pub use meter::PowerMeter;
pub use model::{ActivityInput, Block, PowerModel, PowerReport};
pub use units::{Energy, Power};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use aetr_sim::time::{SimDuration, SimTime};

    use crate::meter::PowerMeter;
    use crate::model::{ActivityInput, PowerModel};
    use crate::units::Power;

    proptest! {
        /// Power is monotone in clock activity: moving time from "off"
        /// to "active at full speed" never decreases total power.
        #[test]
        fn power_monotone_in_activity(active_ms in 0u64..1_000, total_ms in 1_001u64..2_000) {
            let model = PowerModel::igloo_nano();
            let make = |a_ms: u64| {
                let mut input = ActivityInput::default();
                if a_ms > 0 {
                    input.active.push((1, SimDuration::from_ms(a_ms)));
                }
                input.off = SimDuration::from_ms(total_ms - a_ms);
                input
            };
            let lo = model.evaluate(&make(active_ms)).total;
            let hi = model.evaluate(&make(active_ms + 1)).total;
            prop_assert!(hi >= lo);
        }

        /// Total power is bounded below by the static floor.
        #[test]
        fn power_within_physical_bounds(
            active_ms in 0u64..500,
            off_ms in 0u64..500,
            events in 0u64..1_000_000u64,
        ) {
            prop_assume!(active_ms + off_ms > 0);
            let model = PowerModel::igloo_nano();
            let input = ActivityInput {
                active: if active_ms > 0 { vec![(1, SimDuration::from_ms(active_ms))] } else { vec![] },
                off: SimDuration::from_ms(off_ms),
                wake_count: 0,
                event_count: events,
            };
            let total = model.evaluate(&input).total;
            prop_assert!(total >= model.static_power);
        }

        /// The meter's integral equals the sum of its pieces: total
        /// span is preserved exactly.
        #[test]
        fn meter_conserves_time(
            segments in proptest::collection::vec((1u64..16, 1u64..10_000), 1..50),
        ) {
            let mut meter = PowerMeter::new(SimTime::ZERO);
            let mut t = SimTime::ZERO;
            for (i, &(mult, us)) in segments.iter().enumerate() {
                if i % 3 == 2 {
                    meter.clock_off(t);
                } else {
                    meter.clock_multiplier(t, mult);
                }
                t += SimDuration::from_us(us);
            }
            let activity = meter.finish(t);
            prop_assert_eq!(activity.span(), t.saturating_duration_since(SimTime::ZERO));
        }

        /// Deeper division never increases clock power.
        #[test]
        fn division_monotone(m in 1u64..1_000) {
            let model = PowerModel::igloo_nano();
            let at = |mult: u64| {
                model.evaluate(&ActivityInput {
                    active: vec![(mult, SimDuration::from_ms(100))],
                    ..ActivityInput::default()
                }).total
            };
            prop_assert!(at(m + 1) <= at(m));
            prop_assert!(at(m) >= Power::from_microwatts(50.0));
        }
    }
}
