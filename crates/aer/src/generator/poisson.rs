//! Poisson spike generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::Spike;

use super::SpikeSource;

/// Homogeneous Poisson process over a uniform address range — the
/// workload the paper's Matlab model feeds the clock generator for the
/// Fig. 6 accuracy sweep ("a configurable event rate Poisson distributed
/// spike stream").
///
/// Inter-arrival times are exponential with mean `1 / rate`, sampled by
/// inverse transform from a seeded [`StdRng`], so streams are
/// reproducible.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_sim::time::SimTime;
///
/// let mut gen = PoissonGenerator::new(10_000.0, 64, 42);
/// let train = gen.generate(SimTime::from_ms(100));
/// // ~1000 events at 10 kevt/s over 100 ms.
/// assert!((800..1200).contains(&train.len()));
/// ```
#[derive(Debug, Clone)]
pub struct PoissonGenerator {
    rate_hz: f64,
    num_addresses: u16,
    rng: StdRng,
    now: SimTime,
}

impl PoissonGenerator {
    /// Creates a generator with mean event rate `rate_hz` (events per
    /// second), addresses uniform in `0..num_addresses`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite, or if
    /// `num_addresses` is zero or exceeds the 10-bit bus.
    pub fn new(rate_hz: f64, num_addresses: u16, seed: u64) -> PoissonGenerator {
        assert!(
            rate_hz.is_finite() && rate_hz > 0.0,
            "Poisson rate must be positive and finite, got {rate_hz}"
        );
        assert!(
            (1..=crate::address::MAX_ADDRESS + 1).contains(&num_addresses),
            "num_addresses must be 1..=1024, got {num_addresses}"
        );
        PoissonGenerator {
            rate_hz,
            num_addresses,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
        }
    }

    /// The configured mean rate in events per second.
    pub fn rate_hz(&self) -> f64 {
        self.rate_hz
    }

    /// Samples one exponential inter-arrival time.
    fn sample_interval(&mut self) -> SimDuration {
        // Inverse-transform sampling: -ln(U) / rate, with U in (0, 1].
        let u: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
        let secs = -u.ln() / self.rate_hz;
        // Quantize to >= 1 ps so time strictly advances.
        SimDuration::from_secs_f64(secs.max(1e-12))
    }
}

impl SpikeSource for PoissonGenerator {
    fn next_spike(&mut self) -> Option<Spike> {
        let dt = self.sample_interval();
        self.now = self.now.saturating_add(dt);
        let addr = Address::new(self.rng.gen_range(0..self.num_addresses))
            .expect("num_addresses validated at construction");
        Some(Spike::new(self.now, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::super::assert_time_ordered;
    use super::*;

    #[test]
    fn mean_rate_converges() {
        for &rate in &[1_000.0, 50_000.0, 550_000.0] {
            let mut gen = PoissonGenerator::new(rate, 256, 7);
            let train = gen.generate(SimTime::from_ms(500));
            let measured = train.mean_rate();
            let rel = (measured - rate).abs() / rate;
            assert!(rel < 0.1, "rate {rate}: measured {measured}, rel err {rel}");
        }
    }

    #[test]
    fn is_reproducible_for_same_seed() {
        let a = PoissonGenerator::new(10_000.0, 64, 99).generate(SimTime::from_ms(50));
        let b = PoissonGenerator::new(10_000.0, 64, 99).generate(SimTime::from_ms(50));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = PoissonGenerator::new(10_000.0, 64, 1).generate(SimTime::from_ms(50));
        let b = PoissonGenerator::new(10_000.0, 64, 2).generate(SimTime::from_ms(50));
        assert_ne!(a, b);
    }

    #[test]
    fn times_strictly_increase() {
        let mut gen = PoissonGenerator::new(2_000_000.0, 4, 3);
        let train = gen.generate(SimTime::from_ms(5));
        assert_time_ordered(&train);
        // With the >=1 ps quantization they are in fact strictly increasing.
        for w in train.as_slice().windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }

    #[test]
    fn addresses_cover_range() {
        let mut gen = PoissonGenerator::new(100_000.0, 8, 5);
        let train = gen.generate(SimTime::from_ms(20));
        let mut seen = [false; 8];
        for s in &train {
            seen[s.addr.value() as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all 8 addresses should appear in ~2000 events");
    }

    #[test]
    fn exponential_isi_statistics() {
        // For an exponential distribution the coefficient of variation is 1.
        let mut gen = PoissonGenerator::new(100_000.0, 4, 11);
        let train = gen.generate(SimTime::from_ms(200));
        let isis: Vec<f64> = train.inter_spike_intervals().map(|d| d.as_secs_f64()).collect();
        let n = isis.len() as f64;
        let mean = isis.iter().sum::<f64>() / n;
        let var = isis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "Poisson ISI CV should be ~1, got {cv}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = PoissonGenerator::new(0.0, 4, 0);
    }

    #[test]
    #[should_panic(expected = "num_addresses")]
    fn too_many_addresses_panics() {
        let _ = PoissonGenerator::new(1.0, 2000, 0);
    }
}
