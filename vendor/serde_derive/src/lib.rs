//! Offline stub of `serde_derive`.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` expand to nothing:
//! the companion `serde` stub blanket-implements both marker traits, so
//! there is no impl to generate. Declaring `attributes(serde)` keeps
//! any future `#[serde(...)]` field attributes from being rejected by
//! the compiler as unknown.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
