//! The AER front-end input monitor (paper Fig. 4).
//!
//! The asynchronous `REQ` line crosses into the clocked domain through
//! a cascade of two flip-flops that reduces the chance of
//! metastability; the 10-bit `ADDR` bus — guaranteed stable while
//! `REQ` is high — is captured by a single register. A request
//! therefore becomes visible to the sampling FSM `sync_stages` ticks
//! after assertion, one tick later if the edge fell inside the
//! metastability window of a tick.

use serde::{Deserialize, Serialize};

use aetr_aer::address::Address;
use aetr_sim::time::{SimDuration, SimTime};

/// Front-end configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontEndConfig {
    /// Synchroniser depth in flip-flops (ticks of latency). The
    /// prototype uses 2; 0 models an ideal synchroniser (useful when
    /// comparing against the behavioral engine).
    pub sync_stages: u32,
    /// Setup/hold window around a tick: a `REQ` edge closer than this
    /// to the capturing edge is (deterministically) taken by the *next*
    /// tick, modelling metastability resolution.
    pub metastability_window: SimDuration,
}

impl FrontEndConfig {
    /// The prototype: 2-FF synchroniser, 200 ps setup/hold window.
    pub fn prototype() -> FrontEndConfig {
        FrontEndConfig { sync_stages: 2, metastability_window: SimDuration::from_ps(200) }
    }

    /// An ideal front end: zero latency, zero window. Makes the DES
    /// interface tick-for-tick comparable with the behavioral engine.
    pub fn ideal() -> FrontEndConfig {
        FrontEndConfig { sync_stages: 0, metastability_window: SimDuration::ZERO }
    }
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

/// The input monitor state machine.
///
/// # Examples
///
/// ```
/// use aetr::front_end::{FrontEndConfig, InputMonitor};
/// use aetr_aer::address::Address;
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut monitor = InputMonitor::new(FrontEndConfig::prototype());
/// monitor.req_rise(SimTime::from_ns(10), Address::new(5)?);
/// // Two clock ticks to synchronise:
/// assert!(!monitor.on_tick(SimTime::from_ns(100)));
/// assert!(monitor.on_tick(SimTime::from_ns(200)));
/// assert_eq!(monitor.sampled_address(), Some(Address::new(5)?));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputMonitor {
    config: FrontEndConfig,
    /// `(rise time, latched address)` of the in-flight request.
    request: Option<(SimTime, Address)>,
    /// Ticks the request has propagated through.
    stages_passed: u32,
}

impl InputMonitor {
    /// Creates an idle monitor.
    pub fn new(config: FrontEndConfig) -> InputMonitor {
        InputMonitor { config, request: None, stages_passed: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &FrontEndConfig {
        &self.config
    }

    /// Handles the asynchronous `REQ` rising edge: latches the address
    /// (stable per the AER contract) and starts synchronisation.
    ///
    /// # Panics
    ///
    /// Panics if a request is already in flight — AER forbids a second
    /// `REQ` before the first acknowledge completes.
    pub fn req_rise(&mut self, now: SimTime, addr: Address) {
        assert!(self.request.is_none(), "REQ rise while a request is already in flight");
        self.request = Some((now, addr));
        self.stages_passed = 0;
    }

    /// A sampling clock tick at `now`. Returns `true` once the request
    /// is synchronised and ready to be sampled by the FSM.
    pub fn on_tick(&mut self, now: SimTime) -> bool {
        let Some((rise, _)) = self.request else {
            return false;
        };
        if self.is_synchronized() {
            return true;
        }
        // An edge inside the metastability window of this tick is not
        // captured by it.
        if now < rise + self.config.metastability_window {
            return false;
        }
        self.stages_passed += 1;
        self.is_synchronized()
    }

    /// `true` once the synchroniser has propagated the request.
    pub fn is_synchronized(&self) -> bool {
        self.request.is_some() && self.stages_passed >= self.config.sync_stages
    }

    /// The latched address of the in-flight request.
    pub fn sampled_address(&self) -> Option<Address> {
        self.request.map(|(_, a)| a)
    }

    /// Handles the `REQ` falling edge (after acknowledge): clears the
    /// monitor for the next request.
    pub fn req_fall(&mut self) {
        self.request = None;
        self.stages_passed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(v: u16) -> Address {
        Address::new(v).unwrap()
    }

    #[test]
    fn ideal_front_end_synchronises_instantly() {
        let mut m = InputMonitor::new(FrontEndConfig::ideal());
        m.req_rise(SimTime::from_ns(5), addr(1));
        assert!(m.is_synchronized(), "0-stage synchroniser is immediate");
        assert!(m.on_tick(SimTime::from_ns(10)));
    }

    #[test]
    fn two_stage_sync_takes_two_ticks() {
        let mut m = InputMonitor::new(FrontEndConfig::prototype());
        m.req_rise(SimTime::from_ns(0), addr(7));
        assert!(!m.on_tick(SimTime::from_ns(70)));
        assert!(m.on_tick(SimTime::from_ns(140)));
        assert!(m.on_tick(SimTime::from_ns(210)), "stays synchronised");
    }

    #[test]
    fn metastable_edge_slips_one_tick() {
        let cfg = FrontEndConfig { sync_stages: 1, metastability_window: SimDuration::from_ns(1) };
        let mut m = InputMonitor::new(cfg);
        // REQ rises 500 ps before the tick: inside the 1 ns window.
        m.req_rise(SimTime::from_ps(9_500), addr(3));
        assert!(!m.on_tick(SimTime::from_ps(10_000)), "edge in the window is missed");
        assert!(m.on_tick(SimTime::from_ps(20_000)));
    }

    #[test]
    fn clean_edge_is_captured_by_next_tick() {
        let cfg = FrontEndConfig { sync_stages: 1, metastability_window: SimDuration::from_ns(1) };
        let mut m = InputMonitor::new(cfg);
        m.req_rise(SimTime::from_ns(5), addr(3));
        assert!(m.on_tick(SimTime::from_ns(10)));
    }

    #[test]
    fn req_fall_clears_for_next_request() {
        let mut m = InputMonitor::new(FrontEndConfig::ideal());
        m.req_rise(SimTime::from_ns(0), addr(1));
        m.req_fall();
        assert_eq!(m.sampled_address(), None);
        assert!(!m.on_tick(SimTime::from_ns(10)));
        m.req_rise(SimTime::from_ns(20), addr(2));
        assert_eq!(m.sampled_address(), Some(addr(2)));
    }

    #[test]
    fn idle_monitor_reports_nothing() {
        let mut m = InputMonitor::new(FrontEndConfig::prototype());
        assert!(!m.on_tick(SimTime::from_ns(10)));
        assert!(!m.is_synchronized());
        assert_eq!(m.sampled_address(), None);
    }

    #[test]
    #[should_panic(expected = "already in flight")]
    fn double_req_rise_panics() {
        let mut m = InputMonitor::new(FrontEndConfig::prototype());
        m.req_rise(SimTime::from_ns(0), addr(1));
        m.req_rise(SimTime::from_ns(1), addr(2));
    }
}
