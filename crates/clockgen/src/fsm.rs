//! Cycle-accurate sampling FSM — a direct transcription of the paper's
//! Fig. 1 pseudo-code.
//!
//! ```text
//! function AETRsampling(Tmin, θdiv, Ndiv)
//!   Tsample ← Tmin; cnt_sample ← 0; cnt_div ← 0
//!   loop
//!     if request() then
//!       sample(); acknowledge()
//!       cnt_sample ← 0; cnt_div ← 0; Tsample ← Tmin
//!     else if cnt_sample = θdiv then
//!       if cnt_div = Ndiv then shutdown_clk(); wait_for_request()
//!       else Tsample ← 2·Tsample; cnt_sample ← 0; cnt_div ← cnt_div+1
//!     else cnt_sample ← cnt_sample + 1
//!     wait_one_cycle()
//! ```
//!
//! One simplification relative to the letter of the pseudo-code: the
//! division is applied on the tick at which `cnt_sample` *reaches*
//! `θ_div` rather than burning an extra bookkeeping cycle, so every
//! period runs for exactly `θ_div` ticks. This matches the segment
//! table in [`crate::segments`], and their equivalence is
//! property-tested below.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::config::{ClockGenConfig, DivisionPolicy};

/// What happened on a sampling tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsmAction {
    /// A pending request was sampled; counter and period reset.
    Sampled {
        /// Counter value captured as the event timestamp (in `T_min`
        /// units, before width clamping).
        timestamp_ticks: u64,
    },
    /// Quiet tick; the counter advanced by the current increment.
    Ticked,
    /// Quiet tick that also divided the clock.
    Divided {
        /// New period multiplier.
        multiplier: u64,
    },
    /// Quiet tick that switched the clock off.
    ShutDown,
}

/// What ends one segment of an idle batch advance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdleBoundary {
    /// The batch ran out of room before the barrier; the FSM is still
    /// in the same period.
    None,
    /// The segment's last tick divided the clock.
    Divided {
        /// New period multiplier, in force from the boundary tick on.
        multiplier: u64,
    },
    /// The segment's last tick switched the clock off.
    ShutDown,
}

/// One maximal run of quiet ticks at a constant period multiplier,
/// produced by [`SamplerFsm::advance_idle`].
///
/// Ticks land at `first_tick + i · multiplier · T_min` for
/// `i ∈ [0, ticks)`; `last_tick` is the final one, and `boundary` says
/// what that final tick did beyond advancing the counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdleSegment {
    /// Time of the segment's first tick.
    pub first_tick: SimTime,
    /// Time of the segment's last tick (equals `first_tick` for a
    /// single-tick segment).
    pub last_tick: SimTime,
    /// Number of ticks in the segment (≥ 1).
    pub ticks: u64,
    /// Period multiplier in force *during* the segment (the boundary
    /// tick's own counter increment uses this value; a division takes
    /// effect after it).
    pub multiplier: u64,
    /// What the last tick did.
    pub boundary: IdleBoundary,
}

/// Result of a batch advance: the segments walked plus where the tick
/// chain resumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdleAdvance {
    /// Constant-multiplier segments, in time order. O(`N_div`) long:
    /// every segment but the last ends in a division.
    pub segments: Vec<IdleSegment>,
    /// Time of the next tick, at or after the barrier — `None` if the
    /// batch ended in shutdown (a stopped clock has no next tick).
    pub next_tick: Option<SimTime>,
}

/// Snapshot of the divider state a capture happened under, read by the
/// lineage layer *before* the capturing tick resets the FSM
/// ([`SamplerFsm::capture_context`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CaptureContext {
    /// Recursive-division level `cnt_div` at the capturing tick.
    pub division_level: u32,
    /// Period multiplier at the capturing tick
    /// (`1 << division_level` under the recursive policy).
    pub multiplier: u64,
    /// Sampling period at the capturing tick
    /// (`multiplier · T_min`).
    pub sampling_period: SimDuration,
}

/// Cycle-accurate state of the Fig. 1 sampling FSM.
///
/// Drive it with [`on_tick`](SamplerFsm::on_tick) at every sampling
/// clock edge, passing whether an AER request is pending. While
/// [asleep](SamplerFsm::is_asleep) there are no ticks; call
/// [`wake`](SamplerFsm::wake) when a request restarts the oscillator.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::config::ClockGenConfig;
/// use aetr_clockgen::fsm::{FsmAction, SamplerFsm};
///
/// let mut fsm = SamplerFsm::new(&ClockGenConfig::prototype().with_theta_div(4));
/// for _ in 0..4 {
///     assert!(matches!(fsm.on_tick(false), FsmAction::Ticked | FsmAction::Divided { .. }));
/// }
/// assert_eq!(fsm.multiplier(), 2); // divided after θ=4 ticks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerFsm {
    theta_div: u32,
    n_div: u32,
    policy: DivisionPolicy,
    counter_max: u64,
    base_period: SimDuration,

    multiplier: u64,
    cnt_sample: u32,
    cnt_div: u32,
    counter: u64,
    asleep: bool,
}

impl SamplerFsm {
    /// Creates the FSM in its reset state (fastest period, counters
    /// zero, clock running).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate.
    pub fn new(config: &ClockGenConfig) -> SamplerFsm {
        config.validate().expect("sampler FSM requires a valid configuration");
        SamplerFsm {
            theta_div: config.theta_div,
            n_div: config.n_div,
            policy: config.policy,
            counter_max: config.counter_max(),
            base_period: config.base_sampling_period(),
            multiplier: 1,
            cnt_sample: 0,
            cnt_div: 0,
            counter: 0,
            asleep: false,
        }
    }

    /// The divider state an event captured on the *next* tick would be
    /// attributed to. Lineage collection reads this immediately before
    /// [`on_tick`](SamplerFsm::on_tick), whose `Sampled` arm resets
    /// level, multiplier and period.
    pub fn capture_context(&self) -> CaptureContext {
        CaptureContext {
            division_level: self.cnt_div,
            multiplier: self.multiplier,
            sampling_period: self.current_period(),
        }
    }

    /// Current sampling period (`multiplier · T_min`).
    pub fn current_period(&self) -> SimDuration {
        self.base_period.saturating_mul(self.multiplier)
    }

    /// Current period multiplier.
    pub fn multiplier(&self) -> u64 {
        self.multiplier
    }

    /// Current timestamp counter value (in `T_min` units).
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Current recursive-division level `cnt_div` (0 at full rate,
    /// up to `N_div` just before shutdown).
    ///
    /// The telemetry sampler reports this as the instantaneous divider
    /// level; it always satisfies `multiplier() == 1 << division_level()`.
    pub fn division_level(&self) -> u32 {
        self.cnt_div
    }

    /// `true` after shutdown, until [`wake`](SamplerFsm::wake).
    pub fn is_asleep(&self) -> bool {
        self.asleep
    }

    /// Advances one sampling clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if called while asleep — a stopped clock has no ticks;
    /// call [`wake`](SamplerFsm::wake) first.
    pub fn on_tick(&mut self, request_pending: bool) -> FsmAction {
        assert!(!self.asleep, "on_tick while the clock is stopped");
        // The counter advances by the current increment on every cycle,
        // so its value always equals elapsed/T_min at tick boundaries.
        self.counter = self.counter.saturating_add(self.multiplier).min(self.counter_max);

        if request_pending {
            let timestamp_ticks = self.counter;
            self.reset_measurement();
            return FsmAction::Sampled { timestamp_ticks };
        }

        self.cnt_sample += 1;
        if self.cnt_sample >= self.theta_div {
            self.cnt_sample = 0;
            match self.policy {
                DivisionPolicy::Never => FsmAction::Ticked,
                DivisionPolicy::Recursive | DivisionPolicy::Linear
                    if self.cnt_div == self.n_div =>
                {
                    self.asleep = true;
                    FsmAction::ShutDown
                }
                DivisionPolicy::DivideOnly if self.cnt_div == self.n_div => FsmAction::Ticked,
                DivisionPolicy::Recursive | DivisionPolicy::DivideOnly => {
                    self.cnt_div += 1;
                    self.multiplier *= 2;
                    FsmAction::Divided { multiplier: self.multiplier }
                }
                DivisionPolicy::Linear => {
                    self.cnt_div += 1;
                    self.multiplier += 1;
                    FsmAction::Divided { multiplier: self.multiplier }
                }
            }
        } else {
            FsmAction::Ticked
        }
    }

    /// Handles an AER request arriving while the clock is stopped: the
    /// oscillator restarts and the (saturated) frozen counter becomes
    /// the event's timestamp. Returns that timestamp in `T_min` units.
    ///
    /// # Panics
    ///
    /// Panics if the clock is running (a running clock samples requests
    /// through [`on_tick`](SamplerFsm::on_tick)).
    pub fn wake(&mut self) -> u64 {
        assert!(self.asleep, "wake() on a running clock");
        let frozen = self.counter;
        self.asleep = false;
        self.reset_measurement();
        frozen
    }

    /// Forces the clock off regardless of FSM state — a stuck
    /// oscillator fault, not a policy decision. The counter freezes at
    /// its current value exactly as in a normal shutdown, so a later
    /// [`wake`](SamplerFsm::wake) delivers a coherent (if saturated)
    /// timestamp. Idempotent: forcing an already-stopped clock does
    /// nothing.
    pub fn force_shutdown(&mut self) {
        self.asleep = true;
    }

    /// Batch-advances the quiet tick chain analytically: processes the
    /// already-due tick at `first_tick` plus every subsequent tick
    /// strictly before `barrier`, all with `request_pending = false`,
    /// in O(`N_div`) work instead of one [`on_tick`](SamplerFsm::on_tick)
    /// call per tick.
    ///
    /// Between requests the trajectory is closed-form — `θ_div` ticks
    /// per multiplier level, then divide (or plateau, per the policy),
    /// then shut down after `N_div` divisions — so a run of `k` quiet
    /// ticks at multiplier `m` collapses to one counter update
    /// (`k` clamped adds of `+m` equal one clamped add of `+k·m`,
    /// because addition is monotone and the `counter_max` clamp is
    /// absorbing). The resulting FSM state is bit-identical to `k`
    /// per-tick steps; the returned segments carry enough structure
    /// (tick times, multipliers, boundary actions) for callers to
    /// replay the side effects — power-meter transitions, telemetry
    /// residency, live samples — segment-wise with the same exactness.
    ///
    /// The tick at `first_tick` is processed even if it is at or past
    /// the barrier (it was already popped by the caller); later ticks
    /// stop at the barrier, and `next_tick` lands at or after it.
    ///
    /// # Panics
    ///
    /// Panics if called while asleep, like `on_tick`.
    pub fn advance_idle(&mut self, first_tick: SimTime, barrier: SimTime) -> IdleAdvance {
        let mut segments = Vec::new();
        let next_tick = self.advance_idle_into(first_tick, barrier, &mut segments);
        IdleAdvance { segments, next_tick }
    }

    /// [`advance_idle`](SamplerFsm::advance_idle) into a caller-owned
    /// buffer (cleared first), so a hot loop can reuse one allocation
    /// across batches. Returns the resume time (`None` after shutdown).
    pub fn advance_idle_into(
        &mut self,
        first_tick: SimTime,
        barrier: SimTime,
        out: &mut Vec<IdleSegment>,
    ) -> Option<SimTime> {
        assert!(!self.asleep, "advance_idle while the clock is stopped");
        out.clear();
        let mut t = first_tick;
        // The tick at `first_tick` was already due; it is processed
        // unconditionally even when the barrier is at or before it.
        let mut forced = true;
        loop {
            let period = self.current_period();
            // Ticks land at t, t+p, t+2p, …; those strictly before the
            // barrier are ceil((barrier − t) / p) of them.
            let gap = barrier.saturating_duration_since(t);
            let mut avail =
                if barrier > t { gap.as_ps().div_ceil(period.as_ps().max(1)) } else { 0 };
            if forced {
                avail = avail.max(1);
                forced = false;
            }
            if avail == 0 {
                return Some(t);
            }
            let to_boundary = u64::from(self.theta_div - self.cnt_sample);
            let plateau = match self.policy {
                DivisionPolicy::Never => true,
                DivisionPolicy::DivideOnly => self.cnt_div == self.n_div,
                DivisionPolicy::Recursive | DivisionPolicy::Linear => false,
            };
            if plateau || avail < to_boundary {
                // No state-changing boundary inside the batch: either
                // the policy plateaus (cnt_sample just wraps at θ_div)
                // or the barrier arrives first.
                self.step_counter(avail);
                self.cnt_sample = if plateau {
                    ((u64::from(self.cnt_sample) + avail) % u64::from(self.theta_div)) as u32
                } else {
                    self.cnt_sample + avail as u32
                };
                out.push(IdleSegment {
                    first_tick: t,
                    last_tick: t.saturating_add(period.saturating_mul(avail - 1)),
                    ticks: avail,
                    multiplier: self.multiplier,
                    boundary: IdleBoundary::None,
                });
                return Some(t.saturating_add(period.saturating_mul(avail)));
            }
            // The division boundary lands inside the batch: close the
            // segment at it and decide, exactly as `on_tick` would.
            let boundary_tick = t.saturating_add(period.saturating_mul(to_boundary - 1));
            self.step_counter(to_boundary);
            self.cnt_sample = 0;
            let during = self.multiplier;
            if self.cnt_div == self.n_div {
                // Recursive/Linear out of divisions (the plateauing
                // policies never reach here): the clock stops.
                self.asleep = true;
                out.push(IdleSegment {
                    first_tick: t,
                    last_tick: boundary_tick,
                    ticks: to_boundary,
                    multiplier: during,
                    boundary: IdleBoundary::ShutDown,
                });
                return None;
            }
            self.cnt_div += 1;
            self.multiplier = match self.policy {
                DivisionPolicy::Linear => self.multiplier + 1,
                _ => self.multiplier * 2,
            };
            out.push(IdleSegment {
                first_tick: t,
                last_tick: boundary_tick,
                ticks: to_boundary,
                multiplier: during,
                boundary: IdleBoundary::Divided { multiplier: self.multiplier },
            });
            t = boundary_tick.saturating_add(self.current_period());
        }
    }

    /// `ticks` quiet-tick counter increments at the current multiplier,
    /// collapsed into one clamped add.
    fn step_counter(&mut self, ticks: u64) {
        self.counter = self
            .counter
            .saturating_add(self.multiplier.saturating_mul(ticks))
            .min(self.counter_max);
    }

    fn reset_measurement(&mut self) {
        self.counter = 0;
        self.cnt_sample = 0;
        self.cnt_div = 0;
        self.multiplier = 1;
    }

    /// Applies a new configuration at runtime (the SPI path of §4.1:
    /// "θ_div and N_div ... can be loaded from the outside via the SPI
    /// configuration interface ... at run-time").
    ///
    /// Hardware semantics: the counters keep their values; the new
    /// `θ_div`/`N_div`/policy take effect from the next cycle. If the
    /// FSM has already divided more times than the new `N_div` allows,
    /// the next quiet division boundary shuts the clock down (or
    /// plateaus, per the policy).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate or changes the base
    /// sampling period (the period is a synthesis-time property; only
    /// the division parameters are runtime registers).
    pub fn reconfigure(&mut self, config: &ClockGenConfig) {
        config.validate().expect("reconfigure requires a valid configuration");
        assert_eq!(
            config.base_sampling_period(),
            self.base_period,
            "base sampling period is fixed at synthesis time"
        );
        self.theta_div = config.theta_div;
        self.n_div = config.n_div;
        self.policy = config.policy;
        self.counter_max = config.counter_max();
        // Clamp the in-flight division state into the new envelope so
        // the next boundary decision is well-defined.
        if self.cnt_div > self.n_div {
            self.cnt_div = self.n_div;
        }
        if self.cnt_sample >= self.theta_div {
            self.cnt_sample = self.theta_div - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::{QuantizeOutcome, SegmentTable};

    fn cfg() -> ClockGenConfig {
        ClockGenConfig::prototype().with_theta_div(8).with_n_div(3)
    }

    #[test]
    fn capture_context_tracks_the_divider_until_the_capturing_tick() {
        let mut fsm = SamplerFsm::new(&cfg());
        assert_eq!(
            fsm.capture_context(),
            CaptureContext {
                division_level: 0,
                multiplier: 1,
                sampling_period: fsm.current_period(),
            }
        );
        // Run past the first division; the context follows the divider.
        for _ in 0..8 {
            fsm.on_tick(false);
        }
        let ctx = fsm.capture_context();
        assert_eq!(ctx.division_level, 1);
        assert_eq!(ctx.multiplier, 2);
        assert_eq!(ctx.sampling_period, fsm.current_period());
        // A capture resets the divider; the pre-tick context is what
        // the captured event ran under.
        fsm.on_tick(true);
        assert_eq!(fsm.capture_context().multiplier, 1);
    }

    #[test]
    fn divides_exactly_every_theta_ticks() {
        let mut fsm = SamplerFsm::new(&cfg());
        let mut division_ticks = Vec::new();
        for tick in 1..=100 {
            match fsm.on_tick(false) {
                FsmAction::Divided { .. } => division_ticks.push(tick),
                FsmAction::ShutDown => {
                    division_ticks.push(tick);
                    break;
                }
                _ => {}
            }
        }
        // θ=8: divide after ticks 8, 16, 24, shutdown after 32.
        assert_eq!(division_ticks, vec![8, 16, 24, 32]);
        assert!(fsm.is_asleep());
    }

    #[test]
    fn counter_tracks_elapsed_time_exactly() {
        let mut fsm = SamplerFsm::new(&cfg());
        let mut elapsed_ticks = 0u64;
        for _ in 0..30 {
            let mult_before = fsm.multiplier();
            fsm.on_tick(false);
            elapsed_ticks += mult_before;
            assert_eq!(fsm.counter(), elapsed_ticks);
        }
    }

    #[test]
    fn sample_resets_everything() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..20 {
            fsm.on_tick(false);
        }
        assert!(fsm.multiplier() > 1);
        let action = fsm.on_tick(true);
        let FsmAction::Sampled { timestamp_ticks } = action else {
            panic!("expected Sampled, got {action:?}");
        };
        assert!(timestamp_ticks > 20);
        assert_eq!(fsm.multiplier(), 1);
        assert_eq!(fsm.counter(), 0);
    }

    #[test]
    fn wake_returns_saturated_counter() {
        let mut fsm = SamplerFsm::new(&cfg());
        while !fsm.is_asleep() {
            fsm.on_tick(false);
        }
        // θ·(1+2+4+8) = 8·15 = 120.
        let frozen = fsm.wake();
        assert_eq!(frozen, 120);
        assert!(!fsm.is_asleep());
        assert_eq!(fsm.multiplier(), 1);
    }

    #[test]
    fn counter_clamps_at_width() {
        let config = ClockGenConfig {
            counter_bits: 6, // max 63
            ..cfg()
        };
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..25 {
            if fsm.is_asleep() {
                break;
            }
            fsm.on_tick(false);
        }
        assert!(fsm.counter() <= 63);
    }

    #[test]
    fn never_policy_never_divides_or_sleeps() {
        let config = cfg().with_policy(DivisionPolicy::Never);
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..1_000 {
            assert!(matches!(fsm.on_tick(false), FsmAction::Ticked));
        }
        assert_eq!(fsm.multiplier(), 1);
        assert!(!fsm.is_asleep());
    }

    #[test]
    fn divide_only_plateaus() {
        let config = cfg().with_policy(DivisionPolicy::DivideOnly);
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..1_000 {
            fsm.on_tick(false);
            assert!(!fsm.is_asleep());
        }
        assert_eq!(fsm.multiplier(), 8);
    }

    #[test]
    fn linear_policy_grows_arithmetically() {
        let config = cfg().with_policy(DivisionPolicy::Linear);
        let mut fsm = SamplerFsm::new(&config);
        let mut mults = vec![fsm.multiplier()];
        loop {
            match fsm.on_tick(false) {
                FsmAction::Divided { multiplier } => mults.push(multiplier),
                FsmAction::ShutDown => break,
                _ => {}
            }
        }
        assert_eq!(mults, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reconfigure_applies_new_knobs_live() {
        let mut fsm = SamplerFsm::new(&cfg()); // θ=8, N=3
        for _ in 0..10 {
            fsm.on_tick(false);
        }
        assert_eq!(fsm.multiplier(), 2, "one division after 8 ticks");
        // Host raises θ to 16 and drops N to 1: the FSM is already at
        // cnt_div=1 == new N, so the next boundary shuts down instead
        // of dividing further.
        fsm.reconfigure(&cfg().with_theta_div(16).with_n_div(1));
        let mut shutdowns = 0;
        let mut divisions = 0;
        for _ in 0..40 {
            if fsm.is_asleep() {
                break;
            }
            match fsm.on_tick(false) {
                FsmAction::Divided { .. } => divisions += 1,
                FsmAction::ShutDown => shutdowns += 1,
                _ => {}
            }
        }
        assert_eq!(divisions, 0, "no room left under the new N_div");
        assert_eq!(shutdowns, 1);
    }

    #[test]
    fn reconfigure_counter_keeps_running() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..5 {
            fsm.on_tick(false);
        }
        let before = fsm.counter();
        fsm.reconfigure(&cfg().with_theta_div(32));
        fsm.on_tick(false);
        assert_eq!(fsm.counter(), before + fsm.multiplier(), "counter continuity");
    }

    #[test]
    fn force_shutdown_freezes_counter_for_wake() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..5 {
            fsm.on_tick(false);
        }
        let frozen = fsm.counter();
        fsm.force_shutdown();
        assert!(fsm.is_asleep());
        fsm.force_shutdown(); // idempotent
        assert_eq!(fsm.wake(), frozen, "wake delivers the frozen counter");
        assert!(!fsm.is_asleep());
    }

    #[test]
    #[should_panic(expected = "synthesis time")]
    fn reconfigure_cannot_change_base_period() {
        let mut fsm = SamplerFsm::new(&cfg());
        let other_ring = ClockGenConfig { prescaler_stages: 3, ..cfg() };
        fsm.reconfigure(&other_ring);
    }

    #[test]
    #[should_panic(expected = "stopped")]
    fn tick_while_asleep_panics() {
        let mut fsm = SamplerFsm::new(&cfg());
        while !fsm.is_asleep() {
            fsm.on_tick(false);
        }
        fsm.on_tick(false);
    }

    /// Per-tick reference for `advance_idle`: steps one quiet tick at a
    /// time with the scheduler's exact timing rule (next tick one
    /// *post-action* period after the current one), recording every
    /// action, until the barrier or shutdown.
    fn reference_idle(
        fsm: &mut SamplerFsm,
        first_tick: SimTime,
        barrier: SimTime,
    ) -> (Vec<(SimTime, FsmAction)>, Option<SimTime>) {
        let mut t = first_tick;
        let mut forced = true;
        let mut actions = Vec::new();
        loop {
            if !forced && t >= barrier {
                return (actions, Some(t));
            }
            forced = false;
            let action = fsm.on_tick(false);
            actions.push((t, action));
            if matches!(action, FsmAction::ShutDown) {
                return (actions, None);
            }
            t = t.saturating_add(fsm.current_period());
        }
    }

    /// The batch advance is bit-identical to per-tick stepping: same
    /// final FSM state, same resume time, and segments that cover
    /// exactly the reference's tick/division/shutdown trajectory —
    /// across policies, θ/N knobs, mid-period starting phases and
    /// barrier placements (including a barrier at or before the first
    /// tick, which forces exactly one tick through).
    #[test]
    fn advance_idle_matches_per_tick_stepping() {
        let base = cfg().base_sampling_period();
        for policy in [
            DivisionPolicy::Recursive,
            DivisionPolicy::DivideOnly,
            DivisionPolicy::Never,
            DivisionPolicy::Linear,
        ] {
            for (theta, n_div) in [(2u32, 0u32), (3, 1), (8, 3), (5, 6)] {
                let config = cfg().with_policy(policy).with_theta_div(theta).with_n_div(n_div);
                for pre_ticks in [0u32, 1, 4, 9] {
                    for barrier_ticks in [0u64, 1, 2, 7, 33, 400] {
                        for skew in [SimDuration::ZERO, SimDuration::from_ps(1)] {
                            let mut reference = SamplerFsm::new(&config);
                            for _ in 0..pre_ticks {
                                if reference.is_asleep() {
                                    break;
                                }
                                reference.on_tick(false);
                            }
                            if reference.is_asleep() {
                                continue;
                            }
                            let mut fast = reference.clone();
                            let first = SimTime::from_us(3);
                            let barrier =
                                (first + base.saturating_mul(barrier_ticks)).saturating_add(skew);

                            let (actions, ref_next) =
                                reference_idle(&mut reference, first, barrier);
                            let adv = fast.advance_idle(first, barrier);

                            let case = format!(
                                "policy {policy:?} θ={theta} N={n_div} \
                                 pre={pre_ticks} barrier={barrier_ticks}+{skew}"
                            );
                            assert_eq!(fast, reference, "final FSM state ({case})");
                            assert_eq!(adv.next_tick, ref_next, "resume time ({case})");
                            let covered: u64 = adv.segments.iter().map(|s| s.ticks).sum();
                            assert_eq!(covered, actions.len() as u64, "tick count ({case})");

                            let mut idx = 0usize;
                            for seg in &adv.segments {
                                assert!(seg.ticks >= 1, "empty segment ({case})");
                                assert_eq!(
                                    seg.first_tick, actions[idx].0,
                                    "segment start ({case})"
                                );
                                let last = idx + seg.ticks as usize - 1;
                                assert_eq!(seg.last_tick, actions[last].0, "segment end ({case})");
                                match seg.boundary {
                                    IdleBoundary::Divided { multiplier } => assert_eq!(
                                        actions[last].1,
                                        FsmAction::Divided { multiplier },
                                        "division boundary ({case})"
                                    ),
                                    IdleBoundary::ShutDown => assert_eq!(
                                        actions[last].1,
                                        FsmAction::ShutDown,
                                        "shutdown boundary ({case})"
                                    ),
                                    IdleBoundary::None => assert_eq!(
                                        actions[last].1,
                                        FsmAction::Ticked,
                                        "quiet boundary ({case})"
                                    ),
                                }
                                // Interior ticks are all plain (a plateau
                                // segment's θ-wraps are `Ticked` too).
                                for (t_i, action) in &actions[idx..last] {
                                    assert_eq!(
                                        *action,
                                        FsmAction::Ticked,
                                        "interior tick at {t_i} ({case})"
                                    );
                                }
                                idx += seg.ticks as usize;
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn advance_idle_counter_saturates_like_per_tick() {
        let config = ClockGenConfig { counter_bits: 6, ..cfg() }.with_theta_div(8).with_n_div(3);
        let base = config.base_sampling_period();
        let mut reference = SamplerFsm::new(&config);
        let mut fast = reference.clone();
        let first = SimTime::from_us(1);
        let barrier = first + base.saturating_mul(10_000);
        let (_, ref_next) = reference_idle(&mut reference, first, barrier);
        let adv = fast.advance_idle(first, barrier);
        assert_eq!(fast, reference);
        assert_eq!(adv.next_tick, ref_next);
        assert_eq!(fast.counter(), 63, "clamped at the 6-bit width");
    }

    #[test]
    #[should_panic(expected = "stopped")]
    fn advance_idle_while_asleep_panics() {
        let mut fsm = SamplerFsm::new(&cfg());
        while !fsm.is_asleep() {
            fsm.on_tick(false);
        }
        fsm.advance_idle(SimTime::from_us(1), SimTime::from_us(2));
    }

    /// Ground-truth equivalence: stepping the FSM tick by tick and
    /// sampling at tick `n` yields exactly the timestamp the segment
    /// table predicts for the corresponding arrival interval.
    #[test]
    fn fsm_matches_segment_table() {
        for policy in [
            DivisionPolicy::Recursive,
            DivisionPolicy::DivideOnly,
            DivisionPolicy::Never,
            DivisionPolicy::Linear,
        ] {
            let config = cfg().with_policy(policy);
            let table = SegmentTable::new(&config);
            let base = config.base_sampling_period();
            // Arrival just after tick k-1, detected at tick k: for each
            // k, run a fresh FSM for k-1 quiet ticks + 1 sampling tick.
            for k in 1..200u64 {
                let mut fsm = SamplerFsm::new(&config);
                let mut quiet = 0u64;
                let mut fsm_ts = None;
                while fsm_ts.is_none() {
                    if fsm.is_asleep() {
                        fsm_ts = Some(fsm.wake());
                        break;
                    }
                    if quiet + 1 == k {
                        match fsm.on_tick(true) {
                            FsmAction::Sampled { timestamp_ticks } => {
                                fsm_ts = Some(timestamp_ticks)
                            }
                            other => panic!("expected Sampled, got {other:?}"),
                        }
                    } else {
                        fsm.on_tick(false);
                        quiet += 1;
                    }
                }
                // The table's prediction for an arrival immediately
                // after tick k-1 (delta = time of tick k-1 + epsilon).
                let prev_offset = match k {
                    1 => aetr_sim::time::SimDuration::ZERO,
                    _ => tick_offset(&table, k - 1),
                };
                let delta = prev_offset + aetr_sim::time::SimDuration::from_ps(1);
                let expected = match table.quantize(delta) {
                    QuantizeOutcome::Sampled { ticks, .. } => ticks,
                    QuantizeOutcome::Asleep { frozen_ticks, .. } => frozen_ticks,
                };
                assert_eq!(
                    fsm_ts.unwrap(),
                    expected,
                    "policy {policy:?}, detection tick {k}, base {base}"
                );
            }
        }
    }

    /// Offset of the `n`-th tick (1-based) according to the table.
    fn tick_offset(table: &SegmentTable, n: u64) -> aetr_sim::time::SimDuration {
        let mut remaining = n;
        for seg in table.segments() {
            if remaining <= seg.ticks {
                return seg.start + table.base_period().saturating_mul(seg.multiplier * remaining);
            }
            remaining -= seg.ticks;
        }
        match table.tail() {
            crate::segments::Tail::Infinite { multiplier } => {
                let start =
                    table.segments().last().map_or(aetr_sim::time::SimDuration::ZERO, |s| s.end);
                start + table.base_period().saturating_mul(multiplier * remaining)
            }
            crate::segments::Tail::Shutdown => {
                // No tick n exists; the FSM is asleep. Return the
                // shutdown offset so the caller's +eps lands in Asleep.
                table.shutdown_offset().unwrap()
            }
        }
    }
}
