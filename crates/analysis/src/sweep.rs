//! Parameter-sweep scaffolding.
//!
//! Both evaluation figures sweep the event rate on a log axis (100
//! evt/s – 2 Mevt/s for Fig. 6, 10 evt/s – 800 kevt/s for Fig. 8),
//! with one curve per `θ_div`. This module generates the sweep grids
//! and runs a measurement closure over the cross product, collecting
//! tidy rows.

use serde::{Deserialize, Serialize};

/// `n` log-spaced points over `[lo, hi]`, inclusive of both ends.
///
/// # Panics
///
/// Panics unless `0 < lo < hi` and `n >= 2`.
///
/// # Examples
///
/// ```
/// use aetr_analysis::sweep::log_space;
///
/// let rates = log_space(100.0, 1e6, 5);
/// assert_eq!(rates.len(), 5);
/// assert!((rates[0] - 100.0).abs() < 1e-9);
/// assert!((rates[4] - 1e6).abs() / 1e6 < 1e-9);
/// // Equal ratios between consecutive points.
/// assert!(((rates[1] / rates[0]) - (rates[2] / rates[1])).abs() < 1e-9);
/// ```
pub fn log_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(0.0 < lo && lo < hi, "log_space needs 0 < lo < hi, got [{lo}, {hi}]");
    assert!(n >= 2, "log_space needs at least 2 points");
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            lo * (hi / lo).powf(t)
        })
        .collect()
}

/// `n` linearly spaced points over `[lo, hi]`, inclusive.
///
/// # Panics
///
/// Panics unless `lo < hi` and `n >= 2`.
pub fn lin_space(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo < hi, "lin_space needs lo < hi");
    assert!(n >= 2, "lin_space needs at least 2 points");
    (0..n).map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64).collect()
}

/// One measured point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint<T> {
    /// The configuration label (e.g. `θ_div` value or policy name).
    pub config: String,
    /// The swept x value (e.g. event rate in Hz).
    pub x: f64,
    /// The measurement.
    pub value: T,
}

/// Runs `measure(config, x)` over the cross product of configurations
/// and x values, in deterministic order.
pub fn run_sweep<C, T>(
    configs: &[(String, C)],
    xs: &[f64],
    mut measure: impl FnMut(&C, f64) -> T,
) -> Vec<SweepPoint<T>> {
    let mut points = Vec::with_capacity(configs.len() * xs.len());
    for (label, cfg) in configs {
        for &x in xs {
            points.push(SweepPoint { config: label.clone(), x, value: measure(cfg, x) });
        }
    }
    points
}

/// Parallel [`run_sweep`]: shards the cross product over `jobs` worker
/// threads and returns the points in the exact order `run_sweep` would,
/// so the output is bit-identical to the sequential sweep for any job
/// count (see [`aetr_sim::parallel::par_map`] for the determinism
/// argument).
///
/// Unlike `run_sweep`, the measurement closure must be `Fn` (shared
/// across workers) — sweep measurements are pure functions of
/// `(config, x)`, so this is no loss in practice. `jobs <= 1` degrades
/// to a plain sequential loop with no thread overhead.
pub fn run_sweep_parallel<C, T>(
    configs: &[(String, C)],
    xs: &[f64],
    jobs: usize,
    measure: impl Fn(&C, f64) -> T + Sync,
) -> Vec<SweepPoint<T>>
where
    C: Sync,
    T: Send,
{
    let grid: Vec<(usize, f64)> =
        (0..configs.len()).flat_map(|ci| xs.iter().map(move |&x| (ci, x))).collect();
    aetr_sim::parallel::par_map(jobs, &grid, |_, &(ci, x)| {
        let (label, cfg) = &configs[ci];
        SweepPoint { config: label.clone(), x, value: measure(cfg, x) }
    })
}

/// Groups sweep points back into per-configuration series (insertion
/// order preserved).
pub fn series_of<T: Clone>(points: &[SweepPoint<T>]) -> Vec<(String, Vec<(f64, T)>)> {
    let mut out: Vec<(String, Vec<(f64, T)>)> = Vec::new();
    for p in points {
        match out.iter_mut().find(|(label, _)| *label == p.config) {
            Some((_, series)) => series.push((p.x, p.value.clone())),
            None => out.push((p.config.clone(), vec![(p.x, p.value.clone())])),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_space_covers_fig6_range() {
        let rates = log_space(100.0, 2e6, 25);
        assert_eq!(rates.len(), 25);
        assert!(rates.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn lin_space_endpoints() {
        let xs = lin_space(0.0, 12.0, 13);
        assert_eq!(xs[0], 0.0);
        assert_eq!(xs[12], 12.0);
        assert!((xs[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sweep_runs_full_cross_product_in_order() {
        let configs = vec![("a".to_owned(), 1u32), ("b".to_owned(), 2)];
        let xs = [10.0, 20.0];
        let points = run_sweep(&configs, &xs, |c, x| *c as f64 * x);
        assert_eq!(points.len(), 4);
        assert_eq!(points[0].config, "a");
        assert_eq!(points[0].value, 10.0);
        assert_eq!(points[3].config, "b");
        assert_eq!(points[3].value, 40.0);
    }

    #[test]
    fn series_regroups_by_config() {
        let configs = vec![("a".to_owned(), ()), ("b".to_owned(), ())];
        let points = run_sweep(&configs, &[1.0, 2.0], |_, x| x * 2.0);
        let series = series_of(&points);
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].0, "a");
        assert_eq!(series[0].1, vec![(1.0, 2.0), (2.0, 4.0)]);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn log_space_rejects_zero_lo() {
        let _ = log_space(0.0, 1.0, 3);
    }

    #[test]
    fn parallel_sweep_matches_sequential_exactly() {
        let configs = vec![("a".to_owned(), 3u32), ("b".to_owned(), 5), ("c".to_owned(), 7)];
        let xs = log_space(1.0, 100.0, 7);
        let sequential = run_sweep(&configs, &xs, |c, x| (*c as f64).powf(x.ln()));
        for jobs in [0, 1, 2, 3, 8] {
            let parallel = run_sweep_parallel(&configs, &xs, jobs, |c, x| (*c as f64).powf(x.ln()));
            assert_eq!(parallel, sequential, "jobs = {jobs}");
        }
    }
}
