//! Fixed-bucket histograms built on [`OnlineStats`].
//!
//! The registry needs distribution summaries (FIFO depth, inter-event
//! intervals, handshake latencies) without buffering samples. A
//! [`FixedHistogram`] owns a sorted list of bucket upper edges plus an
//! [`OnlineStats`] accumulator, so it answers both "how many samples
//! fell at or below X" (prometheus `le` semantics) and "what was the
//! mean/std/extrema" in O(1) memory.

use aetr_sim::stats::OnlineStats;
use serde::{Deserialize, Serialize};

/// Cumulative-style fixed-bucket histogram.
///
/// Bucket edges are *inclusive upper bounds*: a sample `v` lands in the
/// first bucket whose edge satisfies `v <= edge` (prometheus `le`
/// semantics), so a value exactly equal to a bucket edge counts in that
/// bucket, not the next one. Samples above the last edge land in the
/// implicit overflow bucket.
///
/// Non-finite samples (NaN, ±∞) are never mixed into the buckets or the
/// running statistics — they would poison the mean and produce
/// meaningless bucket placements — and are instead tallied in
/// [`non_finite`](FixedHistogram::non_finite).
///
/// # Examples
///
/// ```
/// use aetr_telemetry::histogram::FixedHistogram;
///
/// let mut h = FixedHistogram::new(vec![1.0, 10.0, 100.0]);
/// h.observe(1.0); // == first edge -> first bucket
/// h.observe(5.0);
/// h.observe(1e6); // overflow
/// h.observe(f64::NAN); // non-finite, quarantined
/// assert_eq!(h.bucket_counts(), &[1, 1, 0]);
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.non_finite(), 1);
/// assert_eq!(h.stats().count(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FixedHistogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
    non_finite: u64,
    stats: OnlineStats,
}

impl FixedHistogram {
    /// Creates a histogram with the given inclusive upper edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, unsorted, contains duplicates, or
    /// contains a non-finite edge — every edge must be a usable `le`
    /// threshold.
    pub fn new(edges: Vec<f64>) -> FixedHistogram {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        for pair in edges.windows(2) {
            assert!(pair[0] < pair[1], "bucket edges must be strictly increasing");
        }
        assert!(edges.iter().all(|e| e.is_finite()), "bucket edges must be finite");
        let counts = vec![0; edges.len()];
        FixedHistogram { edges, counts, overflow: 0, non_finite: 0, stats: OnlineStats::new() }
    }

    /// Convenience constructor: `n` exponentially growing edges
    /// starting at `first` with the given `ratio` (e.g. powers of two).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`, `first <= 0`, or `ratio <= 1`.
    pub fn exponential(first: f64, ratio: f64, n: usize) -> FixedHistogram {
        assert!(n > 0 && first > 0.0 && ratio > 1.0, "invalid exponential bucket spec");
        let mut edges = Vec::with_capacity(n);
        let mut e = first;
        for _ in 0..n {
            edges.push(e);
            e *= ratio;
        }
        FixedHistogram::new(edges)
    }

    /// Records one sample.
    ///
    /// Finite samples update exactly one bucket (binary search over the
    /// edges) and the running statistics; non-finite samples only bump
    /// the [`non_finite`](FixedHistogram::non_finite) tally.
    pub fn observe(&mut self, v: f64) {
        if !v.is_finite() {
            self.non_finite += 1;
            return;
        }
        match self.edges.iter().position(|e| v <= *e) {
            Some(i) => self.counts[i] += 1,
            None => self.overflow += 1,
        }
        self.stats.add(v);
    }

    /// Inclusive upper edges, in increasing order.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Per-bucket sample counts (same order as [`edges`](Self::edges)).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN/±∞ samples that were quarantined.
    pub fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Running statistics over the finite samples.
    pub fn stats(&self) -> &OnlineStats {
        &self.stats
    }

    /// Total finite samples recorded (buckets + overflow).
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Cumulative count at or below each edge (prometheus `le` series).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_on_edge_lands_in_that_bucket() {
        let mut h = FixedHistogram::new(vec![1.0, 2.0, 4.0]);
        h.observe(1.0);
        h.observe(2.0);
        h.observe(4.0);
        assert_eq!(h.bucket_counts(), &[1, 1, 1]);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn just_above_edge_lands_in_next_bucket() {
        let mut h = FixedHistogram::new(vec![1.0, 2.0]);
        h.observe(1.0 + f64::EPSILON * 2.0);
        assert_eq!(h.bucket_counts(), &[0, 1]);
    }

    #[test]
    fn below_first_edge_lands_in_first_bucket() {
        let mut h = FixedHistogram::new(vec![1.0, 2.0]);
        h.observe(-50.0);
        assert_eq!(h.bucket_counts(), &[1, 0]);
    }

    #[test]
    fn above_last_edge_overflows() {
        let mut h = FixedHistogram::new(vec![1.0]);
        h.observe(1.5);
        assert_eq!(h.bucket_counts(), &[0]);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn nan_and_infinities_are_quarantined() {
        let mut h = FixedHistogram::new(vec![1.0, 2.0]);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(f64::NEG_INFINITY);
        assert_eq!(h.non_finite(), 3);
        assert_eq!(h.count(), 0);
        assert_eq!(h.bucket_counts(), &[0, 0]);
        assert_eq!(h.overflow(), 0);
        // Stats stay clean: a later finite sample gives a finite mean.
        h.observe(1.5);
        assert_eq!(h.count(), 1);
        assert!(h.stats().mean().is_finite());
    }

    #[test]
    fn cumulative_counts_are_monotone() {
        let mut h = FixedHistogram::new(vec![1.0, 2.0, 3.0]);
        for v in [0.5, 1.5, 1.7, 2.5, 9.0] {
            h.observe(v);
        }
        assert_eq!(h.cumulative(), vec![1, 3, 4]);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn exponential_edges() {
        let h = FixedHistogram::exponential(1.0, 2.0, 4);
        assert_eq!(h.edges(), &[1.0, 2.0, 4.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_panic() {
        FixedHistogram::new(vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_edge_panics() {
        FixedHistogram::new(vec![1.0, f64::INFINITY]);
    }
}
