//! AER addresses.
//!
//! The DAC'17 prototype carries a 10-bit address bus (the DAS1 cochlea
//! encodes 2 ears × 64 channels × 4 neurons in well under 10 bits), so
//! [`Address`] is a validated 10-bit value.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Width of the AER address bus in the prototype.
pub const ADDRESS_BITS: u32 = 10;

/// Largest representable address (`2^10 - 1`).
pub const MAX_ADDRESS: u16 = (1 << ADDRESS_BITS) - 1;

/// A validated 10-bit AER address: the identity of the "neuron" that
/// produced a spike.
///
/// # Examples
///
/// ```
/// use aetr_aer::address::Address;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let a = Address::new(42)?;
/// assert_eq!(a.value(), 42);
/// assert!(Address::new(1024).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Address(u16);

/// Error returned when a raw value does not fit the 10-bit address bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidAddressError {
    /// The out-of-range raw value.
    pub value: u16,
}

impl fmt::Display for InvalidAddressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "address {} exceeds the {ADDRESS_BITS}-bit bus (max {MAX_ADDRESS})", self.value)
    }
}

impl Error for InvalidAddressError {}

impl Address {
    /// Smallest address.
    pub const MIN: Address = Address(0);
    /// Largest address on the 10-bit bus.
    pub const MAX: Address = Address(MAX_ADDRESS);

    /// Creates an address, validating the 10-bit range.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidAddressError`] if `value > 1023`.
    pub fn new(value: u16) -> Result<Address, InvalidAddressError> {
        if value > MAX_ADDRESS {
            Err(InvalidAddressError { value })
        } else {
            Ok(Address(value))
        }
    }

    /// Creates an address by masking the raw value to 10 bits. Useful
    /// for pseudo-random generators where wrap-around is intended.
    pub const fn from_raw_masked(value: u16) -> Address {
        Address(value & MAX_ADDRESS)
    }

    /// The raw bus value.
    pub const fn value(self) -> u16 {
        self.0
    }
}

impl TryFrom<u16> for Address {
    type Error = InvalidAddressError;
    fn try_from(value: u16) -> Result<Self, Self::Error> {
        Address::new(value)
    }
}

impl From<Address> for u16 {
    fn from(a: Address) -> u16 {
        a.0
    }
}

impl From<Address> for u64 {
    fn from(a: Address) -> u64 {
        a.0 as u64
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

impl fmt::Binary for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_full_10bit_range() {
        assert_eq!(Address::new(0).unwrap(), Address::MIN);
        assert_eq!(Address::new(1023).unwrap(), Address::MAX);
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Address::new(1024).unwrap_err();
        assert_eq!(err.value, 1024);
        assert!(err.to_string().contains("10-bit"));
        assert!(Address::try_from(u16::MAX).is_err());
    }

    #[test]
    fn masked_constructor_wraps() {
        assert_eq!(Address::from_raw_masked(1024), Address::new(0).unwrap());
        assert_eq!(Address::from_raw_masked(1025), Address::new(1).unwrap());
    }

    #[test]
    fn conversions_roundtrip() {
        let a = Address::new(777).unwrap();
        assert_eq!(u16::from(a), 777);
        assert_eq!(u64::from(a), 777);
    }

    #[test]
    fn formatting() {
        let a = Address::new(42).unwrap();
        assert_eq!(a.to_string(), "@42");
        assert_eq!(format!("{a:b}"), "101010");
        assert_eq!(format!("{a:x}"), "2a");
        assert_eq!(format!("{a:o}"), "52");
    }
}
