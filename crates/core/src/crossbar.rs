//! The combinational data crossbar (paper Fig. 3).
//!
//! "The blocks that send or receive AETR data are interconnected by a
//! combinational crossbar." The prototype routes the front-end output
//! to the buffer and the buffer to the I2S interface; the crossbar
//! keeps those connections reconfigurable (e.g. a bufferless
//! front-end→I2S bypass for latency-critical setups).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Data-producing ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SourcePort {
    /// The AER→AETR sampling unit output.
    FrontEnd,
    /// The FIFO read port.
    BufferOut,
}

/// Data-consuming ports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SinkPort {
    /// The FIFO write port.
    BufferIn,
    /// The I2S transmitter.
    I2s,
}

/// A route configuration error: one sink driven by two sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkConflictError {
    /// The multiply-driven sink.
    pub sink: SinkPort,
}

impl fmt::Display for SinkConflictError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sink {:?} driven by more than one source", self.sink)
    }
}

impl Error for SinkConflictError {}

/// The crossbar: a validated source→sink routing table with traffic
/// counters.
///
/// # Examples
///
/// ```
/// use aetr::crossbar::{Crossbar, SinkPort, SourcePort};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut xbar = Crossbar::prototype()?;
/// assert_eq!(xbar.route(SourcePort::FrontEnd, 0xABCD), Some(SinkPort::BufferIn));
/// assert_eq!(xbar.words_through(SourcePort::FrontEnd), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossbar {
    routes: BTreeMap<SourcePort, SinkPort>,
    traffic: BTreeMap<SourcePort, u64>,
}

impl Crossbar {
    /// Builds a crossbar from `(source, sink)` routes.
    ///
    /// # Errors
    ///
    /// Returns [`SinkConflictError`] if two sources drive the same
    /// sink (combinationally impossible in hardware).
    pub fn new(
        routes: impl IntoIterator<Item = (SourcePort, SinkPort)>,
    ) -> Result<Crossbar, SinkConflictError> {
        let mut map = BTreeMap::new();
        let mut sinks_seen = std::collections::BTreeSet::new();
        for (src, sink) in routes {
            if !sinks_seen.insert(sink) {
                return Err(SinkConflictError { sink });
            }
            map.insert(src, sink);
        }
        Ok(Crossbar { routes: map, traffic: BTreeMap::new() })
    }

    /// The prototype routing: front-end → buffer, buffer → I2S.
    ///
    /// # Errors
    ///
    /// Never fails for the fixed prototype routes; the `Result` keeps
    /// the constructor signatures uniform.
    pub fn prototype() -> Result<Crossbar, SinkConflictError> {
        Crossbar::new([
            (SourcePort::FrontEnd, SinkPort::BufferIn),
            (SourcePort::BufferOut, SinkPort::I2s),
        ])
    }

    /// Routes a data word from `source`, returning the configured sink
    /// (`None` if the source is unconnected) and counting the word.
    pub fn route(&mut self, source: SourcePort, _word: u32) -> Option<SinkPort> {
        let sink = self.routes.get(&source).copied();
        if sink.is_some() {
            *self.traffic.entry(source).or_insert(0) += 1;
        }
        sink
    }

    /// The sink a source is routed to.
    pub fn sink_of(&self, source: SourcePort) -> Option<SinkPort> {
        self.routes.get(&source).copied()
    }

    /// Words routed from a source so far.
    pub fn words_through(&self, source: SourcePort) -> u64 {
        self.traffic.get(&source).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_routes() {
        let xbar = Crossbar::prototype().unwrap();
        assert_eq!(xbar.sink_of(SourcePort::FrontEnd), Some(SinkPort::BufferIn));
        assert_eq!(xbar.sink_of(SourcePort::BufferOut), Some(SinkPort::I2s));
    }

    #[test]
    fn bypass_route_is_expressible() {
        // Bufferless: front-end straight to I2S.
        let mut xbar = Crossbar::new([(SourcePort::FrontEnd, SinkPort::I2s)]).unwrap();
        assert_eq!(xbar.route(SourcePort::FrontEnd, 1), Some(SinkPort::I2s));
        assert_eq!(xbar.route(SourcePort::BufferOut, 1), None);
        assert_eq!(xbar.words_through(SourcePort::BufferOut), 0);
    }

    #[test]
    fn sink_conflict_rejected() {
        let err = Crossbar::new([
            (SourcePort::FrontEnd, SinkPort::I2s),
            (SourcePort::BufferOut, SinkPort::I2s),
        ])
        .unwrap_err();
        assert_eq!(err.sink, SinkPort::I2s);
        assert!(err.to_string().contains("more than one source"));
    }

    #[test]
    fn traffic_counters_accumulate() {
        let mut xbar = Crossbar::prototype().unwrap();
        for i in 0..5 {
            xbar.route(SourcePort::FrontEnd, i);
        }
        for i in 0..3 {
            xbar.route(SourcePort::BufferOut, i);
        }
        assert_eq!(xbar.words_through(SourcePort::FrontEnd), 5);
        assert_eq!(xbar.words_through(SourcePort::BufferOut), 3);
    }
}
