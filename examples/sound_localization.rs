//! Binaural sound localization through the interface — the DAS1's
//! native task, and the harshest test of timestamp fidelity: the
//! signal is a few hundred *microseconds* of interaural delay.
//!
//! A sound source at a known azimuth delays the far ear; the binaural
//! cochlea spikes; the interface timestamps the merged stream; the MCU
//! reconstructs it and estimates the direction by spike
//! cross-correlation.
//!
//! ```sh
//! cargo run --release -p aetr --example sound_localization
//! ```

use aetr::quantizer::{quantize_train, reconstruct_train};
use aetr_apps::localization::{estimate_itd, itd_to_azimuth_degrees, shift_train, ItdConfig};
use aetr_clockgen::config::ClockGenConfig;
use aetr_cochlea::audio::AudioBuffer;
use aetr_cochlea::model::{Cochlea, CochleaConfig, Ear};
use aetr_sim::time::{SimDuration, SimTime};

const HEAD_RADIUS_M: f64 = 0.0875;
const SPEED_OF_SOUND: f64 = 343.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let clock = ClockGenConfig::prototype();
    let itd_cfg = ItdConfig::default_window();
    let mut cochlea = Cochlea::new(CochleaConfig::das1())?;

    println!("source -> true ITD -> estimated ITD -> azimuth (through the AETR interface)\n");
    for &true_azimuth_deg in &[-60.0f64, -20.0, 0.0, 30.0, 75.0] {
        // Woodworth: ITD = r (θ + sin θ) / c ; right ear lags for
        // positive azimuth.
        let theta = true_azimuth_deg.to_radians();
        let itd_secs = HEAD_RADIUS_M * (theta + theta.sin()) / SPEED_OF_SOUND;
        let itd = SimDuration::from_secs_f64(itd_secs.abs());

        // A 1 kHz tone burst heard by both ears. Convention: positive
        // lag means the right ear lags, so a positive azimuth delays
        // the right ear's copy; each ear's copy carries its own
        // addresses so the MCU can split the merged stream.
        let audio = AudioBuffer::tone(16_000, 1_000.0, 0.8, 0.2).faded(0.01);
        let base = cochlea.process(&audio); // left-ear addresses
        let readdress = |train: &aetr_aer::spike::SpikeTrain, ear: Ear| {
            train
                .iter()
                .map(|s| {
                    let (_, ch, n) = cochlea.decode_address(s.addr).expect("own address");
                    aetr_aer::spike::Spike::new(s.time, cochlea.address_of(ear, ch, n))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .collect::<aetr_aer::spike::SpikeTrain>()
        };
        let (left, right) = if true_azimuth_deg >= 0.0 {
            (readdress(&base, Ear::Left), shift_train(&readdress(&base, Ear::Right), itd))
        } else {
            (shift_train(&readdress(&base, Ear::Left), itd), readdress(&base, Ear::Right))
        };

        // Through the interface: merge, quantize, reconstruct, split
        // by ear address.
        let merged = left.merge(&right);
        let horizon = merged.last_time().unwrap() + SimDuration::from_ms(1);
        let out = quantize_train(&clock, &merged, horizon);
        let rebuilt = reconstruct_train(&out.events(), out.base_period, SimTime::ZERO);
        let (mut l2, mut r2) = (Vec::new(), Vec::new());
        for s in &rebuilt {
            match cochlea.decode_address(s.addr) {
                Some((Ear::Left, _, _)) => l2.push(*s),
                Some((Ear::Right, _, _)) => r2.push(*s),
                None => {}
            }
        }
        let est = estimate_itd(&l2.into_iter().collect(), &r2.into_iter().collect(), &itd_cfg)
            .expect("tone burst produces spikes");
        let est_azimuth = itd_to_azimuth_degrees(est.lag_ps, HEAD_RADIUS_M);
        assert_eq!(
            est.lag_ps.signum(),
            (true_azimuth_deg as i64).signum(),
            "estimated lag must point to the correct side"
        );
        println!(
            "  {true_azimuth_deg:>5.0}°  ITD {:>8.0} us -> est {:>8.0} us -> azimuth {est_azimuth:>5.1}°",
            itd_secs * 1e6,
            est.lag_ps as f64 / 1e6,
        );
    }
    println!(
        "\nreading: microsecond-scale interaural structure survives the\n\
         energy-proportional interface — timestamps, not just event counts,\n\
         carry through (note front-back ambiguity and tone-period aliasing\n\
         limit single-tone azimuth precision, as in real binaural hearing)."
    );
    Ok(())
}
