//! The assembled silicon-cochlea sensor model.
//!
//! Audio → band-pass filter bank → half-wave rectification → leaky
//! integrate-and-fire per channel → AER spike train. This is the
//! substitution for the Cochlea AMS C1c (DAS1) used in the paper's
//! Fig. 7 experiment: 64 channels per ear, optionally binaural.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_aer::address::Address;
use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_sim::time::SimTime;

use crate::audio::AudioBuffer;
use crate::filterbank::FilterBank;
use crate::neuron::{IntegrateFireNeuron, NeuronConfig};

/// Which ear produced a spike (binaural sensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Ear {
    /// Left microphone.
    Left,
    /// Right microphone.
    Right,
}

/// Cochlea model configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CochleaConfig {
    /// Audio sample rate the model expects.
    pub sample_rate: u32,
    /// Channels per ear (the AMS C1c has 64).
    pub channels: usize,
    /// Lowest centre frequency (Hz).
    pub f_lo: f64,
    /// Highest centre frequency (Hz).
    pub f_hi: f64,
    /// Filter quality factor.
    pub q: f64,
    /// Ganglion cells per channel (the DAS1 has 4, with staggered
    /// thresholds).
    pub neurons_per_channel: usize,
    /// Spike-generation (inner hair cell) parameters of the first
    /// neuron; subsequent neurons get progressively higher thresholds.
    pub neuron: NeuronConfig,
}

impl CochleaConfig {
    /// DAS1-like defaults: 64 channels, 100 Hz – 6 kHz, Q = 5, 16 kHz
    /// audio.
    pub fn das1() -> CochleaConfig {
        CochleaConfig {
            sample_rate: 16_000,
            channels: 64,
            f_lo: 100.0,
            f_hi: 6_000.0,
            q: 5.0,
            neurons_per_channel: 4,
            neuron: NeuronConfig::default(),
        }
    }

    /// Validates the neuron array against the 10-bit AER bus (binaural
    /// needs `2 × channels × neurons_per_channel` addresses).
    ///
    /// # Errors
    ///
    /// Returns [`CochleaConfigError`] if the address space would
    /// overflow or the array is empty.
    pub fn validate(&self) -> Result<(), CochleaConfigError> {
        if self.channels == 0 || self.neurons_per_channel == 0 {
            return Err(CochleaConfigError::NoChannels);
        }
        if self.channels * self.neurons_per_channel * 2 > 1 << 10 {
            return Err(CochleaConfigError::TooManyChannels { channels: self.channels });
        }
        Ok(())
    }

    /// Addresses used per ear.
    pub fn addresses_per_ear(&self) -> usize {
        self.channels * self.neurons_per_channel
    }
}

impl Default for CochleaConfig {
    fn default() -> Self {
        Self::das1()
    }
}

/// Configuration errors of the cochlea model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CochleaConfigError {
    /// Zero channels or zero neurons per channel.
    NoChannels,
    /// The binaural address space would exceed the 10-bit AER bus.
    TooManyChannels {
        /// Offending channel count.
        channels: usize,
    },
}

impl fmt::Display for CochleaConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CochleaConfigError::NoChannels => {
                write!(f, "cochlea needs at least one channel and one neuron per channel")
            }
            CochleaConfigError::TooManyChannels { channels } => {
                write!(f, "{channels} channels per ear exceeds the 10-bit binaural address space")
            }
        }
    }
}

impl Error for CochleaConfigError {}

/// The cochlea sensor model.
///
/// # Examples
///
/// ```
/// use aetr_cochlea::audio::AudioBuffer;
/// use aetr_cochlea::model::{Cochlea, CochleaConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut cochlea = Cochlea::new(CochleaConfig::das1())?;
/// let tone = AudioBuffer::tone(16_000, 1_000.0, 0.8, 0.2);
/// let spikes = cochlea.process(&tone);
/// assert!(!spikes.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cochlea {
    config: CochleaConfig,
    bank: FilterBank,
}

impl Cochlea {
    /// Creates a cochlea model.
    ///
    /// # Errors
    ///
    /// Returns [`CochleaConfigError`] if the configuration is invalid.
    pub fn new(config: CochleaConfig) -> Result<Cochlea, CochleaConfigError> {
        config.validate()?;
        let bank = FilterBank::log_spaced(
            config.sample_rate,
            config.channels,
            config.f_lo,
            config.f_hi,
            config.q,
        );
        Ok(Cochlea { config, bank })
    }

    /// The configuration.
    pub fn config(&self) -> &CochleaConfig {
        &self.config
    }

    /// Encodes `(ear, channel, neuron)` into an AER address:
    /// `addr = ear · channels · neurons + channel · neurons + neuron`.
    pub fn address_of(&self, ear: Ear, channel: usize, neuron: usize) -> Address {
        let per_ear = self.config.addresses_per_ear();
        let base = match ear {
            Ear::Left => 0,
            Ear::Right => per_ear,
        };
        Address::new((base + channel * self.config.neurons_per_channel + neuron) as u16)
            .expect("validated address space")
    }

    /// Decodes an address back into `(ear, channel, neuron)`, or
    /// `None` if it is outside this sensor's range.
    pub fn decode_address(&self, addr: Address) -> Option<(Ear, usize, usize)> {
        let v = addr.value() as usize;
        let per_ear = self.config.addresses_per_ear();
        let (ear, rest) = if v < per_ear {
            (Ear::Left, v)
        } else if v < 2 * per_ear {
            (Ear::Right, v - per_ear)
        } else {
            return None;
        };
        Some((ear, rest / self.config.neurons_per_channel, rest % self.config.neurons_per_channel))
    }

    /// Runs mono audio through the left ear, producing a spike train.
    pub fn process(&mut self, audio: &AudioBuffer) -> SpikeTrain {
        self.process_ear(audio, Ear::Left)
    }

    /// Runs a stereo pair, merging both ears' spikes into one train.
    pub fn process_binaural(&mut self, left: &AudioBuffer, right: &AudioBuffer) -> SpikeTrain {
        let l = self.process_ear(left, Ear::Left);
        let r = self.process_ear(right, Ear::Right);
        l.merge(&r)
    }

    fn process_ear(&mut self, audio: &AudioBuffer, ear: Ear) -> SpikeTrain {
        let outputs = self.bank.process(audio);
        let dt_secs = 1.0 / self.config.sample_rate as f64;
        let dt_ps = (dt_secs * 1e12).round() as u64;
        let mut spikes = Vec::new();
        for (ch, band) in outputs.iter().enumerate() {
            for j in 0..self.config.neurons_per_channel {
                // Staggered thresholds, like the DAS1's four ganglion
                // cells per channel: higher-index cells need stronger
                // drive and fire later within a cycle.
                let config = NeuronConfig {
                    threshold: self.config.neuron.threshold * (1.0 + 0.25 * j as f64),
                    ..self.config.neuron
                };
                let mut neuron = IntegrateFireNeuron::new(config);
                let addr = self.address_of(ear, ch, j);
                for (i, &x) in band.iter().enumerate() {
                    let t = SimTime::from_ps(i as u64 * dt_ps);
                    if let Some(frac) = neuron.step_interpolated(t, x, dt_secs) {
                        // Sub-sample interpolation keeps channels from
                        // snapping to the audio grid.
                        let offset = (frac * dt_ps as f64).round() as u64;
                        spikes.push(Spike::new(SimTime::from_ps(i as u64 * dt_ps + offset), addr));
                    }
                }
            }
        }
        SpikeTrain::from_unsorted(spikes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::fig7_word;

    fn das1() -> Cochlea {
        Cochlea::new(CochleaConfig::das1()).unwrap()
    }

    #[test]
    fn silence_produces_no_spikes() {
        let mut c = das1();
        let spikes = c.process(&AudioBuffer::silence(16_000, 0.5));
        assert!(spikes.is_empty());
    }

    #[test]
    fn tone_spikes_cluster_on_matching_channels() {
        let mut c = das1();
        let spikes = c.process(&AudioBuffer::tone(16_000, 1_000.0, 0.8, 0.3));
        assert!(spikes.len() > 50, "tone produced only {} spikes", spikes.len());
        // Most spikes should come from channels near 1 kHz.
        let near: usize = spikes
            .iter()
            .filter(|s| {
                let (_, ch, _) = c.decode_address(s.addr).unwrap();
                let f =
                    FilterBank::log_spaced(16_000, 64, 100.0, 6_000.0, 5.0).center_frequency(ch);
                (500.0..2_000.0).contains(&f)
            })
            .count();
        assert!(
            near as f64 / spikes.len() as f64 > 0.7,
            "only {near}/{} spikes near 1 kHz",
            spikes.len()
        );
    }

    #[test]
    fn louder_audio_spikes_more() {
        let mut c = das1();
        let quiet = c.process(&AudioBuffer::tone(16_000, 800.0, 0.2, 0.3)).len();
        let loud = c.process(&AudioBuffer::tone(16_000, 800.0, 0.9, 0.3)).len();
        assert!(loud > quiet, "loud {loud} vs quiet {quiet}");
    }

    #[test]
    fn word_produces_bursty_multi_channel_activity() {
        let mut c = das1();
        let spikes = c.process(&fig7_word(16_000, 1));
        assert!(spikes.len() > 200, "word produced {} spikes", spikes.len());
        let channels: std::collections::HashSet<u16> =
            spikes.iter().map(|s| s.addr.value()).collect();
        assert!(channels.len() > 8, "word excited only {} channels", channels.len());
        // Leading 80 ms of silence contain (almost) no spikes.
        let head = spikes.window(SimTime::ZERO, SimTime::from_ms(80));
        assert!(head.len() < 5, "{} spikes during leading silence", head.len());
    }

    #[test]
    fn binaural_addresses_separate_ears() {
        let mut c = das1();
        let tone = AudioBuffer::tone(16_000, 1_000.0, 0.8, 0.1);
        let spikes = c.process_binaural(&tone, &tone);
        let (mut left, mut right) = (0, 0);
        for s in &spikes {
            match c.decode_address(s.addr).unwrap().0 {
                Ear::Left => left += 1,
                Ear::Right => right += 1,
            }
        }
        assert!(left > 0 && right > 0);
        assert_eq!(left, right, "identical audio in both ears spikes identically");
    }

    #[test]
    fn address_roundtrip() {
        let c = das1();
        for ear in [Ear::Left, Ear::Right] {
            for ch in [0usize, 13, 63] {
                for j in [0usize, 3] {
                    let addr = c.address_of(ear, ch, j);
                    assert_eq!(c.decode_address(addr), Some((ear, ch, j)));
                }
            }
        }
        assert_eq!(c.decode_address(Address::new(999).unwrap()), None);
    }

    #[test]
    fn config_validation() {
        assert!(CochleaConfig { channels: 0, ..CochleaConfig::das1() }.validate().is_err());
        assert!(CochleaConfig { neurons_per_channel: 0, ..CochleaConfig::das1() }
            .validate()
            .is_err());
        // 2 ears x channels x neurons must fit in 1024 addresses.
        assert!(CochleaConfig { channels: 600, ..CochleaConfig::das1() }.validate().is_err());
        assert!(CochleaConfig { channels: 128, ..CochleaConfig::das1() }.validate().is_ok());
        assert!(CochleaConfig { channels: 512, neurons_per_channel: 1, ..CochleaConfig::das1() }
            .validate()
            .is_ok());
    }

    #[test]
    fn processing_is_deterministic() {
        let mut c1 = das1();
        let mut c2 = das1();
        let word = fig7_word(16_000, 4);
        assert_eq!(c1.process(&word), c2.process(&word));
    }
}
