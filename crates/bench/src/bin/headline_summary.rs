//! One-shot headline summary: every key paper number next to its
//! measured value — the quick-look version of EXPERIMENTS.md.
//!
//! ```sh
//! cargo run --release -p aetr-bench --bin headline_summary
//! ```

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr::resources::UtilizationReport;
use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_analysis::table::Table;
use aetr_bench::banner;
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_power::model::PowerModel;
use aetr_sim::time::{SimDuration, SimTime};

fn power_uw(config: &ClockGenConfig, rate_hz: f64, seed: u32) -> f64 {
    let secs = (2_000.0 / rate_hz).max(0.5);
    let horizon = SimTime::ZERO + SimDuration::from_secs_f64(secs);
    let train = LfsrGenerator::new(rate_hz, seed).generate(horizon);
    let out = quantize_train(config, &train, horizon);
    PowerModel::igloo_nano().evaluate(&out.activity).total.as_microwatts()
}

fn main() {
    banner("Headline summary", "paper claims vs measured, one table", 0);
    let proto = ClockGenConfig::prototype();
    let naive = proto.with_policy(DivisionPolicy::Never);
    let model = PowerModel::igloo_nano();

    let p_noisy = power_uw(&proto, 550_000.0, 1);
    let p_idle = {
        let out = quantize_train(&proto, &SpikeTrain::new(), SimTime::from_secs(1));
        model.evaluate(&out.activity).total.as_microwatts()
    };
    let p_naive = power_uw(&naive, 1_000.0, 2);
    let acc = {
        let train = PoissonGenerator::new(120_000.0, 64, 3).generate(SimTime::from_ms(200));
        let out = quantize_train(&proto, &train, SimTime::from_ms(200));
        let s = isi_error_samples(&out);
        let mean: f64 = s.iter().map(|e| e.relative_error()).sum::<f64>() / s.len() as f64;
        1.0 - mean
    };
    let util = UtilizationReport::prototype();

    let mut t = Table::new(vec!["claim", "paper", "measured"]);
    let mut row = |claim: &str, paper: &str, measured: String| {
        t.row(vec![claim.to_owned(), paper.to_owned(), measured]);
    };
    row("power @ 550 kevt/s", "< 4.5 mW", format!("{:.2} mW", p_noisy / 1e3));
    row("power, no spikes", "~50 uW", format!("{p_idle:.1} uW"));
    row("naive baseline", "stuck at 4.5 mW", format!("{:.2} mW @ 1 kevt/s", p_naive / 1e3));
    row("scaling factor", "90x", format!("{:.0}x", p_noisy / p_idle));
    row("timestamp accuracy", "> 97%", format!("{:.1}%", acc * 100.0));
    row("min inter-spike time", "130 ns", proto.min_resolvable_interval().to_string());
    row("wake latency", "~100 ns", proto.ring.wake_latency.to_string());
    row(
        "resource utilization",
        "31% (~600 gates)",
        format!("{:.0}% (~{} gates)", util.tile_utilization() * 100.0, util.equivalent_gates()),
    );
    println!("{}", t.to_ascii());
    println!("full experiment index: EXPERIMENTS.md; per-figure harnesses in aetr-bench.");
}
