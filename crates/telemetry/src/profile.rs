//! Wall-clock profiling hooks.
//!
//! The DES kernel's throughput (simulated events per wall-clock second,
//! event-queue operations per second) is the denominator of every bench
//! regression hunt. The profiler wraps `std::time::Instant`, so its
//! output is *not* deterministic — `TelemetrySnapshot` deliberately
//! excludes it from equality comparisons.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// Running wall-clock profiler; call [`Profiler::finish`] at end of
/// run.
#[derive(Debug, Clone)]
pub struct Profiler {
    started: Instant,
}

impl Profiler {
    /// Starts timing now.
    pub fn start() -> Profiler {
        Profiler { started: Instant::now() }
    }

    /// Stops timing and folds in the work counters.
    pub fn finish(&self, sim_events: u64, queue_ops: u64) -> WallClockProfile {
        let elapsed_secs = self.started.elapsed().as_secs_f64();
        let per_sec = |n: u64| if elapsed_secs > 0.0 { n as f64 / elapsed_secs } else { 0.0 };
        WallClockProfile {
            elapsed_secs,
            sim_events,
            queue_ops,
            events_per_sec: per_sec(sim_events),
            queue_ops_per_sec: per_sec(queue_ops),
        }
    }
}

/// Completed wall-clock profile of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallClockProfile {
    /// Wall-clock seconds spent inside the run.
    pub elapsed_secs: f64,
    /// Simulated events processed (AER events captured).
    pub sim_events: u64,
    /// Event-queue operations performed (schedules + pops).
    pub queue_ops: u64,
    /// Simulated events per wall-clock second.
    pub events_per_sec: f64,
    /// Queue operations per wall-clock second.
    pub queue_ops_per_sec: f64,
}

impl WallClockProfile {
    /// Serialises the profile for the JSON export.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("elapsed_secs", Json::from(self.elapsed_secs)),
            ("sim_events", Json::from(self.sim_events)),
            ("queue_ops", Json::from(self.queue_ops)),
            ("events_per_sec", Json::from(self.events_per_sec)),
            ("queue_ops_per_sec", Json::from(self.queue_ops_per_sec)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_computes_rates() {
        let p = Profiler::start();
        let profile = p.finish(1000, 5000);
        assert_eq!(profile.sim_events, 1000);
        assert_eq!(profile.queue_ops, 5000);
        assert!(profile.elapsed_secs >= 0.0);
        if profile.elapsed_secs > 0.0 {
            assert!(profile.events_per_sec > 0.0);
            assert!(profile.queue_ops_per_sec >= profile.events_per_sec);
        }
    }
}
