//! Criterion micro-benchmarks of the behavioral quantization path —
//! the engine behind the Fig. 6 and Fig. 8 sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use aetr::quantizer::quantize_train;
use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_clockgen::segments::SegmentTable;
use aetr_sim::time::{SimDuration, SimTime};

fn bench_quantize_train(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_train");
    for &rate in &[10_000.0f64, 100_000.0, 550_000.0] {
        let horizon = SimTime::from_ms(100);
        let train = PoissonGenerator::new(rate, 64, 7).generate(horizon);
        group.throughput(Throughput::Elements(train.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}kevts", rate / 1_000.0)),
            &train,
            |b, train| {
                let cfg = ClockGenConfig::prototype();
                b.iter(|| quantize_train(&cfg, train, horizon));
            },
        );
    }
    group.finish();
}

fn bench_segment_quantize(c: &mut Criterion) {
    let mut group = c.benchmark_group("segment_table");
    for policy in [DivisionPolicy::Recursive, DivisionPolicy::Never, DivisionPolicy::Linear] {
        let table = SegmentTable::new(&ClockGenConfig::prototype().with_policy(policy));
        group.bench_function(format!("quantize/{policy}"), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i.wrapping_mul(6_364_136_223_846_793_005)).wrapping_add(1) % 100_000_000;
                std::hint::black_box(table.quantize(SimDuration::from_ps(i + 1)))
            });
        });
    }
    group.finish();
}

fn bench_usage_accounting(c: &mut Criterion) {
    let table = SegmentTable::new(&ClockGenConfig::prototype());
    c.bench_function("segment_table/usage_until", |b| {
        let mut i = 1u64;
        b.iter(|| {
            i = i.wrapping_mul(48_271) % 1_000_000_000;
            std::hint::black_box(table.usage_until(SimDuration::from_ps(i + 1)))
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_quantize_train, bench_segment_quantize, bench_usage_accounting
}
criterion_main!(benches);
