//! The DVS pixel: a logarithmic temporal-contrast change detector.
//!
//! Each pixel remembers the log-brightness at its last event and fires
//! an ON (brighter) or OFF (darker) event whenever the current
//! log-brightness moves more than a threshold away from that memory,
//! subject to an absolute refractory period — the Lichtsteiner/
//! Delbrück DVS pixel at behavioural level.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

/// Event polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Polarity {
    /// Brightness increased past the threshold.
    On,
    /// Brightness decreased past the threshold.
    Off,
}

/// Pixel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PixelConfig {
    /// Contrast threshold in natural-log units (0.15 ≈ 16 % contrast,
    /// a typical DVS setting).
    pub threshold: f64,
    /// Absolute refractory period per pixel.
    pub refractory: SimDuration,
}

impl PixelConfig {
    /// DVS128-like defaults: 15 % contrast threshold, 100 µs
    /// refractory.
    pub fn dvs128() -> PixelConfig {
        PixelConfig { threshold: 0.15, refractory: SimDuration::from_us(100) }
    }
}

impl Default for PixelConfig {
    fn default() -> Self {
        Self::dvs128()
    }
}

/// One change-detector pixel.
///
/// # Examples
///
/// ```
/// use aetr_dvs::pixel::{ChangeDetector, PixelConfig, Polarity};
/// use aetr_sim::time::SimTime;
///
/// let mut px = ChangeDetector::new(PixelConfig::dvs128(), 0.2);
/// // A 2x brightness step (ln 2 ≈ 0.69 >> 0.15) fires ON events.
/// let ev = px.observe(SimTime::from_us(10), 0.4);
/// assert_eq!(ev, Some(Polarity::On));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangeDetector {
    config: PixelConfig,
    /// Log-brightness memorised at the last event (or reset).
    reference: f64,
    refractory_until: Option<SimTime>,
}

impl ChangeDetector {
    /// Creates a pixel adapted to the initial brightness.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive initial brightness or non-positive
    /// threshold.
    pub fn new(config: PixelConfig, initial_brightness: f64) -> ChangeDetector {
        assert!(initial_brightness > 0.0, "brightness must be positive");
        assert!(config.threshold > 0.0, "threshold must be positive");
        ChangeDetector { config, reference: initial_brightness.ln(), refractory_until: None }
    }

    /// Observes the brightness at `now`; returns the polarity if the
    /// pixel fires. After an event the reference steps *by one
    /// threshold* toward the input (the DVS behaviour: a large step
    /// produces a burst of events, one per threshold crossing).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive brightness.
    pub fn observe(&mut self, now: SimTime, brightness: f64) -> Option<Polarity> {
        assert!(brightness > 0.0, "brightness must be positive, got {brightness}");
        if let Some(until) = self.refractory_until {
            if now < until {
                return None;
            }
            self.refractory_until = None;
        }
        let log_b = brightness.ln();
        let delta = log_b - self.reference;
        if delta >= self.config.threshold {
            self.reference += self.config.threshold;
            self.refractory_until = Some(now + self.config.refractory);
            Some(Polarity::On)
        } else if delta <= -self.config.threshold {
            self.reference -= self.config.threshold;
            self.refractory_until = Some(now + self.config.refractory);
            Some(Polarity::Off)
        } else {
            None
        }
    }

    /// The current log-brightness reference.
    pub fn reference(&self) -> f64 {
        self.reference
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn px(initial: f64) -> ChangeDetector {
        ChangeDetector::new(PixelConfig::dvs128(), initial)
    }

    #[test]
    fn no_change_no_events() {
        let mut p = px(0.5);
        for i in 0..1_000 {
            assert_eq!(p.observe(SimTime::from_us(i), 0.5), None);
        }
    }

    #[test]
    fn subthreshold_drift_is_ignored() {
        let mut p = px(0.5);
        // 10% change < 15% threshold (in log terms ln(1.1)=0.095<0.15).
        assert_eq!(p.observe(SimTime::from_us(1), 0.55), None);
    }

    #[test]
    fn large_step_bursts_one_event_per_threshold() {
        let mut p = px(0.2);
        // 4x step: ln 4 ≈ 1.386 ≈ 9.2 thresholds -> ~9 ON events spaced
        // by the refractory period.
        let mut events = 0;
        let mut t = SimTime::from_us(1);
        for _ in 0..20 {
            if p.observe(t, 0.8) == Some(Polarity::On) {
                events += 1;
            }
            t += SimDuration::from_us(150);
        }
        assert!((8..=10).contains(&events), "burst size {events}");
        // Reference has converged: no more events.
        assert_eq!(p.observe(t + SimDuration::from_ms(1), 0.8), None);
    }

    #[test]
    fn darkening_fires_off() {
        let mut p = px(0.8);
        assert_eq!(p.observe(SimTime::from_us(1), 0.4), Some(Polarity::Off));
    }

    #[test]
    fn refractory_gates_the_rate() {
        let mut p = px(0.1);
        assert_eq!(p.observe(SimTime::from_us(1), 10.0), Some(Polarity::On));
        // 50 µs later (inside the 100 µs refractory): silent.
        assert_eq!(p.observe(SimTime::from_us(51), 10.0), None);
        // 150 µs later: fires again (still thresholds to cross).
        assert_eq!(p.observe(SimTime::from_us(151), 10.0), Some(Polarity::On));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_brightness_panics() {
        let mut p = px(0.5);
        let _ = p.observe(SimTime::ZERO, 0.0);
    }
}
