//! Cycle-accurate sampling FSM — a direct transcription of the paper's
//! Fig. 1 pseudo-code.
//!
//! ```text
//! function AETRsampling(Tmin, θdiv, Ndiv)
//!   Tsample ← Tmin; cnt_sample ← 0; cnt_div ← 0
//!   loop
//!     if request() then
//!       sample(); acknowledge()
//!       cnt_sample ← 0; cnt_div ← 0; Tsample ← Tmin
//!     else if cnt_sample = θdiv then
//!       if cnt_div = Ndiv then shutdown_clk(); wait_for_request()
//!       else Tsample ← 2·Tsample; cnt_sample ← 0; cnt_div ← cnt_div+1
//!     else cnt_sample ← cnt_sample + 1
//!     wait_one_cycle()
//! ```
//!
//! One simplification relative to the letter of the pseudo-code: the
//! division is applied on the tick at which `cnt_sample` *reaches*
//! `θ_div` rather than burning an extra bookkeeping cycle, so every
//! period runs for exactly `θ_div` ticks. This matches the segment
//! table in [`crate::segments`], and their equivalence is
//! property-tested below.

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

use crate::config::{ClockGenConfig, DivisionPolicy};

/// What happened on a sampling tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsmAction {
    /// A pending request was sampled; counter and period reset.
    Sampled {
        /// Counter value captured as the event timestamp (in `T_min`
        /// units, before width clamping).
        timestamp_ticks: u64,
    },
    /// Quiet tick; the counter advanced by the current increment.
    Ticked,
    /// Quiet tick that also divided the clock.
    Divided {
        /// New period multiplier.
        multiplier: u64,
    },
    /// Quiet tick that switched the clock off.
    ShutDown,
}

/// Cycle-accurate state of the Fig. 1 sampling FSM.
///
/// Drive it with [`on_tick`](SamplerFsm::on_tick) at every sampling
/// clock edge, passing whether an AER request is pending. While
/// [asleep](SamplerFsm::is_asleep) there are no ticks; call
/// [`wake`](SamplerFsm::wake) when a request restarts the oscillator.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::config::ClockGenConfig;
/// use aetr_clockgen::fsm::{FsmAction, SamplerFsm};
///
/// let mut fsm = SamplerFsm::new(&ClockGenConfig::prototype().with_theta_div(4));
/// for _ in 0..4 {
///     assert!(matches!(fsm.on_tick(false), FsmAction::Ticked | FsmAction::Divided { .. }));
/// }
/// assert_eq!(fsm.multiplier(), 2); // divided after θ=4 ticks
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplerFsm {
    theta_div: u32,
    n_div: u32,
    policy: DivisionPolicy,
    counter_max: u64,
    base_period: SimDuration,

    multiplier: u64,
    cnt_sample: u32,
    cnt_div: u32,
    counter: u64,
    asleep: bool,
}

impl SamplerFsm {
    /// Creates the FSM in its reset state (fastest period, counters
    /// zero, clock running).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate.
    pub fn new(config: &ClockGenConfig) -> SamplerFsm {
        config.validate().expect("sampler FSM requires a valid configuration");
        SamplerFsm {
            theta_div: config.theta_div,
            n_div: config.n_div,
            policy: config.policy,
            counter_max: config.counter_max(),
            base_period: config.base_sampling_period(),
            multiplier: 1,
            cnt_sample: 0,
            cnt_div: 0,
            counter: 0,
            asleep: false,
        }
    }

    /// Current sampling period (`multiplier · T_min`).
    pub fn current_period(&self) -> SimDuration {
        self.base_period.saturating_mul(self.multiplier)
    }

    /// Current period multiplier.
    pub fn multiplier(&self) -> u64 {
        self.multiplier
    }

    /// Current timestamp counter value (in `T_min` units).
    pub fn counter(&self) -> u64 {
        self.counter
    }

    /// Current recursive-division level `cnt_div` (0 at full rate,
    /// up to `N_div` just before shutdown).
    ///
    /// The telemetry sampler reports this as the instantaneous divider
    /// level; it always satisfies `multiplier() == 1 << division_level()`.
    pub fn division_level(&self) -> u32 {
        self.cnt_div
    }

    /// `true` after shutdown, until [`wake`](SamplerFsm::wake).
    pub fn is_asleep(&self) -> bool {
        self.asleep
    }

    /// Advances one sampling clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if called while asleep — a stopped clock has no ticks;
    /// call [`wake`](SamplerFsm::wake) first.
    pub fn on_tick(&mut self, request_pending: bool) -> FsmAction {
        assert!(!self.asleep, "on_tick while the clock is stopped");
        // The counter advances by the current increment on every cycle,
        // so its value always equals elapsed/T_min at tick boundaries.
        self.counter = self.counter.saturating_add(self.multiplier).min(self.counter_max);

        if request_pending {
            let timestamp_ticks = self.counter;
            self.reset_measurement();
            return FsmAction::Sampled { timestamp_ticks };
        }

        self.cnt_sample += 1;
        if self.cnt_sample >= self.theta_div {
            self.cnt_sample = 0;
            match self.policy {
                DivisionPolicy::Never => FsmAction::Ticked,
                DivisionPolicy::Recursive | DivisionPolicy::Linear
                    if self.cnt_div == self.n_div =>
                {
                    self.asleep = true;
                    FsmAction::ShutDown
                }
                DivisionPolicy::DivideOnly if self.cnt_div == self.n_div => FsmAction::Ticked,
                DivisionPolicy::Recursive | DivisionPolicy::DivideOnly => {
                    self.cnt_div += 1;
                    self.multiplier *= 2;
                    FsmAction::Divided { multiplier: self.multiplier }
                }
                DivisionPolicy::Linear => {
                    self.cnt_div += 1;
                    self.multiplier += 1;
                    FsmAction::Divided { multiplier: self.multiplier }
                }
            }
        } else {
            FsmAction::Ticked
        }
    }

    /// Handles an AER request arriving while the clock is stopped: the
    /// oscillator restarts and the (saturated) frozen counter becomes
    /// the event's timestamp. Returns that timestamp in `T_min` units.
    ///
    /// # Panics
    ///
    /// Panics if the clock is running (a running clock samples requests
    /// through [`on_tick`](SamplerFsm::on_tick)).
    pub fn wake(&mut self) -> u64 {
        assert!(self.asleep, "wake() on a running clock");
        let frozen = self.counter;
        self.asleep = false;
        self.reset_measurement();
        frozen
    }

    /// Forces the clock off regardless of FSM state — a stuck
    /// oscillator fault, not a policy decision. The counter freezes at
    /// its current value exactly as in a normal shutdown, so a later
    /// [`wake`](SamplerFsm::wake) delivers a coherent (if saturated)
    /// timestamp. Idempotent: forcing an already-stopped clock does
    /// nothing.
    pub fn force_shutdown(&mut self) {
        self.asleep = true;
    }

    fn reset_measurement(&mut self) {
        self.counter = 0;
        self.cnt_sample = 0;
        self.cnt_div = 0;
        self.multiplier = 1;
    }

    /// Applies a new configuration at runtime (the SPI path of §4.1:
    /// "θ_div and N_div ... can be loaded from the outside via the SPI
    /// configuration interface ... at run-time").
    ///
    /// Hardware semantics: the counters keep their values; the new
    /// `θ_div`/`N_div`/policy take effect from the next cycle. If the
    /// FSM has already divided more times than the new `N_div` allows,
    /// the next quiet division boundary shuts the clock down (or
    /// plateaus, per the policy).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate or changes the base
    /// sampling period (the period is a synthesis-time property; only
    /// the division parameters are runtime registers).
    pub fn reconfigure(&mut self, config: &ClockGenConfig) {
        config.validate().expect("reconfigure requires a valid configuration");
        assert_eq!(
            config.base_sampling_period(),
            self.base_period,
            "base sampling period is fixed at synthesis time"
        );
        self.theta_div = config.theta_div;
        self.n_div = config.n_div;
        self.policy = config.policy;
        self.counter_max = config.counter_max();
        // Clamp the in-flight division state into the new envelope so
        // the next boundary decision is well-defined.
        if self.cnt_div > self.n_div {
            self.cnt_div = self.n_div;
        }
        if self.cnt_sample >= self.theta_div {
            self.cnt_sample = self.theta_div - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segments::{QuantizeOutcome, SegmentTable};

    fn cfg() -> ClockGenConfig {
        ClockGenConfig::prototype().with_theta_div(8).with_n_div(3)
    }

    #[test]
    fn divides_exactly_every_theta_ticks() {
        let mut fsm = SamplerFsm::new(&cfg());
        let mut division_ticks = Vec::new();
        for tick in 1..=100 {
            match fsm.on_tick(false) {
                FsmAction::Divided { .. } => division_ticks.push(tick),
                FsmAction::ShutDown => {
                    division_ticks.push(tick);
                    break;
                }
                _ => {}
            }
        }
        // θ=8: divide after ticks 8, 16, 24, shutdown after 32.
        assert_eq!(division_ticks, vec![8, 16, 24, 32]);
        assert!(fsm.is_asleep());
    }

    #[test]
    fn counter_tracks_elapsed_time_exactly() {
        let mut fsm = SamplerFsm::new(&cfg());
        let mut elapsed_ticks = 0u64;
        for _ in 0..30 {
            let mult_before = fsm.multiplier();
            fsm.on_tick(false);
            elapsed_ticks += mult_before;
            assert_eq!(fsm.counter(), elapsed_ticks);
        }
    }

    #[test]
    fn sample_resets_everything() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..20 {
            fsm.on_tick(false);
        }
        assert!(fsm.multiplier() > 1);
        let action = fsm.on_tick(true);
        let FsmAction::Sampled { timestamp_ticks } = action else {
            panic!("expected Sampled, got {action:?}");
        };
        assert!(timestamp_ticks > 20);
        assert_eq!(fsm.multiplier(), 1);
        assert_eq!(fsm.counter(), 0);
    }

    #[test]
    fn wake_returns_saturated_counter() {
        let mut fsm = SamplerFsm::new(&cfg());
        while !fsm.is_asleep() {
            fsm.on_tick(false);
        }
        // θ·(1+2+4+8) = 8·15 = 120.
        let frozen = fsm.wake();
        assert_eq!(frozen, 120);
        assert!(!fsm.is_asleep());
        assert_eq!(fsm.multiplier(), 1);
    }

    #[test]
    fn counter_clamps_at_width() {
        let config = ClockGenConfig {
            counter_bits: 6, // max 63
            ..cfg()
        };
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..25 {
            if fsm.is_asleep() {
                break;
            }
            fsm.on_tick(false);
        }
        assert!(fsm.counter() <= 63);
    }

    #[test]
    fn never_policy_never_divides_or_sleeps() {
        let config = cfg().with_policy(DivisionPolicy::Never);
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..1_000 {
            assert!(matches!(fsm.on_tick(false), FsmAction::Ticked));
        }
        assert_eq!(fsm.multiplier(), 1);
        assert!(!fsm.is_asleep());
    }

    #[test]
    fn divide_only_plateaus() {
        let config = cfg().with_policy(DivisionPolicy::DivideOnly);
        let mut fsm = SamplerFsm::new(&config);
        for _ in 0..1_000 {
            fsm.on_tick(false);
            assert!(!fsm.is_asleep());
        }
        assert_eq!(fsm.multiplier(), 8);
    }

    #[test]
    fn linear_policy_grows_arithmetically() {
        let config = cfg().with_policy(DivisionPolicy::Linear);
        let mut fsm = SamplerFsm::new(&config);
        let mut mults = vec![fsm.multiplier()];
        loop {
            match fsm.on_tick(false) {
                FsmAction::Divided { multiplier } => mults.push(multiplier),
                FsmAction::ShutDown => break,
                _ => {}
            }
        }
        assert_eq!(mults, vec![1, 2, 3, 4]);
    }

    #[test]
    fn reconfigure_applies_new_knobs_live() {
        let mut fsm = SamplerFsm::new(&cfg()); // θ=8, N=3
        for _ in 0..10 {
            fsm.on_tick(false);
        }
        assert_eq!(fsm.multiplier(), 2, "one division after 8 ticks");
        // Host raises θ to 16 and drops N to 1: the FSM is already at
        // cnt_div=1 == new N, so the next boundary shuts down instead
        // of dividing further.
        fsm.reconfigure(&cfg().with_theta_div(16).with_n_div(1));
        let mut shutdowns = 0;
        let mut divisions = 0;
        for _ in 0..40 {
            if fsm.is_asleep() {
                break;
            }
            match fsm.on_tick(false) {
                FsmAction::Divided { .. } => divisions += 1,
                FsmAction::ShutDown => shutdowns += 1,
                _ => {}
            }
        }
        assert_eq!(divisions, 0, "no room left under the new N_div");
        assert_eq!(shutdowns, 1);
    }

    #[test]
    fn reconfigure_counter_keeps_running() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..5 {
            fsm.on_tick(false);
        }
        let before = fsm.counter();
        fsm.reconfigure(&cfg().with_theta_div(32));
        fsm.on_tick(false);
        assert_eq!(fsm.counter(), before + fsm.multiplier(), "counter continuity");
    }

    #[test]
    fn force_shutdown_freezes_counter_for_wake() {
        let mut fsm = SamplerFsm::new(&cfg());
        for _ in 0..5 {
            fsm.on_tick(false);
        }
        let frozen = fsm.counter();
        fsm.force_shutdown();
        assert!(fsm.is_asleep());
        fsm.force_shutdown(); // idempotent
        assert_eq!(fsm.wake(), frozen, "wake delivers the frozen counter");
        assert!(!fsm.is_asleep());
    }

    #[test]
    #[should_panic(expected = "synthesis time")]
    fn reconfigure_cannot_change_base_period() {
        let mut fsm = SamplerFsm::new(&cfg());
        let other_ring = ClockGenConfig { prescaler_stages: 3, ..cfg() };
        fsm.reconfigure(&other_ring);
    }

    #[test]
    #[should_panic(expected = "stopped")]
    fn tick_while_asleep_panics() {
        let mut fsm = SamplerFsm::new(&cfg());
        while !fsm.is_asleep() {
            fsm.on_tick(false);
        }
        fsm.on_tick(false);
    }

    /// Ground-truth equivalence: stepping the FSM tick by tick and
    /// sampling at tick `n` yields exactly the timestamp the segment
    /// table predicts for the corresponding arrival interval.
    #[test]
    fn fsm_matches_segment_table() {
        for policy in [
            DivisionPolicy::Recursive,
            DivisionPolicy::DivideOnly,
            DivisionPolicy::Never,
            DivisionPolicy::Linear,
        ] {
            let config = cfg().with_policy(policy);
            let table = SegmentTable::new(&config);
            let base = config.base_sampling_period();
            // Arrival just after tick k-1, detected at tick k: for each
            // k, run a fresh FSM for k-1 quiet ticks + 1 sampling tick.
            for k in 1..200u64 {
                let mut fsm = SamplerFsm::new(&config);
                let mut quiet = 0u64;
                let mut fsm_ts = None;
                while fsm_ts.is_none() {
                    if fsm.is_asleep() {
                        fsm_ts = Some(fsm.wake());
                        break;
                    }
                    if quiet + 1 == k {
                        match fsm.on_tick(true) {
                            FsmAction::Sampled { timestamp_ticks } => {
                                fsm_ts = Some(timestamp_ticks)
                            }
                            other => panic!("expected Sampled, got {other:?}"),
                        }
                    } else {
                        fsm.on_tick(false);
                        quiet += 1;
                    }
                }
                // The table's prediction for an arrival immediately
                // after tick k-1 (delta = time of tick k-1 + epsilon).
                let prev_offset = match k {
                    1 => aetr_sim::time::SimDuration::ZERO,
                    _ => tick_offset(&table, k - 1),
                };
                let delta = prev_offset + aetr_sim::time::SimDuration::from_ps(1);
                let expected = match table.quantize(delta) {
                    QuantizeOutcome::Sampled { ticks, .. } => ticks,
                    QuantizeOutcome::Asleep { frozen_ticks, .. } => frozen_ticks,
                };
                assert_eq!(
                    fsm_ts.unwrap(),
                    expected,
                    "policy {policy:?}, detection tick {k}, base {base}"
                );
            }
        }
    }

    /// Offset of the `n`-th tick (1-based) according to the table.
    fn tick_offset(table: &SegmentTable, n: u64) -> aetr_sim::time::SimDuration {
        let mut remaining = n;
        for seg in table.segments() {
            if remaining <= seg.ticks {
                return seg.start + table.base_period().saturating_mul(seg.multiplier * remaining);
            }
            remaining -= seg.ticks;
        }
        match table.tail() {
            crate::segments::Tail::Infinite { multiplier } => {
                let start =
                    table.segments().last().map_or(aetr_sim::time::SimDuration::ZERO, |s| s.end);
                start + table.base_period().saturating_mul(multiplier * remaining)
            }
            crate::segments::Tail::Shutdown => {
                // No tick n exists; the FSM is asleep. Return the
                // shutdown offset so the caller's +eps lands in Asleep.
                table.shutdown_offset().unwrap()
            }
        }
    }
}
