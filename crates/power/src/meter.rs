//! An integrating power meter for discrete-event simulation.
//!
//! The behavioral engine accounts activity analytically; the full DES
//! interface instead *narrates* its activity to a [`PowerMeter`] as it
//! happens — "clock now at multiplier 4", "event processed", "clock
//! off" — and the meter integrates an [`ActivityInput`] that the
//! [`PowerModel`](crate::model::PowerModel) can evaluate. This keeps
//! the two power paths comparable by construction.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::model::ActivityInput;

/// Current clock state as seen by the meter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum ClockState {
    /// Running at a period multiplier.
    Active(u64),
    /// Switched off.
    Off,
}

/// Integrates clock activity, events and wakes over simulation time.
///
/// # Examples
///
/// ```
/// use aetr_power::meter::PowerMeter;
/// use aetr_power::model::PowerModel;
/// use aetr_sim::time::SimTime;
///
/// let mut meter = PowerMeter::new(SimTime::ZERO);
/// meter.clock_multiplier(SimTime::ZERO, 1);
/// meter.clock_off(SimTime::from_ms(1));
/// meter.event(2);
/// let activity = meter.finish(SimTime::from_ms(2));
/// let report = PowerModel::igloo_nano().evaluate(&activity);
/// assert!(report.total.as_microwatts() > 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerMeter {
    activity: ActivityInput,
    state: ClockState,
    last_change: SimTime,
}

impl PowerMeter {
    /// Creates a meter starting at `start` with the clock off.
    pub fn new(start: SimTime) -> PowerMeter {
        PowerMeter {
            activity: ActivityInput::default(),
            state: ClockState::Off,
            last_change: start,
        }
    }

    fn accrue(&mut self, now: SimTime) {
        let span = now.saturating_duration_since(self.last_change);
        if !span.is_zero() {
            match self.state {
                ClockState::Active(m) => add_active(&mut self.activity, m, span),
                ClockState::Off => self.activity.off += span,
            }
        }
        self.last_change = now;
    }

    /// Records a clock (re)configuration to period multiplier
    /// `multiplier` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `multiplier` is zero or `now` precedes an earlier
    /// notification.
    pub fn clock_multiplier(&mut self, now: SimTime, multiplier: u64) {
        assert!(multiplier > 0, "multiplier must be non-zero");
        assert!(now >= self.last_change, "meter notified out of order");
        self.accrue(now);
        self.state = ClockState::Active(multiplier);
    }

    /// Records the clock switching off at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes an earlier notification.
    pub fn clock_off(&mut self, now: SimTime) {
        assert!(now >= self.last_change, "meter notified out of order");
        self.accrue(now);
        self.state = ClockState::Off;
    }

    /// Records a ring-oscillator wake.
    pub fn wake(&mut self) {
        self.activity.wake_count += 1;
    }

    /// Records `count` processed events.
    pub fn event(&mut self, count: u64) {
        self.activity.event_count += count;
    }

    /// Closes the record at `horizon` and returns the accumulated
    /// activity.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` precedes an earlier notification.
    pub fn finish(mut self, horizon: SimTime) -> ActivityInput {
        assert!(horizon >= self.last_change, "meter finished before its last notification");
        self.accrue(horizon);
        self.activity
    }

    /// Peek at the activity accumulated so far (not including the open
    /// interval since the last notification).
    pub fn activity(&self) -> &ActivityInput {
        &self.activity
    }
}

fn add_active(activity: &mut ActivityInput, multiplier: u64, span: SimDuration) {
    match activity.active.binary_search_by_key(&multiplier, |&(m, _)| m) {
        Ok(i) => activity.active[i].1 += span,
        Err(i) => activity.active.insert(i, (multiplier, span)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integrates_state_changes() {
        let mut meter = PowerMeter::new(SimTime::ZERO);
        meter.clock_multiplier(SimTime::ZERO, 1);
        meter.clock_multiplier(SimTime::from_us(10), 2);
        meter.clock_off(SimTime::from_us(30));
        let activity = meter.finish(SimTime::from_us(100));
        assert_eq!(
            activity.active,
            vec![(1, SimDuration::from_us(10)), (2, SimDuration::from_us(20))]
        );
        assert_eq!(activity.off, SimDuration::from_us(70));
        assert_eq!(activity.span(), SimDuration::from_us(100));
    }

    #[test]
    fn starts_off_until_first_notification() {
        let mut meter = PowerMeter::new(SimTime::ZERO);
        meter.clock_multiplier(SimTime::from_us(5), 1);
        let activity = meter.finish(SimTime::from_us(10));
        assert_eq!(activity.off, SimDuration::from_us(5));
        assert_eq!(activity.active, vec![(1, SimDuration::from_us(5))]);
    }

    #[test]
    fn repeated_same_multiplier_merges() {
        let mut meter = PowerMeter::new(SimTime::ZERO);
        meter.clock_multiplier(SimTime::ZERO, 1);
        meter.clock_off(SimTime::from_us(1));
        meter.clock_multiplier(SimTime::from_us(2), 1);
        let activity = meter.finish(SimTime::from_us(3));
        assert_eq!(activity.active, vec![(1, SimDuration::from_us(2))]);
        assert_eq!(activity.off, SimDuration::from_us(1));
    }

    #[test]
    fn counts_events_and_wakes() {
        let mut meter = PowerMeter::new(SimTime::ZERO);
        meter.event(3);
        meter.wake();
        meter.event(1);
        let activity = meter.finish(SimTime::from_us(1));
        assert_eq!(activity.event_count, 4);
        assert_eq!(activity.wake_count, 1);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_notification_panics() {
        let mut meter = PowerMeter::new(SimTime::from_us(10));
        meter.clock_multiplier(SimTime::from_us(5), 1);
    }
}
