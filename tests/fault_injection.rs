//! Acceptance tests for the fault-injection subsystem: seeded fault
//! plans over the DES interface, watchdog recovery, graceful
//! degradation, and the zero-cost guarantee when no faults are armed.

use aetr::campaign::{CampaignConfig, FaultCampaign};
use aetr::i2s::decode_frames;
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr_aer::generator::{PoissonGenerator, RegularGenerator, SpikeSource};
use aetr_faults::{FaultKind, FaultPlan, FaultRates};
use aetr_sim::time::{SimDuration, SimTime};

fn prototype() -> AerToI2sInterface {
    AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap()
}

/// (a) Lost `ACK` edges are recovered by the handshake watchdog: the
/// run terminates (no deadlock), every event is still captured, and
/// only watchdog-aborted transactions are missing from the handshake
/// log — a bounded, accounted-for loss.
#[test]
fn lost_acks_are_recovered_by_the_watchdog() {
    let train = PoissonGenerator::new(50_000.0, 64, 3).generate(SimTime::from_ms(10));
    let n = train.len();
    let plan =
        FaultPlan::nominal(7).with_rates(FaultRates { lost_ack: 0.25, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(10), &plan);

    assert!(report.health.lost_acks > 0, "the fault actually fired");
    assert!(report.health.acks_recovered > 0, "the watchdog re-drove ACK successfully");
    assert_eq!(report.events.len(), n, "no event is lost to a hung handshake");
    assert_eq!(report.i2s.event_count(), n, "the full stream still goes out");
    assert_eq!(
        report.handshake.len() as u64 + report.health.handshakes_aborted,
        n as u64,
        "exactly the aborted transactions are missing from the log"
    );
}

/// (b) A dead ring oscillator trips the wake watchdog: after bounded
/// retries the clock is forced on and the interface degrades to
/// never-sleeping clocking. Nothing is lost and output timestamps
/// stay strictly monotonic through the transition.
#[test]
fn wake_failure_enters_degraded_mode_with_monotonic_timestamps() {
    // Sparse train: every event needs a wake, and every wake fails.
    let train = RegularGenerator::new(SimDuration::from_ms(1), 4).generate(SimTime::from_ms(20));
    let n = train.len();
    let plan =
        FaultPlan::nominal(3).with_rates(FaultRates { wake_failure: 1.0, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(25), &plan);

    assert!(report.health.degraded, "the watchdog gave up on pausible clocking");
    assert!(report.health.forced_wakes >= 1);
    assert!(report.health.wake_retries >= 1);
    assert_eq!(report.events.len(), n, "no event is lost to the dead oscillator");
    for pair in report.events.windows(2) {
        assert!(
            pair[1].detection > pair[0].detection,
            "detection times strictly monotonic across the degradation: {pair:?}"
        );
    }
    // Degraded clocking never sleeps, so after the single forced wake
    // there are no further wake attempts to fail.
    assert_eq!(report.wake_count, 1, "one wake, then the clock stays on");
}

/// (c) A zero-rate plan is provably free: bit-identical
/// `InterfaceReport` to a run without any injector.
#[test]
fn zero_rate_plan_is_bit_identical_to_plain_run() {
    let train = PoissonGenerator::new(80_000.0, 64, 11).generate(SimTime::from_ms(10));
    let interface = prototype();
    let plain = interface.run(&train, SimTime::from_ms(10));
    let nominal =
        interface.run_with_faults(&train, SimTime::from_ms(10), &FaultPlan::nominal(424_242));
    assert_eq!(plain, nominal, "zero-rate plan must not perturb anything");
    assert!(nominal.health.is_nominal());
}

/// (d) A fault campaign is a pure function of its seeds: two runs of
/// the same configuration agree bit for bit.
#[test]
fn fixed_seed_campaign_reproduces_bit_for_bit() {
    let config = CampaignConfig {
        event_rate_hz: 40_000.0,
        duration: SimDuration::from_ms(5),
        ..CampaignConfig::default()
    };
    let rates = [1e-3, 1e-2, 1e-1];
    let a = FaultCampaign::new(config.clone()).unwrap().run(&rates);
    let b = FaultCampaign::new(config).unwrap().run(&rates);
    assert_eq!(a, b, "identical seeds, identical campaign");
    assert!(a.points.iter().any(|p| !p.health.is_nominal()), "faults actually fired");
}

/// A scheduled oscillator stall freezes the clock mid-run; the next
/// request restarts it and timestamps stay coherent.
#[test]
fn scheduled_oscillator_stall_recovers_on_the_next_request() {
    let train = PoissonGenerator::new(20_000.0, 32, 9).generate(SimTime::from_ms(5));
    let n = train.len();
    let plan = FaultPlan::nominal(0).schedule(SimTime::from_ms(1), FaultKind::StuckOscillator);
    let report = prototype().run_with_faults(&train, SimTime::from_ms(5), &plan);

    assert_eq!(report.health.oscillator_stalls, 1);
    assert_eq!(report.events.len(), n, "the stall costs latency, not events");
    for pair in report.events.windows(2) {
        assert!(pair[1].detection > pair[0].detection, "timestamps re-cohered: {pair:?}");
    }
}

/// Malformed 4-phase transactions are logged faithfully — and flagged
/// by the existing protocol verifier, which is the point: the fault
/// model produces exactly the evidence a bring-up engineer would see.
#[test]
fn malformed_transactions_fail_protocol_verification() {
    let train = PoissonGenerator::new(50_000.0, 64, 3).generate(SimTime::from_ms(2));
    let plan =
        FaultPlan::nominal(5).with_rates(FaultRates { malformed: 1.0, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(2), &plan);
    assert!(report.health.malformed_transactions > 0);
    assert!(report.handshake.verify_protocol().is_err(), "the verifier catches the corruption");
}

/// A stuck `REQ` would re-sample phantom copies of the same event;
/// the spurious-sample detector discards them, so the output carries
/// each event exactly once.
#[test]
fn stuck_req_phantoms_are_discarded() {
    let train = PoissonGenerator::new(50_000.0, 64, 13).generate(SimTime::from_ms(5));
    let n = train.len();
    let plan =
        FaultPlan::nominal(17).with_rates(FaultRates { stuck_req: 0.5, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(5), &plan);
    assert!(report.health.stuck_requests > 0);
    assert!(report.health.spurious_samples > 0, "phantom samples were seen and dropped");
    assert_eq!(report.events.len(), n, "each event captured exactly once");
    assert_eq!(report.i2s.event_count(), n);
}

/// FIFO bit flips corrupt the stored word, not the capture log, so a
/// campaign can quantify the damage: the decoded I2S stream disagrees
/// with the capture log exactly where flips landed.
#[test]
fn fifo_bit_flips_corrupt_the_stream_not_the_capture_log() {
    let train = PoissonGenerator::new(50_000.0, 64, 21).generate(SimTime::from_ms(2));
    let n = train.len();
    let plan = FaultPlan::nominal(2)
        .with_rates(FaultRates { fifo_bit_flip: 1.0, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(2), &plan);
    assert_eq!(report.health.fifo_bit_flips, n as u64, "every stored word was hit");
    let decoded = decode_frames(&report.i2s);
    assert_eq!(decoded.len(), n);
    let mismatches = report
        .events
        .iter()
        .zip(&decoded)
        .filter(|(captured, sent)| captured.event != **sent)
        .count();
    assert_eq!(mismatches, n, "single-bit flips always change the word");
}

/// Receiver-side frame slips lose whole frames after the bus time was
/// spent; the health report accounts for every lost event.
#[test]
fn frame_slips_are_accounted_event_by_event() {
    let train = PoissonGenerator::new(50_000.0, 64, 31).generate(SimTime::from_ms(2));
    let n = train.len();
    let plan = FaultPlan::nominal(8)
        .with_rates(FaultRates { i2s_frame_slip: 1.0, ..FaultRates::default() });
    let report = prototype().run_with_faults(&train, SimTime::from_ms(2), &plan);
    assert_eq!(report.i2s.event_count(), 0, "every frame slipped");
    assert_eq!(report.health.events_lost_to_slips, n as u64);
    assert_eq!(report.events.len(), n, "capture itself was unaffected");
}
