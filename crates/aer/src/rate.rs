//! Event-rate estimation.
//!
//! Fig. 7a overlays the instantaneous event rate on the cochlea raster;
//! this module provides the sliding-window estimator that produces that
//! curve, plus a simple binned estimator.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::spike::SpikeTrain;

/// One point of an event-rate curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Centre of the estimation window.
    pub time: SimTime,
    /// Estimated rate in events per second.
    pub rate_hz: f64,
}

/// Sliding-window rate estimate: at each step, counts the spikes inside
/// a centred window of the given width.
///
/// The curve spans from the train's first to last spike; an empty or
/// single-spike train yields an empty curve.
///
/// # Panics
///
/// Panics if `window` or `step` is zero.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{RegularGenerator, SpikeSource};
/// use aetr_aer::rate::sliding_window_rate;
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let train = RegularGenerator::new(SimDuration::from_us(100), 1)
///     .generate(SimTime::from_ms(100));
/// let curve = sliding_window_rate(&train, SimDuration::from_ms(10), SimDuration::from_ms(5));
/// // 10 kevt/s everywhere (within windowing error).
/// assert!(curve.iter().all(|p| (p.rate_hz - 10_000.0).abs() / 10_000.0 < 0.05));
/// ```
pub fn sliding_window_rate(
    train: &SpikeTrain,
    window: SimDuration,
    step: SimDuration,
) -> Vec<RatePoint> {
    assert!(!window.is_zero(), "window must be non-zero");
    assert!(!step.is_zero(), "step must be non-zero");
    let (Some(first), Some(last)) = (train.first_time(), train.last_time()) else {
        return Vec::new();
    };
    if first == last {
        return Vec::new();
    }
    let half = window / 2;
    let mut points = Vec::new();
    let mut center = first;
    let spikes = train.as_slice();
    while center <= last {
        // Clamp the window to the recording span [0, last] and
        // normalise by the effective width, so edge estimates are not
        // biased low by the half-empty window.
        let lo = if center.as_ps() > half.as_ps() { center - half } else { SimTime::ZERO };
        let hi = center.saturating_add(half).min(last);
        let start = spikes.partition_point(|s| s.time < lo);
        let end = spikes.partition_point(|s| s.time <= hi);
        let count = end - start;
        let effective = (hi - lo).as_secs_f64();
        if effective > 0.0 {
            points.push(RatePoint { time: center, rate_hz: count as f64 / effective });
        }
        center = center.saturating_add(step);
    }
    points
}

/// Histogram-binned rate estimate over `[0, end)` with fixed-width
/// bins. Returns `(bin_start_time, rate_hz)` per bin.
///
/// # Panics
///
/// Panics if `bin` is zero.
pub fn binned_rate(train: &SpikeTrain, end: SimTime, bin: SimDuration) -> Vec<RatePoint> {
    assert!(!bin.is_zero(), "bin width must be non-zero");
    let n_bins = (end.saturating_duration_since(SimTime::ZERO) / bin) as usize;
    let mut counts = vec![0usize; n_bins];
    for s in train {
        let idx = (s.time.saturating_duration_since(SimTime::ZERO) / bin) as usize;
        if idx < n_bins {
            counts[idx] += 1;
        }
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| RatePoint {
            time: SimTime::ZERO + bin * i as u64,
            rate_hz: c as f64 / bin.as_secs_f64(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{PoissonGenerator, RegularGenerator, SpikeSource};

    #[test]
    fn empty_train_gives_empty_curve() {
        let train = SpikeTrain::new();
        assert!(sliding_window_rate(&train, SimDuration::from_ms(1), SimDuration::from_ms(1))
            .is_empty());
    }

    #[test]
    fn constant_rate_recovered() {
        let train =
            RegularGenerator::new(SimDuration::from_us(10), 1).generate(SimTime::from_ms(50));
        let curve = sliding_window_rate(&train, SimDuration::from_ms(5), SimDuration::from_ms(1));
        assert!(!curve.is_empty());
        for p in &curve {
            assert!(
                (p.rate_hz - 100_000.0).abs() / 100_000.0 < 0.05,
                "rate at {}: {}",
                p.time,
                p.rate_hz
            );
        }
    }

    #[test]
    fn poisson_rate_recovered_within_noise() {
        let train = PoissonGenerator::new(50_000.0, 16, 9).generate(SimTime::from_ms(200));
        let curve = sliding_window_rate(&train, SimDuration::from_ms(20), SimDuration::from_ms(10));
        let mean = curve.iter().map(|p| p.rate_hz).sum::<f64>() / curve.len() as f64;
        assert!((mean - 50_000.0).abs() / 50_000.0 < 0.1, "mean rate {mean}");
    }

    #[test]
    fn binned_rate_counts_exactly() {
        let train =
            RegularGenerator::new(SimDuration::from_us(100), 1).generate(SimTime::from_ms(1));
        // Spikes at 100..900 us. Bins of 500 us over [0, 1 ms): [5 in
        // first (100..400 plus 500? no: 100,200,300,400 -> 4... let's
        // just check totals.
        let points = binned_rate(&train, SimTime::from_ms(1), SimDuration::from_us(500));
        assert_eq!(points.len(), 2);
        let total_events: f64 = points.iter().map(|p| p.rate_hz * 500e-6).sum();
        assert!((total_events - train.len() as f64).abs() < 1e-6);
    }

    #[test]
    fn curve_times_are_monotonic() {
        let train = PoissonGenerator::new(10_000.0, 4, 2).generate(SimTime::from_ms(100));
        let curve = sliding_window_rate(&train, SimDuration::from_ms(10), SimDuration::from_ms(3));
        for w in curve.windows(2) {
            assert!(w[1].time > w[0].time);
        }
    }
}
