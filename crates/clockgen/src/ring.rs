//! Pausable ring-oscillator model (paper Fig. 5).
//!
//! The prototype's clock source is a closed loop of an odd number of
//! minimum-delay inverters, with the input inverter replaced by a NOR
//! gate so the loop can be broken (`SLEEP`). Because stopping the clock
//! freezes every register — including the one driving `SLEEP` — the
//! sleep request is converted into a *pulse* by an inverter chain whose
//! length must exceed a clock semi-period; restart is asynchronous
//! (the AER `REQ` feeds the NOR) and costs roughly 100 ns.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{Frequency, SimDuration, SimTime};

/// Static description of a ring oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingOscillatorConfig {
    /// Number of inverting stages in the loop; must be odd and ≥ 3.
    pub stages: u32,
    /// Propagation delay of one stage.
    pub stage_delay: SimDuration,
    /// Time from `REQ`-driven restart to the first output edge
    /// (paper §5.2: "in the order of 100 ns").
    pub wake_latency: SimDuration,
    /// Number of inverters in the sleep-pulse shaping chain.
    pub sleep_pulse_stages: u32,
}

impl RingOscillatorConfig {
    /// The prototype configuration: 13 stages × 320 ps ≈ 120 MHz output,
    /// 100 ns wake latency.
    pub fn igloo_nano() -> RingOscillatorConfig {
        RingOscillatorConfig {
            stages: 13,
            stage_delay: SimDuration::from_ps(320),
            wake_latency: SimDuration::from_ns(100),
            sleep_pulse_stages: 30,
        }
    }

    /// Oscillation period: one full traversal of the loop twice
    /// (`2 · stages · stage_delay`).
    pub fn period(&self) -> SimDuration {
        self.stage_delay * (2 * self.stages as u64)
    }

    /// Output frequency.
    pub fn frequency(&self) -> Frequency {
        self.period().to_frequency()
    }

    /// Width of the sleep pulse produced by the shaping chain.
    pub fn sleep_pulse_width(&self) -> SimDuration {
        self.stage_delay * self.sleep_pulse_stages as u64
    }

    /// Validates the electrical constraints of Fig. 5.
    ///
    /// # Errors
    ///
    /// * even or too-short inverter chains cannot oscillate;
    /// * a zero stage delay is non-physical;
    /// * the sleep pulse must outlast a clock semi-period, otherwise the
    ///   oscillator may re-latch and deadlock (paper: "the pulse must be
    ///   longer than a clock semiperiod").
    pub fn validate(&self) -> Result<(), RingOscillatorError> {
        if self.stages < 3 || self.stages.is_multiple_of(2) {
            return Err(RingOscillatorError::InvalidStageCount { stages: self.stages });
        }
        if self.stage_delay.is_zero() {
            return Err(RingOscillatorError::ZeroStageDelay);
        }
        let semi_period = self.period() / 2;
        if self.sleep_pulse_width() <= semi_period {
            return Err(RingOscillatorError::SleepPulseTooShort {
                pulse: self.sleep_pulse_width(),
                semi_period,
            });
        }
        Ok(())
    }
}

impl Default for RingOscillatorConfig {
    fn default() -> Self {
        Self::igloo_nano()
    }
}

/// Configuration errors for the ring oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingOscillatorError {
    /// The inverter count cannot oscillate (even or < 3).
    InvalidStageCount {
        /// Offending stage count.
        stages: u32,
    },
    /// A zero per-stage delay is non-physical.
    ZeroStageDelay,
    /// The sleep pulse would not survive a clock semi-period, risking a
    /// restart deadlock.
    SleepPulseTooShort {
        /// Configured pulse width.
        pulse: SimDuration,
        /// Required minimum (exclusive).
        semi_period: SimDuration,
    },
}

impl fmt::Display for RingOscillatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingOscillatorError::InvalidStageCount { stages } => {
                write!(f, "ring oscillator needs an odd stage count >= 3, got {stages}")
            }
            RingOscillatorError::ZeroStageDelay => write!(f, "stage delay must be non-zero"),
            RingOscillatorError::SleepPulseTooShort { pulse, semi_period } => {
                write!(f, "sleep pulse {pulse} must exceed the clock semi-period {semi_period}")
            }
        }
    }
}

impl Error for RingOscillatorError {}

/// Run state of the oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OscState {
    /// Oscillating; edges continue from `since`.
    Running {
        /// When the current run started (first edge reference).
        since: SimTime,
    },
    /// Loop broken by the sleep pulse; no edges until restarted.
    Sleeping,
}

/// Dynamic model of the pausable ring oscillator.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::ring::{RingOscillator, RingOscillatorConfig};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ro = RingOscillator::new(RingOscillatorConfig::igloo_nano())?;
/// let first_edge = ro.start(SimTime::ZERO);
/// assert_eq!(first_edge, SimTime::from_ns(100)); // wake latency
/// ro.stop(SimTime::from_us(5));
/// assert!(!ro.is_running());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingOscillator {
    config: RingOscillatorConfig,
    state: OscState,
    /// Cumulative time spent running (for power accounting).
    running_time: SimDuration,
    /// Number of start (wake) transitions.
    wake_count: u64,
    last_transition: SimTime,
}

impl RingOscillator {
    /// Creates a stopped oscillator after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`RingOscillatorError`] found by
    /// [`RingOscillatorConfig::validate`].
    pub fn new(config: RingOscillatorConfig) -> Result<RingOscillator, RingOscillatorError> {
        config.validate()?;
        Ok(RingOscillator {
            config,
            state: OscState::Sleeping,
            running_time: SimDuration::ZERO,
            wake_count: 0,
            last_transition: SimTime::ZERO,
        })
    }

    /// The static configuration.
    pub fn config(&self) -> &RingOscillatorConfig {
        &self.config
    }

    /// `true` while the loop oscillates.
    pub fn is_running(&self) -> bool {
        matches!(self.state, OscState::Running { .. })
    }

    /// Starts (or restarts) the oscillator at `now`; returns the time
    /// of the first usable output edge (`now + wake_latency`). Starting
    /// a running oscillator is a no-op that returns the next edge
    /// boundary.
    pub fn start(&mut self, now: SimTime) -> SimTime {
        match self.state {
            OscState::Running { since } => {
                // Already running: next edge on the period grid.
                let period = self.config.period();
                let elapsed = now.saturating_duration_since(since);
                let k = elapsed / period + 1;
                since + period * k
            }
            OscState::Sleeping => {
                let first = now + self.config.wake_latency;
                self.state = OscState::Running { since: first };
                self.wake_count += 1;
                self.last_transition = now;
                first
            }
        }
    }

    /// Stops the oscillator at `now` (sleep-pulse assertion). Stopping
    /// a stopped oscillator is a no-op.
    pub fn stop(&mut self, now: SimTime) {
        if let OscState::Running { .. } = self.state {
            self.running_time += now.saturating_duration_since(self.last_transition);
            self.state = OscState::Sleeping;
            self.last_transition = now;
        }
    }

    /// Total time spent running up to the last transition (add the
    /// current run manually if still running).
    pub fn running_time(&self) -> SimDuration {
        self.running_time
    }

    /// Number of sleep→run transitions so far.
    pub fn wake_count(&self) -> u64 {
        self.wake_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn igloo_nano_hits_120mhz() {
        let cfg = RingOscillatorConfig::igloo_nano();
        cfg.validate().unwrap();
        // 2 * 13 * 320 ps = 8320 ps -> 120.19 MHz
        assert_eq!(cfg.period(), SimDuration::from_ps(8_320));
        let f = cfg.frequency().as_hz_f64();
        assert!((f - 120e6).abs() / 120e6 < 0.01, "frequency {f}");
    }

    #[test]
    fn validation_rejects_even_stages() {
        let cfg = RingOscillatorConfig { stages: 12, ..RingOscillatorConfig::igloo_nano() };
        assert_eq!(cfg.validate(), Err(RingOscillatorError::InvalidStageCount { stages: 12 }));
    }

    #[test]
    fn validation_rejects_short_sleep_pulse() {
        let cfg =
            RingOscillatorConfig { sleep_pulse_stages: 2, ..RingOscillatorConfig::igloo_nano() };
        let err = cfg.validate().unwrap_err();
        assert!(matches!(err, RingOscillatorError::SleepPulseTooShort { .. }));
        assert!(err.to_string().contains("semi-period"));
    }

    #[test]
    fn validation_rejects_zero_delay() {
        let cfg = RingOscillatorConfig {
            stage_delay: SimDuration::ZERO,
            ..RingOscillatorConfig::igloo_nano()
        };
        assert_eq!(cfg.validate(), Err(RingOscillatorError::ZeroStageDelay));
    }

    #[test]
    fn start_applies_wake_latency() {
        let mut ro = RingOscillator::new(RingOscillatorConfig::igloo_nano()).unwrap();
        assert!(!ro.is_running());
        let first = ro.start(SimTime::from_us(1));
        assert_eq!(first, SimTime::from_us(1) + SimDuration::from_ns(100));
        assert!(ro.is_running());
        assert_eq!(ro.wake_count(), 1);
    }

    #[test]
    fn start_when_running_returns_grid_edge() {
        let mut ro = RingOscillator::new(RingOscillatorConfig::igloo_nano()).unwrap();
        let first = ro.start(SimTime::ZERO);
        let next = ro.start(first + SimDuration::from_ps(100));
        assert_eq!(next, first + ro.config().period());
        assert_eq!(ro.wake_count(), 1, "no spurious wake counted");
    }

    #[test]
    fn stop_accumulates_running_time() {
        let mut ro = RingOscillator::new(RingOscillatorConfig::igloo_nano()).unwrap();
        ro.start(SimTime::ZERO);
        ro.stop(SimTime::from_us(10));
        ro.start(SimTime::from_us(20));
        ro.stop(SimTime::from_us(25));
        assert_eq!(ro.running_time(), SimDuration::from_us(15));
        assert_eq!(ro.wake_count(), 2);
    }

    #[test]
    fn wake_latency_is_about_one_max_freq_period() {
        // Paper: recovery "is in the order of 100 ns; comparable with a
        // single clock period at the max freq" — here the max sampling
        // period is 30 MHz/2 = 66.7 ns, same order as 100 ns.
        let cfg = RingOscillatorConfig::igloo_nano();
        let sampling_period = cfg.period() * 8; // /4 prescale, /2 sampling
        assert!(cfg.wake_latency < sampling_period * 2);
    }
}
