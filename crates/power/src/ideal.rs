//! The ideal energy-proportional model — Eq. (1) of the paper:
//!
//! ```text
//! P_ideal(r) = E_spike · r + P_static
//! ```
//!
//! where `P_static` is the FPGA's leakage (50 µW) and `E_spike` is the
//! dynamic energy per spike, estimated from the high-activity region
//! where all dynamic power is attributable to event processing.

use serde::{Deserialize, Serialize};

use crate::units::{Energy, Power};

/// The ideal energy-proportional power line.
///
/// # Examples
///
/// ```
/// use aetr_power::ideal::IdealModel;
/// use aetr_power::units::{Energy, Power};
///
/// let ideal = IdealModel::new(Energy::from_nanojoules(8.1), Power::from_microwatts(50.0));
/// let p = ideal.power_at(550_000.0);
/// assert!((p.as_milliwatts() - 4.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IdealModel {
    /// Dynamic energy per spike.
    pub e_spike: Energy,
    /// Static floor.
    pub p_static: Power,
}

impl IdealModel {
    /// Creates the model from its two parameters.
    pub fn new(e_spike: Energy, p_static: Power) -> IdealModel {
        IdealModel { e_spike, p_static }
    }

    /// Ideal power at an event rate (events per second).
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is negative or not finite.
    pub fn power_at(&self, rate_hz: f64) -> Power {
        assert!(rate_hz.is_finite() && rate_hz >= 0.0, "rate must be non-negative, got {rate_hz}");
        Power::from_microwatts(
            self.e_spike.as_picojoules() * rate_hz / 1e6 + self.p_static.as_microwatts(),
        )
    }

    /// Estimates `E_spike` the way the paper does: attribute all
    /// dynamic power in the high-activity region to events.
    ///
    /// # Panics
    ///
    /// Panics if `rate_hz` is not strictly positive and finite.
    pub fn fit_from_high_activity(measured: Power, rate_hz: f64, p_static: Power) -> IdealModel {
        assert!(rate_hz.is_finite() && rate_hz > 0.0, "rate must be positive, got {rate_hz}");
        let dynamic_uw = (measured - p_static).as_microwatts();
        let e_spike = Energy::from_picojoules(dynamic_uw * 1e6 / rate_hz);
        IdealModel { e_spike, p_static }
    }

    /// Energy-proportionality gap of a measured point: measured power
    /// divided by ideal power at the same rate (≥ 1; 1 is perfect).
    pub fn proportionality_gap(&self, measured: Power, rate_hz: f64) -> f64 {
        let ideal = self.power_at(rate_hz).as_microwatts();
        if ideal == 0.0 {
            f64::INFINITY
        } else {
            measured.as_microwatts() / ideal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_anchor_fit() {
        // Fit from the paper's endpoints: 4.5 mW at 550 kevt/s, 50 µW
        // static -> E_spike ≈ 8.1 nJ.
        let ideal = IdealModel::fit_from_high_activity(
            Power::from_milliwatts(4.5),
            550_000.0,
            Power::from_microwatts(50.0),
        );
        let nj = ideal.e_spike.as_nanojoules();
        assert!((nj - 8.09).abs() < 0.05, "E_spike {nj} nJ");
        // Round trip: the fit reproduces the anchor point.
        let p = ideal.power_at(550_000.0);
        assert!((p.as_milliwatts() - 4.5).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_is_static_floor() {
        let ideal = IdealModel::new(Energy::from_nanojoules(8.0), Power::from_microwatts(50.0));
        assert_eq!(ideal.power_at(0.0), Power::from_microwatts(50.0));
    }

    #[test]
    fn line_is_linear_in_rate() {
        let ideal = IdealModel::new(Energy::from_nanojoules(2.0), Power::from_microwatts(10.0));
        let p1 = ideal.power_at(1_000.0).as_microwatts();
        let p2 = ideal.power_at(2_000.0).as_microwatts();
        let p3 = ideal.power_at(3_000.0).as_microwatts();
        assert!(((p2 - p1) - (p3 - p2)).abs() < 1e-9);
    }

    #[test]
    fn proportionality_gap_of_the_naive_baseline() {
        // The naïve 4.5 mW-flat baseline is ~90x off ideal at very low
        // rates (the paper's "90x factor").
        let ideal = IdealModel::fit_from_high_activity(
            Power::from_milliwatts(4.5),
            550_000.0,
            Power::from_microwatts(50.0),
        );
        let gap = ideal.proportionality_gap(Power::from_milliwatts(4.5), 10.0);
        assert!((80.0..100.0).contains(&gap), "gap {gap}");
    }
}
