//! The AETR buffer: an SRAM FIFO with watermark-triggered batching.
//!
//! The prototype holds "AETR data to create a batch to be transferred
//! in block" in a 9.2 kB SRAM FIFO (Fig. 3): events accumulate while
//! the rest of the system stays clock-gated, and once a configurable
//! threshold is reached the batch is drained to the I2S interface.
//!
//! # Depth vocabulary
//!
//! The two FIFO models in this crate ([`AetrFifo`] here and
//! [`CdcFifo`](crate::cdc_fifo::CdcFifo)) share one definition so
//! reports and telemetry are comparable:
//!
//! * **capacity** — the configured maximum number of entries
//!   ([`FifoConfig::capacity_events`]; `CdcFifoConfig::depth`);
//! * **occupancy** (= "depth" in a snapshot) — the number of entries
//!   *actually buffered right now*: [`AetrFifo::len`] /
//!   [`CdcFifo::true_occupancy`](crate::cdc_fifo::CdcFifo::true_occupancy).
//!   The CDC model additionally exposes per-domain *views* of
//!   occupancy that are deliberately stale; those are never what
//!   "depth" means.
//!
//! Everything derived follows the same rule: telemetry's
//! `interface.fifo.occupancy` gauge and `interface.fifo.depth`
//! histogram sample [`AetrFifo::len`], and
//! [`FifoStats::high_watermark`] is the maximum occupancy ever
//! observed — none of them refer to capacity.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::aetr_format::AetrEvent;

/// What to do when an event arrives at a full FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum OverflowPolicy {
    /// Drop the incoming event (the hardware behaviour: the write is
    /// simply not performed).
    #[default]
    DropNewest,
    /// Drop the oldest buffered event to make room.
    DropOldest,
}

/// What happened to an event offered to [`AetrFifo::push`].
///
/// Distinguishing the two overflow modes at the call site lets the
/// health monitor attribute losses without re-reading [`FifoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PushOutcome {
    /// The event was stored without displacing anything.
    Stored,
    /// The FIFO was full and the *incoming* event was discarded
    /// ([`OverflowPolicy::DropNewest`]).
    DroppedNewest,
    /// The FIFO was full and the *oldest buffered* event was discarded
    /// to make room; the incoming event was stored
    /// ([`OverflowPolicy::DropOldest`]).
    DroppedOldest,
}

impl PushOutcome {
    /// `true` when the incoming event ended up in the buffer.
    pub fn incoming_stored(self) -> bool {
        !matches!(self, PushOutcome::DroppedNewest)
    }

    /// `true` when *some* event was lost, incoming or buffered.
    pub fn lost_an_event(self) -> bool {
        !matches!(self, PushOutcome::Stored)
    }
}

/// FIFO configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoConfig {
    /// Capacity in bytes (one AETR event is 4 bytes). The prototype's
    /// SRAM is 9.2 kB.
    pub capacity_bytes: usize,
    /// Drain threshold in events: the I2S transfer starts once the
    /// occupancy reaches this watermark.
    pub watermark: usize,
    /// Behaviour on overflow.
    pub overflow: OverflowPolicy,
}

impl FifoConfig {
    /// The prototype configuration: 9.2 kB (2300 events), watermark at
    /// half capacity.
    pub fn prototype() -> FifoConfig {
        FifoConfig { capacity_bytes: 9_216, watermark: 1_150, overflow: OverflowPolicy::default() }
    }

    /// Capacity in events.
    pub fn capacity_events(&self) -> usize {
        self.capacity_bytes / 4
    }
}

impl Default for FifoConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

/// Occupancy and loss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FifoStats {
    /// Events pushed successfully.
    pub pushed: u64,
    /// Events popped.
    pub popped: u64,
    /// Events lost at a full buffer, all causes
    /// (`dropped_overflow + dropped_degraded`).
    pub dropped: u64,
    /// Events lost at a full buffer in normal operation.
    pub dropped_overflow: u64,
    /// Events lost at a full buffer while the watchdog had the
    /// interface in degraded mode ([`AetrFifo::set_degraded`]).
    pub dropped_degraded: u64,
    /// Highest occupancy ([`AetrFifo::len`]) observed.
    pub high_watermark: usize,
    /// Number of times the drain watermark was crossed upward.
    pub watermark_crossings: u64,
}

impl FifoStats {
    /// Fraction of offered events that were lost.
    pub fn loss_ratio(&self) -> f64 {
        let offered = self.pushed + self.dropped;
        if offered == 0 {
            0.0
        } else {
            self.dropped as f64 / offered as f64
        }
    }
}

impl fmt::Display for FifoStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pushed {}, popped {}, dropped {} ({:.2}%; overflow {}, degraded {}), \
             peak occupancy {}",
            self.pushed,
            self.popped,
            self.dropped,
            self.loss_ratio() * 100.0,
            self.dropped_overflow,
            self.dropped_degraded,
            self.high_watermark
        )
    }
}

/// The SRAM FIFO model.
///
/// # Examples
///
/// ```
/// use aetr::aetr_format::{AetrEvent, Timestamp};
/// use aetr::fifo::{AetrFifo, FifoConfig};
/// use aetr_aer::address::Address;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fifo = AetrFifo::new(FifoConfig::prototype());
/// fifo.push(AetrEvent::new(Address::new(1)?, Timestamp::from_ticks(5)));
/// assert_eq!(fifo.len(), 1);
/// assert!(fifo.pop().is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AetrFifo {
    config: FifoConfig,
    queue: VecDeque<AetrEvent>,
    stats: FifoStats,
    degraded: bool,
}

impl AetrFifo {
    /// Creates an empty FIFO.
    ///
    /// # Panics
    ///
    /// Panics if the capacity holds no events or the watermark exceeds
    /// the capacity.
    pub fn new(config: FifoConfig) -> AetrFifo {
        assert!(config.capacity_events() > 0, "FIFO capacity must hold at least one event");
        assert!(
            config.watermark <= config.capacity_events(),
            "watermark {} exceeds capacity {} events",
            config.watermark,
            config.capacity_events()
        );
        AetrFifo { config, queue: VecDeque::new(), stats: FifoStats::default(), degraded: false }
    }

    /// Marks subsequent overflow drops as degraded-mode losses, so the
    /// health report can attribute them to the watchdog fallback rather
    /// than ordinary congestion.
    pub fn set_degraded(&mut self, degraded: bool) {
        self.degraded = degraded;
    }

    /// Whether drops are currently attributed to degraded mode.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The configuration.
    pub fn config(&self) -> &FifoConfig {
        &self.config
    }

    /// Current occupancy in events — the canonical "depth" of the
    /// buffer (see the [module docs](self) for the shared vocabulary).
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` when the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.config.capacity_events()
    }

    /// `true` once occupancy has reached the drain watermark.
    pub fn at_watermark(&self) -> bool {
        self.queue.len() >= self.config.watermark
    }

    /// Pushes an event, applying the overflow policy when full, and
    /// reports what happened to it.
    pub fn push(&mut self, event: AetrEvent) -> PushOutcome {
        let was_below = self.queue.len() < self.config.watermark;
        let mut outcome = PushOutcome::Stored;
        if self.is_full() {
            match self.config.overflow {
                OverflowPolicy::DropNewest => {
                    self.count_drop();
                    return PushOutcome::DroppedNewest;
                }
                OverflowPolicy::DropOldest => {
                    self.queue.pop_front();
                    self.count_drop();
                    outcome = PushOutcome::DroppedOldest;
                }
            }
        }
        self.queue.push_back(event);
        self.stats.pushed += 1;
        self.stats.high_watermark = self.stats.high_watermark.max(self.queue.len());
        if was_below && self.queue.len() >= self.config.watermark {
            self.stats.watermark_crossings += 1;
        }
        outcome
    }

    /// Pops the oldest event.
    pub fn pop(&mut self) -> Option<AetrEvent> {
        let ev = self.queue.pop_front();
        if ev.is_some() {
            self.stats.popped += 1;
        }
        ev
    }

    /// Pops up to `n` events as a batch.
    pub fn pop_batch(&mut self, n: usize) -> Vec<AetrEvent> {
        let take = n.min(self.queue.len());
        let batch: Vec<AetrEvent> = self.queue.drain(..take).collect();
        self.stats.popped += batch.len() as u64;
        batch
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &FifoStats {
        &self.stats
    }

    fn count_drop(&mut self) {
        self.stats.dropped += 1;
        if self.degraded {
            self.stats.dropped_degraded += 1;
        } else {
            self.stats.dropped_overflow += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aetr_format::Timestamp;
    use aetr_aer::address::Address;

    fn ev(i: u16) -> AetrEvent {
        AetrEvent::new(Address::new(i % 1024).unwrap(), Timestamp::from_ticks(i as u64))
    }

    fn tiny(watermark: usize, overflow: OverflowPolicy) -> AetrFifo {
        AetrFifo::new(FifoConfig { capacity_bytes: 16, watermark, overflow })
    }

    #[test]
    fn prototype_capacity_is_2304_events() {
        let fifo = AetrFifo::new(FifoConfig::prototype());
        assert_eq!(fifo.config().capacity_events(), 2_304);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut fifo = AetrFifo::new(FifoConfig::prototype());
        for i in 0..10 {
            fifo.push(ev(i));
        }
        for i in 0..10 {
            assert_eq!(fifo.pop(), Some(ev(i)));
        }
        assert_eq!(fifo.pop(), None);
    }

    #[test]
    fn drop_newest_on_overflow() {
        let mut fifo = tiny(2, OverflowPolicy::DropNewest);
        for i in 0..4 {
            assert_eq!(fifo.push(ev(i)), PushOutcome::Stored);
        }
        for i in 4..6 {
            assert_eq!(fifo.push(ev(i)), PushOutcome::DroppedNewest);
        }
        assert_eq!(fifo.len(), 4);
        assert_eq!(fifo.stats().dropped, 2);
        assert_eq!(fifo.pop(), Some(ev(0)), "oldest survives");
    }

    #[test]
    fn drop_oldest_on_overflow() {
        let mut fifo = tiny(2, OverflowPolicy::DropOldest);
        for i in 0..4 {
            assert_eq!(fifo.push(ev(i)), PushOutcome::Stored);
        }
        for i in 4..6 {
            assert_eq!(fifo.push(ev(i)), PushOutcome::DroppedOldest);
        }
        assert_eq!(fifo.len(), 4);
        assert_eq!(fifo.stats().dropped, 2);
        assert_eq!(fifo.pop(), Some(ev(2)), "newest survive");
    }

    #[test]
    fn push_outcome_classifiers() {
        assert!(PushOutcome::Stored.incoming_stored());
        assert!(!PushOutcome::Stored.lost_an_event());
        assert!(!PushOutcome::DroppedNewest.incoming_stored());
        assert!(PushOutcome::DroppedNewest.lost_an_event());
        assert!(PushOutcome::DroppedOldest.incoming_stored());
        assert!(PushOutcome::DroppedOldest.lost_an_event());
    }

    #[test]
    fn watermark_crossings_counted_once_per_crossing() {
        let mut fifo = tiny(2, OverflowPolicy::DropNewest);
        fifo.push(ev(0));
        fifo.push(ev(1)); // crossing 1
        fifo.push(ev(2));
        fifo.pop_batch(3);
        fifo.push(ev(3));
        fifo.push(ev(4)); // crossing 2
        assert_eq!(fifo.stats().watermark_crossings, 2);
        assert!(fifo.at_watermark());
    }

    #[test]
    fn batch_pop_and_stats() {
        let mut fifo = AetrFifo::new(FifoConfig::prototype());
        for i in 0..100 {
            fifo.push(ev(i));
        }
        let batch = fifo.pop_batch(64);
        assert_eq!(batch.len(), 64);
        assert_eq!(batch[0], ev(0));
        assert_eq!(fifo.len(), 36);
        let rest = fifo.pop_batch(1_000);
        assert_eq!(rest.len(), 36);
        assert_eq!(fifo.stats().popped, 100);
        assert_eq!(fifo.stats().high_watermark, 100);
        assert_eq!(fifo.stats().loss_ratio(), 0.0);
    }

    #[test]
    fn display_reports_loss() {
        let mut fifo = tiny(4, OverflowPolicy::DropNewest);
        for i in 0..8 {
            fifo.push(ev(i));
        }
        let text = fifo.stats().to_string();
        assert!(text.contains("dropped 4"), "{text}");
        assert!(text.contains("overflow 4"), "{text}");
    }

    #[test]
    fn drops_split_by_degraded_mode() {
        let mut fifo = tiny(2, OverflowPolicy::DropNewest);
        for i in 0..4 {
            fifo.push(ev(i));
        }
        fifo.push(ev(4)); // normal overflow
        fifo.set_degraded(true);
        assert!(fifo.is_degraded());
        fifo.push(ev(5));
        fifo.push(ev(6)); // two degraded-mode drops
        let stats = fifo.stats();
        assert_eq!(stats.dropped, 3);
        assert_eq!(stats.dropped_overflow, 1);
        assert_eq!(stats.dropped_degraded, 2);
        assert_eq!(stats.dropped, stats.dropped_overflow + stats.dropped_degraded);
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn watermark_above_capacity_panics() {
        let _ = AetrFifo::new(FifoConfig {
            capacity_bytes: 8,
            watermark: 3,
            overflow: OverflowPolicy::DropNewest,
        });
    }
}
