//! Binaural sound localization by interaural time difference (ITD).
//!
//! The DAS1 is a *binaural spatial audition* sensor: the time
//! difference between the two ears' spikes encodes the sound's
//! azimuth, with useful ITDs of tens to hundreds of microseconds.
//! This is the harshest consumer of the AETR interface's timing
//! fidelity — a few hundred microseconds of signal hiding in
//! microsecond-scale spike alignments — and therefore the sharpest
//! test of the paper's accuracy claims.
//!
//! The estimator is the classic binned cross-correlation of left/right
//! spike trains over a lag window.

use serde::{Deserialize, Serialize};

use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_sim::time::SimDuration;

/// Cross-correlation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ItdConfig {
    /// Largest |lag| searched. Human-scale ITDs stay under ~700 µs.
    pub max_lag: SimDuration,
    /// Correlation bin width: the estimator's resolution.
    pub bin: SimDuration,
}

impl ItdConfig {
    /// ±1 ms window at 20 µs resolution.
    pub fn default_window() -> ItdConfig {
        ItdConfig { max_lag: SimDuration::from_ms(1), bin: SimDuration::from_us(20) }
    }
}

impl Default for ItdConfig {
    fn default() -> Self {
        Self::default_window()
    }
}

/// An ITD estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ItdEstimate {
    /// Estimated lag of the right ear relative to the left (positive:
    /// right lags, source on the left).
    pub lag: i64,
    /// The lag in picoseconds.
    pub lag_ps: i64,
    /// Correlation score at the peak (coincidence count).
    pub peak_score: u64,
}

/// Estimates the ITD between two spike trains by binned
/// cross-correlation.
///
/// Returns `None` if either train is empty.
///
/// # Panics
///
/// Panics on a zero bin width or zero lag window.
///
/// # Examples
///
/// ```
/// use aetr_apps::localization::{estimate_itd, shift_train, ItdConfig};
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let left = PoissonGenerator::new(20_000.0, 64, 3).generate(SimTime::from_ms(100));
/// let right = shift_train(&left, SimDuration::from_us(300));
/// let est = estimate_itd(&left, &right, &ItdConfig::default_window()).expect("non-empty");
/// assert!((est.lag_ps - 300_000_000).abs() <= 20_000_000); // within one bin
/// ```
pub fn estimate_itd(
    left: &SpikeTrain,
    right: &SpikeTrain,
    config: &ItdConfig,
) -> Option<ItdEstimate> {
    assert!(!config.bin.is_zero(), "bin width must be non-zero");
    assert!(!config.max_lag.is_zero(), "lag window must be non-zero");
    if left.is_empty() || right.is_empty() {
        return None;
    }
    let bin_ps = config.bin.as_ps() as i64;
    let max_bins = (config.max_lag.as_ps() as i64 / bin_ps).max(1);
    let mut scores = vec![0u64; (2 * max_bins + 1) as usize];

    // Two-pointer sweep: for each left spike, count right spikes in
    // every lag bin that contains them — O(pairs within the window).
    let rights: Vec<i64> = right.iter().map(|s| s.time.as_ps() as i64).collect();
    let mut lo = 0usize;
    for l in left {
        let lt = l.time.as_ps() as i64;
        let window_lo = lt - max_bins * bin_ps;
        let window_hi = lt + max_bins * bin_ps;
        while lo < rights.len() && rights[lo] < window_lo {
            lo += 1;
        }
        for &rt in rights[lo..].iter().take_while(|&&rt| rt <= window_hi) {
            // Right lags left by (rt - lt); positive lag bin means the
            // right ear hears later.
            let lag_bins = (rt - lt + bin_ps / 2).div_euclid(bin_ps);
            let idx = (lag_bins + max_bins) as usize;
            if idx < scores.len() {
                scores[idx] += 1;
            }
        }
    }

    let (best_idx, &peak_score) =
        scores.iter().enumerate().max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))?;
    let lag = best_idx as i64 - max_bins;
    Some(ItdEstimate { lag, lag_ps: lag * bin_ps, peak_score })
}

/// Shifts every spike later by `delay` (simulating the far ear).
pub fn shift_train(train: &SpikeTrain, delay: SimDuration) -> SpikeTrain {
    train
        .iter()
        .map(|s| Spike::new(s.time.saturating_add(delay), s.addr))
        .collect::<Vec<_>>()
        .into_iter()
        .collect()
}

/// Converts an ITD to an azimuth angle (degrees) with the Woodworth
/// approximation for a head of `head_radius_m` and speed of sound
/// 343 m/s. Clamped to ±90°.
pub fn itd_to_azimuth_degrees(lag_ps: i64, head_radius_m: f64) -> f64 {
    let itd_secs = lag_ps as f64 * 1e-12;
    let max_itd = head_radius_m * (1.0 + std::f64::consts::FRAC_PI_2) / 343.0;
    let x = (itd_secs / max_itd).clamp(-1.0, 1.0);
    x.asin().to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_aer::generator::{PoissonGenerator, SpikeSource};
    use aetr_sim::time::SimTime;

    fn left_train(seed: u64) -> SpikeTrain {
        PoissonGenerator::new(30_000.0, 64, seed).generate(SimTime::from_ms(100))
    }

    #[test]
    fn recovers_known_delays() {
        let cfg = ItdConfig::default_window();
        let left = left_train(1);
        for delay_us in [0u64, 100, 300, 700] {
            let right = shift_train(&left, SimDuration::from_us(delay_us));
            let est = estimate_itd(&left, &right, &cfg).unwrap();
            let err_ps = (est.lag_ps - delay_us as i64 * 1_000_000).abs();
            assert!(
                err_ps <= cfg.bin.as_ps() as i64,
                "delay {delay_us} us estimated as {} ps",
                est.lag_ps
            );
        }
    }

    #[test]
    fn negative_lags_work_symmetrically() {
        let cfg = ItdConfig::default_window();
        let right = left_train(2);
        let left = shift_train(&right, SimDuration::from_us(250));
        // Left lags: the lag of right-relative-to-left is negative.
        let est = estimate_itd(&left, &right, &cfg).unwrap();
        assert!((est.lag_ps + 250_000_000).abs() <= cfg.bin.as_ps() as i64);
    }

    #[test]
    fn empty_trains_yield_none() {
        let cfg = ItdConfig::default_window();
        assert!(estimate_itd(&SpikeTrain::new(), &left_train(3), &cfg).is_none());
        assert!(estimate_itd(&left_train(3), &SpikeTrain::new(), &cfg).is_none());
    }

    #[test]
    fn uncorrelated_ears_have_weak_diffuse_peak() {
        let cfg = ItdConfig::default_window();
        let left = left_train(4);
        let right = left_train(5); // independent stream
        let est_uncorr = estimate_itd(&left, &right, &cfg).unwrap();
        let est_corr =
            estimate_itd(&left, &shift_train(&left, SimDuration::from_us(200)), &cfg).unwrap();
        assert!(
            est_corr.peak_score > est_uncorr.peak_score * 2,
            "correlated peak {} vs uncorrelated {}",
            est_corr.peak_score,
            est_uncorr.peak_score
        );
    }

    #[test]
    fn azimuth_mapping_is_monotone_and_clamped() {
        let r = 0.0875; // average head
        let a0 = itd_to_azimuth_degrees(0, r);
        let a_small = itd_to_azimuth_degrees(100_000_000, r); // 100 µs
        let a_big = itd_to_azimuth_degrees(600_000_000, r); // 600 µs
        let a_max = itd_to_azimuth_degrees(10_000_000_000, r); // beyond physical
        assert_eq!(a0, 0.0);
        assert!(a_small > 0.0 && a_big > a_small);
        assert_eq!(a_max, 90.0);
        assert_eq!(itd_to_azimuth_degrees(-10_000_000_000, r), -90.0);
    }

    /// The headline: the AETR interface preserves ITD through
    /// quantization — sub-bin error at the prototype configuration.
    #[test]
    fn itd_survives_aetr_quantization() {
        use aetr::quantizer::{quantize_train, reconstruct_train};
        use aetr_clockgen::config::ClockGenConfig;

        let cfg = ItdConfig::default_window();
        let clock = ClockGenConfig::prototype();
        let left = left_train(6);
        let right = shift_train(&left, SimDuration::from_us(400));
        // The two ears are merged on one AER bus in the real DAS1; the
        // MCU separates them by address. Quantize the merged stream.
        let merged = left.merge(&right);
        let horizon = merged.last_time().unwrap() + SimDuration::from_ms(1);
        let out = quantize_train(&clock, &merged, horizon);
        let rebuilt = reconstruct_train(&out.events(), out.base_period, SimTime::ZERO);
        // Separate by address parity of origin: left spikes carry the
        // original addresses; both trains share addresses, so instead
        // split by order: events alternate irregularly — use the source
        // trains' counts: first train addresses < 64 in both... Use
        // interleaving by matching counts: reconstruct and split by
        // position of original merge.
        let mut l2 = Vec::new();
        let mut r2 = Vec::new();
        let mut li = 0usize;
        let mut ri = 0usize;
        for (rebuilt_spike, original) in rebuilt.iter().zip(merged.iter()) {
            // Attribute each merged event back to its source train by
            // consuming in time order.
            let from_left = li < left.len()
                && (ri >= right.len() || left.as_slice()[li].time <= right.as_slice()[ri].time);
            if from_left {
                l2.push(*rebuilt_spike);
                li += 1;
            } else {
                r2.push(*rebuilt_spike);
                ri += 1;
            }
            let _ = original;
        }
        let l2: SpikeTrain = l2.into_iter().collect();
        let r2: SpikeTrain = r2.into_iter().collect();
        let est = estimate_itd(&l2, &r2, &cfg).unwrap();
        assert!(
            (est.lag_ps - 400_000_000).abs() <= 2 * cfg.bin.as_ps() as i64,
            "quantized ITD {} ps vs true 400 us",
            est.lag_ps
        );
    }
}
