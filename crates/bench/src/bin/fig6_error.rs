//! Figure 6 — average relative timestamp error vs event rate.
//!
//! Reproduces: Poisson spike streams swept from 100 evt/s to 2 Mevt/s,
//! one curve per `θ_div ∈ {16, 32, 64}`, average relative error of the
//! AER→AETR conversion on a log–log plot, with the three operating
//! regions (inactive / active / high-activity) annotated.
//!
//! Paper expectation: error ≈ 1 in the inactive region, oscillating
//! well below the analytic `~1/θ_div` bound in the active region
//! (< 3 %), rising again near the Nyquist limit of the undivided
//! sampling clock.

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_analysis::error_stats::{classify_region, ErrorSummary};
use aetr_analysis::plot::{AsciiPlot, Scale};
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_bench::{banner, poisson_workload, write_result};
use aetr_clockgen::config::ClockGenConfig;
use aetr_clockgen::segments::SegmentTable;

const SEED: u64 = 0xF166;
const THETAS: [u32; 3] = [16, 32, 64];
const MIN_EVENTS: u64 = 3_000;

fn main() {
    banner(
        "Figure 6",
        "average relative timestamp error vs event rate (Poisson, θ ∈ {16,32,64})",
        SEED,
    );

    let rates = log_space(100.0, 2e6, 25);
    let mut table =
        Table::new(vec!["theta_div", "rate (evt/s)", "mean err", "median err", "sat %", "region"]);
    let mut plot = AsciiPlot::new(64, 20, Scale::Log, Scale::Log);

    for &theta in &THETAS {
        let config = ClockGenConfig::prototype().with_theta_div(theta);
        let seg = SegmentTable::new(&config);
        let max_meas = seg.max_measurable().expect("recursive policy saturates").as_secs_f64();
        let t_min = seg.base_period().as_secs_f64();
        let mut curve = Vec::new();

        for (i, &rate) in rates.iter().enumerate() {
            let (train, horizon) = poisson_workload(rate, SEED + i as u64, MIN_EVENTS);
            let out = quantize_train(&config, &train, horizon);
            let samples: Vec<(f64, bool)> =
                isi_error_samples(&out).iter().map(|s| (s.relative_error(), s.saturated)).collect();
            let Some(summary) = ErrorSummary::of(&samples) else { continue };
            let region = classify_region(rate, summary.saturation_ratio, max_meas, theta, t_min);
            table.row(vec![
                theta.to_string(),
                fmt_sig(rate),
                format!("{:.5}", summary.mean),
                format!("{:.5}", summary.median),
                format!("{:.1}", summary.saturation_ratio * 100.0),
                region.to_string(),
            ]);
            curve.push((rate, summary.mean.max(1e-5)));
        }
        plot.series(format!("theta={theta}"), curve);
    }

    println!("{}", table.to_ascii());
    println!("{}", plot.render());

    // Headline checks mirrored from the paper's §5.1 narrative.
    let proto = ClockGenConfig::prototype();
    let (train, horizon) = poisson_workload(100_000.0, SEED, MIN_EVENTS);
    let out = quantize_train(&proto, &train, horizon);
    let samples: Vec<(f64, bool)> =
        isi_error_samples(&out).iter().map(|s| (s.relative_error(), s.saturated)).collect();
    let active = ErrorSummary::of(&samples).expect("non-empty");
    println!(
        "active region check (θ=64, 100 kevt/s): mean error {:.4} (paper bound: < 0.03) -> {}",
        active.mean,
        if active.mean < 0.03 { "PASS" } else { "FAIL" }
    );

    let path = write_result("fig6_error.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
