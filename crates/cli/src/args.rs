//! Minimal dependency-free argument parsing.
//!
//! The CLI accepts `subcommand [--key value]... [positional]...`
//! syntax; this module splits and types those pieces with precise
//! errors. Kept hand-rolled so the workspace's dependency set stays at
//! the pre-approved offline crates.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag token).
    pub command: Option<String>,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
}

/// Argument errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` with no following value.
    MissingValue {
        /// The flag name.
        flag: String,
    },
    /// A value failed to parse as the expected type.
    InvalidValue {
        /// The flag name.
        flag: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required option was absent.
    MissingOption {
        /// The flag name.
        flag: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue { flag } => write!(f, "--{flag} needs a value"),
            ArgsError::InvalidValue { flag, value, expected } => {
                write!(f, "--{flag} {value:?} is not a valid {expected}")
            }
            ArgsError::MissingOption { flag } => write!(f, "required option --{flag} missing"),
        }
    }
}

impl Error for ArgsError {}

impl ParsedArgs {
    /// Parses a token stream (usually `std::env::args().skip(1)`).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] for a trailing flag.
    pub fn parse(tokens: impl IntoIterator<Item = String>) -> Result<ParsedArgs, ArgsError> {
        let mut out = ParsedArgs::default();
        let mut iter = tokens.into_iter();
        while let Some(tok) = iter.next() {
            if let Some(flag) = tok.strip_prefix("--") {
                let value =
                    iter.next().ok_or_else(|| ArgsError::MissingValue { flag: flag.to_owned() })?;
                out.options.insert(flag.to_owned(), value);
            } else if out.command.is_none() {
                out.command = Some(tok);
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// A typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::InvalidValue`] if present but unparseable.
    pub fn get_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        match self.options.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::InvalidValue {
                flag: flag.to_owned(),
                value: raw.clone(),
                expected,
            }),
        }
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingOption`] if absent or
    /// [`ArgsError::InvalidValue`] if unparseable.
    pub fn require<T: std::str::FromStr>(
        &self,
        flag: &str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        let raw = self
            .options
            .get(flag)
            .ok_or_else(|| ArgsError::MissingOption { flag: flag.to_owned() })?;
        raw.parse().map_err(|_| ArgsError::InvalidValue {
            flag: flag.to_owned(),
            value: raw.clone(),
            expected,
        })
    }

    /// A raw string option.
    pub fn get_str(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<ParsedArgs, ArgsError> {
        ParsedArgs::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn full_command_line() {
        let a = parse(&["quantize", "--rate", "100000", "--theta", "64", "input.aedat"]).unwrap();
        assert_eq!(a.command.as_deref(), Some("quantize"));
        assert_eq!(a.get_str("rate"), Some("100000"));
        assert_eq!(a.positional, vec!["input.aedat"]);
        assert_eq!(a.get_or("theta", 32u32, "integer").unwrap(), 64);
        assert_eq!(a.get_or("ndiv", 3u32, "integer").unwrap(), 3, "default applies");
    }

    #[test]
    fn trailing_flag_errors() {
        let err = parse(&["sweep", "--figure"]).unwrap_err();
        assert_eq!(err, ArgsError::MissingValue { flag: "figure".into() });
        assert!(err.to_string().contains("needs a value"));
    }

    #[test]
    fn bad_type_errors() {
        let a = parse(&["quantize", "--rate", "fast"]).unwrap();
        let err = a.require::<f64>("rate", "number").unwrap_err();
        assert!(matches!(err, ArgsError::InvalidValue { .. }));
        assert!(err.to_string().contains("not a valid number"));
    }

    #[test]
    fn missing_required_errors() {
        let a = parse(&["quantize"]).unwrap();
        let err = a.require::<f64>("rate", "number").unwrap_err();
        assert_eq!(err, ArgsError::MissingOption { flag: "rate".into() });
    }

    #[test]
    fn empty_input_is_empty() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.command, None);
        assert!(a.options.is_empty());
        assert!(a.positional.is_empty());
    }

    #[test]
    fn multiple_positionals_keep_order() {
        let a = parse(&["cmd", "a", "b", "--x", "1", "c"]).unwrap();
        assert_eq!(a.positional, vec!["a", "b", "c"]);
    }
}
