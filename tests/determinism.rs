//! Whole-stack determinism: every stochastic component, seeded
//! identically, must reproduce byte-identical results — the property
//! that makes every number in EXPERIMENTS.md reproducible.

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::quantizer::quantize_train;
use aetr_aer::generator::{BurstGenerator, LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::noise::{add_jitter, drop_random, inject_background};
use aetr_clockgen::jitter::{JitterConfig, JitteredClock};
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_cochlea::word::fig7_word;
use aetr_dvs::scene::MovingBar;
use aetr_dvs::sensor::{DvsConfig, DvsSensor};
use aetr_sim::time::{SimDuration, SimTime};

#[test]
fn generators_are_deterministic() {
    let horizon = SimTime::from_ms(50);
    assert_eq!(
        PoissonGenerator::new(50_000.0, 64, 7).generate(horizon),
        PoissonGenerator::new(50_000.0, 64, 7).generate(horizon),
    );
    assert_eq!(
        LfsrGenerator::new(50_000.0, 7).generate(horizon),
        LfsrGenerator::new(50_000.0, 7).generate(horizon),
    );
    let mk = || {
        BurstGenerator::new(
            200_000.0,
            50.0,
            SimDuration::from_ms(10),
            SimDuration::from_ms(40),
            32,
            7,
        )
        .generate(horizon)
    };
    assert_eq!(mk(), mk());
}

#[test]
fn sensors_are_deterministic() {
    let word = fig7_word(16_000, 9);
    let mut c1 = Cochlea::new(CochleaConfig::das1()).unwrap();
    let mut c2 = Cochlea::new(CochleaConfig::das1()).unwrap();
    assert_eq!(c1.process(&word), c2.process(&word));

    let dvs = DvsSensor::new(DvsConfig::aer10bit()).unwrap();
    assert_eq!(
        dvs.observe(&MovingBar::demo(), SimTime::from_ms(100)),
        dvs.observe(&MovingBar::demo(), SimTime::from_ms(100)),
    );
}

#[test]
fn noise_transforms_are_deterministic() {
    let train = PoissonGenerator::new(20_000.0, 16, 3).generate(SimTime::from_ms(50));
    assert_eq!(
        add_jitter(&train, SimDuration::from_us(1), 11),
        add_jitter(&train, SimDuration::from_us(1), 11)
    );
    assert_eq!(drop_random(&train, 0.3, 12), drop_random(&train, 0.3, 12));
    assert_eq!(
        inject_background(&train, 5_000.0, 16, 13),
        inject_background(&train, 5_000.0, 16, 13)
    );
}

#[test]
fn oscillator_jitter_is_deterministic() {
    let mut a = JitteredClock::new(SimDuration::from_ns(66), JitterConfig::igloo_nano(), 5);
    let mut b = JitteredClock::new(SimDuration::from_ns(66), JitterConfig::igloo_nano(), 5);
    for _ in 0..1_000 {
        assert_eq!(a.next_period(), b.next_period());
    }
}

#[test]
fn behavioral_and_des_pipelines_are_deterministic() {
    let train = PoissonGenerator::new(80_000.0, 64, 21).generate(SimTime::from_ms(10));
    let clock = aetr_clockgen::config::ClockGenConfig::prototype();
    assert_eq!(
        quantize_train(&clock, &train, SimTime::from_ms(10)),
        quantize_train(&clock, &train, SimTime::from_ms(10))
    );
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
    let a = interface.run(&train, SimTime::from_ms(10));
    let b = interface.run(&train, SimTime::from_ms(10));
    assert_eq!(a, b);
}

#[test]
fn fault_injection_is_deterministic() {
    use aetr_faults::{FaultPlan, FaultRates};
    let train = PoissonGenerator::new(60_000.0, 64, 5).generate(SimTime::from_ms(10));
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
    let plan = FaultPlan::nominal(99).with_rates(FaultRates {
        lost_ack: 0.05,
        fifo_bit_flip: 0.02,
        i2s_frame_slip: 0.01,
        ..FaultRates::default()
    });
    let a = interface.run_with_faults(&train, SimTime::from_ms(10), &plan);
    let b = interface.run_with_faults(&train, SimTime::from_ms(10), &plan);
    assert_eq!(a.health, b.health, "same seed, same health report");
    assert_eq!(a, b, "same seed, same full report");
    assert!(!a.health.is_nominal(), "the plan actually injected something");
}

#[test]
fn zero_rate_fault_plan_is_invisible() {
    use aetr_faults::FaultPlan;
    let train = PoissonGenerator::new(60_000.0, 64, 5).generate(SimTime::from_ms(10));
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
    let plain = interface.run(&train, SimTime::from_ms(10));
    // Any seed: a zero-rate injector never consumes a draw.
    let with_plan =
        interface.run_with_faults(&train, SimTime::from_ms(10), &FaultPlan::nominal(12345));
    assert_eq!(plain, with_plan, "zero-rate plan must be bit-identical to no injector");
    assert!(with_plan.health.is_nominal());
}

#[test]
fn different_seeds_actually_differ() {
    // Guard against a silently ignored seed parameter.
    let horizon = SimTime::from_ms(20);
    assert_ne!(
        PoissonGenerator::new(50_000.0, 64, 1).generate(horizon),
        PoissonGenerator::new(50_000.0, 64, 2).generate(horizon),
    );
    assert_ne!(fig7_word(16_000, 1), fig7_word(16_000, 2));
}
