//! Differential pinning of the analytic idle fast-forward: for
//! arbitrary clock configurations (including never-stopping policies),
//! fault plans (scheduled mid-idle oscillator stalls plus stochastic
//! protocol faults) and spike trains, the event-proportional engine's
//! [`InterfaceReport`] is **bit-identical** to the per-tick reference —
//! events, timestamps, handshakes, FIFO statistics, I2S stream,
//! activity residency, power, wakes, health counters, and the full
//! telemetry snapshot (metrics, clock-state spans, live samples; only
//! the wall-clock profile, excluded from snapshot equality, may
//! differ).
//!
//! The case count defaults to a CI-friendly 48 and is raised on the
//! nightly schedule via `AETR_PROPTEST_CASES` (see
//! `.github/workflows/ci.yml`).

use proptest::prelude::*;

use aetr::config_bus::Register;
use aetr::interface::{AerToI2sInterface, InterfaceConfig, SimEngine, TelemetryConfig};
use aetr_aer::address::Address;
use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_faults::{FaultKind, FaultPlan, FaultRates};
use aetr_sim::time::{SimDuration, SimTime};

fn cases() -> u32 {
    std::env::var("AETR_PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(48)
}

fn arbitrary_train() -> impl Strategy<Value = SpikeTrain> {
    // Up to 40 events with gaps from sub-tick to multi-millisecond, so
    // runs cross sampling, division, shutdown, wake and — with sparse
    // tails — long fast-forwardable silences.
    proptest::collection::vec((1u64..2_000_000_000, 0u16..1024), 0..40).prop_map(|gaps| {
        let mut t = SimTime::ZERO;
        let spikes = gaps
            .into_iter()
            .map(|(gap_ps, addr)| {
                t += SimDuration::from_ps(gap_ps);
                Spike::new(t, Address::new(addr).expect("range-bounded"))
            })
            .collect();
        SpikeTrain::from_sorted(spikes).expect("cumulative times are sorted")
    })
}

/// All four policies — `Never` and the `DivideOnly` plateau never shut
/// the clock down, so their tick chains are unbounded and the
/// fast-forward barrier logic carries the whole horizon.
fn any_policy() -> impl Strategy<Value = DivisionPolicy> {
    prop_oneof![
        Just(DivisionPolicy::Recursive),
        Just(DivisionPolicy::DivideOnly),
        Just(DivisionPolicy::Never),
        Just(DivisionPolicy::Linear),
    ]
}

fn interface(cfg: InterfaceConfig, engine: SimEngine) -> AerToI2sInterface {
    AerToI2sInterface::new(cfg).expect("validated configuration").with_engine(engine)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    #[test]
    fn reports_are_bit_identical_across_engines(
        train in arbitrary_train(),
        theta in 2u32..64,
        n_div in 0u32..7,
        policy in any_policy(),
        seed in 0u64..1024,
        fault_at_us in 1u64..5_000,
        rate_idx in 0usize..3,
    ) {
        let cfg = InterfaceConfig {
            clock: ClockGenConfig::prototype()
                .with_theta_div(theta)
                .with_n_div(n_div)
                .with_policy(policy),
            ..InterfaceConfig::prototype()
        };
        // A mid-idle oscillator stall plus (sometimes) stochastic
        // protocol faults: the injector's RNG draws happen on real
        // events only, so both engines must consume identical streams.
        let plan = FaultPlan::nominal(seed)
            .with_rates(FaultRates::protocol([0.0, 0.01, 0.05][rate_idx]))
            .schedule(SimTime::from_us(fault_at_us), FaultKind::StuckOscillator);
        // Lineage on: fast-forwarded idle stretches must synthesize the
        // same per-event records per-tick stepping produces.
        let tel = TelemetryConfig {
            enabled: true,
            sample_cadence: Some(SimDuration::from_us(100)),
            lineage: true,
        };
        let horizon = SimTime::from_ms(6);
        let fast = interface(cfg, SimEngine::EventProportional)
            .run_with_telemetry(&train, horizon, &plan, &tel);
        let reference = interface(cfg, SimEngine::PerTickReference)
            .run_with_telemetry(&train, horizon, &plan, &tel);
        // Explicit lineage-record equality first (sharper diagnostics
        // than whole-report inequality), then the full report.
        prop_assert_eq!(
            fast.telemetry.lineage.records(),
            reference.telemetry.lineage.records()
        );
        prop_assert_eq!(fast.telemetry.lineage.len(), fast.events.len());
        prop_assert_eq!(fast, reference);
    }

    /// Mid-idle SPI writes retarget θ_div/N_div while the fast-forward
    /// path is mid-silence; the resumed tick chain must pick up the new
    /// parameters at exactly the per-tick instant.
    #[test]
    fn reconfigured_runs_are_bit_identical_across_engines(
        train in arbitrary_train(),
        policy in any_policy(),
        write_at_us in 1u64..4_000,
        new_n_div in 0u32..12,
        new_theta in 2u32..200,
    ) {
        let cfg = InterfaceConfig {
            clock: ClockGenConfig::prototype().with_policy(policy),
            ..InterfaceConfig::prototype()
        };
        let at = SimTime::from_us(write_at_us);
        let writes = [
            (at, Register::NDiv, new_n_div),
            (at + SimDuration::from_us(700), Register::ThetaDiv, new_theta),
        ];
        let horizon = SimTime::from_ms(5);
        let fast = interface(cfg, SimEngine::EventProportional)
            .run_with_reconfig(&train, horizon, &writes);
        let reference = interface(cfg, SimEngine::PerTickReference)
            .run_with_reconfig(&train, horizon, &writes);
        prop_assert_eq!(fast, reference);
    }
}
