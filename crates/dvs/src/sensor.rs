//! The assembled event-vision sensor: a pixel array watching a scene.
//!
//! Addressing matches the 10-bit AER bus of the interface exactly:
//! a 32×16 array (512 pixels) with a polarity bit —
//! `addr = polarity << 9 | y · width + x`.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_aer::address::Address;
use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_sim::time::{SimDuration, SimTime};

use crate::pixel::{ChangeDetector, PixelConfig, Polarity};
use crate::scene::Scene;

/// Sensor geometry and sampling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvsConfig {
    /// Pixels per row.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Scene evaluation step (the continuous pixel is integrated at
    /// this resolution; 10 µs resolves kHz-scale flicker).
    pub time_step: SimDuration,
    /// Per-pixel change-detector parameters.
    pub pixel: PixelConfig,
}

impl DvsConfig {
    /// The bus-filling default: 32×16 pixels, 10 µs evaluation step.
    pub fn aer10bit() -> DvsConfig {
        DvsConfig {
            width: 32,
            height: 16,
            time_step: SimDuration::from_us(10),
            pixel: PixelConfig::dvs128(),
        }
    }

    /// Validates the address budget: `2 · width · height ≤ 1024`.
    ///
    /// # Errors
    ///
    /// Returns [`DvsConfigError`] on overflow or an empty array.
    pub fn validate(&self) -> Result<(), DvsConfigError> {
        if self.width == 0 || self.height == 0 {
            return Err(DvsConfigError::EmptyArray);
        }
        if self.width * self.height * 2 > 1 << 10 {
            return Err(DvsConfigError::TooManyPixels { pixels: self.width * self.height });
        }
        if self.time_step.is_zero() {
            return Err(DvsConfigError::ZeroTimeStep);
        }
        Ok(())
    }

    /// Pixels in the array.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }
}

impl Default for DvsConfig {
    fn default() -> Self {
        Self::aer10bit()
    }
}

/// Configuration errors of the vision sensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DvsConfigError {
    /// Zero-sized pixel array.
    EmptyArray,
    /// `2 · pixels` exceeds the 10-bit AER address space.
    TooManyPixels {
        /// Offending pixel count.
        pixels: usize,
    },
    /// The scene evaluation step must be positive.
    ZeroTimeStep,
}

impl fmt::Display for DvsConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DvsConfigError::EmptyArray => write!(f, "pixel array must be non-empty"),
            DvsConfigError::TooManyPixels { pixels } => {
                write!(f, "{pixels} pixels with polarity exceed the 10-bit address space")
            }
            DvsConfigError::ZeroTimeStep => write!(f, "time step must be non-zero"),
        }
    }
}

impl Error for DvsConfigError {}

/// The event-vision sensor.
///
/// # Examples
///
/// ```
/// use aetr_dvs::scene::MovingBar;
/// use aetr_dvs::sensor::{DvsConfig, DvsSensor};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sensor = DvsSensor::new(DvsConfig::aer10bit())?;
/// let events = sensor.observe(&MovingBar::demo(), SimTime::from_ms(100));
/// assert!(!events.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DvsSensor {
    config: DvsConfig,
}

impl DvsSensor {
    /// Creates a sensor.
    ///
    /// # Errors
    ///
    /// Returns [`DvsConfigError`] if the configuration is invalid.
    pub fn new(config: DvsConfig) -> Result<DvsSensor, DvsConfigError> {
        config.validate()?;
        Ok(DvsSensor { config })
    }

    /// The configuration.
    pub fn config(&self) -> &DvsConfig {
        &self.config
    }

    /// Encodes `(x, y, polarity)` into an AER address.
    pub fn address_of(&self, x: usize, y: usize, polarity: Polarity) -> Address {
        let pixel = y * self.config.width + x;
        let pol_bit = match polarity {
            Polarity::On => 0u16,
            Polarity::Off => 1,
        };
        Address::new((pol_bit << 9) | pixel as u16).expect("validated address space")
    }

    /// Decodes an address back into `(x, y, polarity)`.
    pub fn decode_address(&self, addr: Address) -> Option<(usize, usize, Polarity)> {
        let v = addr.value();
        let polarity = if v & (1 << 9) == 0 { Polarity::On } else { Polarity::Off };
        let pixel = (v & 0x1FF) as usize;
        if pixel >= self.config.pixels() {
            return None;
        }
        Some((pixel % self.config.width, pixel / self.config.width, polarity))
    }

    /// Watches `scene` from time zero to `until`, producing the AER
    /// event stream. Deterministic: pixels are evaluated on a fixed
    /// grid with sub-step de-interleaving (pixel index staggers the
    /// phase within a step so simultaneous array-wide changes do not
    /// collapse onto identical timestamps — the arbiter of a real
    /// sensor would serialise them similarly).
    pub fn observe<S: Scene>(&self, scene: &S, until: SimTime) -> SpikeTrain {
        let step = self.config.time_step;
        let steps = until.saturating_duration_since(SimTime::ZERO) / step;
        let n_px = self.config.pixels();
        let mut pixels: Vec<ChangeDetector> = (0..n_px)
            .map(|i| {
                let (x, y) = (i % self.config.width, i / self.config.width);
                let b0 = scene.brightness(
                    (x as f64 + 0.5) / self.config.width as f64,
                    (y as f64 + 0.5) / self.config.height as f64,
                    0.0,
                );
                ChangeDetector::new(self.config.pixel, b0.max(1e-9))
            })
            .collect();

        let mut spikes = Vec::new();
        for k in 1..=steps {
            let t_base = SimTime::ZERO + step.saturating_mul(k);
            for (i, px) in pixels.iter_mut().enumerate() {
                let (x, y) = (i % self.config.width, i / self.config.width);
                // Stagger each pixel inside the step (readout skew).
                let skew =
                    SimDuration::from_ps(step.as_ps() * (i as u64 % n_px as u64) / n_px as u64);
                let t = t_base + skew;
                let b = scene
                    .brightness(
                        (x as f64 + 0.5) / self.config.width as f64,
                        (y as f64 + 0.5) / self.config.height as f64,
                        t.as_secs_f64(),
                    )
                    .max(1e-9);
                if let Some(pol) = px.observe(t, b) {
                    spikes.push(Spike::new(t, self.address_of(x, y, pol)));
                }
            }
        }
        SpikeTrain::from_unsorted(spikes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{DriftingGrating, FlickerPatch, MovingBar, StaticScene};

    fn sensor() -> DvsSensor {
        DvsSensor::new(DvsConfig::aer10bit()).unwrap()
    }

    #[test]
    fn static_scene_is_silent() {
        let events = sensor().observe(&StaticScene { level: 0.5 }, SimTime::from_ms(100));
        assert!(events.is_empty());
    }

    #[test]
    fn moving_bar_produces_balanced_polarities() {
        let events = sensor().observe(&MovingBar::demo(), SimTime::from_ms(500));
        assert!(events.len() > 1_000, "bar produced {} events", events.len());
        let s = sensor();
        let on = events
            .iter()
            .filter(|e| matches!(s.decode_address(e.addr), Some((_, _, Polarity::On))))
            .count();
        let off = events.len() - on;
        // Each bar passage brightens then darkens every pixel equally.
        let ratio = on as f64 / off.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "ON/OFF ratio {ratio}");
    }

    #[test]
    fn flicker_events_localise_to_the_patch() {
        let patch =
            FlickerPatch { cx: 0.25, cy: 0.5, radius: 0.15, freq_hz: 200.0, low: 0.1, high: 1.0 };
        let s = sensor();
        let events = s.observe(&patch, SimTime::from_ms(100));
        assert!(!events.is_empty());
        for e in &events {
            let (x, y, _) = s.decode_address(e.addr).unwrap();
            let fx = (x as f64 + 0.5) / 32.0;
            let fy = (y as f64 + 0.5) / 16.0;
            let d2 = (fx - 0.25).powi(2) + (fy - 0.5).powi(2);
            assert!(d2 <= 0.15f64.powi(2) + 1e-9, "event outside the patch at ({x},{y})");
        }
    }

    #[test]
    fn grating_rate_scales_with_drift_speed() {
        let slow = DriftingGrating { cycles: 3.0, drift_hz: 2.0, mean: 0.5, contrast: 0.8 };
        let fast = DriftingGrating { cycles: 3.0, drift_hz: 20.0, mean: 0.5, contrast: 0.8 };
        let n_slow = sensor().observe(&slow, SimTime::from_ms(200)).len();
        let n_fast = sensor().observe(&fast, SimTime::from_ms(200)).len();
        assert!(n_fast > n_slow * 3, "drift 2 Hz -> {n_slow} events, 20 Hz -> {n_fast}");
    }

    #[test]
    fn address_roundtrip_covers_the_array() {
        let s = sensor();
        for (x, y) in [(0usize, 0usize), (31, 0), (0, 15), (31, 15), (13, 7)] {
            for pol in [Polarity::On, Polarity::Off] {
                let addr = s.address_of(x, y, pol);
                assert_eq!(s.decode_address(addr), Some((x, y, pol)));
            }
        }
    }

    #[test]
    fn timestamps_are_deinterleaved_within_steps() {
        let events = sensor().observe(&MovingBar::demo(), SimTime::from_ms(50));
        let unique: std::collections::HashSet<u64> =
            events.iter().map(|e| e.time.as_ps()).collect();
        // Mostly distinct timestamps despite grid evaluation.
        assert!(
            unique.len() as f64 / events.len() as f64 > 0.9,
            "{} unique of {}",
            unique.len(),
            events.len()
        );
    }

    #[test]
    fn config_validation() {
        assert!(DvsConfig { width: 0, ..DvsConfig::aer10bit() }.validate().is_err());
        assert!(DvsConfig { width: 40, height: 16, ..DvsConfig::aer10bit() }.validate().is_err());
        assert!(DvsConfig { time_step: SimDuration::ZERO, ..DvsConfig::aer10bit() }
            .validate()
            .is_err());
        assert!(DvsConfig::aer10bit().validate().is_ok());
    }
}
