//! The paper's stress scenario: a noisy environment driving the
//! interface at 550 kevt/s — the rate quoted for the 4.5 mW power
//! ceiling. Exercises handshake backpressure, FIFO batching and the
//! I2S throughput limit in the full discrete-event model.
//!
//! ```sh
//! cargo run --release -p aetr --example noisy_environment
//! ```

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr_aer::generator::{LfsrGenerator, SpikeSource};
use aetr_sim::time::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimTime::from_ms(20);
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype())?;
    let i2s_capacity = interface.config().i2s.max_event_rate_hz();

    for rate in [100_000.0, 300_000.0, 550_000.0] {
        let train = LfsrGenerator::new(rate, 0xD15EA5E).generate(horizon);
        let report = interface.run(&train, horizon);
        report.handshake.verify_protocol()?;

        let caviar = match report.handshake.verify_caviar() {
            Ok(()) => "ok".to_owned(),
            Err(v) => format!("violated ({v})"),
        };
        println!("rate {:>7.0} evt/s:", rate);
        println!("  events:        {}", report.events.len());
        println!("  power:         {}", report.power.total);
        println!(
            "  max handshake: {} (CAVIAR {caviar})",
            report.handshake.max_duration().map_or_else(|| "-".to_owned(), |d| d.to_string())
        );
        println!("  FIFO:          {}", report.fifo_stats);
        println!(
            "  I2S:           {} events over {} frames (link capacity {:.0} evt/s)",
            report.i2s.event_count(),
            report.i2s.len(),
            i2s_capacity
        );
        if rate > i2s_capacity {
            println!(
                "  note: offered rate exceeds the I2S link; sustained overload must \
                 eventually drop events at the FIFO"
            );
        }
        println!();
    }
    Ok(())
}
