//! Battery-life projection: what energy-proportional timestamping
//! buys an IoT node in the field.
//!
//! ```sh
//! cargo run --release -p aetr --example battery_life
//! ```

use aetr::quantizer::quantize_train;
use aetr_aer::generator::{BurstGenerator, SpikeSource};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_power::battery::{Battery, DutyProfile};
use aetr_power::model::PowerModel;
use aetr_sim::time::{SimDuration, SimTime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic acoustic-monitoring workload: short bursts of sound
    // (~2% duty) against near-silence.
    let train = BurstGenerator::new(
        300_000.0,
        20.0,
        SimDuration::from_ms(40),
        SimDuration::from_ms(1_960),
        64,
        7,
    )
    .generate(SimTime::from_secs(20));
    println!(
        "workload: {} events over 20 s (mean {:.0} evt/s, bursty)",
        train.len(),
        train.mean_rate()
    );

    let model = PowerModel::igloo_nano();
    let measure = |policy| {
        let cfg = ClockGenConfig::prototype().with_policy(policy);
        let out = quantize_train(&cfg, &train, SimTime::from_secs(20));
        model.evaluate(&out.activity).total
    };
    let proportional = measure(DivisionPolicy::Recursive);
    let naive = measure(DivisionPolicy::Never);
    println!("\ninterface power on this workload:");
    println!("  recursive division: {proportional}");
    println!("  constant clock:     {naive}");

    println!("\nbattery life (interface draw only):");
    for (name, cell) in [("CR2032 coin cell", Battery::cr2032()), ("2x AA", Battery::two_aa())] {
        let d_prop = cell.lifetime_days(proportional);
        let d_naive = cell.lifetime_days(naive);
        println!(
            "  {name:<17} {d_prop:>8.0} days vs {d_naive:>6.1} days naive ({:.0}x)",
            d_prop / d_naive
        );
    }

    // The same conclusion via an explicit duty profile (how a datasheet
    // would state it).
    let profile = DutyProfile::new(vec![
        (0.02, aetr_power::Power::from_milliwatts(4.5)),
        (0.98, aetr_power::Power::from_microwatts(60.0)),
    ])?;
    println!(
        "\ndatasheet-style profile (2% noisy / 98% quiet): average {}, CR2032 {:.0} days",
        profile.average(),
        Battery::cr2032().lifetime_days(profile.average())
    );
    Ok(())
}
