//! Inter-spike-interval (ISI) statistics.
//!
//! The entire premise of AETR is that the information is in the ISIs;
//! these summary statistics characterise workloads (Poisson vs bursty
//! vs periodic) and feed the experiment reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

use crate::spike::SpikeTrain;

/// Summary statistics of a train's inter-spike intervals.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsiStats {
    /// Number of intervals (spikes − 1).
    pub count: usize,
    /// Shortest interval.
    pub min: SimDuration,
    /// Longest interval.
    pub max: SimDuration,
    /// Mean interval in seconds.
    pub mean_secs: f64,
    /// Standard deviation in seconds.
    pub std_secs: f64,
}

impl IsiStats {
    /// Computes ISI statistics; `None` for trains with fewer than two
    /// spikes.
    ///
    /// # Examples
    ///
    /// ```
    /// use aetr_aer::generator::{RegularGenerator, SpikeSource};
    /// use aetr_aer::isi::IsiStats;
    /// use aetr_sim::time::{SimDuration, SimTime};
    ///
    /// let train = RegularGenerator::new(SimDuration::from_us(10), 1)
    ///     .generate(SimTime::from_ms(1));
    /// let stats = IsiStats::of(&train).expect("two or more spikes");
    /// assert_eq!(stats.min, stats.max);
    /// assert!(stats.coefficient_of_variation() < 1e-9);
    /// ```
    pub fn of(train: &SpikeTrain) -> Option<IsiStats> {
        let intervals: Vec<SimDuration> = train.inter_spike_intervals().collect();
        if intervals.is_empty() {
            return None;
        }
        let count = intervals.len();
        let min = *intervals.iter().min().expect("non-empty");
        let max = *intervals.iter().max().expect("non-empty");
        let secs: Vec<f64> = intervals.iter().map(|d| d.as_secs_f64()).collect();
        let mean = secs.iter().sum::<f64>() / count as f64;
        let var = secs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        Some(IsiStats { count, min, max, mean_secs: mean, std_secs: var.sqrt() })
    }

    /// Coefficient of variation (σ/µ): 0 for periodic, ≈1 for Poisson,
    /// >1 for bursty trains.
    pub fn coefficient_of_variation(&self) -> f64 {
        if self.mean_secs == 0.0 {
            0.0
        } else {
            self.std_secs / self.mean_secs
        }
    }

    /// Mean event rate implied by the mean ISI.
    pub fn mean_rate_hz(&self) -> f64 {
        if self.mean_secs == 0.0 {
            f64::INFINITY
        } else {
            1.0 / self.mean_secs
        }
    }
}

impl fmt::Display for IsiStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ISIs: min {}, max {}, mean {:.3} us, cv {:.3}",
            self.count,
            self.min,
            self.max,
            self.mean_secs * 1e6,
            self.coefficient_of_variation()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{BurstGenerator, PoissonGenerator, RegularGenerator, SpikeSource};
    use aetr_sim::time::SimTime;

    #[test]
    fn too_short_trains_yield_none() {
        assert!(IsiStats::of(&SpikeTrain::new()).is_none());
        let one = PoissonGenerator::new(10.0, 1, 0).generate(SimTime::from_secs(1));
        if one.len() < 2 {
            assert!(IsiStats::of(&one).is_none());
        }
    }

    #[test]
    fn periodic_train_has_zero_cv() {
        let train =
            RegularGenerator::new(SimDuration::from_us(100), 1).generate(SimTime::from_ms(10));
        let stats = IsiStats::of(&train).unwrap();
        assert_eq!(stats.min, SimDuration::from_us(100));
        assert_eq!(stats.max, SimDuration::from_us(100));
        assert!(stats.coefficient_of_variation() < 1e-9);
        assert!((stats.mean_rate_hz() - 10_000.0).abs() < 1.0);
    }

    #[test]
    fn cv_discriminates_workload_classes() {
        let poisson = PoissonGenerator::new(50_000.0, 8, 4).generate(SimTime::from_ms(500));
        let bursty = BurstGenerator::new(
            300_000.0,
            100.0,
            SimDuration::from_ms(50),
            SimDuration::from_ms(200),
            8,
            4,
        )
        .generate(SimTime::from_secs(3));
        let cv_poisson = IsiStats::of(&poisson).unwrap().coefficient_of_variation();
        let cv_bursty = IsiStats::of(&bursty).unwrap().coefficient_of_variation();
        assert!((cv_poisson - 1.0).abs() < 0.1, "Poisson CV {cv_poisson}");
        assert!(cv_bursty > cv_poisson + 0.5, "bursty CV {cv_bursty} vs {cv_poisson}");
    }

    #[test]
    fn display_is_informative() {
        let train =
            RegularGenerator::new(SimDuration::from_us(10), 1).generate(SimTime::from_us(100));
        let s = IsiStats::of(&train).unwrap().to_string();
        assert!(s.contains("ISIs"), "{s}");
        assert!(s.contains("cv"), "{s}");
    }
}
