//! Cross-crate integration: sensor → interface → I2S → MCU, over the
//! workload classes of the paper's evaluation.

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::mcu::{FidelityReport, McuReceiver};
use aetr::quantizer::{quantize_train, reconstruct_train};
use aetr_aer::generator::{BurstGenerator, PoissonGenerator, RegularGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_cochlea::word::fig7_word;
use aetr_dvs::scene::MovingBar;
use aetr_dvs::sensor::{DvsConfig, DvsSensor};
use aetr_sim::time::{SimDuration, SimTime};

fn run_pipeline(train: SpikeTrain, horizon: SimTime) -> (SpikeTrain, FidelityReport) {
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid config");
    let report = interface.run(&train, horizon);
    report.handshake.verify_protocol().expect("protocol clean");
    let mcu = McuReceiver::new(interface.config().clock.base_sampling_period());
    let rebuilt = mcu.receive(&report.i2s);
    let fidelity = FidelityReport::compare(&train, &rebuilt);
    (rebuilt, fidelity)
}

#[test]
fn poisson_stream_survives_the_full_chain() {
    let train = PoissonGenerator::new(100_000.0, 64, 11).generate(SimTime::from_ms(20));
    let n = train.len();
    let (rebuilt, fidelity) = run_pipeline(train, SimTime::from_ms(20));
    assert_eq!(rebuilt.len(), n, "no events lost");
    // The 2-FF synchroniser of the prototype front end adds up to two
    // ticks of detection skew on top of the quantization error.
    assert!(fidelity.accuracy() > 0.93, "accuracy {}", fidelity.accuracy());
}

#[test]
fn cochlea_word_reaches_the_mcu_in_order() {
    let mut cochlea = Cochlea::new(CochleaConfig::das1()).expect("valid config");
    let train = cochlea.process(&fig7_word(16_000, 3));
    let horizon = SimTime::ZERO + SimDuration::from_ms(800);
    let addrs_sent: Vec<u16> = train.iter().map(|s| s.addr.value()).collect();
    let (rebuilt, fidelity) = run_pipeline(train, horizon);
    assert_eq!(fidelity.loss_ratio(), 0.0);
    let addrs_rcvd: Vec<u16> = rebuilt.iter().map(|s| s.addr.value()).collect();
    assert_eq!(addrs_sent, addrs_rcvd, "address sequence preserved end to end");
}

#[test]
fn bursty_stream_wakes_and_sleeps_through_the_chain() {
    let train = BurstGenerator::new(
        200_000.0,
        0.0,
        SimDuration::from_ms(5),
        SimDuration::from_ms(20),
        64,
        17,
    )
    .generate(SimTime::from_ms(100));
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid config");
    let report = interface.run(&train, SimTime::from_ms(100));
    assert!(report.wake_count > 0, "silence gaps must stop the clock");
    assert!(
        report.power.total.as_milliwatts() < 3.0,
        "bursty workload power {}",
        report.power.total
    );
    assert_eq!(report.events.len(), train.len());
}

#[test]
fn regular_stream_timestamps_are_periodic_after_reconstruction() {
    let train = RegularGenerator::new(SimDuration::from_us(40), 4).generate(SimTime::from_ms(4));
    let (rebuilt, _) = run_pipeline(train, SimTime::from_ms(4));
    // All reconstructed ISIs (after the first) should be identical: a
    // periodic input stays periodic through quantization.
    let isis: Vec<u64> = rebuilt.inter_spike_intervals().skip(1).map(|d| d.as_ps()).collect();
    let unique: std::collections::HashSet<&u64> = isis.iter().collect();
    assert!(unique.len() <= 2, "periodic input produced {} distinct ISIs", unique.len());
}

#[test]
fn behavioral_reconstruction_matches_mcu_reconstruction() {
    // The quantizer's reconstruct_train and the MCU's receive must
    // agree: same math, two implementations.
    let train = PoissonGenerator::new(60_000.0, 32, 23).generate(SimTime::from_ms(10));
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid config");
    let report = interface.run(&train, SimTime::from_ms(10));
    let base = interface.config().clock.base_sampling_period();

    let events: Vec<_> = report.events.iter().map(|e| e.event).collect();
    let direct = reconstruct_train(&events, base, SimTime::ZERO);
    let via_mcu = McuReceiver::new(base).receive(&report.i2s);
    assert_eq!(direct, via_mcu);
}

#[test]
fn empty_input_produces_empty_but_valid_outputs() {
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid config");
    let report = interface.run(&SpikeTrain::new(), SimTime::from_ms(10));
    assert!(report.events.is_empty());
    assert!(report.i2s.is_empty());
    assert_eq!(report.fifo_stats.pushed, 0);
    report.handshake.verify_protocol().expect("trivially clean");
    // Behavioral agrees.
    let out = quantize_train(
        &InterfaceConfig::prototype().clock,
        &SpikeTrain::new(),
        SimTime::from_ms(10),
    );
    assert!(out.records.is_empty());
}

#[test]
fn dvs_stream_through_arbiter_and_interface() {
    // Vision path: DVS events, serialised by the on-chip arbiter tree,
    // timestamped by the interface, reconstructed by the MCU.
    let sensor = DvsSensor::new(DvsConfig::aer10bit()).expect("valid config");
    let raw = sensor.observe(&MovingBar::demo(), SimTime::from_ms(200));
    assert!(!raw.is_empty());
    let (arbitrated, stats) =
        aetr_aer::arbiter::arbitrate(&raw, &aetr_aer::arbiter::ArbiterConfig::das1());
    assert_eq!(stats.events as usize, raw.len());

    let n = arbitrated.len();
    let (rebuilt, fidelity) = run_pipeline(arbitrated, SimTime::from_ms(200));
    assert_eq!(rebuilt.len(), n);
    assert_eq!(fidelity.loss_ratio(), 0.0);
    // Polarity/pixel addresses survive the whole chain.
    let decoded: Vec<_> = rebuilt
        .iter()
        .map(|s| sensor.decode_address(s.addr).expect("sensor-range address"))
        .collect();
    assert_eq!(decoded.len(), n);
}

#[test]
fn aedat_recording_replays_identically() {
    // Record a cochlea stream to AEDAT, replay it through the
    // quantizer: byte-identical timestamps (at the format's µs
    // granularity) must produce identical AETR events.
    let mut cochlea = Cochlea::new(CochleaConfig::das1()).expect("valid config");
    let train = cochlea.process(&fig7_word(16_000, 5));
    let mut file = Vec::new();
    aetr_aer::aedat::write_aedat(&train, &["fig7 word"], &mut file).expect("in-memory write");
    let replayed = aetr_aer::aedat::read_aedat(&file[..]).expect("own output parses");

    let horizon = SimTime::ZERO + SimDuration::from_ms(800);
    let cfg = InterfaceConfig::prototype().clock;
    let a = quantize_train(&cfg, &replayed, horizon);
    let b = quantize_train(&cfg, &replayed, horizon);
    assert_eq!(a, b, "deterministic replay");
    assert_eq!(replayed.len(), train.len());
}

#[test]
fn serde_reports_are_serializable() {
    // The report types derive Serialize/Deserialize (C-SERDE); assert
    // the bounds hold so downstream tooling can persist them.
    fn assert_serde<T: serde::Serialize + for<'de> serde::Deserialize<'de>>() {}
    assert_serde::<aetr::interface::InterfaceReport>();
    assert_serde::<aetr::quantizer::QuantizerOutput>();
    assert_serde::<aetr::aetr_format::AetrEvent>();
    assert_serde::<aetr_aer::spike::SpikeTrain>();
    assert_serde::<aetr_clockgen::config::ClockGenConfig>();
    assert_serde::<aetr_power::model::PowerReport>();
}
