//! Figure 7 — cochlea response to a spoken word, and timestamp-error
//! distributions.
//!
//! Reproduces: (a) the AER raster and event-rate envelope of the
//! silicon cochlea listening to one word (~800 ms), and (b) the
//! distribution of timestamp errors for that stream at
//! `θ_div ∈ {16, 32, 64}` (probability vs error %, 0–12 % bins).
//!
//! Paper expectation: bursty, tonotopically structured activity
//! peaking at a few hundred kevt/s during syllables; increasing
//! `θ_div` shifts the error mass toward zero.

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_aer::rate::sliding_window_rate;
use aetr_analysis::histogram::{Binning, Histogram};
use aetr_analysis::plot::{AsciiPlot, Scale};
use aetr_analysis::table::Table;
use aetr_bench::{banner, write_result};
use aetr_clockgen::config::ClockGenConfig;
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_cochlea::word::fig7_word;
use aetr_sim::time::{SimDuration, SimTime};

const SEED: u64 = 0xF17;
const THETAS: [u32; 3] = [16, 32, 64];

fn main() {
    banner(
        "Figure 7",
        "cochlea raster + event rate for a spoken word; timestamp-error distributions",
        SEED,
    );

    // (a) The word through the cochlea.
    let audio = fig7_word(16_000, SEED);
    let mut cochlea = Cochlea::new(CochleaConfig::das1()).expect("valid DAS1 config");
    let train = cochlea.process(&audio);
    let horizon = SimTime::ZERO + audio.duration();
    println!(
        "word: {} of audio -> {} spikes over {} channels",
        audio.duration(),
        train.len(),
        train.iter().map(|s| s.addr.value()).collect::<std::collections::HashSet<_>>().len()
    );

    // Raster: address vs time (ms).
    let mut raster = AsciiPlot::new(72, 20, Scale::Linear, Scale::Linear);
    raster.series(
        "spike",
        train.iter().map(|s| (s.time.as_secs_f64() * 1e3, s.addr.value() as f64)).collect(),
    );
    println!("raster (x: time ms, y: address):");
    println!("{}", raster.render());

    // Event-rate envelope.
    let rate_curve = sliding_window_rate(&train, SimDuration::from_ms(20), SimDuration::from_ms(5));
    let peak = rate_curve.iter().map(|p| p.rate_hz).fold(0.0f64, f64::max);
    let mut rate_plot = AsciiPlot::new(72, 12, Scale::Linear, Scale::Linear);
    rate_plot.series(
        "rate",
        rate_curve.iter().map(|p| (p.time.as_secs_f64() * 1e3, p.rate_hz)).collect(),
    );
    println!("event rate envelope (x: time ms, y: evt/s; peak {peak:.0} evt/s):");
    println!("{}", rate_plot.render());

    // (b) Error distributions per θ_div.
    let mut table = Table::new(vec!["theta_div", "bin (err %)", "probability"]);
    for &theta in &THETAS {
        let config = ClockGenConfig::prototype().with_theta_div(theta);
        let out = quantize_train(&config, &train, horizon);
        let mut hist =
            Histogram::new(Binning::Linear { lo: 0.0, hi: 0.12, bins: 12 }).expect("valid binning");
        let samples = isi_error_samples(&out);
        hist.extend(samples.iter().map(|s| s.relative_error()));
        let probs = hist.probabilities();
        println!("theta_div = {theta}: error distribution (0..12%, 1% bins)");
        for (i, p) in probs.iter().enumerate() {
            let (lo, hi) = hist.bin_edges(i);
            let bar = "#".repeat((p * 120.0).round() as usize);
            println!("  {:>4.1}-{:>4.1}%  {:<30} {:.3}", lo * 100.0, hi * 100.0, bar, p);
            table.row(vec![
                theta.to_string(),
                format!("{:.1}-{:.1}", lo * 100.0, hi * 100.0),
                format!("{p:.4}"),
            ]);
        }
        let above = hist.overflow as f64 / hist.count() as f64;
        println!("  (>12% or saturated: {:.1}%)", above * 100.0);
        println!();
    }

    // The headline comparison: more θ_div -> more mass in the lowest
    // bins.
    let mass_low = |theta: u32| {
        let config = ClockGenConfig::prototype().with_theta_div(theta);
        let out = quantize_train(&config, &train, horizon);
        let samples = isi_error_samples(&out);
        let low = samples.iter().filter(|s| s.relative_error() < 0.03).count();
        low as f64 / samples.len() as f64
    };
    let (m16, m64) = (mass_low(16), mass_low(64));
    println!(
        "P(err < 3%): theta=16 -> {:.2}, theta=64 -> {:.2}  (paper: higher θ_div improves accuracy) -> {}",
        m16,
        m64,
        if m64 >= m16 { "PASS" } else { "FAIL" }
    );

    let path = write_result("fig7_error_hist.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
