//! Latency decomposition of the interface.
//!
//! The AETR architecture deliberately trades *latency* for *energy*:
//! events wait in the FIFO until a batch is worth waking the I2S link
//! (and the MCU behind it). This module decomposes each event's
//! journey — acquisition (REQ to capture), buffering (capture to frame
//! start), transmission (frame) — so that the batching knob's latency
//! cost is measurable, not anecdotal.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::i2s::I2sConfig;
use crate::interface::InterfaceReport;

/// Latency summary of one stage, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageLatency {
    /// Mean latency.
    pub mean_secs: f64,
    /// Median latency.
    pub p50_secs: f64,
    /// 99th percentile.
    pub p99_secs: f64,
    /// Maximum.
    pub max_secs: f64,
}

impl StageLatency {
    fn of(mut samples: Vec<f64>) -> Option<StageLatency> {
        if samples.is_empty() {
            return None;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        Some(StageLatency {
            mean_secs: mean,
            p50_secs: samples[n / 2],
            p99_secs: samples[(n * 99 / 100).min(n - 1)],
            max_secs: samples[n - 1],
        })
    }
}

/// Full latency decomposition of a run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Events measured.
    pub events: usize,
    /// REQ rise → timestamp capture (synchroniser + sampling grid +
    /// possible wake).
    pub acquisition: StageLatency,
    /// Capture → start of the I2S frame carrying the event (FIFO
    /// batching delay).
    pub buffering: StageLatency,
    /// REQ rise → end of the I2S frame: what the MCU experiences.
    pub end_to_end: StageLatency,
}

impl LatencyReport {
    /// Computes the decomposition from a run report. Returns `None`
    /// for runs with no transmitted events.
    ///
    /// Events are matched to frames in order (the FIFO and the I2S
    /// link are both FIFO, so the n-th captured event rides the
    /// `n/2`-th frame slot).
    pub fn from_report(report: &InterfaceReport, i2s: &I2sConfig) -> Option<LatencyReport> {
        // Flatten frame slots to (event_index -> frame start/end).
        let frame_duration = i2s.frame_duration();
        let mut slot_times: Vec<(SimTime, SimTime)> = Vec::new();
        for f in report.i2s.frames() {
            let end = f.start + frame_duration;
            for _ in f.events() {
                slot_times.push((f.start, end));
            }
        }
        if slot_times.is_empty() {
            return None;
        }

        let n = slot_times.len().min(report.events.len());
        let mut acq = Vec::with_capacity(n);
        let mut buf = Vec::with_capacity(n);
        let mut e2e = Vec::with_capacity(n);
        for (ev, &(f_start, f_end)) in report.events.iter().zip(&slot_times) {
            acq.push((ev.detection - ev.request).as_secs_f64());
            buf.push(f_start.saturating_duration_since(ev.detection).as_secs_f64());
            e2e.push(f_end.saturating_duration_since(ev.request).as_secs_f64());
        }
        Some(LatencyReport {
            events: n,
            acquisition: StageLatency::of(acq)?,
            buffering: StageLatency::of(buf)?,
            end_to_end: StageLatency::of(e2e)?,
        })
    }
}

impl std::fmt::Display for LatencyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let line = |name: &str, s: &StageLatency| {
            format!(
                "{name:<12} mean {:>10} p50 {:>10} p99 {:>10} max {:>10}",
                fmt_s(s.mean_secs),
                fmt_s(s.p50_secs),
                fmt_s(s.p99_secs),
                fmt_s(s.max_secs)
            )
        };
        writeln!(f, "{} events:", self.events)?;
        writeln!(f, "  {}", line("acquisition", &self.acquisition))?;
        writeln!(f, "  {}", line("buffering", &self.buffering))?;
        writeln!(f, "  {}", line("end-to-end", &self.end_to_end))
    }
}

fn fmt_s(secs: f64) -> String {
    SimDuration::from_secs_f64(secs.max(0.0)).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fifo::FifoConfig;
    use crate::interface::{AerToI2sInterface, InterfaceConfig};
    use aetr_aer::generator::{RegularGenerator, SpikeSource};

    fn run_with_watermark(watermark: usize) -> (InterfaceReport, I2sConfig) {
        let config = InterfaceConfig {
            fifo: FifoConfig { watermark, ..FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let interface = AerToI2sInterface::new(config).unwrap();
        let train = RegularGenerator::from_rate(100_000.0, 8).generate(SimTime::from_ms(5));
        (interface.run(&train, SimTime::from_ms(5)), config.i2s)
    }

    #[test]
    fn acquisition_latency_is_grid_scale() {
        let (report, i2s) = run_with_watermark(1);
        let lat = LatencyReport::from_report(&report, &i2s).unwrap();
        // 10 µs spacing sits in segment 1 (period ≤ 2·T_min) plus the
        // 2-FF synchroniser: a few hundred ns.
        assert!(lat.acquisition.mean_secs < 1e-6, "mean {}", lat.acquisition.mean_secs);
        assert!(lat.acquisition.max_secs < 2e-6);
    }

    #[test]
    fn deeper_watermark_costs_buffering_latency() {
        let (r1, i2s) = run_with_watermark(1);
        let (r256, _) = run_with_watermark(256);
        let l1 = LatencyReport::from_report(&r1, &i2s).unwrap();
        let l256 = LatencyReport::from_report(&r256, &i2s).unwrap();
        assert!(
            l256.buffering.mean_secs > 10.0 * l1.buffering.mean_secs,
            "watermark 1: {}, watermark 256: {}",
            l1.buffering.mean_secs,
            l256.buffering.mean_secs
        );
        // End-to-end dominated by buffering at deep watermarks.
        assert!(l256.end_to_end.mean_secs > l256.buffering.mean_secs * 0.9);
    }

    #[test]
    fn empty_run_yields_none() {
        let config = InterfaceConfig::prototype();
        let interface = AerToI2sInterface::new(config).unwrap();
        let report = interface.run(&aetr_aer::spike::SpikeTrain::new(), SimTime::from_ms(1));
        assert!(LatencyReport::from_report(&report, &config.i2s).is_none());
    }

    #[test]
    fn display_renders_all_stages() {
        let (report, i2s) = run_with_watermark(16);
        let text = LatencyReport::from_report(&report, &i2s).unwrap().to_string();
        assert!(text.contains("acquisition"));
        assert!(text.contains("buffering"));
        assert!(text.contains("end-to-end"));
    }
}
