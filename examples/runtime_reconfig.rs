//! Runtime reconfiguration over SPI: the host trades accuracy for
//! power by rewriting `θ_div`/`N_div` through the bit-level SPI
//! configuration bus, exactly as the paper's §4.1 describes
//! ("loaded from the outside via the SPI configuration interface ...
//! at run-time").
//!
//! ```sh
//! cargo run -p aetr --example runtime_reconfig
//! ```

use aetr::config_bus::{Register, RegisterFile};
use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr::spi::{read_frame, run_frame, write_frame, SpiSlave};
use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_clockgen::config::ClockGenConfig;
use aetr_power::model::PowerModel;
use aetr_sim::time::SimTime;

fn profile(config: &ClockGenConfig, label: &str) {
    let train = PoissonGenerator::new(80_000.0, 64, 3).generate(SimTime::from_ms(100));
    let out = quantize_train(config, &train, SimTime::from_ms(100));
    let samples = isi_error_samples(&out);
    let mean_err: f64 =
        samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len() as f64;
    let power = PowerModel::igloo_nano().evaluate(&out.activity).total;
    println!("  {label:<24} error {:>6.3}%   power {power}", mean_err * 100.0);
}

fn main() {
    // The interface boots with the prototype defaults.
    let mut regs = RegisterFile::new();
    let mut spi = SpiSlave::new();
    let base = ClockGenConfig::prototype();

    // Identify the device over SPI, like a driver probe would.
    let (_, id) = run_frame(&mut spi, &mut regs, &read_frame(Register::Id as u8));
    println!("SPI probe: ID = 0x{id:04X}");

    println!("\nbefore reconfiguration (θ=64, N=3):");
    profile(&regs.apply_to(&base), "accuracy-oriented");

    // The host decides battery is low: push θ_div down to 16 and allow
    // deeper division before shutdown.
    for (reg, value) in [(Register::ThetaDiv, 16u32), (Register::NDiv, 5)] {
        let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(reg as u8, value));
        println!("SPI write {reg:?} = {value}: {resp:?}");
    }

    println!("\nafter reconfiguration (θ=16, N=5):");
    profile(&regs.apply_to(&base), "power-oriented");

    // Invalid writes are rejected without touching the registers.
    let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(Register::ThetaDiv as u8, 1));
    println!("\nSPI write ThetaDiv = 1 (invalid): {resp:?}");
    let (_, theta) = run_frame(&mut spi, &mut regs, &read_frame(Register::ThetaDiv as u8));
    println!("ThetaDiv still {theta}");

    // The same write applied *live*, mid-stream, in the full
    // discrete-event interface: sparse 300 µs gaps saturate the
    // default ±64 µs range; once the host raises N_div to 6 the gaps
    // become measurable.
    use aetr::interface::{AerToI2sInterface, InterfaceConfig};
    use aetr_aer::generator::{RegularGenerator, SpikeSource};
    use aetr_sim::time::SimDuration;

    let train = RegularGenerator::new(SimDuration::from_us(300), 4).generate(SimTime::from_ms(6));
    let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).expect("valid config");
    let writes = [(SimTime::from_ms(3), Register::NDiv, 6u32)];
    let report = interface.run_with_reconfig(&train, SimTime::from_ms(6), &writes);
    let (head, tail) = report.events.split_at(report.events.len() / 2);
    let saturated = |evs: &[aetr::interface::TimestampedEvent]| {
        evs.iter().filter(|e| e.event.timestamp.ticks() == 960).count()
    };
    println!(
        "\nlive mid-stream write (N_div 3 -> 6 at t = 3 ms), 300 us spike gaps:\n  \
         first half: {}/{} timestamps saturated; second half: {}/{}",
        saturated(head),
        head.len(),
        saturated(tail),
        tail.len()
    );
}
