//! Figure 8 — power consumption vs event rate.
//!
//! Reproduces: LFSR fixed-rate spike streams swept from 10 evt/s to
//! 800 kevt/s; power of the interface for `θ_div ∈ {16, 32, 64}`
//! against the no-division baseline and the ideal energy-proportional
//! line `P(r) = E_spike·r + P_static` (Eq. 1).
//!
//! Paper expectations: the naïve baseline sits flat at ≈4.5 mW; the
//! divided-clock curves fall with rate, reaching ≈50 µW at very low
//! rates (a ~90× factor) and merging with the baseline in the
//! high-activity region; savings ≈55 % in the active region.

use aetr::quantizer::quantize_train;
use aetr_analysis::fit::LinearFit;
use aetr_analysis::plot::{AsciiPlot, Scale};
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_bench::{banner, lfsr_workload, write_result};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_power::ideal::IdealModel;
use aetr_power::model::PowerModel;
use aetr_power::units::Power;

const SEED: u32 = 0xF18;
const THETAS: [u32; 3] = [16, 32, 64];
const MIN_EVENTS: u64 = 2_000;

fn measure(config: &ClockGenConfig, model: &PowerModel, rate: f64, seed: u32) -> Power {
    let (train, horizon) = lfsr_workload(rate, seed, MIN_EVENTS);
    let out = quantize_train(config, &train, horizon);
    model.evaluate(&out.activity).total
}

fn main() {
    banner(
        "Figure 8",
        "power vs event rate (LFSR stimulus; θ ∈ {16,32,64}, no-division, ideal)",
        SEED as u64,
    );

    let model = PowerModel::igloo_nano();
    let rates = log_space(10.0, 800_000.0, 22);

    // Fit the ideal line the way the paper does: all dynamic power in
    // the high-activity region attributed to events.
    let high_rate = 550_000.0;
    let p_high = measure(&ClockGenConfig::prototype(), &model, high_rate, SEED);
    let ideal = IdealModel::fit_from_high_activity(p_high, high_rate, model.static_power);
    println!(
        "E_spike fit: {} at {} (paper: ~8.1 nJ from 4.5 mW @ 550 kevt/s)\n",
        ideal.e_spike, p_high
    );

    let mut table = Table::new(vec!["config", "rate (evt/s)", "power (mW)"]);
    let mut plot = AsciiPlot::new(64, 20, Scale::Log, Scale::Log);

    let mut configs: Vec<(String, ClockGenConfig)> = THETAS
        .iter()
        .map(|&t| (format!("theta={t}"), ClockGenConfig::prototype().with_theta_div(t)))
        .collect();
    configs.push((
        "no-division".to_owned(),
        ClockGenConfig::prototype().with_policy(DivisionPolicy::Never),
    ));

    let mut curves: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for (label, config) in &configs {
        let mut curve = Vec::new();
        for (i, &rate) in rates.iter().enumerate() {
            let p = measure(config, &model, rate, SEED + i as u32);
            table.row(vec![label.clone(), fmt_sig(rate), format!("{:.4}", p.as_milliwatts())]);
            curve.push((rate, p.as_milliwatts().max(1e-4)));
        }
        curves.push((label.clone(), curve));
    }
    // The ideal line.
    let ideal_curve: Vec<(f64, f64)> = rates
        .iter()
        .map(|&r| {
            let p = ideal.power_at(r);
            table.row(vec!["ideal".into(), fmt_sig(r), format!("{:.4}", p.as_milliwatts())]);
            (r, p.as_milliwatts().max(1e-4))
        })
        .collect();
    curves.push(("ideal".to_owned(), ideal_curve));

    for (label, curve) in &curves {
        plot.series(label.clone(), curve.clone());
    }
    println!("{}", plot.render());
    println!("{}", table.to_ascii());

    // Headline checks mirrored from the paper's §5.2/§6 narrative.
    let proto = ClockGenConfig::prototype();
    let p_idle = {
        let out = quantize_train(
            &proto,
            &aetr_aer::spike::SpikeTrain::new(),
            aetr_sim::time::SimTime::from_secs(1),
        );
        model.evaluate(&out.activity).total
    };
    let p_noisy = measure(&proto, &model, 550_000.0, SEED);
    let p_naive = measure(
        &ClockGenConfig::prototype().with_policy(DivisionPolicy::Never),
        &model,
        1_000.0,
        SEED,
    );
    let p_div_1k = measure(&proto, &model, 1_000.0, SEED);
    // The paper's ~55% figure isolates the frequency-division effect
    // (before shutdown dominates): compare divide-only vs no-division
    // at a few tens of kevt/s.
    let saving_division_only = 1.0
        - measure(
            &ClockGenConfig::prototype().with_policy(DivisionPolicy::DivideOnly),
            &model,
            30_000.0,
            SEED,
        )
        .as_microwatts()
            / measure(
                &ClockGenConfig::prototype().with_policy(DivisionPolicy::Never),
                &model,
                30_000.0,
                SEED,
            )
            .as_microwatts();
    let saving_full = 1.0
        - measure(&proto, &model, 5_000.0, SEED).as_microwatts()
            / measure(
                &ClockGenConfig::prototype().with_policy(DivisionPolicy::Never),
                &model,
                5_000.0,
                SEED,
            )
            .as_microwatts();
    let idle_factor = p_noisy.as_microwatts() / p_idle.as_microwatts();

    println!("no input:            {p_idle}   (paper: ~50 uW)");
    println!("550 kevt/s:          {p_noisy}   (paper: < 4.5 mW)");
    println!("naive @ 1 kevt/s:    {p_naive}   (paper: stuck at ~4.5 mW)");
    println!("divided @ 1 kevt/s:  {p_div_1k}");
    println!(
        "division-only saving @30 kevt/s: {:.0}%   (paper: up to 55% from division alone)",
        saving_division_only * 100.0
    );
    println!("division+shutdown saving @5 kevt/s: {:.0}%", saving_full * 100.0);
    println!("idle power factor:   {idle_factor:.0}x   (paper: ~90x)");

    // Least-squares fit over the high-activity region, where the
    // clock is pinned at full speed: the slope is the *marginal*
    // energy per event (front-end + FIFO + I2S switching), while
    // Eq. 1's E_spike is the *average* energy per event at 550 kevt/s
    // and therefore also carries the always-on clock. The two differing
    // by ~20x is the architectural point: almost all of the power is
    // clocking, which is exactly what recursive division attacks.
    let fit_points: Vec<(f64, f64)> = [450_000.0, 550_000.0, 650_000.0, 800_000.0]
        .iter()
        .map(|&r| (r, measure(&proto, &model, r, SEED).as_microwatts()))
        .collect();
    if let Some(fit) = LinearFit::of(&fit_points) {
        // Slope is µW per (evt/s) = µJ per event.
        println!(
            "marginal energy/event (high-activity slope): {:.2} nJ (R^2 {:.3})",
            fit.slope * 1e3,
            fit.r_squared
        );
        println!(
            "average energy/event at 550 kevt/s (Eq. 1):  {} — the gap is the always-on clock",
            ideal.e_spike
        );
    }

    let path = write_result("fig8_power.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
