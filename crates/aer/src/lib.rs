//! # aetr-aer — Address-Event Representation substrate
//!
//! Everything about the asynchronous side of the DAC'17 system: AER
//! [addresses](address), [spikes and spike trains](spike), the
//! [4-phase handshake](handshake) with CAVIAR timing verification, the
//! stimulus [generators](generator) used by the paper's experiments
//! (Poisson, LFSR, periodic, bursty), workload characterisation
//! ([rate] estimation, [ISI statistics](isi)), the on-chip
//! [arbiter-tree](arbiter) that serialises neurons onto the bus, and
//! the jAER-compatible [AEDAT 2.0 codec](aedat) for recorded streams.
//!
//! # Examples
//!
//! Generate the paper's "noisy environment" workload (550 kevt/s) and
//! check it against the CAVIAR handshake budget:
//!
//! ```
//! use aetr_aer::generator::{LfsrGenerator, SpikeSource};
//! use aetr_aer::handshake::{run_with_fixed_latency, HandshakeTiming};
//! use aetr_sim::time::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let train = LfsrGenerator::new(550_000.0, 0xC0FFEE).generate(SimTime::from_ms(10));
//! let log = run_with_fixed_latency(&train, HandshakeTiming::default(),
//!                                  SimDuration::from_ns(33));
//! log.verify_protocol()?;
//! log.verify_caviar()?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod aedat;
pub mod arbiter;
pub mod generator;
pub mod handshake;
pub mod isi;
pub mod noise;
pub mod rate;
pub mod spike;

pub use address::Address;
pub use generator::SpikeSource;
pub use handshake::{HandshakeLog, HandshakeSender, HandshakeTiming, Transaction};
pub use spike::{Spike, SpikeTrain};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use aetr_sim::time::{SimDuration, SimTime};

    use crate::address::Address;
    use crate::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
    use crate::handshake::{run_with_fixed_latency, HandshakeTiming};
    use crate::spike::{Spike, SpikeTrain};

    proptest! {
        /// from_unsorted always satisfies the order invariant that
        /// from_sorted validates.
        #[test]
        fn unsorted_construction_sorts(times in proptest::collection::vec(0u64..1_000_000, 0..100)) {
            let spikes: Vec<Spike> = times
                .iter()
                .map(|&t| Spike::new(SimTime::from_ps(t), Address::MIN))
                .collect();
            let train = SpikeTrain::from_unsorted(spikes);
            prop_assert!(SpikeTrain::from_sorted(train.clone().into_inner()).is_ok());
        }

        /// Merging preserves the total spike count and ordering.
        #[test]
        fn merge_preserves_and_orders(
            a in proptest::collection::vec(0u64..1_000_000, 0..50),
            b in proptest::collection::vec(0u64..1_000_000, 0..50),
        ) {
            let ta = SpikeTrain::from_unsorted(
                a.iter().map(|&t| Spike::new(SimTime::from_ps(t), Address::MIN)).collect());
            let tb = SpikeTrain::from_unsorted(
                b.iter().map(|&t| Spike::new(SimTime::from_ps(t), Address::MAX)).collect());
            let m = ta.merge(&tb);
            prop_assert_eq!(m.len(), ta.len() + tb.len());
            prop_assert!(SpikeTrain::from_sorted(m.into_inner()).is_ok());
        }

        /// Windowing returns exactly the spikes in [from, to).
        #[test]
        fn window_is_exact(
            times in proptest::collection::vec(0u64..10_000, 0..100),
            from in 0u64..10_000,
            width in 0u64..10_000,
        ) {
            let train = SpikeTrain::from_unsorted(
                times.iter().map(|&t| Spike::new(SimTime::from_ps(t), Address::MIN)).collect());
            let to = from + width;
            let w = train.window(SimTime::from_ps(from), SimTime::from_ps(to));
            let expected = train
                .iter()
                .filter(|s| s.time >= SimTime::from_ps(from) && s.time < SimTime::from_ps(to))
                .count();
            prop_assert_eq!(w.len(), expected);
        }

        /// The handshake never violates 4-phase ordering for any
        /// workload/latency combination, and events never reorder.
        #[test]
        fn handshake_protocol_always_well_formed(
            rate in 1_000.0f64..1_000_000.0,
            ack_ns in 1u64..200,
            seed in 0u32..1_000,
        ) {
            let train = LfsrGenerator::new(rate, seed).generate(SimTime::from_us(500));
            let log = run_with_fixed_latency(
                &train,
                HandshakeTiming::default(),
                SimDuration::from_ns(ack_ns),
            );
            prop_assert_eq!(log.len(), train.len());
            prop_assert!(log.verify_protocol().is_ok());
            // Addresses arrive in the original order.
            for (t, s) in log.transactions().iter().zip(train.iter()) {
                prop_assert_eq!(t.addr, s.addr);
                prop_assert!(t.req_rise >= s.time);
            }
        }

        /// Poisson generation is rate-faithful across seeds (coarse
        /// bound; the statistical test lives in the unit tests).
        #[test]
        fn poisson_rate_sanity(seed in 0u64..50) {
            let train = PoissonGenerator::new(100_000.0, 16, seed).generate(SimTime::from_ms(100));
            let rate = train.mean_rate();
            prop_assert!((rate - 100_000.0).abs() / 100_000.0 < 0.25, "rate {}", rate);
        }
    }
}
