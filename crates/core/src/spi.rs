//! Bit-level SPI slave for the configuration bus.
//!
//! The host reaches the register file through a standard SPI port
//! (mode 0: data sampled on the rising SCK edge, MSB first). A
//! transaction is one 40-bit frame:
//!
//! ```text
//!  bit 39   bits 38..32   bits 31..0
//! +-------+-------------+------------+
//! |  R/W  |  address:7  |  data:32   |
//! +-------+-------------+------------+
//! ```
//!
//! `R/W = 1` writes `data` to the register; `R/W = 0` reads it, with
//! the value shifted out on MISO during the data phase of the *same*
//! frame (full-duplex, as the register value is available
//! combinationally).

use serde::{Deserialize, Serialize};

use crate::config_bus::{Register, RegisterError, RegisterFile};

/// Frame length in bits.
pub const FRAME_BITS: usize = 40;

/// Result of one completed SPI frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpiResponse {
    /// A write was applied.
    WriteOk {
        /// Target register.
        register: Register,
        /// Value written.
        value: u32,
    },
    /// A read completed; the value was shifted out on MISO.
    ReadOk {
        /// Source register.
        register: Register,
        /// Value returned.
        value: u32,
    },
    /// The frame addressed no register or carried an invalid value;
    /// the slave ignored it.
    Rejected(RegisterError),
}

/// Bit-level SPI slave front-end to a [`RegisterFile`].
///
/// Drive it edge by edge with [`clock_bit`](SpiSlave::clock_bit) while
/// chip-select is asserted; each call is one rising SCK edge. MISO is
/// returned per bit. Deasserting chip-select mid-frame
/// ([`deselect`](SpiSlave::deselect)) aborts the frame.
///
/// # Examples
///
/// ```
/// use aetr::config_bus::{Register, RegisterFile};
/// use aetr::spi::{write_frame, SpiSlave, SpiResponse};
///
/// let mut regs = RegisterFile::new();
/// let mut spi = SpiSlave::new();
/// let frame = write_frame(Register::ThetaDiv as u8, 32);
/// let mut response = None;
/// for bit in frame {
///     response = spi.clock_bit(&mut regs, bit).1;
/// }
/// assert!(matches!(response, Some(SpiResponse::WriteOk { value: 32, .. })));
/// assert_eq!(regs.read(Register::ThetaDiv), 32);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpiSlave {
    shift_in: u64,
    bits: usize,
    /// Read data being shifted out (MSB first), captured when the
    /// address phase completes on a read frame.
    shift_out: Option<u32>,
}

impl SpiSlave {
    /// Creates an idle slave.
    pub fn new() -> SpiSlave {
        SpiSlave::default()
    }

    /// One rising SCK edge with chip-select asserted: samples `mosi`,
    /// returns `(miso, response)` where `response` is `Some` on the
    /// 40th bit of a frame.
    pub fn clock_bit(
        &mut self,
        regs: &mut RegisterFile,
        mosi: bool,
    ) -> (bool, Option<SpiResponse>) {
        self.shift_in = (self.shift_in << 1) | mosi as u64;
        self.bits += 1;

        // After the 8-bit command phase of a read, latch the register
        // value for the MISO shift-out.
        if self.bits == 8 {
            let rw = (self.shift_in >> 7) & 1 == 1;
            let addr = (self.shift_in & 0x7F) as u8;
            if !rw {
                if let Some(reg) = Register::from_addr(addr) {
                    self.shift_out = Some(regs.read(reg));
                }
            }
        }

        // MISO: during the data phase of a read, shift the latched
        // value MSB first; otherwise drive low.
        let miso = match self.shift_out {
            Some(v) if self.bits > 8 && self.bits <= 40 => (v >> (40 - self.bits)) & 1 == 1,
            _ => false,
        };

        if self.bits < FRAME_BITS {
            return (miso, None);
        }

        // Frame complete: decode and apply.
        let frame = self.shift_in;
        self.reset_frame();
        let rw = (frame >> 39) & 1 == 1;
        let addr = ((frame >> 32) & 0x7F) as u8;
        let data = (frame & 0xFFFF_FFFF) as u32;
        let Some(reg) = Register::from_addr(addr) else {
            return (miso, Some(SpiResponse::Rejected(RegisterError::UnknownAddress { addr })));
        };
        let response = if rw {
            match regs.write(reg, data) {
                Ok(()) => SpiResponse::WriteOk { register: reg, value: data },
                Err(e) => SpiResponse::Rejected(e),
            }
        } else {
            SpiResponse::ReadOk { register: reg, value: regs.read(reg) }
        };
        (miso, Some(response))
    }

    /// Chip-select deasserted: abort any partial frame.
    pub fn deselect(&mut self) {
        self.reset_frame();
    }

    fn reset_frame(&mut self) {
        self.shift_in = 0;
        self.bits = 0;
        self.shift_out = None;
    }
}

/// Builds the MOSI bit sequence for a write transaction (MSB first).
pub fn write_frame(addr: u8, value: u32) -> Vec<bool> {
    frame_bits(true, addr, value)
}

/// Builds the MOSI bit sequence for a read transaction (MSB first; the
/// data phase bits are don't-care zeros).
pub fn read_frame(addr: u8) -> Vec<bool> {
    frame_bits(false, addr, 0)
}

fn frame_bits(rw: bool, addr: u8, data: u32) -> Vec<bool> {
    let word: u64 = ((rw as u64) << 39) | (((addr & 0x7F) as u64) << 32) | data as u64;
    (0..FRAME_BITS).map(|i| (word >> (FRAME_BITS - 1 - i)) & 1 == 1).collect()
}

/// Runs a full frame through the slave, returning the response and the
/// 32-bit value shifted out on MISO during the data phase.
pub fn run_frame(
    spi: &mut SpiSlave,
    regs: &mut RegisterFile,
    mosi: &[bool],
) -> (Option<SpiResponse>, u32) {
    let mut response = None;
    let mut miso_word = 0u32;
    for (i, &bit) in mosi.iter().enumerate() {
        let (miso, r) = spi.clock_bit(regs, bit);
        if (8..40).contains(&i) {
            miso_word = (miso_word << 1) | miso as u32;
        }
        if r.is_some() {
            response = r;
        }
    }
    (response, miso_word)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(Register::NDiv as u8, 9));
        assert_eq!(resp, Some(SpiResponse::WriteOk { register: Register::NDiv, value: 9 }));

        let (resp, miso) = run_frame(&mut spi, &mut regs, &read_frame(Register::NDiv as u8));
        assert_eq!(resp, Some(SpiResponse::ReadOk { register: Register::NDiv, value: 9 }));
        assert_eq!(miso, 9, "read value appears on MISO in the same frame");
    }

    #[test]
    fn id_register_reads_magic() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        let (_, miso) = run_frame(&mut spi, &mut regs, &read_frame(0x00));
        assert_eq!(miso, crate::config_bus::ID_WORD);
    }

    #[test]
    fn unknown_address_rejected() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(0x55, 1));
        assert!(matches!(
            resp,
            Some(SpiResponse::Rejected(RegisterError::UnknownAddress { addr: 0x55 }))
        ));
    }

    #[test]
    fn invalid_value_rejected_without_side_effects() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        let before = regs.read(Register::ThetaDiv);
        let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(Register::ThetaDiv as u8, 1));
        assert!(matches!(resp, Some(SpiResponse::Rejected(_))));
        assert_eq!(regs.read(Register::ThetaDiv), before);
    }

    #[test]
    fn deselect_aborts_partial_frame() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        // Clock half a write frame, then abort.
        for &bit in write_frame(Register::NDiv as u8, 9).iter().take(20) {
            spi.clock_bit(&mut regs, bit);
        }
        spi.deselect();
        // A fresh complete frame still works and the aborted one had no
        // effect.
        assert_eq!(regs.read(Register::NDiv), 3);
        let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(Register::NDiv as u8, 5));
        assert!(matches!(resp, Some(SpiResponse::WriteOk { .. })));
        assert_eq!(regs.read(Register::NDiv), 5);
    }

    #[test]
    fn back_to_back_frames_share_one_slave() {
        let mut regs = RegisterFile::new();
        let mut spi = SpiSlave::new();
        for (addr, val) in [(Register::ThetaDiv as u8, 16u32), (Register::NDiv as u8, 2)] {
            let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(addr, val));
            assert!(matches!(resp, Some(SpiResponse::WriteOk { .. })));
        }
        assert_eq!(regs.read(Register::ThetaDiv), 16);
        assert_eq!(regs.read(Register::NDiv), 2);
    }

    #[test]
    fn frame_bit_layout_msb_first() {
        let bits = write_frame(0x02, 1);
        assert_eq!(bits.len(), FRAME_BITS);
        assert!(bits[0], "R/W bit first");
        // Address 0x02 = 0000010 in bits 1..8.
        let addr_bits: Vec<bool> = bits[1..8].to_vec();
        assert_eq!(addr_bits, vec![false, false, false, false, false, true, false]);
        // Data LSB last.
        assert!(bits[39]);
    }
}
