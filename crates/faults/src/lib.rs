//! Deterministic fault injection and recovery for the AETR interface.
//!
//! A physical deployment of the DAC'17 interface faces failure modes
//! the nominal simulation never exercises: a sensor whose `ACK` wire
//! glitches, a `REQ` line stuck high, a pausable ring oscillator that
//! misses its restart edge, single-event upsets in the SRAM FIFO, and
//! I2S receivers that slip a frame. This crate provides the *seeded,
//! reproducible* fault model those scenarios are injected from, plus
//! the recovery policy knobs (handshake watchdog, degraded clocking)
//! and the typed health counters the interface reports back.
//!
//! The design contract is **zero cost when disabled**: a
//! [`FaultPlan`] whose rates are all zero and whose schedule is empty
//! never consumes a random draw and never perturbs the simulation, so
//! the interface produces bit-identical reports with and without the
//! injector (`tests/fault_injection.rs` pins this down).
//!
//! ```
//! use aetr_faults::{FaultPlan, FaultRates};
//!
//! let plan = FaultPlan::nominal(42).with_rates(FaultRates {
//!     lost_ack: 0.05,
//!     ..FaultRates::default()
//! });
//! assert!(!plan.is_zero());
//! assert!(plan.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

/// Deterministic fault-source RNG (SplitMix64).
///
/// Kept separate from the workload generators so a fault campaign can
/// vary fault seeds without disturbing spike trains, and vice versa.
/// Rolls at probability `0` (or below) short-circuit **without
/// consuming a draw** — this is what makes an all-zero [`FaultPlan`]
/// provably equivalent to running with no injector at all.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRng {
    state: u64,
}

impl FaultRng {
    /// Creates an RNG from a campaign seed.
    pub fn new(seed: u64) -> FaultRng {
        FaultRng { state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15) }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Bernoulli trial: `true` with probability `p`.
    ///
    /// `p <= 0` returns `false` and `p >= 1` returns `true`, both
    /// without advancing the generator state.
    pub fn roll(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniformly-distributed mantissa bits, the same construction
        // the vendored `rand` stub uses.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Uniform integer in `0..n` (widening-multiply method).
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn below(&mut self, n: u32) -> u32 {
        assert!(n > 0, "below(0) has no valid output");
        ((u64::from(self.next_u64() as u32) * u64::from(n)) >> 32) as u32
    }
}

/// Per-fault-class injection rates, each a probability in `[0, 1]`
/// applied at that fault's natural opportunity (per handshake, per
/// wake, per FIFO write, per I2S frame, per CDC pointer update).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultRates {
    /// `REQ` stuck high after its handshake should have released it:
    /// the interface keeps seeing a request that is no longer real.
    pub stuck_req: f64,
    /// The sensor misses the interface's `ACK` rising edge, leaving
    /// the handshake hung until the watchdog re-drives it.
    pub lost_ack: f64,
    /// The completed transaction's edges are recorded out of 4-phase
    /// order (a malformed transaction a protocol checker must flag).
    pub malformed: f64,
    /// The pausable ring oscillator fails to restart on a wake edge.
    pub wake_failure: f64,
    /// A single-bit upset in an AETR word as it is written to the SRAM
    /// FIFO.
    pub fifo_bit_flip: f64,
    /// The I2S receiver slips (loses) a transmitted frame.
    pub i2s_frame_slip: f64,
    /// A single-bit upset on a Gray-coded CDC pointer in flight
    /// (exercised by the `CdcFifo` hardening tests).
    pub cdc_gray_upset: f64,
}

impl FaultRates {
    /// `true` when every rate is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.as_array().iter().all(|&r| r == 0.0)
    }

    fn as_array(&self) -> [f64; 7] {
        [
            self.stuck_req,
            self.lost_ack,
            self.malformed,
            self.wake_failure,
            self.fifo_bit_flip,
            self.i2s_frame_slip,
            self.cdc_gray_upset,
        ]
    }

    /// A uniform rate on the three protocol faults (campaign helper).
    pub fn protocol(rate: f64) -> FaultRates {
        FaultRates { stuck_req: rate, lost_ack: rate, malformed: rate, ..FaultRates::default() }
    }

    /// A uniform rate on the datapath faults (campaign helper).
    pub fn datapath(rate: f64) -> FaultRates {
        FaultRates {
            fifo_bit_flip: rate,
            i2s_frame_slip: rate,
            cdc_gray_upset: rate,
            ..FaultRates::default()
        }
    }
}

/// A one-shot fault fired at a scheduled simulation time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScheduledFault {
    /// When the fault manifests.
    pub at: SimTime,
    /// What breaks.
    pub kind: FaultKind,
}

/// Kinds of one-shot scheduled faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The sampling oscillator sticks: the clock tree stops dead as if
    /// shut down, without the FSM having decided to sleep. Recovery
    /// rides the normal request-driven wake path.
    StuckOscillator,
}

/// Recovery-policy configuration for the handshake watchdog and the
/// degraded clocking fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// How long the interface waits for the sensor to react to `ACK`
    /// before re-driving it.
    pub ack_timeout: SimDuration,
    /// Re-drive attempts before the handshake is aborted and the
    /// channel reset.
    pub max_ack_retries: u32,
    /// Extra wait after the nominal wake latency before the watchdog
    /// declares the wake failed.
    pub wake_timeout: SimDuration,
    /// Wake re-checks before the interface forces the clock on and
    /// enters degraded mode.
    pub max_wake_retries: u32,
    /// `N_div` ceiling applied in degraded mode. The clock then
    /// plateaus at `2^clamp · T_min` instead of ever shutting down —
    /// power is traded for timestamp coherence once wakes are
    /// untrustworthy.
    pub degraded_n_div_clamp: u32,
}

impl Default for WatchdogConfig {
    /// One-microsecond ACK watchdog with 4 retries (doubling backoff),
    /// five-microsecond wake watchdog with 3 retries, degraded clamp
    /// at `N_div = 1`.
    fn default() -> Self {
        WatchdogConfig {
            ack_timeout: SimDuration::from_us(1),
            max_ack_retries: 4,
            wake_timeout: SimDuration::from_us(5),
            max_wake_retries: 3,
            degraded_n_div_clamp: 1,
        }
    }
}

impl WatchdogConfig {
    /// Backoff delay before retry number `attempt` (0-based): the ACK
    /// timeout doubled per attempt, exponent clamped so the product
    /// stays finite.
    pub fn ack_backoff(&self, attempt: u32) -> SimDuration {
        self.ack_timeout.saturating_mul(1u64 << attempt.min(16))
    }
}

/// Invalid [`FaultPlan`] parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// A rate was outside `[0, 1]` (or NaN).
    RateOutOfRange {
        /// The offending value.
        rate: f64,
    },
    /// The watchdog would retry with zero delay forever.
    ZeroTimeout,
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::RateOutOfRange { rate } => {
                write!(f, "fault rate {rate} is outside [0, 1]")
            }
            FaultPlanError::ZeroTimeout => {
                write!(f, "watchdog timeouts must be non-zero")
            }
        }
    }
}

impl Error for FaultPlanError {}

/// A complete, seeded fault campaign for one simulation run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault RNG (independent of workload seeds).
    pub seed: u64,
    /// Stochastic per-class rates.
    pub rates: FaultRates,
    /// One-shot faults at fixed times.
    pub scheduled: Vec<ScheduledFault>,
    /// Recovery policy.
    pub watchdog: WatchdogConfig,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero, empty schedule)
    /// but still carries a seed and the default watchdog.
    pub fn nominal(seed: u64) -> FaultPlan {
        FaultPlan { seed, ..FaultPlan::default() }
    }

    /// Returns a copy with the given rates.
    pub fn with_rates(mut self, rates: FaultRates) -> FaultPlan {
        self.rates = rates;
        self
    }

    /// Returns a copy with the given watchdog policy.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> FaultPlan {
        self.watchdog = watchdog;
        self
    }

    /// Returns a copy with one more scheduled fault.
    pub fn schedule(mut self, at: SimTime, kind: FaultKind) -> FaultPlan {
        self.scheduled.push(ScheduledFault { at, kind });
        self
    }

    /// `true` when the plan can provably not perturb a run.
    pub fn is_zero(&self) -> bool {
        self.rates.is_zero() && self.scheduled.is_empty()
    }

    /// Validates rates and watchdog parameters.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for rate in self.rates.as_array() {
            if !(0.0..=1.0).contains(&rate) {
                return Err(FaultPlanError::RateOutOfRange { rate });
            }
        }
        if self.watchdog.ack_timeout.is_zero() || self.watchdog.wake_timeout.is_zero() {
            return Err(FaultPlanError::ZeroTimeout);
        }
        Ok(())
    }
}

/// The live fault source a simulation queries at each opportunity.
///
/// Each query corresponds to one fault class at its natural injection
/// point; classes with rate zero never touch the RNG, and every class
/// draws from its own seed-derived stream, so enabling one class does
/// not shift the decisions of another — *per-class* reproducibility.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rates: FaultRates,
    /// One RNG stream per fault class, all derived from the plan seed.
    streams: [FaultRng; 7],
    /// Time-sorted scheduled faults not yet fired.
    scheduled: Vec<ScheduledFault>,
    next_scheduled: usize,
}

impl FaultInjector {
    /// Builds an injector from a validated plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not validate.
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        plan.validate().expect("fault injector requires a valid plan");
        let mut scheduled = plan.scheduled.clone();
        scheduled.sort_by_key(|f| f.at);
        // Decorrelated per-class streams: seed ⊕ class-tagged constant.
        let stream =
            |class: u64| FaultRng::new(plan.seed ^ class.wrapping_mul(0xA24B_AED4_963E_E407));
        FaultInjector {
            rates: plan.rates,
            streams: [stream(1), stream(2), stream(3), stream(4), stream(5), stream(6), stream(7)],
            scheduled,
            next_scheduled: 0,
        }
    }

    /// Activation time of the next scheduled fault that has not fired
    /// yet, if any — lets the fast-forward path bound an idle jump so
    /// no scheduled fault is skipped over.
    pub fn next_scheduled_at(&self) -> Option<SimTime> {
        self.scheduled.get(self.next_scheduled).map(|f| f.at)
    }

    /// Pops the next scheduled fault due at or before `now`, if any.
    pub fn due_scheduled(&mut self, now: SimTime) -> Option<FaultKind> {
        let fault = self.scheduled.get(self.next_scheduled)?;
        if fault.at <= now {
            self.next_scheduled += 1;
            Some(fault.kind)
        } else {
            None
        }
    }

    /// Does this handshake's `REQ` stick high after completion?
    pub fn stick_req(&mut self) -> bool {
        self.streams[0].roll(self.rates.stuck_req)
    }

    /// Does the sensor miss this `ACK` edge?
    pub fn lose_ack(&mut self) -> bool {
        self.streams[1].roll(self.rates.lost_ack)
    }

    /// Is this transaction recorded malformed?
    pub fn malform(&mut self) -> bool {
        self.streams[2].roll(self.rates.malformed)
    }

    /// Does this oscillator wake attempt fail?
    pub fn fail_wake(&mut self) -> bool {
        self.streams[3].roll(self.rates.wake_failure)
    }

    /// Bit index (0..32) to flip in the FIFO-bound word, if this write
    /// is upset.
    pub fn flip_fifo_bit(&mut self) -> Option<u32> {
        if self.streams[4].roll(self.rates.fifo_bit_flip) {
            Some(self.streams[4].below(32))
        } else {
            None
        }
    }

    /// Does the receiver slip this I2S frame?
    pub fn slip_frame(&mut self) -> bool {
        self.streams[5].roll(self.rates.i2s_frame_slip)
    }

    /// Bit index (0..`pointer_bits`) to upset on a crossing Gray
    /// pointer, if this update is hit.
    pub fn upset_gray_bit(&mut self, pointer_bits: u32) -> Option<u32> {
        if pointer_bits > 0 && self.streams[6].roll(self.rates.cdc_gray_upset) {
            Some(self.streams[6].below(pointer_bits))
        } else {
            None
        }
    }
}

/// Typed counters describing everything that went wrong — and was
/// recovered — during a run. All-zero in a nominal run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InterfaceHealthReport {
    /// `ACK` edges the sensor missed (initial losses and re-losses).
    pub lost_acks: u64,
    /// Watchdog `ACK` re-drive attempts.
    pub ack_retries: u64,
    /// Handshakes completed late thanks to a watchdog re-drive.
    pub acks_recovered: u64,
    /// Handshakes abandoned after exhausting retries (channel reset).
    pub handshakes_aborted: u64,
    /// `REQ` lines observed stuck high past handshake completion.
    pub stuck_requests: u64,
    /// Phantom samples taken from a stale (stuck) request and
    /// discarded.
    pub spurious_samples: u64,
    /// Transactions recorded with out-of-order 4-phase edges.
    pub malformed_transactions: u64,
    /// Ring-oscillator wake attempts that failed.
    pub wake_failures: u64,
    /// Watchdog wake re-checks performed.
    pub wake_retries: u64,
    /// Wakes forced by the watchdog after exhausting re-checks.
    pub forced_wakes: u64,
    /// Scheduled oscillator stalls that hit.
    pub oscillator_stalls: u64,
    /// Single-bit upsets injected into FIFO-bound words.
    pub fifo_bit_flips: u64,
    /// Events lost to FIFO overflow (either overflow policy;
    /// `fifo_drops_overflow + fifo_drops_degraded`).
    pub fifo_drops: u64,
    /// FIFO losses in normal operation.
    pub fifo_drops_overflow: u64,
    /// FIFO losses while the watchdog had the interface in degraded
    /// mode.
    pub fifo_drops_degraded: u64,
    /// I2S frames slipped by the receiver.
    pub frame_slips: u64,
    /// Events carried by those slipped frames.
    pub events_lost_to_slips: u64,
    /// Gray-pointer upsets injected on the CDC crossing.
    pub cdc_upsets: u64,
    /// `true` once the interface clamped `N_div` and gave up sleeping.
    pub degraded: bool,
}

impl InterfaceHealthReport {
    /// `true` when nothing abnormal was observed.
    pub fn is_nominal(&self) -> bool {
        *self == InterfaceHealthReport::default()
    }

    /// The report as `(metric name, value)` pairs under the
    /// `interface.health.*` hierarchy.
    ///
    /// This is the single source of truth for health metric names: the
    /// telemetry registry in normal runs and the `aetr-cli faults`
    /// campaign output both emit exactly these, so dashboards built on
    /// one work on the other. `degraded` is exported as a 0/1 value.
    pub fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("interface.health.lost_acks", self.lost_acks),
            ("interface.health.ack_retries", self.ack_retries),
            ("interface.health.acks_recovered", self.acks_recovered),
            ("interface.health.handshakes_aborted", self.handshakes_aborted),
            ("interface.health.stuck_requests", self.stuck_requests),
            ("interface.health.spurious_samples", self.spurious_samples),
            ("interface.health.malformed_transactions", self.malformed_transactions),
            ("interface.health.wake_failures", self.wake_failures),
            ("interface.health.wake_retries", self.wake_retries),
            ("interface.health.forced_wakes", self.forced_wakes),
            ("interface.health.oscillator_stalls", self.oscillator_stalls),
            ("interface.health.fifo_bit_flips", self.fifo_bit_flips),
            ("interface.health.fifo_drops", self.fifo_drops),
            ("interface.health.fifo_drops_overflow", self.fifo_drops_overflow),
            ("interface.health.fifo_drops_degraded", self.fifo_drops_degraded),
            ("interface.health.frame_slips", self.frame_slips),
            ("interface.health.events_lost_to_slips", self.events_lost_to_slips),
            ("interface.health.cdc_upsets", self.cdc_upsets),
            ("interface.health.degraded", u64::from(self.degraded)),
        ]
    }

    /// Total faults *injected* (recovery actions not included).
    pub fn faults_injected(&self) -> u64 {
        self.lost_acks
            + self.stuck_requests
            + self.malformed_transactions
            + self.wake_failures
            + self.oscillator_stalls
            + self.fifo_bit_flips
            + self.frame_slips
            + self.cdc_upsets
    }

    /// Events irrecoverably lost (dropped in the FIFO or slipped on
    /// the link). Aborted handshakes do not lose events — the event
    /// was already captured when its `ACK` was lost.
    pub fn events_lost(&self) -> u64 {
        self.fifo_drops + self.events_lost_to_slips
    }
}

impl fmt::Display for InterfaceHealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nominal() {
            return write!(f, "nominal");
        }
        write!(
            f,
            "protocol: {} lost ACKs ({} recovered, {} aborted, {} retries), \
             {} stuck REQs ({} spurious samples), {} malformed; \
             clock: {} wake failures ({} retries, {} forced), {} stalls{}; \
             datapath: {} FIFO flips, {} FIFO drops, {} frame slips \
             ({} events), {} CDC upsets",
            self.lost_acks,
            self.acks_recovered,
            self.handshakes_aborted,
            self.ack_retries,
            self.stuck_requests,
            self.spurious_samples,
            self.malformed_transactions,
            self.wake_failures,
            self.wake_retries,
            self.forced_wakes,
            self.oscillator_stalls,
            if self.degraded { ", DEGRADED" } else { "" },
            self.fifo_bit_flips,
            self.fifo_drops,
            self.frame_slips,
            self.events_lost_to_slips,
            self.cdc_upsets,
        )
    }
}

/// Accumulates [`InterfaceHealthReport`] counters as a run progresses.
#[derive(Debug, Clone, Default)]
pub struct HealthMonitor {
    report: InterfaceHealthReport,
}

impl HealthMonitor {
    /// Creates a monitor with all counters at zero.
    pub fn new() -> HealthMonitor {
        HealthMonitor::default()
    }

    /// The report accumulated so far.
    pub fn report(&self) -> InterfaceHealthReport {
        self.report
    }

    /// Records a missed `ACK` edge.
    pub fn lost_ack(&mut self) {
        self.report.lost_acks += 1;
    }

    /// Records a watchdog `ACK` re-drive.
    pub fn ack_retry(&mut self) {
        self.report.ack_retries += 1;
    }

    /// Records a handshake completed by a re-driven `ACK`.
    pub fn ack_recovered(&mut self) {
        self.report.acks_recovered += 1;
    }

    /// Records a handshake abandoned after the retry budget.
    pub fn handshake_aborted(&mut self) {
        self.report.handshakes_aborted += 1;
    }

    /// Records a `REQ` stuck high.
    pub fn stuck_request(&mut self) {
        self.report.stuck_requests += 1;
    }

    /// Records a phantom sample discarded.
    pub fn spurious_sample(&mut self) {
        self.report.spurious_samples += 1;
    }

    /// Records a malformed transaction.
    pub fn malformed(&mut self) {
        self.report.malformed_transactions += 1;
    }

    /// Records a failed oscillator wake.
    pub fn wake_failure(&mut self) {
        self.report.wake_failures += 1;
    }

    /// Records a watchdog wake re-check.
    pub fn wake_retry(&mut self) {
        self.report.wake_retries += 1;
    }

    /// Records a forced (watchdog-driven) wake.
    pub fn forced_wake(&mut self) {
        self.report.forced_wakes += 1;
    }

    /// Records a scheduled oscillator stall firing.
    pub fn oscillator_stall(&mut self) {
        self.report.oscillator_stalls += 1;
    }

    /// Records a FIFO word upset.
    pub fn fifo_bit_flip(&mut self) {
        self.report.fifo_bit_flips += 1;
    }

    /// Records an event lost at a full FIFO, attributed to degraded
    /// mode when the watchdog fallback was active at the time.
    pub fn fifo_drop(&mut self, degraded: bool) {
        self.report.fifo_drops += 1;
        if degraded {
            self.report.fifo_drops_degraded += 1;
        } else {
            self.report.fifo_drops_overflow += 1;
        }
    }

    /// Records a slipped I2S frame carrying `events` events.
    pub fn frame_slip(&mut self, events: u64) {
        self.report.frame_slips += 1;
        self.report.events_lost_to_slips += events;
    }

    /// Records a CDC Gray-pointer upset.
    pub fn cdc_upset(&mut self) {
        self.report.cdc_upsets += 1;
    }

    /// Records entry into degraded clocking.
    pub fn entered_degraded(&mut self) {
        self.report.degraded = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_roll_consumes_no_state() {
        let mut rng = FaultRng::new(7);
        let before = rng.clone();
        for _ in 0..100 {
            assert!(!rng.roll(0.0));
        }
        assert_eq!(rng, before, "p=0 must not advance the generator");
        assert!(rng.roll(1.0));
        assert_eq!(rng, before, "p=1 must not advance the generator either");
    }

    #[test]
    fn roll_frequency_tracks_probability() {
        let mut rng = FaultRng::new(123);
        let hits = (0..10_000).filter(|_| rng.roll(0.3)).count();
        let frac = hits as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.02, "observed {frac}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = FaultRng::new(99);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let v = rng.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::nominal(5).with_rates(FaultRates::protocol(0.2));
        let mut a = FaultInjector::new(&plan);
        let mut b = FaultInjector::new(&plan);
        for _ in 0..500 {
            assert_eq!(a.lose_ack(), b.lose_ack());
            assert_eq!(a.stick_req(), b.stick_req());
            assert_eq!(a.malform(), b.malform());
        }
    }

    #[test]
    fn per_class_streams_are_independent() {
        // Enabling a second class must not shift the first class's
        // decision sequence at the same seed.
        let only_ack = FaultPlan::nominal(11)
            .with_rates(FaultRates { lost_ack: 0.3, ..FaultRates::default() });
        let both = FaultPlan::nominal(11).with_rates(FaultRates {
            lost_ack: 0.3,
            fifo_bit_flip: 0.5,
            ..FaultRates::default()
        });
        let mut a = FaultInjector::new(&only_ack);
        let mut b = FaultInjector::new(&both);
        for _ in 0..200 {
            let _ = b.flip_fifo_bit(); // interleaved queries on the other class
            assert_eq!(a.lose_ack(), b.lose_ack());
        }
    }

    #[test]
    fn scheduled_faults_fire_once_in_order() {
        let plan = FaultPlan::nominal(0)
            .schedule(SimTime::from_us(20), FaultKind::StuckOscillator)
            .schedule(SimTime::from_us(5), FaultKind::StuckOscillator);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.due_scheduled(SimTime::from_us(1)), None);
        assert_eq!(inj.due_scheduled(SimTime::from_us(6)), Some(FaultKind::StuckOscillator));
        assert_eq!(inj.due_scheduled(SimTime::from_us(6)), None, "already fired");
        assert_eq!(inj.due_scheduled(SimTime::from_us(30)), Some(FaultKind::StuckOscillator));
        assert_eq!(inj.due_scheduled(SimTime::from_us(40)), None);
    }

    #[test]
    fn plan_validation() {
        assert!(FaultPlan::nominal(0).validate().is_ok());
        let bad =
            FaultPlan::nominal(0).with_rates(FaultRates { lost_ack: 1.5, ..FaultRates::default() });
        assert!(matches!(bad.validate(), Err(FaultPlanError::RateOutOfRange { .. })));
        let bad = FaultPlan::nominal(0).with_watchdog(WatchdogConfig {
            ack_timeout: SimDuration::ZERO,
            ..WatchdogConfig::default()
        });
        assert_eq!(bad.validate(), Err(FaultPlanError::ZeroTimeout));
        assert!(bad.validate().unwrap_err().to_string().contains("non-zero"));
    }

    #[test]
    fn zero_plan_is_zero() {
        assert!(FaultPlan::nominal(77).is_zero());
        assert!(!FaultPlan::nominal(0)
            .schedule(SimTime::ZERO, FaultKind::StuckOscillator)
            .is_zero());
        assert!(!FaultPlan::nominal(0).with_rates(FaultRates::datapath(0.1)).is_zero());
    }

    #[test]
    fn ack_backoff_doubles_and_saturates() {
        let wd = WatchdogConfig::default();
        assert_eq!(wd.ack_backoff(0), wd.ack_timeout);
        assert_eq!(wd.ack_backoff(1), wd.ack_timeout.saturating_mul(2));
        assert_eq!(wd.ack_backoff(3), wd.ack_timeout.saturating_mul(8));
        // Exponent clamps: enormous attempt counts do not overflow.
        assert_eq!(wd.ack_backoff(40), wd.ack_backoff(16));
    }

    #[test]
    fn health_report_display_and_classifiers() {
        let mut monitor = HealthMonitor::new();
        assert!(monitor.report().is_nominal());
        assert_eq!(monitor.report().to_string(), "nominal");
        monitor.lost_ack();
        monitor.ack_retry();
        monitor.ack_recovered();
        monitor.frame_slip(2);
        monitor.entered_degraded();
        let report = monitor.report();
        assert!(!report.is_nominal());
        assert_eq!(report.faults_injected(), 2, "lost ACK + frame slip");
        assert_eq!(report.events_lost(), 2);
        let text = report.to_string();
        assert!(text.contains("1 lost ACKs"), "{text}");
        assert!(text.contains("DEGRADED"), "{text}");
    }
}
