//! Spike-stream generators.
//!
//! These produce the stimulus workloads of the paper's evaluation:
//!
//! * [`PoissonGenerator`] — the rate-swept Poisson streams behind Fig. 6;
//! * [`LfsrGenerator`] — the on-FPGA LFSR pseudo-random generator the
//!   authors used to drive the power measurements of Fig. 8;
//! * [`RegularGenerator`] — deterministic fixed-interval streams for
//!   corner-case tests;
//! * [`BurstGenerator`] — a two-state Markov-modulated Poisson process
//!   approximating speech-like on/off activity.
//!
//! All generators implement [`SpikeSource`], an infinite iterator-like
//! trait, plus the [`SpikeSource::generate`] convenience that collects a
//! bounded [`SpikeTrain`].

mod burst;
mod lfsr;
mod poisson;
mod regular;

pub use burst::BurstGenerator;
pub use lfsr::{Lfsr, LfsrGenerator};
pub use poisson::PoissonGenerator;
pub use regular::RegularGenerator;

use aetr_sim::time::SimTime;

use crate::spike::{Spike, SpikeTrain};

/// An unbounded source of time-ordered spikes.
///
/// Implementors must yield spikes with non-decreasing times.
pub trait SpikeSource {
    /// Produces the next spike. `None` means the source is exhausted
    /// (infinite sources never return `None`).
    fn next_spike(&mut self) -> Option<Spike>;

    /// Collects every spike strictly before `until` into a train.
    ///
    /// The first spike at or after `until` is consumed from the source
    /// but not included; bounded experiment drivers accept that, and it
    /// keeps the trait object-safe and allocation-free for streaming
    /// use.
    fn generate(&mut self, until: SimTime) -> SpikeTrain
    where
        Self: Sized,
    {
        let mut spikes = Vec::new();
        while let Some(s) = self.next_spike() {
            if s.time >= until {
                break;
            }
            spikes.push(s);
        }
        SpikeTrain::from_sorted(spikes).expect("spike sources must be time-ordered")
    }
}

/// Adapter exposing any `SpikeSource` as an `Iterator`.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{IntoIter, RegularGenerator, SpikeSource};
/// use aetr_sim::time::SimDuration;
///
/// let gen = RegularGenerator::new(SimDuration::from_us(10), 5);
/// let first_three: Vec<_> = IntoIter(gen).take(3).collect();
/// assert_eq!(first_three.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct IntoIter<S>(pub S);

impl<S: SpikeSource> Iterator for IntoIter<S> {
    type Item = Spike;
    fn next(&mut self) -> Option<Spike> {
        self.0.next_spike()
    }
}

#[cfg(test)]
pub(crate) fn assert_time_ordered(train: &SpikeTrain) {
    for w in train.as_slice().windows(2) {
        assert!(w[1].time >= w[0].time, "generator produced out-of-order spikes");
    }
}

/// Streaming merge of two spike sources: yields whichever source's
/// next spike comes first (ties favour the first source). Infinite
/// sources stay infinite.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{MergeSource, RegularGenerator, SpikeSource};
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let a = RegularGenerator::new(SimDuration::from_us(100), 1);
/// let b = RegularGenerator::new(SimDuration::from_us(70), 2);
/// let mut merged = MergeSource::new(a, b);
/// let train = merged.generate(SimTime::from_ms(1));
/// // 9 spikes from a (100..900us) + 14 from b (70..980us).
/// assert_eq!(train.len(), 23);
/// ```
#[derive(Debug, Clone)]
pub struct MergeSource<A, B> {
    a: A,
    b: B,
    pending_a: Option<Spike>,
    pending_b: Option<Spike>,
}

impl<A: SpikeSource, B: SpikeSource> MergeSource<A, B> {
    /// Creates a merged source.
    pub fn new(mut a: A, mut b: B) -> MergeSource<A, B> {
        let pending_a = a.next_spike();
        let pending_b = b.next_spike();
        MergeSource { a, b, pending_a, pending_b }
    }
}

impl<A: SpikeSource, B: SpikeSource> SpikeSource for MergeSource<A, B> {
    fn next_spike(&mut self) -> Option<Spike> {
        match (self.pending_a, self.pending_b) {
            (Some(sa), Some(sb)) if sa.time <= sb.time => {
                self.pending_a = self.a.next_spike();
                Some(sa)
            }
            (_, Some(sb)) => {
                self.pending_b = self.b.next_spike();
                Some(sb)
            }
            (Some(sa), None) => {
                self.pending_a = self.a.next_spike();
                Some(sa)
            }
            (None, None) => None,
        }
    }
}

/// A finite source replaying a recorded [`SpikeTrain`] — e.g. an AEDAT
/// file, or a sensor capture reused as a stimulus.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{ReplaySource, SpikeSource};
/// use aetr_aer::spike::SpikeTrain;
/// use aetr_sim::time::SimTime;
///
/// let mut source = ReplaySource::new(SpikeTrain::new());
/// assert_eq!(source.next_spike(), None);
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    spikes: std::vec::IntoIter<Spike>,
}

impl ReplaySource {
    /// Creates a source replaying `train` once.
    pub fn new(train: SpikeTrain) -> ReplaySource {
        ReplaySource { spikes: train.into_inner().into_iter() }
    }
}

impl SpikeSource for ReplaySource {
    fn next_spike(&mut self) -> Option<Spike> {
        self.spikes.next()
    }
}

#[cfg(test)]
mod combinator_tests {
    use super::*;
    use aetr_sim::time::SimDuration;

    #[test]
    fn merge_interleaves_in_time_order() {
        let a = RegularGenerator::new(SimDuration::from_us(100), 1);
        let b = RegularGenerator::new(SimDuration::from_us(60), 4);
        let mut merged = MergeSource::new(a, b);
        let train = merged.generate(SimTime::from_ms(1));
        assert_time_ordered(&train);
        // b at 60..960 (16 spikes), a at 100..900 (9 spikes).
        assert_eq!(train.len(), 25);
    }

    #[test]
    fn merge_survives_one_exhausted_side() {
        let a = ReplaySource::new(
            RegularGenerator::new(SimDuration::from_us(10), 1).generate(SimTime::from_us(35)),
        );
        let b = RegularGenerator::new(SimDuration::from_us(50), 2);
        let mut merged = MergeSource::new(a, b);
        let train = merged.generate(SimTime::from_us(201));
        // a: 10,20,30 then exhausted; b: 50,100,150,200.
        assert_eq!(train.len(), 7);
        assert_time_ordered(&train);
    }

    #[test]
    fn replay_reproduces_the_train_exactly() {
        let original =
            RegularGenerator::new(SimDuration::from_us(25), 8).generate(SimTime::from_ms(1));
        let mut source = ReplaySource::new(original.clone());
        let replayed = source.generate(SimTime::from_ms(2));
        assert_eq!(replayed, original);
        assert_eq!(source.next_spike(), None, "replay is one-shot");
    }

    #[test]
    fn merge_tie_prefers_first_source() {
        let a = ReplaySource::new(
            RegularGenerator::new(SimDuration::from_us(10), 1).generate(SimTime::from_us(11)),
        );
        let b = ReplaySource::new(
            RegularGenerator::new(SimDuration::from_us(10), 4).generate(SimTime::from_us(11)),
        );
        let mut merged = MergeSource::new(a, b);
        let first = merged.next_spike().unwrap();
        assert_eq!(first.addr.value(), 0, "source a wins the tie");
    }
}
