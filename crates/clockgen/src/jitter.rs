//! Ring-oscillator jitter model.
//!
//! A free-running ring oscillator is a noisy clock source: each period
//! deviates from nominal by a random amount (white period jitter) and
//! the deviations accumulate between resets (the random-walk phase
//! error that makes long RO-timed intervals less precise than short
//! ones). The paper's accuracy analysis assumes "a perfect clock with
//! constant frequency" (§5.1); this model quantifies what real jitter
//! would add — a robustness analysis the paper leaves implicit.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use aetr_sim::time::SimDuration;

/// Jitter parameters of the oscillator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JitterConfig {
    /// RMS period jitter as a fraction of the nominal period
    /// (typical FPGA-fabric ring oscillators: 0.5–2 %).
    pub period_rms: f64,
}

impl JitterConfig {
    /// A realistic IGLOO-nano fabric oscillator: 1 % RMS period jitter.
    pub fn igloo_nano() -> JitterConfig {
        JitterConfig { period_rms: 0.01 }
    }

    /// A perfect clock (the paper's §5.1 assumption).
    pub fn ideal() -> JitterConfig {
        JitterConfig { period_rms: 0.0 }
    }
}

impl Default for JitterConfig {
    fn default() -> Self {
        Self::igloo_nano()
    }
}

/// A jittered clock: produces successive periods around the nominal,
/// with independent Gaussian deviations per cycle (accumulating into
/// random-walk phase error, as in a real free-running oscillator).
///
/// # Examples
///
/// ```
/// use aetr_clockgen::jitter::{JitterConfig, JitteredClock};
/// use aetr_sim::time::SimDuration;
///
/// let mut clock = JitteredClock::new(SimDuration::from_ns(33), JitterConfig::igloo_nano(), 1);
/// let p = clock.next_period();
/// let rel = (p.as_ps() as f64 - 33_000.0).abs() / 33_000.0;
/// assert!(rel < 0.1, "one period stays near nominal");
/// ```
#[derive(Debug, Clone)]
pub struct JitteredClock {
    nominal: SimDuration,
    config: JitterConfig,
    rng: StdRng,
    /// Accumulated phase error in picoseconds (diagnostics).
    phase_error_ps: i64,
}

impl JitteredClock {
    /// Creates a jittered clock with the given nominal period.
    ///
    /// # Panics
    ///
    /// Panics on a zero nominal period or a negative/non-finite RMS.
    pub fn new(nominal: SimDuration, config: JitterConfig, seed: u64) -> JitteredClock {
        assert!(!nominal.is_zero(), "nominal period must be non-zero");
        assert!(
            config.period_rms.is_finite() && config.period_rms >= 0.0,
            "period_rms must be non-negative and finite"
        );
        JitteredClock { nominal, config, rng: StdRng::seed_from_u64(seed), phase_error_ps: 0 }
    }

    /// Standard Gaussian sample (Box–Muller; two uniforms per call,
    /// one output used — simple and dependency-free).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
        let u2: f64 = self.rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// The next clock period: nominal plus Gaussian deviation, clamped
    /// at half the nominal so a tail sample cannot produce a
    /// non-physical (near-zero) period.
    pub fn next_period(&mut self) -> SimDuration {
        if self.config.period_rms == 0.0 {
            return self.nominal;
        }
        let sigma_ps = self.nominal.as_ps() as f64 * self.config.period_rms;
        let dev = (self.gaussian() * sigma_ps)
            .clamp(-(self.nominal.as_ps() as f64) / 2.0, self.nominal.as_ps() as f64 / 2.0);
        self.phase_error_ps += dev.round() as i64;
        SimDuration::from_ps((self.nominal.as_ps() as i64 + dev.round() as i64) as u64)
    }

    /// Accumulated phase error since construction (random walk).
    pub fn phase_error(&self) -> i64 {
        self.phase_error_ps
    }

    /// The nominal period.
    pub fn nominal(&self) -> SimDuration {
        self.nominal
    }
}

/// Measures the additional timestamp error jitter introduces for an
/// interval of `n_ticks` nominal periods: returns the RMS of the
/// relative interval error over `trials` (for a random-walk clock the
/// expected value is `period_rms / sqrt(n_ticks)` — long intervals
/// average the noise down, which is why the paper can ignore it).
pub fn interval_error_rms(
    nominal: SimDuration,
    config: JitterConfig,
    n_ticks: u64,
    trials: u32,
    seed: u64,
) -> f64 {
    assert!(n_ticks > 0, "need at least one tick");
    assert!(trials > 0, "need at least one trial");
    let expected = nominal.as_ps() as f64 * n_ticks as f64;
    let mut sum_sq = 0.0;
    for t in 0..trials {
        let mut clock = JitteredClock::new(nominal, config, seed.wrapping_add(t as u64));
        let total: u64 = (0..n_ticks).map(|_| clock.next_period().as_ps()).sum();
        let rel = (total as f64 - expected) / expected;
        sum_sq += rel * rel;
    }
    (sum_sq / trials as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> SimDuration {
        SimDuration::from_ns(66)
    }

    #[test]
    fn ideal_config_is_exact() {
        let mut clock = JitteredClock::new(nominal(), JitterConfig::ideal(), 0);
        for _ in 0..100 {
            assert_eq!(clock.next_period(), nominal());
        }
        assert_eq!(clock.phase_error(), 0);
    }

    #[test]
    fn period_rms_matches_configuration() {
        let cfg = JitterConfig { period_rms: 0.02 };
        let mut clock = JitteredClock::new(nominal(), cfg, 7);
        let n = 20_000;
        let periods: Vec<f64> = (0..n).map(|_| clock.next_period().as_ps() as f64).collect();
        let mean = periods.iter().sum::<f64>() / n as f64;
        let var = periods.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / n as f64;
        let measured_rms = var.sqrt() / nominal().as_ps() as f64;
        assert!(
            (measured_rms - 0.02).abs() < 0.002,
            "measured RMS {measured_rms} vs configured 0.02"
        );
        // Mean stays at nominal.
        assert!((mean - nominal().as_ps() as f64).abs() / mean < 0.001);
    }

    #[test]
    fn interval_error_averages_down_with_length() {
        let cfg = JitterConfig::igloo_nano();
        let short = interval_error_rms(nominal(), cfg, 4, 300, 1);
        let long = interval_error_rms(nominal(), cfg, 400, 300, 1);
        // Random walk: relative error ~ rms/sqrt(n).
        assert!(long < short / 5.0, "short {short}, long {long}");
        let predicted = 0.01 / (400f64).sqrt();
        assert!((long - predicted).abs() / predicted < 0.35, "long {long} vs {predicted}");
    }

    #[test]
    fn jitter_is_negligible_next_to_quantization() {
        // The design insight the paper relies on: at θ=64, quantization
        // error is ~1/(2θ) ≈ 0.8%, while 1% period jitter over even 16
        // ticks is 0.25% — and shrinking. Jitter never dominates.
        let cfg = JitterConfig::igloo_nano();
        let quantization_floor = 1.0 / (2.0 * 64.0);
        for n_ticks in [16u64, 64, 256] {
            let jitter_err = interval_error_rms(nominal(), cfg, n_ticks, 200, 3);
            assert!(
                jitter_err < quantization_floor,
                "jitter {jitter_err} exceeds quantization floor at {n_ticks} ticks"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = JitteredClock::new(nominal(), JitterConfig::igloo_nano(), 9);
        let mut b = JitteredClock::new(nominal(), JitterConfig::igloo_nano(), 9);
        for _ in 0..100 {
            assert_eq!(a.next_period(), b.next_period());
        }
    }

    #[test]
    fn periods_are_always_physical() {
        let cfg = JitterConfig { period_rms: 0.4 }; // absurdly noisy
        let mut clock = JitteredClock::new(nominal(), cfg, 11);
        for _ in 0..10_000 {
            let p = clock.next_period();
            assert!(p >= nominal() / 2 && p <= nominal() + nominal() / 2);
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_nominal_panics() {
        let _ = JitteredClock::new(SimDuration::ZERO, JitterConfig::ideal(), 0);
    }
}
