//! Bursty (Markov-modulated Poisson) spike generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use aetr_sim::time::{SimDuration, SimTime};

use crate::address::Address;
use crate::spike::Spike;

use super::SpikeSource;

/// A two-state Markov-modulated Poisson process: the source alternates
/// between a *burst* state with rate `burst_rate_hz` and an *idle*
/// state with rate `idle_rate_hz`, with exponentially distributed
/// sojourn times.
///
/// This approximates the on/off envelope of speech driving the silicon
/// cochlea in Fig. 7a — high-rate bursts (syllables) separated by
/// near-silence — and is the stress workload for the clock
/// start/stop path: every burst onset exercises the ring-oscillator
/// wake-up.
///
/// # Examples
///
/// ```
/// use aetr_aer::generator::{BurstGenerator, SpikeSource};
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// let mut gen = BurstGenerator::new(200_000.0, 100.0, SimDuration::from_ms(50),
///                                   SimDuration::from_ms(150), 64, 1);
/// let train = gen.generate(SimTime::from_secs(1));
/// assert!(!train.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct BurstGenerator {
    burst_rate_hz: f64,
    idle_rate_hz: f64,
    mean_burst: SimDuration,
    mean_idle: SimDuration,
    num_addresses: u16,
    rng: StdRng,
    now: SimTime,
    in_burst: bool,
    state_ends: SimTime,
}

impl BurstGenerator {
    /// Creates a bursty generator.
    ///
    /// * `burst_rate_hz` / `idle_rate_hz` — Poisson rates in the two
    ///   states (idle may be 0 for true silence);
    /// * `mean_burst` / `mean_idle` — mean sojourn times;
    /// * `num_addresses` — uniform address range;
    /// * `seed` — RNG seed for reproducibility.
    ///
    /// # Panics
    ///
    /// Panics if `burst_rate_hz` is not strictly positive/finite, if
    /// `idle_rate_hz` is negative or not finite, if either mean sojourn
    /// is zero, or if `num_addresses` is out of the 10-bit range.
    pub fn new(
        burst_rate_hz: f64,
        idle_rate_hz: f64,
        mean_burst: SimDuration,
        mean_idle: SimDuration,
        num_addresses: u16,
        seed: u64,
    ) -> BurstGenerator {
        assert!(
            burst_rate_hz.is_finite() && burst_rate_hz > 0.0,
            "burst rate must be positive and finite, got {burst_rate_hz}"
        );
        assert!(
            idle_rate_hz.is_finite() && idle_rate_hz >= 0.0,
            "idle rate must be non-negative and finite, got {idle_rate_hz}"
        );
        assert!(!mean_burst.is_zero() && !mean_idle.is_zero(), "sojourn means must be non-zero");
        assert!(
            (1..=crate::address::MAX_ADDRESS + 1).contains(&num_addresses),
            "num_addresses must be 1..=1024, got {num_addresses}"
        );
        let mut gen = BurstGenerator {
            burst_rate_hz,
            idle_rate_hz,
            mean_burst,
            mean_idle,
            num_addresses,
            rng: StdRng::seed_from_u64(seed),
            now: SimTime::ZERO,
            in_burst: false,
            state_ends: SimTime::ZERO,
        };
        gen.enter_state(true); // start in a burst so the stream opens with activity
        gen
    }

    fn exponential(&mut self, mean_secs: f64) -> f64 {
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        -u.ln() * mean_secs
    }

    fn enter_state(&mut self, burst: bool) {
        self.in_burst = burst;
        let mean = if burst { self.mean_burst } else { self.mean_idle };
        let sojourn = self.exponential(mean.as_secs_f64()).max(1e-12);
        self.state_ends = self.now.saturating_add(SimDuration::from_secs_f64(sojourn));
    }

    /// Mean steady-state rate implied by the configuration (for test
    /// oracles and workload reports).
    pub fn expected_rate_hz(&self) -> f64 {
        let tb = self.mean_burst.as_secs_f64();
        let ti = self.mean_idle.as_secs_f64();
        (self.burst_rate_hz * tb + self.idle_rate_hz * ti) / (tb + ti)
    }
}

impl SpikeSource for BurstGenerator {
    fn next_spike(&mut self) -> Option<Spike> {
        loop {
            let rate = if self.in_burst { self.burst_rate_hz } else { self.idle_rate_hz };
            if rate <= 0.0 {
                // Silent state: jump straight to the state's end.
                self.now = self.state_ends;
                self.enter_state(!self.in_burst);
                continue;
            }
            let dt = SimDuration::from_secs_f64(self.exponential(1.0 / rate).max(1e-12));
            let candidate = self.now.saturating_add(dt);
            if candidate >= self.state_ends {
                // State flips before the candidate spike: re-draw in the
                // next state (memorylessness makes this exact).
                self.now = self.state_ends;
                self.enter_state(!self.in_burst);
                continue;
            }
            self.now = candidate;
            let addr = Address::new(self.rng.gen_range(0..self.num_addresses))
                .expect("range validated at construction");
            return Some(Spike::new(self.now, addr));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::assert_time_ordered;
    use super::*;

    fn speechy(seed: u64) -> BurstGenerator {
        BurstGenerator::new(
            300_000.0,
            500.0,
            SimDuration::from_ms(80),
            SimDuration::from_ms(220),
            64,
            seed,
        )
    }

    #[test]
    fn produces_ordered_reproducible_streams() {
        let a = speechy(5).generate(SimTime::from_secs(1));
        let b = speechy(5).generate(SimTime::from_secs(1));
        assert_eq!(a, b);
        assert_time_ordered(&a);
        assert!(a.len() > 1_000);
    }

    #[test]
    fn long_run_rate_matches_expected() {
        let gen = speechy(13);
        let expected = gen.expected_rate_hz();
        let train = { speechy(13).generate(SimTime::from_secs(20)) };
        let measured = train.mean_rate();
        let rel = (measured - expected).abs() / expected;
        assert!(rel < 0.15, "expected ~{expected}, measured {measured}");
    }

    #[test]
    fn stream_is_actually_bursty() {
        // The squared coefficient of variation of ISIs for an MMPP with
        // widely separated rates is well above 1 (Poisson).
        let train = speechy(21).generate(SimTime::from_secs(5));
        let isis: Vec<f64> = train.inter_spike_intervals().map(|d| d.as_secs_f64()).collect();
        let n = isis.len() as f64;
        let mean = isis.iter().sum::<f64>() / n;
        let var = isis.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let cv2 = var / (mean * mean);
        assert!(cv2 > 2.0, "expected bursty ISIs (CV^2 > 2), got {cv2}");
    }

    #[test]
    fn silent_idle_state_produces_gaps() {
        let mut gen = BurstGenerator::new(
            100_000.0,
            0.0,
            SimDuration::from_ms(10),
            SimDuration::from_ms(100),
            4,
            3,
        );
        let train = gen.generate(SimTime::from_secs(2));
        let max_gap = train.inter_spike_intervals().max().unwrap_or(SimDuration::ZERO);
        assert!(
            max_gap > SimDuration::from_ms(40),
            "expected silence gaps of ~100 ms, max gap {max_gap}"
        );
    }

    #[test]
    #[should_panic(expected = "sojourn")]
    fn zero_sojourn_panics() {
        let _ = BurstGenerator::new(1_000.0, 0.0, SimDuration::ZERO, SimDuration::from_ms(1), 4, 0);
    }
}
