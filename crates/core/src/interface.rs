//! The full AER-to-I2S interface, simulated at the discrete-event
//! level.
//!
//! This assembles every block of Fig. 3 around the deterministic event
//! queue of [`aetr_sim`]: the sensor-side 4-phase
//! [handshake](aetr_aer::handshake), the 2-FF [front end](crate::front_end),
//! the cycle-accurate sampling [FSM](aetr_clockgen::fsm) clocked by the
//! pausable ring oscillator, the AETR [FIFO](crate::fifo) with
//! watermark batching, the [I2S transmitter](crate::i2s) and the
//! [configuration registers](crate::config_bus). Clock activity is
//! narrated to a [`PowerMeter`] so the DES power agrees with the
//! behavioral engine by construction.
//!
//! Use the behavioral [`quantizer`](crate::quantizer) for long sweeps;
//! use this for architectural effects (handshake backpressure, FIFO
//! overflow, I2S saturation, wake latency) and validation.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_aer::handshake::{HandshakeLog, HandshakeSender, HandshakeTiming};
use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_clockgen::config::{ClockGenConfig, ClockGenConfigError};
use aetr_clockgen::fsm::{CaptureContext, FsmAction, IdleBoundary, IdleSegment, SamplerFsm};
use aetr_faults::{
    FaultInjector, FaultKind, FaultPlan, HealthMonitor, InterfaceHealthReport, WatchdogConfig,
};
use aetr_power::meter::PowerMeter;
use aetr_power::model::{ActivityInput, PowerModel, PowerReport};
use aetr_sim::queue::EventQueue;
use aetr_sim::time::{SimDuration, SimTime};
use aetr_telemetry::lineage::{Capture, DropCause, EventLineage};
use aetr_telemetry::registry::{CounterId, GaugeId, HistogramId};
use aetr_telemetry::span::{OpenSpan, SpanKind};
pub use aetr_telemetry::{Telemetry, TelemetryConfig, TelemetrySnapshot};

use crate::aetr_format::{AetrEvent, Timestamp};
use crate::config_bus::RegisterFile;
use crate::crossbar::{Crossbar, SinkPort, SourcePort};
use crate::fifo::{AetrFifo, FifoConfig, FifoStats, PushOutcome};
use crate::front_end::{FrontEndConfig, InputMonitor};
use crate::i2s::{I2sConfig, I2sStream, I2sTransmitter};

/// Full interface configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterfaceConfig {
    /// Clock generator (ring oscillator, `θ_div`, `N_div`, policy).
    pub clock: ClockGenConfig,
    /// Sensor-side handshake timing.
    pub handshake: HandshakeTiming,
    /// Input-monitor synchroniser.
    pub front_end: FrontEndConfig,
    /// AETR buffer.
    pub fifo: FifoConfig,
    /// Output carrier.
    pub i2s: I2sConfig,
}

impl InterfaceConfig {
    /// The measured prototype: θ=64, N=3 recursive clocking, 2-FF
    /// synchroniser, 9.2 kB FIFO, 15 MHz I2S.
    pub fn prototype() -> InterfaceConfig {
        InterfaceConfig {
            clock: ClockGenConfig::prototype(),
            handshake: HandshakeTiming::default(),
            front_end: FrontEndConfig::prototype(),
            fifo: FifoConfig::prototype(),
            i2s: I2sConfig::prototype(),
        }
    }

    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns [`InterfaceConfigError`] for an invalid clock tree or a
    /// FIFO watermark that cannot fit.
    pub fn validate(&self) -> Result<(), InterfaceConfigError> {
        self.clock.validate().map_err(InterfaceConfigError::Clock)?;
        if self.fifo.capacity_events() == 0 || self.fifo.watermark > self.fifo.capacity_events() {
            return Err(InterfaceConfigError::Fifo {
                watermark: self.fifo.watermark,
                capacity: self.fifo.capacity_events(),
            });
        }
        Ok(())
    }
}

impl Default for InterfaceConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

/// Composite configuration errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InterfaceConfigError {
    /// Clock generator misconfiguration.
    Clock(ClockGenConfigError),
    /// FIFO watermark/capacity mismatch.
    Fifo {
        /// Configured watermark (events).
        watermark: usize,
        /// Capacity (events).
        capacity: usize,
    },
}

impl fmt::Display for InterfaceConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceConfigError::Clock(e) => write!(f, "clock generator: {e}"),
            InterfaceConfigError::Fifo { watermark, capacity } => {
                write!(f, "FIFO watermark {watermark} does not fit capacity {capacity} events")
            }
        }
    }
}

impl Error for InterfaceConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InterfaceConfigError::Clock(e) => Some(e),
            InterfaceConfigError::Fifo { .. } => None,
        }
    }
}

/// One event as it left the interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimestampedEvent {
    /// When the sensor asserted `REQ`.
    pub request: SimTime,
    /// When the sampling clock captured it.
    pub detection: SimTime,
    /// The AETR event.
    pub event: AetrEvent,
}

/// Everything a simulation run produces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterfaceReport {
    /// Events in capture order.
    pub events: Vec<TimestampedEvent>,
    /// Completed handshakes (verify with
    /// [`verify_protocol`](HandshakeLog::verify_protocol) /
    /// [`verify_caviar`](HandshakeLog::verify_caviar)).
    pub handshake: HandshakeLog,
    /// FIFO occupancy/loss statistics.
    pub fifo_stats: FifoStats,
    /// The transmitted I2S stream.
    pub i2s: I2sStream,
    /// Integrated clock activity.
    pub activity: ActivityInput,
    /// Power evaluated from the activity.
    pub power: PowerReport,
    /// Ring-oscillator wake count.
    pub wake_count: u64,
    /// Fault and recovery counters (all-zero in a fault-free run).
    pub health: InterfaceHealthReport,
    /// Telemetry captured during the run
    /// ([empty](TelemetrySnapshot::is_empty) unless the run was started
    /// through [`run_with_telemetry`](AerToI2sInterface::run_with_telemetry)
    /// with an enabled config).
    pub telemetry: TelemetrySnapshot,
}

/// How the runner advances the sampling-clock tick chain.
///
/// Both engines produce **bit-identical** [`InterfaceReport`]s (pinned
/// by a differential property test); they differ only in wall-clock
/// cost. The non-default engine exists as the reference model the
/// fast-forward is continuously tested against — enable the
/// `per-tick-reference` cargo feature to flip the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimEngine {
    /// Analytic idle fast-forward (the default): when no request, ACK
    /// recovery, wake, or scheduled fault is in flight, the quiet tick
    /// chain up to the next queue event is advanced in O(`N_div`)
    /// closed-form segments instead of one DES event per clock edge,
    /// making simulation cost proportional to *events*, not horizon.
    EventProportional,
    /// One DES event per sampling-clock edge — the cycle-by-cycle
    /// reference model.
    PerTickReference,
}

impl Default for SimEngine {
    fn default() -> Self {
        if cfg!(feature = "per-tick-reference") {
            SimEngine::PerTickReference
        } else {
            SimEngine::EventProportional
        }
    }
}

/// Scheduled DES events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// Sensor raises `REQ`.
    ReqRise,
    /// Sampling clock edge.
    Tick,
    /// Ring oscillator finished waking; first tick follows.
    WakeDone,
    /// I2S frame transmission completed.
    FrameDone,
    /// A host SPI register write (index into the reconfig list).
    SpiWrite(usize),
    /// Watchdog re-drives `ACK` after a lost edge (attempt number).
    AckRetry(u32),
    /// Watchdog re-checks a wake the oscillator may have missed
    /// (attempt number).
    WakeCheck(u32),
}

/// The assembled interface.
///
/// # Examples
///
/// ```
/// use aetr::interface::{AerToI2sInterface, InterfaceConfig};
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let interface = AerToI2sInterface::new(InterfaceConfig::prototype())?;
/// let train = PoissonGenerator::new(50_000.0, 64, 7).generate(SimTime::from_ms(5));
/// let report = interface.run(&train, SimTime::from_ms(5));
/// report.handshake.verify_protocol()?;
/// assert!(!report.events.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AerToI2sInterface {
    config: InterfaceConfig,
    power_model: PowerModel,
    engine: SimEngine,
}

impl AerToI2sInterface {
    /// Creates an interface with the default IGLOO-nano power model.
    ///
    /// # Errors
    ///
    /// Returns [`InterfaceConfigError`] if the configuration does not
    /// validate.
    pub fn new(config: InterfaceConfig) -> Result<AerToI2sInterface, InterfaceConfigError> {
        config.validate()?;
        Ok(AerToI2sInterface {
            config,
            power_model: PowerModel::igloo_nano(),
            engine: SimEngine::default(),
        })
    }

    /// Replaces the power model (e.g. a re-calibrated one).
    pub fn with_power_model(mut self, model: PowerModel) -> AerToI2sInterface {
        self.power_model = model;
        self
    }

    /// Selects the simulation engine (see [`SimEngine`]); reports are
    /// bit-identical either way.
    pub fn with_engine(mut self, engine: SimEngine) -> AerToI2sInterface {
        self.engine = engine;
        self
    }

    /// The selected simulation engine.
    pub fn engine(&self) -> SimEngine {
        self.engine
    }

    /// The configuration.
    pub fn config(&self) -> &InterfaceConfig {
        &self.config
    }

    /// Runs the interface over `train` until all events complete and
    /// `horizon` is reached (power is integrated over `[0, horizon]`
    /// or to the last activity, whichever is later).
    ///
    /// The train is borrowed, not consumed: replay is zero-copy, so the
    /// same stimulus can drive many runs (benches, campaigns, sweeps)
    /// without cloning event storage.
    pub fn run(&self, train: &SpikeTrain, horizon: SimTime) -> InterfaceReport {
        self.run_with_telemetry(
            train,
            horizon,
            &FaultPlan::nominal(0),
            &TelemetryConfig::disabled(),
        )
    }

    /// Like [`run`](Self::run), over a raw event slice — the
    /// event-iterator entry point for callers that hold spikes outside
    /// a [`SpikeTrain`] (e.g. a decoded AEDAT capture).
    ///
    /// `spikes` must be sorted by time, the invariant [`SpikeTrain`]
    /// guarantees structurally; it is debug-asserted here.
    pub fn run_events(&self, spikes: &[Spike], horizon: SimTime) -> InterfaceReport {
        Runner::new(
            &self.config,
            &self.power_model,
            spikes,
            horizon,
            &FaultPlan::nominal(0),
            &TelemetryConfig::disabled(),
            self.engine,
        )
        .run()
    }

    /// Like [`run`](Self::run), with faults injected per `plan` and
    /// the watchdog/degraded-mode recovery machinery armed.
    ///
    /// A plan whose rates are all zero and whose schedule is empty
    /// produces a report bit-identical to [`run`](Self::run) — the
    /// injector never consumes a random draw, so fault support is
    /// provably free when disabled.
    ///
    /// # Panics
    ///
    /// Panics if `plan` does not validate
    /// ([`FaultPlan::validate`]).
    pub fn run_with_faults(
        &self,
        train: &SpikeTrain,
        horizon: SimTime,
        plan: &FaultPlan,
    ) -> InterfaceReport {
        self.run_with_telemetry(train, horizon, plan, &TelemetryConfig::disabled())
    }

    /// Like [`run_with_faults`](Self::run_with_faults), with telemetry
    /// collection per `telemetry`.
    ///
    /// Telemetry is purely observational: with any config — including a
    /// fully enabled one — every functional field of the returned
    /// report (events, handshakes, FIFO statistics, I2S stream,
    /// activity, power, wakes, health) is bit-identical to what
    /// [`run`](Self::run) produces, because the collector schedules no
    /// queue events and mutates no simulation state. A disabled config
    /// is a no-op sink and yields [`TelemetrySnapshot::empty`].
    pub fn run_with_telemetry(
        &self,
        train: &SpikeTrain,
        horizon: SimTime,
        plan: &FaultPlan,
        telemetry: &TelemetryConfig,
    ) -> InterfaceReport {
        Runner::new(
            &self.config,
            &self.power_model,
            train.as_slice(),
            horizon,
            plan,
            telemetry,
            self.engine,
        )
        .run()
    }

    /// Like [`run`](Self::run), with SPI register writes applied at
    /// scheduled times mid-flight — the paper's runtime
    /// reconfiguration path. Invalid writes are rejected exactly as
    /// the register file rejects them (and silently skipped here, as a
    /// real host would observe on its SPI status).
    ///
    /// Writes must be given in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `writes` is not time-sorted.
    pub fn run_with_reconfig(
        &self,
        train: &SpikeTrain,
        horizon: SimTime,
        writes: &[(SimTime, crate::config_bus::Register, u32)],
    ) -> InterfaceReport {
        assert!(
            writes.windows(2).all(|w| w[1].0 >= w[0].0),
            "reconfiguration writes must be time-sorted"
        );
        let mut runner = Runner::new(
            &self.config,
            &self.power_model,
            train.as_slice(),
            horizon,
            &FaultPlan::nominal(0),
            &TelemetryConfig::disabled(),
            self.engine,
        );
        runner.schedule_reconfigs(writes);
        runner.run()
    }
}

/// Per-event lineage bookkeeping (DESIGN.md §14), active only when
/// [`TelemetryConfig::lineage_enabled`]. Pure observation: nothing here
/// feeds back into the simulation, so enabling it cannot perturb the
/// report — and the fast-forward engine needs no hooks at all, because
/// every field below is written on a per-event code path shared by both
/// engines (quiet stretches have no captures, wakes, handshakes, FIFO
/// or I2S activity by the `idle_at` precondition).
struct LineageState {
    log: aetr_telemetry::lineage::LineageLog,
    /// Capture indices of the events currently buffered, in FIFO
    /// order — a shadow of `AetrFifo`'s queue, so pops can be matched
    /// back to their records.
    fifo_mirror: VecDeque<u32>,
    /// An oscillator wake is in flight, started at this instant.
    wake_started: Option<SimTime>,
    /// The last completed wake `(started, done)`, pending attribution
    /// to the woken event's capture.
    wake_done: Option<(SimTime, SimTime)>,
    /// Capture index of the event whose handshake has not seen its
    /// `ACK` rise yet.
    awaiting_ack: Option<u32>,
    /// Previous event's arrival (`t = 0` before the first), the origin
    /// of the measured inter-event interval.
    prev_arrival: SimTime,
    /// Arrival → end-of-I2S-frame latency distribution.
    e2e_latency: HistogramId,
}

/// Telemetry state of a run: the collector plus pre-registered metric
/// handles and open-span bookkeeping.
///
/// Boxed behind an `Option` in the [`Runner`]: a disabled run carries
/// `None`, so every instrumentation site is a single pointer test and
/// the hot path does no metric-name lookup ever — handles are resolved
/// once here (DESIGN.md §11's "lock-free on the hot path" contract).
struct TelState {
    tel: Telemetry,
    // Counters (names mirror the tracer scopes).
    events_captured: CounterId,
    divisions: CounterId,
    wakes: CounterId,
    shutdowns: CounterId,
    fifo_pushed: CounterId,
    fifo_dropped: CounterId,
    handshakes: CounterId,
    i2s_frames: CounterId,
    // Gauges / histograms.
    fifo_occupancy: GaugeId,
    fifo_depth: HistogramId,
    capture_latency: HistogramId,
    // Clock-generator residency: the currently open interval.
    clock_since: SimTime,
    clock_state: &'static str,
    clock_arg: Option<u64>,
    // Open spans (at most one of each kind is in flight by protocol).
    handshake_open: Option<OpenSpan>,
    wake_open: Option<OpenSpan>,
    ack_recovery_open: Option<OpenSpan>,
    wake_recovery_open: Option<OpenSpan>,
    // Next due time of the live sampler (`None` = sampling off).
    next_sample: Option<SimTime>,
    // Per-event lineage bookkeeping (`None` unless requested).
    lineage: Option<LineageState>,
}

impl TelState {
    /// Builds a collector for an enabled config; `None` for a disabled
    /// one (the whole telemetry path then disappears behind one branch).
    fn new(config: &TelemetryConfig) -> Option<Box<TelState>> {
        if !config.enabled {
            return None;
        }
        let mut tel = Telemetry::new(*config);
        let m = &mut tel.metrics;
        let events_captured = m.counter("interface.events.captured");
        let divisions = m.counter("interface.clockgen.divisions");
        let wakes = m.counter("interface.clockgen.wakes");
        let shutdowns = m.counter("interface.clockgen.shutdowns");
        let fifo_pushed = m.counter("interface.fifo.pushed");
        let fifo_dropped = m.counter("interface.fifo.dropped");
        let handshakes = m.counter("interface.handshake.completed");
        let i2s_frames = m.counter("interface.i2s.frames");
        let fifo_occupancy = m.gauge("interface.fifo.occupancy");
        // Depth buckets up to the prototype's 2304-event capacity.
        let fifo_depth =
            m.histogram("interface.fifo.depth", vec![1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0]);
        // REQ-to-capture latency; base tick is 66.7 ns, saturation
        // pushes sparse events to milliseconds.
        let capture_latency = m.histogram(
            "interface.handshake.capture_latency_ns",
            vec![100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0],
        );
        let lineage = config.lineage_enabled().then(|| LineageState {
            log: aetr_telemetry::lineage::LineageLog::new(),
            fifo_mirror: VecDeque::new(),
            wake_started: None,
            wake_done: None,
            awaiting_ack: None,
            prev_arrival: SimTime::ZERO,
            // Arrival → wire latency: a drained frame takes ~4.3 µs on
            // the 15 MHz link, watermark batching stretches to ms.
            e2e_latency: m.histogram(
                "interface.lineage.e2e_latency_ns",
                vec![1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9],
            ),
        });
        let next_sample = tel.sample_cadence().map(|c| SimTime::ZERO + c);
        Some(Box::new(TelState {
            tel,
            events_captured,
            divisions,
            wakes,
            shutdowns,
            fifo_pushed,
            fifo_dropped,
            handshakes,
            i2s_frames,
            fifo_occupancy,
            fifo_depth,
            capture_latency,
            clock_since: SimTime::ZERO,
            clock_state: "full-rate",
            clock_arg: Some(1),
            handshake_open: None,
            wake_open: None,
            ack_recovery_open: None,
            wake_recovery_open: None,
            next_sample,
            lineage,
        }))
    }

    /// Closes the current clock-residency interval at `t` and opens a
    /// new one, unless the state is unchanged.
    fn clock_transition(&mut self, t: SimTime, state: &'static str, arg: Option<u64>) {
        if self.clock_state == state && self.clock_arg == arg {
            return;
        }
        self.tel.spans.record(
            SpanKind::ClockState,
            self.clock_state,
            self.clock_since,
            t,
            self.clock_arg,
        );
        self.clock_since = t;
        self.clock_state = state;
        self.clock_arg = arg;
    }

    /// Lineage: attributes one transmitted frame's `pair` events to
    /// their records — FIFO dequeue and I2S window, the frame-slip loss
    /// cause when the receiver dropped the frame, and the end-to-end
    /// latency observation for delivered events. No-op without lineage.
    fn record_transmission(&mut self, pair: u64, start: SimTime, done: SimTime, slipped: bool) {
        let Some(ls) = self.lineage.as_mut() else { return };
        for _ in 0..pair {
            let Some(idx) = ls.fifo_mirror.pop_front() else { break };
            let Some(r) = ls.log.get_mut(idx) else { continue };
            r.set_transmitted(start, done);
            if slipped {
                r.drop_cause = DropCause::FrameSlip;
            } else {
                let e2e_ns = done.saturating_duration_since(r.arrival).as_ns() as f64;
                self.tel.metrics.observe(ls.e2e_latency, e2e_ns);
            }
        }
    }

    /// Finalises the collector: closes the last residency interval at
    /// `end`, folds the health counters into the registry under their
    /// shared `interface.health.*` names, and snapshots.
    fn finish(
        mut self,
        end: SimTime,
        health: &InterfaceHealthReport,
        queue_ops: u64,
    ) -> TelemetrySnapshot {
        self.tel.spans.record(
            SpanKind::ClockState,
            self.clock_state,
            self.clock_since,
            end,
            self.clock_arg,
        );
        for (name, value) in health.metrics() {
            let id = self.tel.metrics.counter(name);
            self.tel.metrics.inc(id, value);
        }
        if let Some(ls) = self.lineage.take() {
            self.tel.lineage = ls.log;
        }
        let sim_events = self.tel.metrics.counter_value(self.events_captured);
        self.tel.into_snapshot(sim_events, queue_ops)
    }
}

/// Internal mutable simulation state.
struct Runner<'a> {
    cfg: &'a InterfaceConfig,
    power_model: &'a PowerModel,
    horizon: SimTime,
    base: SimDuration,

    queue: EventQueue<Ev>,
    sender: HandshakeSender<'a>,
    monitor: InputMonitor,
    fsm: SamplerFsm,
    fifo: AetrFifo,
    crossbar: Crossbar,
    i2s: I2sTransmitter,
    meter: PowerMeter,
    regs: RegisterFile,
    log: HandshakeLog,
    events: Vec<TimestampedEvent>,

    /// Timestamp frozen at shutdown, pending delivery on the wake tick.
    wake_frozen: Option<u64>,
    /// `REQ` rise time of the in-flight request.
    current_request: Option<SimTime>,
    /// Scheduled SPI register writes (time-indexed by `Ev::SpiWrite`);
    /// borrowed from the caller — the hot path never copies them.
    reconfigs: &'a [(SimTime, crate::config_bus::Register, u32)],
    /// A drain is in progress (frames chained by `FrameDone`).
    draining: bool,
    wake_count: u64,

    /// Tick-chain engine (per-tick reference vs analytic fast-forward).
    engine: SimEngine,
    /// Reusable segment buffer for the fast-forward path, so a batch
    /// advance allocates nothing after warm-up.
    idle_segments: Vec<IdleSegment>,

    /// Fault source (inert for an all-zero plan).
    injector: FaultInjector,
    /// Recovery policy.
    watchdog: WatchdogConfig,
    /// Fault/recovery counters.
    health: HealthMonitor,
    /// Sampling time of an event whose `ACK` the sensor missed; the
    /// handshake hangs (`REQ` high, sender in `ReqHigh`) until an
    /// `AckRetry` resolves it.
    pending_ack: Option<SimTime>,
    /// The watchdog gave up on pausable clocking (`N_div` clamped,
    /// clock never sleeps again).
    degraded: bool,
    /// Telemetry collector (`None` when disabled — the no-op sink).
    tel: Option<Box<TelState>>,
}

impl<'a> Runner<'a> {
    fn new(
        cfg: &'a InterfaceConfig,
        power_model: &'a PowerModel,
        spikes: &'a [Spike],
        horizon: SimTime,
        plan: &FaultPlan,
        telemetry: &TelemetryConfig,
        engine: SimEngine,
    ) -> Runner<'a> {
        let mut meter = PowerMeter::new(SimTime::ZERO);
        meter.clock_multiplier(SimTime::ZERO, 1);
        Runner {
            cfg,
            power_model,
            horizon,
            base: cfg.clock.base_sampling_period(),
            // A handful of events are ever concurrently pending (tick,
            // REQ, frame drains, watchdog retries); pre-size past that
            // so the hot loop never reallocates.
            queue: EventQueue::with_capacity(16),
            sender: HandshakeSender::over(spikes, cfg.handshake),
            monitor: InputMonitor::new(cfg.front_end),
            fsm: SamplerFsm::new(&cfg.clock),
            fifo: AetrFifo::new(cfg.fifo),
            crossbar: Crossbar::prototype().expect("fixed routes cannot conflict"),
            i2s: I2sTransmitter::new(cfg.i2s),
            meter,
            regs: RegisterFile::from_config(&cfg.clock, cfg.fifo.watermark as u32),
            // Every spike yields exactly one captured event and (in a
            // fault-free run) one logged handshake; pre-size both so
            // the hot loop never grows them.
            log: HandshakeLog::with_capacity(spikes.len()),
            events: Vec::with_capacity(spikes.len()),
            wake_frozen: None,
            current_request: None,
            reconfigs: &[],
            draining: false,
            wake_count: 0,
            engine,
            idle_segments: Vec::new(),
            injector: FaultInjector::new(plan),
            watchdog: plan.watchdog,
            health: HealthMonitor::new(),
            pending_ack: None,
            degraded: false,
            tel: {
                let mut tel = TelState::new(telemetry);
                if let Some(ls) = tel.as_deref_mut().and_then(|ts| ts.lineage.as_mut()) {
                    // One record per captured spike; reserving up front
                    // avoids re-copying the wide records on Vec growth.
                    ls.log.reserve(spikes.len());
                }
                tel
            },
        }
    }

    fn run(mut self) -> InterfaceReport {
        // Prime the pump: first clock tick and first request.
        self.queue
            .schedule_at(SimTime::ZERO + self.base, Ev::Tick)
            .expect("fresh queue accepts the first tick");
        self.schedule_next_request();

        while let Some((t, ev)) = self.queue.pop() {
            // Emit any live samples due strictly before this event:
            // between events the DES state is constant, so sampling the
            // pre-event state at those instants is exact — and the
            // sampler never touches the queue, keeping enabled runs
            // functionally identical to disabled ones.
            self.sample_until(t);
            match ev {
                Ev::ReqRise => self.on_req_rise(t),
                Ev::Tick => self.on_tick(t),
                Ev::WakeDone => self.on_wake_done(t),
                Ev::FrameDone => self.drain_step(t),
                Ev::SpiWrite(index) => self.on_spi_write(t, index),
                Ev::AckRetry(attempt) => self.on_ack_retry(t, attempt),
                Ev::WakeCheck(attempt) => self.on_wake_check(t, attempt),
            }
            // Stop ticking past the horizon once all input is
            // consumed. Never-stopping clock policies tick forever, so
            // this is the loop's only exit for them; any events still
            // buffered are drained synchronously below.
            if self.sender.is_done() && t >= self.horizon {
                break;
            }
        }

        // The event loop is over; emit the remaining samples up to and
        // including the horizon against the final state.
        self.sample_until(self.horizon.saturating_add(SimDuration::from_ps(1)));

        // Drain whatever is left in the FIFO so the report reflects the
        // complete stream (the hardware would keep draining too).
        let mut t = self.queue.now().max(self.i2s.busy_until());
        while !self.fifo.is_empty() {
            let start = t;
            let first = self.fifo.pop().expect("checked non-empty");
            let second = self.fifo.pop();
            let pair = 1 + u64::from(second.is_some());
            t = self.i2s.send_pair(t, first, second).expect("sequential drain cannot overlap");
            let slipped = self.maybe_slip_frame();
            if let Some(ts) = self.tel.as_deref_mut() {
                ts.tel.metrics.inc(ts.i2s_frames, 1);
                ts.tel.spans.record(SpanKind::I2sFrame, "frame", start, t, Some(pair));
                ts.tel.metrics.set_gauge(ts.fifo_occupancy, self.fifo.len() as f64);
                ts.record_transmission(pair, start, t, slipped);
            }
        }

        let end = self.horizon.max(self.queue.now()).max(t);
        let activity = self.meter.finish(end);
        let power = self.power_model.evaluate(&activity);
        let health = self.health.report();
        let telemetry = match self.tel.take() {
            Some(ts) => ts.finish(end, &health, self.queue.ops()),
            None => TelemetrySnapshot::empty(),
        };
        InterfaceReport {
            events: self.events,
            handshake: self.log,
            fifo_stats: *self.fifo.stats(),
            i2s: self.i2s.into_stream(),
            activity,
            power,
            wake_count: self.wake_count,
            health,
            telemetry,
        }
    }

    /// Records live samples at every due instant strictly before `t`,
    /// against the *current* FSM state.
    ///
    /// No-op unless telemetry with a sampling cadence is enabled. The
    /// sampled state (event count, instantaneous power, divider level,
    /// FIFO depth) is constant over `(previous event, t)`, so each due
    /// point gets exact values without scheduling anything.
    fn sample_until(&mut self, t: SimTime) {
        if self.tel.is_none() {
            return;
        }
        let multiplier = if self.fsm.is_asleep() { None } else { Some(self.fsm.multiplier()) };
        self.emit_samples(t, multiplier);
    }

    /// [`sample_until`](Runner::sample_until) against an explicit
    /// divider multiplier — the fast-forward path calls this once per
    /// idle segment, with the multiplier that was in force over it, so
    /// batched runs record the exact series per-tick stepping would.
    fn emit_samples(&mut self, t: SimTime, multiplier: Option<u64>) {
        let due = match self.tel.as_deref().and_then(|ts| ts.next_sample) {
            Some(d) if d < t => d,
            _ => return,
        };
        let power_uw = self.power_model.instantaneous_power(multiplier).as_microwatts();
        let events_total = self.events.len() as u64;
        let fifo_depth = self.fifo.len() as u64;
        let ts = self.tel.as_deref_mut().expect("checked above");
        let cadence = ts.tel.sample_cadence().expect("sampler is active");
        let mut due = due;
        while due < t {
            ts.tel.series.record(due, events_total, power_uw, multiplier.unwrap_or(0), fifo_depth);
            due += cadence;
        }
        ts.next_sample = Some(due);
    }

    fn schedule_reconfigs(&mut self, writes: &'a [(SimTime, crate::config_bus::Register, u32)]) {
        self.reconfigs = writes;
        for (i, &(t, _, _)) in writes.iter().enumerate() {
            self.queue.schedule_at(t, Ev::SpiWrite(i)).expect("fresh queue, sorted writes");
        }
    }

    fn on_spi_write(&mut self, t: SimTime, index: usize) {
        let (_, register, value) = self.reconfigs[index];
        if self.regs.write(register, value).is_ok() {
            let new_clock = self.regs.apply_to(&self.cfg.clock);
            // In degraded mode the watchdog's clamp outranks the host:
            // an SPI write cannot resurrect recursive clocking.
            let new_clock = if self.degraded {
                new_clock.degraded_fallback(self.watchdog.degraded_n_div_clamp)
            } else {
                new_clock
            };
            if new_clock.validate().is_ok() {
                self.fsm.reconfigure(&new_clock);
                // If the FSM is awake, the current tick chain continues
                // with the new parameters from its next edge; if it is
                // asleep, the next wake re-enters at T_min as before.
                let _ = t;
            }
        }
    }

    fn schedule_next_request(&mut self) {
        if let Some(t) = self.sender.next_req_rise() {
            self.queue.schedule_at(t, Ev::ReqRise).expect("handshake times are monotone");
        }
    }

    /// Restarts the ring oscillator, optionally injecting a wake
    /// failure (the `WakeDone` is dropped and a watchdog `WakeCheck`
    /// is armed instead).
    fn schedule_wake(&mut self, t: SimTime) {
        self.meter.wake();
        self.wake_count += 1;
        self.wake_frozen = Some(self.fsm.counter());
        if let Some(ts) = self.tel.as_deref_mut() {
            ts.tel.metrics.inc(ts.wakes, 1);
            ts.wake_open = Some(ts.tel.spans.open(SpanKind::Wake, "wake", t));
            if let Some(ls) = ts.lineage.as_mut() {
                ls.wake_started = Some(t);
                ls.wake_done = None;
            }
        }
        let due = t + self.cfg.clock.ring.wake_latency;
        if self.injector.fail_wake() {
            self.health.wake_failure();
            if let Some(ts) = self.tel.as_deref_mut() {
                ts.wake_recovery_open =
                    Some(ts.tel.spans.open(SpanKind::WatchdogRecovery, "wake-recovery", t));
            }
            self.queue
                .schedule_at(due + self.watchdog.wake_timeout, Ev::WakeCheck(0))
                .expect("wake check is in the future");
        } else {
            self.queue.schedule_at(due, Ev::WakeDone).expect("wake completes in the future");
        }
    }

    fn on_req_rise(&mut self, t: SimTime) {
        // A stuck REQ from the previous handshake (fault) still holds
        // the synchroniser's latch; clear it so the new request can
        // land. Never fires in a fault-free run.
        if self.current_request.is_none() && self.monitor.sampled_address().is_some() {
            self.monitor.req_fall();
        }
        let spike = self.sender.begin(t);
        self.monitor.req_rise(t, spike.addr);
        self.current_request = Some(t);
        if let Some(ts) = self.tel.as_deref_mut() {
            ts.handshake_open = Some(ts.tel.spans.open(SpanKind::Handshake, "4-phase", t));
        }
        if self.fsm.is_asleep() {
            // REQ asynchronously restarts the ring oscillator.
            self.schedule_wake(t);
        }
    }

    fn on_wake_done(&mut self, t: SimTime) {
        self.meter.clock_multiplier(t, 1);
        if let Some(ts) = self.tel.as_deref_mut() {
            ts.clock_transition(t, "full-rate", Some(1));
            if let Some(h) = ts.wake_open.take() {
                ts.tel.spans.close(h, t);
            }
            if let Some(h) = ts.wake_recovery_open.take() {
                ts.tel.spans.close(h, t);
            }
            if let Some(ls) = ts.lineage.as_mut() {
                if let Some(started) = ls.wake_started.take() {
                    // Retries included: the penalty spans the whole
                    // episode, from the wake request to the edge that
                    // finally came up.
                    ls.wake_done = Some((started, t));
                }
            }
        }
        let frozen = self.fsm.wake();
        debug_assert_eq!(Some(frozen), self.wake_frozen);
        // First tick one base period after the oscillator stabilises.
        self.queue.schedule_at(t + self.base, Ev::Tick).expect("tick after wake is future");
    }

    /// `true` when the tick popped at `t` begins a provably quiet
    /// stretch: nothing is in flight on the sensor side (no request
    /// crossing the synchroniser, no latched address, no ACK recovery,
    /// no wake in progress) and no scheduled fault is due — so every
    /// tick until the next queue event is a pure `on_tick(false)` whose
    /// trajectory [`SamplerFsm::advance_idle`] computes in closed form.
    fn idle_at(&self, t: SimTime) -> bool {
        self.current_request.is_none()
            && self.monitor.sampled_address().is_none()
            && self.pending_ack.is_none()
            && self.wake_frozen.is_none()
            && self.injector.next_scheduled_at().is_none_or(|due| due > t)
    }

    /// Jumps the quiet tick chain from the popped tick at `t` to the
    /// next interesting instant, replaying the side effects of the
    /// skipped ticks segment-wise.
    ///
    /// The barrier is the earliest of: the next queue event (while
    /// input remains, the pending `ReqRise` bounds it), the next
    /// scheduled fault, and — once the input is exhausted — the
    /// horizon, so the final at-or-past-horizon tick still pops and is
    /// processed by the normal path exactly as per-tick stepping would.
    /// During `(t, barrier)` the per-tick engine could pop nothing but
    /// this chain's own ticks, and quiet ticks schedule nothing but
    /// their successor (a shutdown with no latched request schedules no
    /// wake), so batching them cannot reorder anything: the resumed
    /// tick is scheduled now, which gives it a later sequence number
    /// than everything already queued — the same tie-break per-tick
    /// stepping produces at a shared instant.
    fn fast_forward(&mut self, t: SimTime) {
        let mut barrier = self.queue.peek_time().unwrap_or(SimTime::MAX);
        if let Some(due) = self.injector.next_scheduled_at() {
            barrier = barrier.min(due);
        }
        if self.sender.is_done() {
            barrier = barrier.min(self.horizon);
        }
        let mut segments = std::mem::take(&mut self.idle_segments);
        let next_tick = self.fsm.advance_idle_into(t, barrier, &mut segments);
        for seg in &segments {
            match seg.boundary {
                IdleBoundary::None => {
                    // Samples due past the last tick are emitted by the
                    // next event's `sample_until` — the FSM already
                    // carries this segment's multiplier.
                }
                IdleBoundary::Divided { multiplier } => {
                    self.emit_samples(seg.last_tick, Some(seg.multiplier));
                    self.meter.clock_multiplier(seg.last_tick, multiplier);
                    if let Some(ts) = self.tel.as_deref_mut() {
                        ts.tel.metrics.inc(ts.divisions, 1);
                        ts.clock_transition(seg.last_tick, "divided", Some(multiplier));
                    }
                }
                IdleBoundary::ShutDown => {
                    self.emit_samples(seg.last_tick, Some(seg.multiplier));
                    self.meter.clock_off(seg.last_tick);
                    if let Some(ts) = self.tel.as_deref_mut() {
                        ts.tel.metrics.inc(ts.shutdowns, 1);
                        ts.clock_transition(seg.last_tick, "sleep", None);
                    }
                    // Per-tick stepping would have popped this shutdown
                    // tick, leaving the clock there; the end-of-run
                    // bookkeeping (FIFO drain start, power horizon)
                    // reads it.
                    self.queue.advance_to(seg.last_tick);
                }
            }
        }
        self.idle_segments = segments;
        if let Some(next) = next_tick {
            self.queue.schedule_at(next, Ev::Tick).expect("resumed tick is not in the past");
        }
    }

    fn on_tick(&mut self, t: SimTime) {
        if self.fsm.is_asleep() {
            // Stale tick scheduled before a shutdown raced in; ignore.
            return;
        }
        if self.engine == SimEngine::EventProportional && self.idle_at(t) {
            self.fast_forward(t);
            return;
        }
        if let Some(kind) = self.injector.due_scheduled(t) {
            match kind {
                FaultKind::StuckOscillator => {
                    self.health.oscillator_stall();
                    self.fsm.force_shutdown();
                    self.meter.clock_off(t);
                    if let Some(ts) = self.tel.as_deref_mut() {
                        ts.tel.metrics.inc(ts.shutdowns, 1);
                        ts.clock_transition(t, "sleep", None);
                    }
                    // A latched REQ holds the wake input, so recovery
                    // starts immediately — unless an unresolved ACK is
                    // keeping REQ high, in which case the next fresh
                    // request restarts the clock.
                    if self.monitor.sampled_address().is_some() && self.pending_ack.is_none() {
                        self.schedule_wake(t);
                    }
                    return;
                }
            }
        }
        let pending = if self.pending_ack.is_some() {
            // REQ is held high awaiting a re-driven ACK; the latched
            // address belongs to the already-sampled event, not a new
            // request.
            false
        } else if self.wake_frozen.is_some() {
            true // the wake tick samples unconditionally (REQ woke us)
        } else {
            self.monitor.on_tick(t)
        };
        // Divider state *before* the tick: the `Sampled` arm resets
        // level and period, but the captured event ran under — and its
        // lineage is attributed to — the pre-capture values.
        let ctx = self.fsm.capture_context();
        match self.fsm.on_tick(pending) {
            FsmAction::Sampled { timestamp_ticks } => {
                let frozen = self.wake_frozen.take();
                let woke = frozen.is_some();
                let ticks = frozen.unwrap_or(timestamp_ticks);
                self.meter.clock_multiplier(t, 1); // reset to T_min
                if let Some(ts) = self.tel.as_deref_mut() {
                    ts.clock_transition(t, "full-rate", Some(1));
                }
                self.capture_event(t, ticks, woke, ctx);
            }
            FsmAction::Divided { multiplier } => {
                self.meter.clock_multiplier(t, multiplier);
                if let Some(ts) = self.tel.as_deref_mut() {
                    ts.tel.metrics.inc(ts.divisions, 1);
                    ts.clock_transition(t, "divided", Some(multiplier));
                }
            }
            FsmAction::ShutDown => {
                self.meter.clock_off(t);
                if let Some(ts) = self.tel.as_deref_mut() {
                    ts.tel.metrics.inc(ts.shutdowns, 1);
                    ts.clock_transition(t, "sleep", None);
                }
                // If REQ is already high (request still crossing the
                // synchroniser), it holds the ring oscillator's wake
                // input: the clock restarts immediately, and the event
                // gets the frozen (saturated) timestamp.
                if self.monitor.sampled_address().is_some() && self.pending_ack.is_none() {
                    self.schedule_wake(t);
                }
                return; // no further ticks until the wake
            }
            FsmAction::Ticked => {}
        }
        self.queue
            .schedule_after(self.fsm.current_period(), Ev::Tick)
            .expect("tick period is positive");
    }

    fn capture_event(&mut self, t: SimTime, ticks: u64, woke: bool, ctx: CaptureContext) {
        let Some(addr) = self.monitor.sampled_address() else {
            // A glitch made the synchroniser fire with nothing latched
            // (possible only under injected faults); nothing to capture.
            self.health.spurious_sample();
            return;
        };
        let event = AetrEvent::new(addr, Timestamp::from_ticks(ticks));
        let request = match self.current_request.take() {
            Some(r) => r,
            None => {
                // Latched address without an in-flight request: a stuck
                // REQ re-sampled after its handshake completed. Discard
                // the duplicate and clear the latch.
                self.health.spurious_sample();
                self.monitor.req_fall();
                return;
            }
        };
        self.events.push(TimestampedEvent { request, detection: t, event });
        self.meter.event(1);
        let t_min_ps = self.base.as_ps();
        let counter_max = self.cfg.clock.counter_max();
        // Capture index of this event's lineage record, if one exists.
        let mut lineage_idx = None;
        if let Some(ts) = self.tel.as_deref_mut() {
            ts.tel.metrics.inc(ts.events_captured, 1);
            let latency_ns = t.saturating_duration_since(request).as_ns() as f64;
            ts.tel.metrics.observe(ts.capture_latency, latency_ns);
            if let Some(ls) = ts.lineage.as_mut() {
                let index = ls.log.len() as u32;
                let wake_penalty = match (woke, ls.wake_done.take()) {
                    (true, Some((started, done))) => done.saturating_duration_since(started),
                    _ => SimDuration::ZERO,
                };
                // Signed quantization error of the measured interval,
                // in fractional T_min ticks. The picosecond terms are
                // exact in i128; their difference fits i64 comfortably
                // (simulated horizons are far below 2^63 ps), and the
                // i64 → f64 cast is a single instruction where the
                // i128 → f64 one is a libcall — this is the hot path.
                let measured_ps = ticks as i128 * t_min_ps as i128;
                let true_ps = request.as_ps() as i128 - ls.prev_arrival.as_ps() as i128;
                let quantization_error_ticks =
                    (measured_ps - true_ps) as i64 as f64 / t_min_ps as f64;
                ls.prev_arrival = request;
                ls.log.push(EventLineage::captured(Capture {
                    index,
                    address: addr.value(),
                    arrival: request,
                    detection: t,
                    timestamp_ticks: ticks,
                    // Frozen-at-shutdown or clamped counters mark the
                    // interval as "longer than measurable", not a
                    // measurement.
                    saturated: woke || ticks >= counter_max,
                    division_level: ctx.division_level,
                    multiplier: ctx.multiplier,
                    sampling_period: ctx.sampling_period,
                    woke,
                    wake_penalty,
                    quantization_error_ticks,
                }));
                ls.awaiting_ack = Some(index);
                lineage_idx = Some(index);
            }
        }

        // Route through the crossbar into the FIFO. An injected bit
        // flip corrupts the stored word only — the captured event above
        // keeps the true value, so campaigns can measure the damage.
        let mut word = event.to_word();
        if let Some(bit) = self.injector.flip_fifo_bit() {
            self.health.fifo_bit_flip();
            word ^= 1 << bit;
        }
        if self.crossbar.route(SourcePort::FrontEnd, word) == Some(SinkPort::BufferIn) {
            let stored = AetrEvent::from_word(word);
            let outcome = self.fifo.push(stored);
            if outcome.lost_an_event() {
                self.health.fifo_drop(self.degraded);
            }
            let degraded = self.degraded;
            if let Some(ts) = self.tel.as_deref_mut() {
                // Mirror `FifoStats` semantics exactly: `pushed` counts
                // stored events, `dropped` counts losses of either
                // overflow flavour.
                if outcome.incoming_stored() {
                    ts.tel.metrics.inc(ts.fifo_pushed, 1);
                }
                if outcome.lost_an_event() {
                    ts.tel.metrics.inc(ts.fifo_dropped, 1);
                }
                let depth = self.fifo.len() as f64;
                ts.tel.metrics.set_gauge(ts.fifo_occupancy, depth);
                ts.tel.metrics.observe(ts.fifo_depth, depth);
                if let (Some(ls), Some(idx)) = (ts.lineage.as_mut(), lineage_idx) {
                    match outcome {
                        PushOutcome::Stored => {
                            ls.fifo_mirror.push_back(idx);
                            if let Some(r) = ls.log.get_mut(idx) {
                                r.set_fifo_enqueue(t);
                            }
                        }
                        PushOutcome::DroppedNewest => {
                            if let Some(r) = ls.log.get_mut(idx) {
                                r.drop_cause = if degraded {
                                    DropCause::Degraded
                                } else {
                                    DropCause::Overflow
                                };
                            }
                        }
                        PushOutcome::DroppedOldest => {
                            // The incoming event is stored; the oldest
                            // buffered one was displaced to make room.
                            if let Some(victim) = ls.fifo_mirror.pop_front() {
                                if let Some(r) = ls.log.get_mut(victim) {
                                    r.drop_cause = DropCause::Displaced;
                                    r.set_fifo_dequeue(t);
                                }
                            }
                            ls.fifo_mirror.push_back(idx);
                            if let Some(r) = ls.log.get_mut(idx) {
                                r.set_fifo_enqueue(t);
                            }
                        }
                    }
                }
            }
        } else if let Some(ts) = self.tel.as_deref_mut() {
            // The crossbar refused the route: the event never reached
            // the buffer.
            if let (Some(ls), Some(idx)) = (ts.lineage.as_mut(), lineage_idx) {
                if let Some(r) = ls.log.get_mut(idx) {
                    r.drop_cause = DropCause::NotRouted;
                }
            }
        }
        self.regs.set_status(self.fifo.len() as u32);
        self.regs.set_event_count(self.events.len() as u32);

        // Complete the 4-phase handshake: ACK rises with the sampling
        // edge (one reference period of response delay) — unless the
        // sensor misses the ACK edge, in which case the watchdog takes
        // over and re-drives it after a timeout.
        let ref_period = self.cfg.clock.reference_period();
        if self.injector.lose_ack() {
            self.health.lost_ack();
            self.pending_ack = Some(t);
            if let Some(ts) = self.tel.as_deref_mut() {
                ts.ack_recovery_open =
                    Some(ts.tel.spans.open(SpanKind::WatchdogRecovery, "ack-recovery", t));
            }
            self.queue
                .schedule_at(t + self.watchdog.ack_timeout, Ev::AckRetry(0))
                .expect("ack retry is in the future");
        } else {
            self.complete_handshake(t + ref_period);
        }

        // Watermark batching: start a drain once the threshold is hit.
        if self.fifo.at_watermark() && !self.draining {
            self.draining = true;
            let start = t.max(self.i2s.busy_until());
            self.queue.schedule_at(start, Ev::FrameDone).expect("drain start is not in the past");
        }
    }

    /// Finishes the 4-phase transaction with `ACK` rising at
    /// `ack_rise`, applying protocol fault injection (malformed edge
    /// ordering, stuck `REQ`) on the way out.
    fn complete_handshake(&mut self, ack_rise: SimTime) {
        let ref_period = self.cfg.clock.reference_period();
        let req_fall = self.sender.ack_rise(ack_rise);
        let ack_fall = req_fall + ref_period;
        let mut txn = self.sender.ack_fall(ack_rise, req_fall, ack_fall);
        if self.injector.malform() {
            // The sensor drives its edges out of order; the logged
            // transaction violates the 4-phase contract and
            // `verify_protocol` will flag it.
            self.health.malformed();
            std::mem::swap(&mut txn.ack_rise, &mut txn.req_fall);
        }
        self.log.push(txn);
        if let Some(ts) = self.tel.as_deref_mut() {
            ts.tel.metrics.inc(ts.handshakes, 1);
            if let Some(h) = ts.handshake_open.take() {
                ts.tel.spans.close(h, ack_fall);
            }
            if let Some(ls) = ts.lineage.as_mut() {
                // The record keeps the instant ACK actually rose, even
                // when a malform fault scrambles the *logged* edges.
                if let Some(idx) = ls.awaiting_ack.take() {
                    if let Some(r) = ls.log.get_mut(idx) {
                        r.set_ack_rise(ack_rise);
                    }
                }
            }
        }
        if self.injector.stick_req() {
            // REQ fails to fall: the synchroniser latch stays set and
            // the next tick would re-sample a phantom copy.
            self.health.stuck_request();
        } else {
            self.monitor.req_fall();
        }
        self.schedule_next_request();
    }

    /// Watchdog: the `ACK` the sensor should have seen never arrived
    /// (`REQ` still high). Re-drive it, with bounded exponential
    /// backoff; after `max_ack_retries` the channel is aborted.
    fn on_ack_retry(&mut self, t: SimTime, attempt: u32) {
        if self.pending_ack.is_none() {
            return; // stale retry; the handshake already resolved
        }
        self.health.ack_retry();
        if let Some(ts) = self.tel.as_deref_mut() {
            if let Some(ls) = ts.lineage.as_mut() {
                if let Some(idx) = ls.awaiting_ack {
                    if let Some(r) = ls.log.get_mut(idx) {
                        r.ack_retries += 1;
                    }
                }
            }
        }
        if self.injector.lose_ack() {
            self.health.lost_ack();
            if attempt + 1 >= self.watchdog.max_ack_retries {
                // Give up: abort the transaction, drop the latch and
                // move on. The event was already captured; only the
                // handshake record is lost.
                self.health.handshake_aborted();
                self.pending_ack = None;
                if let Some(ts) = self.tel.as_deref_mut() {
                    if let Some(h) = ts.ack_recovery_open.take() {
                        ts.tel.spans.close_with(h, t, Some(u64::from(attempt + 1)));
                    }
                    if let Some(h) = ts.handshake_open.take() {
                        // The handshake never completed; the span ends
                        // at the abort.
                        ts.tel.spans.close(h, t);
                    }
                    if let Some(ls) = ts.lineage.as_mut() {
                        // ACK never rose for this event; its record
                        // keeps `ack_rise()` = None as the abort marker.
                        ls.awaiting_ack = None;
                    }
                }
                self.sender.abort(t);
                self.monitor.req_fall();
                self.schedule_next_request();
            } else {
                self.queue
                    .schedule_at(
                        t + self.watchdog.ack_backoff(attempt + 1),
                        Ev::AckRetry(attempt + 1),
                    )
                    .expect("ack retry is in the future");
            }
        } else {
            self.health.ack_recovered();
            self.pending_ack = None;
            if let Some(ts) = self.tel.as_deref_mut() {
                if let Some(h) = ts.ack_recovery_open.take() {
                    ts.tel.spans.close_with(h, t, Some(u64::from(attempt + 1)));
                }
            }
            self.complete_handshake(t);
        }
    }

    /// Watchdog: a wake that should have completed did not. Retry; if
    /// the oscillator stays dead, force it awake and fall back to
    /// degraded (never-sleeping) clocking.
    fn on_wake_check(&mut self, t: SimTime, attempt: u32) {
        if !self.fsm.is_asleep() {
            return; // stale check; something else woke the clock
        }
        self.health.wake_retry();
        if attempt >= self.watchdog.max_wake_retries {
            self.health.forced_wake();
            self.enter_degraded();
            self.on_wake_done(t);
        } else if self.injector.fail_wake() {
            self.health.wake_failure();
            self.queue
                .schedule_at(t + self.watchdog.wake_timeout, Ev::WakeCheck(attempt + 1))
                .expect("wake check is in the future");
        } else {
            self.on_wake_done(t);
        }
    }

    /// Clamps `N_div` and pins the clock on: latency stays bounded at
    /// the cost of the paper's energy proportionality.
    fn enter_degraded(&mut self) {
        if self.degraded {
            return;
        }
        self.degraded = true;
        self.health.entered_degraded();
        // From here on, losses at a full buffer are the watchdog
        // fallback's fault, not ordinary congestion.
        self.fifo.set_degraded(true);
        self.fsm.reconfigure(&self.cfg.clock.degraded_fallback(self.watchdog.degraded_n_div_clamp));
    }

    /// Applies an injected receiver-side frame slip to the most recent
    /// I2S frame; `true` when a frame was actually dropped (the lineage
    /// layer marks its events lost instead of delivered).
    fn maybe_slip_frame(&mut self) -> bool {
        if self.injector.slip_frame() {
            if let Some(frame) = self.i2s.drop_last_frame() {
                self.health.frame_slip(frame.events().count() as u64);
                return true;
            }
        }
        false
    }

    fn drain_step(&mut self, t: SimTime) {
        if self.fifo.is_empty() {
            self.draining = false;
            return;
        }
        let start = t.max(self.i2s.busy_until());
        let first = self.fifo.pop().expect("checked non-empty");
        self.crossbar.route(SourcePort::BufferOut, first.to_word());
        let second = self.fifo.pop();
        if let Some(s) = second {
            self.crossbar.route(SourcePort::BufferOut, s.to_word());
        }
        let done = self.i2s.send_pair(start, first, second).expect("drain respects busy_until");
        let slipped = self.maybe_slip_frame();
        if let Some(ts) = self.tel.as_deref_mut() {
            let pair = 1 + u64::from(second.is_some());
            ts.tel.metrics.inc(ts.i2s_frames, 1);
            ts.tel.spans.record(SpanKind::I2sFrame, "frame", start, done, Some(pair));
            ts.tel.metrics.set_gauge(ts.fifo_occupancy, self.fifo.len() as f64);
            ts.record_transmission(pair, start, done, slipped);
        }
        self.regs.set_status(self.fifo.len() as u32);
        self.queue.schedule_at(done, Ev::FrameDone).expect("frame completes in the future");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, RegularGenerator, SpikeSource};
    use aetr_clockgen::config::DivisionPolicy;
    use aetr_power::units::Power;

    use crate::quantizer::quantize_train;

    fn prototype() -> AerToI2sInterface {
        AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap()
    }

    #[test]
    fn processes_every_spike_exactly_once() {
        let train = PoissonGenerator::new(50_000.0, 64, 1).generate(SimTime::from_ms(10));
        let n = train.len();
        let report = prototype().run(&train, SimTime::from_ms(10));
        assert_eq!(report.events.len(), n);
        assert_eq!(report.handshake.len(), n);
        assert_eq!(report.i2s.event_count(), n, "every event reaches the I2S stream");
        report.handshake.verify_protocol().unwrap();
    }

    #[test]
    fn handshake_meets_caviar_at_moderate_rates() {
        let train = RegularGenerator::from_rate(100_000.0, 16).generate(SimTime::from_ms(5));
        let report = prototype().run(&train, SimTime::from_ms(5));
        report.handshake.verify_caviar().unwrap();
    }

    #[test]
    fn timestamps_match_behavioral_engine_with_ideal_front_end() {
        let cfg =
            InterfaceConfig { front_end: FrontEndConfig::ideal(), ..InterfaceConfig::prototype() };
        let train = PoissonGenerator::new(80_000.0, 32, 9).generate(SimTime::from_ms(20));
        let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(20));
        let behav = quantize_train(&cfg.clock, &train, SimTime::from_ms(20));

        assert_eq!(des.events.len(), behav.records.len());
        let mut mismatches = 0;
        for (d, b) in des.events.iter().zip(&behav.records) {
            assert_eq!(d.event.addr, b.event.addr);
            let dt = d.event.timestamp.ticks() as i64;
            let bt = b.event.timestamp.ticks() as i64;
            // Handshake-induced REQ timing differences shift detection
            // by at most a couple of ticks either way.
            if (dt - bt).abs() > 2 {
                mismatches += 1;
            }
        }
        assert!(
            (mismatches as f64 / des.events.len() as f64) < 0.02,
            "too many timestamp mismatches: {mismatches}/{}",
            des.events.len()
        );
    }

    #[test]
    fn idle_interface_power_approaches_static_floor() {
        let report = prototype().run(&SpikeTrain::new(), SimTime::from_ms(100));
        // The clock runs for ~64 µs then sleeps for the rest.
        let uw = report.power.total.as_microwatts();
        assert!(uw < 60.0, "idle power {uw} µW");
        assert!(report.power.total >= Power::from_microwatts(50.0));
    }

    #[test]
    fn sparse_events_wake_the_clock() {
        let train =
            RegularGenerator::new(SimDuration::from_ms(10), 4).generate(SimTime::from_ms(95));
        let n = train.len();
        let report = prototype().run(&train, SimTime::from_ms(100));
        assert_eq!(report.wake_count, n as u64, "every sparse event wakes the oscillator");
        // All timestamps saturated at the counter's natural maximum.
        for e in &report.events {
            assert_eq!(e.event.timestamp.ticks(), 960);
        }
    }

    #[test]
    fn no_division_policy_never_sleeps_and_burns_power() {
        let cfg = InterfaceConfig {
            clock: ClockGenConfig::prototype().with_policy(DivisionPolicy::Never),
            ..InterfaceConfig::prototype()
        };
        let report =
            AerToI2sInterface::new(cfg).unwrap().run(&SpikeTrain::new(), SimTime::from_ms(2));
        assert_eq!(report.wake_count, 0);
        assert_eq!(report.activity.off, SimDuration::ZERO);
        assert!(report.power.total.as_milliwatts() > 4.0, "naive power {}", report.power.total);
    }

    #[test]
    fn fifo_watermark_triggers_batched_i2s() {
        let cfg = InterfaceConfig {
            fifo: FifoConfig { capacity_bytes: 256, watermark: 16, ..FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let train = RegularGenerator::from_rate(200_000.0, 8).generate(SimTime::from_ms(2));
        let report = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(2));
        assert!(report.fifo_stats.watermark_crossings >= 1);
        assert_eq!(report.fifo_stats.dropped, 0);
        assert_eq!(
            report.i2s.event_count() as u64,
            report.fifo_stats.popped,
            "everything drained went out on I2S"
        );
    }

    #[test]
    fn power_matches_behavioral_model_within_tolerance() {
        let cfg =
            InterfaceConfig { front_end: FrontEndConfig::ideal(), ..InterfaceConfig::prototype() };
        let train = LfsrGenerator::new(50_000.0, 0xFEED).generate(SimTime::from_ms(50));
        let des = AerToI2sInterface::new(cfg).unwrap().run(&train, SimTime::from_ms(50));
        let behav = quantize_train(&cfg.clock, &train, SimTime::from_ms(50));
        let model = PowerModel::igloo_nano();
        let p_des = des.power.total.as_microwatts();
        let p_behav = model.evaluate(&behav.activity).total.as_microwatts();
        let rel = (p_des - p_behav).abs() / p_behav;
        assert!(rel < 0.1, "DES {p_des} µW vs behavioral {p_behav} µW");
    }

    #[test]
    fn runtime_spi_write_changes_division_behaviour() {
        use crate::config_bus::Register;
        // A sparse stream: with θ=64/N=3 every 1 ms gap saturates at
        // 960 ticks; after the host writes N_div=6 mid-run, the range
        // grows to 64·127 = 8128 ticks and 1 ms (15008 ticks) still
        // saturates, so use a 300 µs gap: 4507 ticks, measurable only
        // after the write.
        let gap = SimDuration::from_us(300);
        let train: SpikeTrain = (1..=20u64)
            .map(|i| {
                aetr_aer::spike::Spike::new(
                    SimTime::ZERO + gap * i,
                    aetr_aer::address::Address::new(1).unwrap(),
                )
            })
            .collect();
        let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
        let writes = [(SimTime::from_ms(3), Register::NDiv, 6u32)];
        let report = interface.run_with_reconfig(&train, SimTime::from_ms(7), &writes);
        assert_eq!(report.events.len(), 20);
        let before: Vec<u32> =
            report.events[..8].iter().map(|e| e.event.timestamp.ticks()).collect();
        let after: Vec<u32> =
            report.events[12..].iter().map(|e| e.event.timestamp.ticks()).collect();
        assert!(
            before.iter().all(|&t| t == 960),
            "before the write every gap saturates at 960: {before:?}"
        );
        assert!(
            after.iter().all(|&t| t > 960 && t < 8_128),
            "after the write the 300 us gap is measurable: {after:?}"
        );
    }

    #[test]
    fn rejected_runtime_write_changes_nothing() {
        use crate::config_bus::Register;
        let train = RegularGenerator::from_rate(50_000.0, 4).generate(SimTime::from_ms(2));
        let interface = AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap();
        let plain = interface.run(&train, SimTime::from_ms(2));
        let writes = [(SimTime::from_ms(1), Register::ThetaDiv, 1u32)]; // invalid value
        let reconfigured = interface.run_with_reconfig(&train, SimTime::from_ms(2), &writes);
        assert_eq!(plain.events, reconfigured.events);
    }

    /// Runs `train` through both engines — fault plan and live sampler
    /// armed — and asserts the reports are bit-identical (the
    /// wall-clock profile, excluded from `TelemetrySnapshot` equality,
    /// is the only thing allowed to differ). Returns both profiles'
    /// queue-op counts `(fast_forward, per_tick)`.
    fn engines_agree(
        cfg: InterfaceConfig,
        train: &SpikeTrain,
        horizon: SimTime,
        plan: &aetr_faults::FaultPlan,
    ) -> (u64, u64) {
        // Lineage on: snapshot equality then also pins per-event
        // records across the engines.
        let tel = TelemetryConfig {
            enabled: true,
            sample_cadence: Some(SimDuration::from_us(50)),
            lineage: true,
        };
        let fast = AerToI2sInterface::new(cfg)
            .unwrap()
            .with_engine(SimEngine::EventProportional)
            .run_with_telemetry(train, horizon, plan, &tel);
        let reference = AerToI2sInterface::new(cfg)
            .unwrap()
            .with_engine(SimEngine::PerTickReference)
            .run_with_telemetry(train, horizon, plan, &tel);
        assert_eq!(fast, reference);
        let ops = |r: &InterfaceReport| r.telemetry.profile.as_ref().map_or(0, |p| p.queue_ops);
        (ops(&fast), ops(&reference))
    }

    #[test]
    fn fast_forward_is_bit_identical_and_event_proportional_on_sparse_input() {
        let train =
            RegularGenerator::new(SimDuration::from_ms(10), 4).generate(SimTime::from_ms(95));
        let (fast_ops, ref_ops) = engines_agree(
            InterfaceConfig::prototype(),
            &train,
            SimTime::from_ms(100),
            &aetr_faults::FaultPlan::nominal(0),
        );
        assert!(
            fast_ops * 10 < ref_ops,
            "idle-heavy run should need >10x fewer queue ops: {fast_ops} vs {ref_ops}"
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_on_dense_input() {
        let train = PoissonGenerator::new(400_000.0, 64, 5).generate(SimTime::from_ms(5));
        engines_agree(
            InterfaceConfig::prototype(),
            &train,
            SimTime::from_ms(5),
            &aetr_faults::FaultPlan::nominal(0),
        );
    }

    #[test]
    fn fast_forward_is_bit_identical_under_never_stopping_policies() {
        for policy in [DivisionPolicy::Never, DivisionPolicy::DivideOnly, DivisionPolicy::Linear] {
            let cfg = InterfaceConfig {
                clock: ClockGenConfig::prototype().with_policy(policy),
                ..InterfaceConfig::prototype()
            };
            let train = PoissonGenerator::new(5_000.0, 16, 11).generate(SimTime::from_ms(4));
            engines_agree(cfg, &train, SimTime::from_ms(4), &aetr_faults::FaultPlan::nominal(0));
        }
    }

    #[test]
    fn fast_forward_is_bit_identical_with_scheduled_and_stochastic_faults() {
        // A stuck-oscillator fault lands mid-idle (the fast-forward
        // barrier must stop there), and protocol-rate faults perturb
        // the surrounding handshakes identically in both engines.
        let plan = aetr_faults::FaultPlan::nominal(42)
            .with_rates(aetr_faults::FaultRates::protocol(0.05))
            .schedule(SimTime::from_ms(3), FaultKind::StuckOscillator);
        let train = RegularGenerator::new(SimDuration::from_ms(1), 8).generate(SimTime::from_ms(9));
        engines_agree(InterfaceConfig::prototype(), &train, SimTime::from_ms(10), &plan);
    }

    #[test]
    fn fast_forward_is_bit_identical_on_empty_and_reconfigured_runs() {
        engines_agree(
            InterfaceConfig::prototype(),
            &SpikeTrain::new(),
            SimTime::from_ms(50),
            &aetr_faults::FaultPlan::nominal(0),
        );
        // Mid-idle SPI write: the tick chain must resume with the new
        // division parameters at exactly the per-tick instant.
        use crate::config_bus::Register;
        let gap = SimDuration::from_us(300);
        let train: SpikeTrain = (1..=10u64)
            .map(|i| {
                aetr_aer::spike::Spike::new(
                    SimTime::ZERO + gap * i,
                    aetr_aer::address::Address::new(2).unwrap(),
                )
            })
            .collect();
        let writes = [(SimTime::from_ms(1) + SimDuration::from_us(37), Register::NDiv, 6u32)];
        let iface = |engine| {
            AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap().with_engine(engine)
        };
        let fast = iface(SimEngine::EventProportional).run_with_reconfig(
            &train,
            SimTime::from_ms(4),
            &writes,
        );
        let reference = iface(SimEngine::PerTickReference).run_with_reconfig(
            &train,
            SimTime::from_ms(4),
            &writes,
        );
        assert_eq!(fast, reference);
    }

    #[test]
    fn invalid_config_rejected() {
        let bad = InterfaceConfig {
            clock: ClockGenConfig { theta_div: 1, ..ClockGenConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        assert!(matches!(AerToI2sInterface::new(bad), Err(InterfaceConfigError::Clock(_))));
        let bad_fifo = InterfaceConfig {
            fifo: FifoConfig { capacity_bytes: 8, watermark: 100, ..FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let err = AerToI2sInterface::new(bad_fifo).unwrap_err();
        assert!(err.to_string().contains("watermark"));
    }
}
