//! Clock-generator configuration.
//!
//! Ties together the ring oscillator, the prescaler that produces the
//! 30 MHz reference, and the recursive-division parameters `θ_div` and
//! `N_div` that the paper exposes through the SPI configuration bus.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{Frequency, SimDuration};

use crate::divider::DividerChain;
use crate::ring::{RingOscillatorConfig, RingOscillatorError};

/// How the sampling period evolves between events.
///
/// [`Recursive`](DivisionPolicy::Recursive) is the paper's contribution;
/// [`Never`](DivisionPolicy::Never) is its "naïve" constant-frequency
/// baseline (Fig. 8); the other two are ablations of the design choices
/// (shutdown and geometric growth respectively).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum DivisionPolicy {
    /// Double the period every `θ_div` cycles; after `N_div` doublings,
    /// stop the clock entirely (paper Fig. 1).
    #[default]
    Recursive,
    /// Double the period every `θ_div` cycles up to `N_div` doublings,
    /// then stay at the slowest clock forever (never shut down).
    DivideOnly,
    /// Constant `T_min` sampling — the naïve baseline.
    Never,
    /// Grow the period linearly (`T_min`, `2·T_min`, `3·T_min`, ...)
    /// every `θ_div` cycles for `N_div` steps, then shut down.
    Linear,
}

impl fmt::Display for DivisionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DivisionPolicy::Recursive => "recursive",
            DivisionPolicy::DivideOnly => "divide-only",
            DivisionPolicy::Never => "no-division",
            DivisionPolicy::Linear => "linear",
        };
        f.write_str(s)
    }
}

/// Full clock-generator configuration.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::config::ClockGenConfig;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cfg = ClockGenConfig::prototype();
/// cfg.validate()?;
/// // ~30 MHz reference, ~15 MHz max sampling frequency (paper §5).
/// assert!((cfg.reference_frequency().as_hz_f64() - 30e6).abs() < 1e6);
/// assert_eq!(cfg.base_sampling_period().as_ns(), 66);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClockGenConfig {
    /// The pausable ring oscillator providing the raw clock.
    pub ring: RingOscillatorConfig,
    /// Prescaler stages between the ring and the reference clock
    /// (2 stages: 120 MHz → 30 MHz).
    pub prescaler_stages: u32,
    /// Cycles between successive divisions of the sampling clock.
    pub theta_div: u32,
    /// Number of divisions before the clock is switched off.
    pub n_div: u32,
    /// Division policy (the paper's scheme, its baseline, or ablations).
    pub policy: DivisionPolicy,
    /// Timestamp counter width in bits (the AETR word reserves 22).
    pub counter_bits: u32,
}

impl ClockGenConfig {
    /// The prototype configuration measured in the paper: 120 MHz ring,
    /// /4 prescaler → 30 MHz reference, 15 MHz max sampling frequency,
    /// `θ_div = 64`, `N_div = 3`, recursive division, 22-bit counter.
    pub fn prototype() -> ClockGenConfig {
        ClockGenConfig {
            ring: RingOscillatorConfig::igloo_nano(),
            prescaler_stages: 2,
            theta_div: 64,
            n_div: 3,
            policy: DivisionPolicy::Recursive,
            counter_bits: 22,
        }
    }

    /// Returns a copy with a different `θ_div` (the Fig. 6/7/8 sweeps).
    pub fn with_theta_div(mut self, theta_div: u32) -> ClockGenConfig {
        self.theta_div = theta_div;
        self
    }

    /// Returns a copy with a different `N_div`.
    pub fn with_n_div(mut self, n_div: u32) -> ClockGenConfig {
        self.n_div = n_div;
        self
    }

    /// Returns a copy with a different division policy.
    pub fn with_policy(mut self, policy: DivisionPolicy) -> ClockGenConfig {
        self.policy = policy;
        self
    }

    /// The degraded-mode configuration a watchdog falls back to when
    /// oscillator wakes become untrustworthy: `N_div` clamped to
    /// `n_div_clamp` and the policy forced to
    /// [`DivideOnly`](DivisionPolicy::DivideOnly), so the clock
    /// plateaus at its slowest division instead of ever shutting down.
    /// Power proportionality is sacrificed for timestamp coherence;
    /// the ring and prescaler (synthesis-time properties) are kept, so
    /// the result is always accepted by a runtime reconfiguration.
    pub fn degraded_fallback(&self, n_div_clamp: u32) -> ClockGenConfig {
        ClockGenConfig {
            n_div: self.n_div.min(n_div_clamp),
            policy: DivisionPolicy::DivideOnly,
            ..*self
        }
    }

    /// The reference clock frequency (ring output through the
    /// prescaler).
    pub fn reference_frequency(&self) -> Frequency {
        DividerChain::new(self.prescaler_stages)
            .expect("validated prescaler depth")
            .output(self.ring.config_frequency())
    }

    /// The reference clock period.
    pub fn reference_period(&self) -> SimDuration {
        DividerChain::new(self.prescaler_stages)
            .expect("validated prescaler depth")
            .output_period(self.ring.period())
    }

    /// The fastest sampling period `T_min` (half the reference
    /// frequency: the input is sampled every other reference cycle).
    pub fn base_sampling_period(&self) -> SimDuration {
        self.reference_period() * 2
    }

    /// The shortest inter-spike time the interface can resolve:
    /// two base sampling periods (Nyquist). For the prototype this is
    /// ≈133 ns, matching the paper's "130 ns or more can be sensed".
    pub fn min_resolvable_interval(&self) -> SimDuration {
        self.base_sampling_period() * 2
    }

    /// Saturation value of the timestamp counter.
    pub fn counter_max(&self) -> u64 {
        if self.counter_bits >= 64 {
            u64::MAX
        } else {
            (1u64 << self.counter_bits) - 1
        }
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first constraint violated; see
    /// [`ClockGenConfigError`].
    pub fn validate(&self) -> Result<(), ClockGenConfigError> {
        self.ring.validate().map_err(ClockGenConfigError::Ring)?;
        if self.prescaler_stages > 8 {
            return Err(ClockGenConfigError::PrescalerTooDeep { stages: self.prescaler_stages });
        }
        if self.theta_div < 2 {
            return Err(ClockGenConfigError::ThetaTooSmall { theta_div: self.theta_div });
        }
        if self.n_div > 20 {
            return Err(ClockGenConfigError::NDivTooLarge { n_div: self.n_div });
        }
        if !(4..=32).contains(&self.counter_bits) {
            return Err(ClockGenConfigError::CounterBits { bits: self.counter_bits });
        }
        Ok(())
    }
}

impl Default for ClockGenConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

impl RingOscillatorConfig {
    /// Frequency implied by the stage configuration (helper so that
    /// [`ClockGenConfig`] does not need a constructed oscillator).
    pub fn config_frequency(&self) -> Frequency {
        self.period().to_frequency()
    }
}

/// Constraint violations in a [`ClockGenConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockGenConfigError {
    /// The ring oscillator itself is misconfigured.
    Ring(RingOscillatorError),
    /// Prescaler deeper than the supported 8 stages.
    PrescalerTooDeep {
        /// Offending depth.
        stages: u32,
    },
    /// `θ_div < 2` leaves no room to measure anything between divisions.
    ThetaTooSmall {
        /// Offending value.
        theta_div: u32,
    },
    /// `N_div > 20` overflows any practical counter.
    NDivTooLarge {
        /// Offending value.
        n_div: u32,
    },
    /// Counter width outside 4..=32 bits.
    CounterBits {
        /// Offending width.
        bits: u32,
    },
}

impl fmt::Display for ClockGenConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClockGenConfigError::Ring(e) => write!(f, "ring oscillator: {e}"),
            ClockGenConfigError::PrescalerTooDeep { stages } => {
                write!(f, "prescaler of {stages} stages exceeds the supported 8")
            }
            ClockGenConfigError::ThetaTooSmall { theta_div } => {
                write!(f, "theta_div must be at least 2, got {theta_div}")
            }
            ClockGenConfigError::NDivTooLarge { n_div } => {
                write!(f, "n_div must be at most 20, got {n_div}")
            }
            ClockGenConfigError::CounterBits { bits } => {
                write!(f, "counter width must be 4..=32 bits, got {bits}")
            }
        }
    }
}

impl Error for ClockGenConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClockGenConfigError::Ring(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_matches_paper_numbers() {
        let cfg = ClockGenConfig::prototype();
        cfg.validate().unwrap();
        let f_ref = cfg.reference_frequency().as_hz_f64();
        assert!((f_ref - 30e6).abs() / 30e6 < 0.01, "reference {f_ref}");
        // Minimum resolvable interval ~133 ns (paper: "130 ns or more").
        let min_ns = cfg.min_resolvable_interval().as_ns();
        assert!((130..=140).contains(&min_ns), "min interval {min_ns} ns");
        assert_eq!(cfg.counter_max(), (1 << 22) - 1);
    }

    #[test]
    fn builder_style_updates() {
        let cfg = ClockGenConfig::prototype()
            .with_theta_div(16)
            .with_n_div(5)
            .with_policy(DivisionPolicy::Never);
        assert_eq!(cfg.theta_div, 16);
        assert_eq!(cfg.n_div, 5);
        assert_eq!(cfg.policy, DivisionPolicy::Never);
    }

    #[test]
    fn validation_catches_bad_values() {
        let base = ClockGenConfig::prototype();
        assert!(matches!(
            ClockGenConfig { theta_div: 1, ..base }.validate(),
            Err(ClockGenConfigError::ThetaTooSmall { .. })
        ));
        assert!(matches!(
            ClockGenConfig { n_div: 21, ..base }.validate(),
            Err(ClockGenConfigError::NDivTooLarge { .. })
        ));
        assert!(matches!(
            ClockGenConfig { counter_bits: 2, ..base }.validate(),
            Err(ClockGenConfigError::CounterBits { .. })
        ));
        assert!(matches!(
            ClockGenConfig { prescaler_stages: 9, ..base }.validate(),
            Err(ClockGenConfigError::PrescalerTooDeep { .. })
        ));
        let bad_ring = ClockGenConfig {
            ring: RingOscillatorConfig { stages: 4, ..RingOscillatorConfig::igloo_nano() },
            ..base
        };
        assert!(matches!(bad_ring.validate(), Err(ClockGenConfigError::Ring(_))));
    }

    #[test]
    fn degraded_fallback_clamps_and_never_sleeps() {
        let cfg = ClockGenConfig::prototype(); // N=3, recursive
        let degraded = cfg.degraded_fallback(1);
        assert_eq!(degraded.n_div, 1);
        assert_eq!(degraded.policy, DivisionPolicy::DivideOnly);
        assert_eq!(degraded.base_sampling_period(), cfg.base_sampling_period());
        degraded.validate().unwrap();
        // A clamp above the configured N_div changes only the policy.
        let loose = cfg.degraded_fallback(10);
        assert_eq!(loose.n_div, 3);
    }

    #[test]
    fn policy_display_names() {
        assert_eq!(DivisionPolicy::Recursive.to_string(), "recursive");
        assert_eq!(DivisionPolicy::Never.to_string(), "no-division");
    }

    #[test]
    fn wide_counter_does_not_overflow() {
        let cfg = ClockGenConfig { counter_bits: 32, ..ClockGenConfig::prototype() };
        assert_eq!(cfg.counter_max(), u32::MAX as u64);
    }
}
