//! Property-based tests of the full discrete-event interface: for
//! arbitrary small workloads, the architectural invariants hold.

use proptest::prelude::*;

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::mcu::McuReceiver;
use aetr_aer::address::Address;
use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_sim::time::{SimDuration, SimTime};

fn arbitrary_train() -> impl Strategy<Value = SpikeTrain> {
    // Up to 60 events with gaps from sub-tick to multi-millisecond, so
    // the run crosses sampling, division, shutdown and wake paths.
    proptest::collection::vec((1u64..3_000_000_000, 0u16..1024), 0..60).prop_map(|gaps| {
        let mut t = SimTime::ZERO;
        let spikes = gaps
            .into_iter()
            .map(|(gap_ps, addr)| {
                t += SimDuration::from_ps(gap_ps);
                Spike::new(t, Address::new(addr).expect("range-bounded"))
            })
            .collect();
        SpikeTrain::from_sorted(spikes).expect("cumulative times are sorted")
    })
}

fn any_policy() -> impl Strategy<Value = DivisionPolicy> {
    prop_oneof![
        Just(DivisionPolicy::Recursive),
        Just(DivisionPolicy::DivideOnly),
        Just(DivisionPolicy::Linear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the workload: no event is lost, the handshake protocol
    /// holds, power stays at or above the static floor, and the MCU
    /// receives exactly the sent address sequence.
    #[test]
    fn interface_invariants_hold(
        train in arbitrary_train(),
        theta in 2u32..64,
        n_div in 0u32..5,
        policy in any_policy(),
    ) {
        let config = InterfaceConfig {
            clock: ClockGenConfig::prototype()
                .with_theta_div(theta)
                .with_n_div(n_div)
                .with_policy(policy),
            ..InterfaceConfig::prototype()
        };
        let horizon = train
            .last_time()
            .unwrap_or(SimTime::ZERO)
            .saturating_add(SimDuration::from_us(100));
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, horizon);

        // Conservation.
        prop_assert_eq!(report.events.len(), train.len());
        prop_assert_eq!(report.handshake.len(), train.len());
        prop_assert_eq!(report.i2s.event_count(), train.len());
        prop_assert_eq!(report.fifo_stats.dropped, 0, "prototype FIFO never overflows here");

        // Protocol.
        prop_assert!(report.handshake.verify_protocol().is_ok());

        // Causality and order.
        let mut last_detection = SimTime::ZERO;
        for (ev, spike) in report.events.iter().zip(train.iter()) {
            prop_assert_eq!(ev.event.addr, spike.addr);
            prop_assert!(ev.request >= spike.time);
            prop_assert!(ev.detection > last_detection);
            last_detection = ev.detection;
        }

        // Power bounds.
        let uw = report.power.total.as_microwatts();
        prop_assert!(uw >= 50.0 - 1e-6, "below static floor: {}", uw);
        prop_assert!(uw < 6_000.0, "beyond any physical ceiling: {}", uw);

        // End-to-end address fidelity.
        let mcu = McuReceiver::new(config.clock.base_sampling_period());
        let rebuilt = mcu.receive(&report.i2s);
        let sent: Vec<u16> = train.iter().map(|s| s.addr.value()).collect();
        let got: Vec<u16> = rebuilt.iter().map(|s| s.addr.value()).collect();
        prop_assert_eq!(sent, got);
    }

    /// Timestamps through the DES are never smaller than the truth
    /// would allow: the measured delta covers at least the true delta
    /// minus one local quantum (detection-grid alignment), and the
    /// reconstruction is monotone.
    #[test]
    fn des_timestamps_are_sane(train in arbitrary_train()) {
        prop_assume!(train.len() >= 2);
        let config = InterfaceConfig::prototype();
        let horizon = train.last_time().unwrap() + SimDuration::from_us(100);
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, horizon);
        let base = config.clock.base_sampling_period();
        for w in report.events.windows(2) {
            let measured = w[1].event.timestamp.to_interval(base);
            // Measured interval reflects detection spacing: at least
            // one tick.
            prop_assert!(measured >= base);
        }
    }
}
