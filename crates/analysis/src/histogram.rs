//! Histograms with linear or logarithmic binning.
//!
//! Fig. 7b is a probability histogram of timestamp errors; Fig. 6/8
//! sweep log-spaced event rates. Both binning schemes live here.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Binning scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Binning {
    /// `bins` equal-width bins over `[lo, hi)`.
    Linear {
        /// Lower edge.
        lo: f64,
        /// Upper edge.
        hi: f64,
        /// Bin count.
        bins: usize,
    },
    /// `bins` equal-ratio bins over `[lo, hi)`; requires `lo > 0`.
    Logarithmic {
        /// Lower edge (> 0).
        lo: f64,
        /// Upper edge.
        hi: f64,
        /// Bin count.
        bins: usize,
    },
}

/// Invalid binning specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvalidBinningError {
    /// The rejected specification.
    pub binning: Binning,
}

impl fmt::Display for InvalidBinningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid binning {:?}: need lo < hi, bins > 0, and lo > 0 for log", self.binning)
    }
}

impl Error for InvalidBinningError {}

/// A populated histogram.
///
/// # Examples
///
/// ```
/// use aetr_analysis::histogram::{Binning, Histogram};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut h = Histogram::new(Binning::Linear { lo: 0.0, hi: 1.0, bins: 10 })?;
/// h.extend([0.05, 0.05, 0.95]);
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.bin_counts()[0], 2);
/// assert!((h.probabilities()[0] - 2.0 / 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    binning: Binning,
    counts: Vec<u64>,
    /// Samples below the first bin.
    pub underflow: u64,
    /// Samples at or above the last bin edge.
    pub overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidBinningError`] for empty ranges, zero bins, or
    /// non-positive log lower edges.
    pub fn new(binning: Binning) -> Result<Histogram, InvalidBinningError> {
        let ok = match binning {
            Binning::Linear { lo, hi, bins } => lo < hi && bins > 0,
            Binning::Logarithmic { lo, hi, bins } => 0.0 < lo && lo < hi && bins > 0,
        };
        if !ok {
            return Err(InvalidBinningError { binning });
        }
        let bins = match binning {
            Binning::Linear { bins, .. } | Binning::Logarithmic { bins, .. } => bins,
        };
        Ok(Histogram { binning, counts: vec![0; bins], underflow: 0, overflow: 0, total: 0 })
    }

    /// Adds one sample.
    pub fn add(&mut self, value: f64) {
        self.total += 1;
        match self.bin_of(value) {
            BinIndex::Under => self.underflow += 1,
            BinIndex::Over => self.overflow += 1,
            BinIndex::In(i) => self.counts[i] += 1,
        }
    }

    /// Adds many samples.
    pub fn extend(&mut self, values: impl IntoIterator<Item = f64>) {
        for v in values {
            self.add(v);
        }
    }

    fn bin_of(&self, value: f64) -> BinIndex {
        match self.binning {
            Binning::Linear { lo, hi, bins } => {
                if value < lo {
                    BinIndex::Under
                } else if value >= hi {
                    BinIndex::Over
                } else {
                    BinIndex::In(((value - lo) / (hi - lo) * bins as f64) as usize)
                }
            }
            Binning::Logarithmic { lo, hi, bins } => {
                if value < lo {
                    BinIndex::Under
                } else if value >= hi {
                    BinIndex::Over
                } else {
                    let t = (value / lo).ln() / (hi / lo).ln();
                    BinIndex::In(((t * bins as f64) as usize).min(bins - 1))
                }
            }
        }
    }

    /// Total samples offered (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Raw in-range bin counts.
    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// In-range bin probabilities (each count over the total sample
    /// count; zeros if empty).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// `(lower_edge, upper_edge)` of a bin.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin {i} out of range");
        match self.binning {
            Binning::Linear { lo, hi, bins } => {
                let w = (hi - lo) / bins as f64;
                (lo + w * i as f64, lo + w * (i + 1) as f64)
            }
            Binning::Logarithmic { lo, hi, bins } => {
                let r = (hi / lo).powf(1.0 / bins as f64);
                (lo * r.powi(i as i32), lo * r.powi(i as i32 + 1))
            }
        }
    }

    /// Geometric/arithmetic centre of a bin (matching the binning).
    pub fn bin_center(&self, i: usize) -> f64 {
        let (a, b) = self.bin_edges(i);
        match self.binning {
            Binning::Linear { .. } => (a + b) / 2.0,
            Binning::Logarithmic { .. } => (a * b).sqrt(),
        }
    }
}

enum BinIndex {
    Under,
    In(usize),
    Over,
}

/// The `p`-th percentile (0–100) of a sample set, by linear
/// interpolation on the sorted data. `None` for an empty set.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any sample is NaN.
pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
    assert!((0.0..=100.0).contains(&p), "percentile must be 0..=100, got {p}");
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning_places_samples() {
        let mut h = Histogram::new(Binning::Linear { lo: 0.0, hi: 10.0, bins: 10 }).unwrap();
        h.extend([0.0, 0.5, 5.5, 9.99]);
        assert_eq!(h.bin_counts()[0], 2);
        assert_eq!(h.bin_counts()[5], 1);
        assert_eq!(h.bin_counts()[9], 1);
    }

    #[test]
    fn under_and_overflow_tracked() {
        let mut h = Histogram::new(Binning::Linear { lo: 0.0, hi: 1.0, bins: 2 }).unwrap();
        h.extend([-0.1, 0.5, 1.0, 2.0]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn log_binning_equal_ratios() {
        let h = Histogram::new(Binning::Logarithmic { lo: 100.0, hi: 1e6, bins: 4 }).unwrap();
        let (a0, b0) = h.bin_edges(0);
        let (a1, b1) = h.bin_edges(1);
        assert!((b0 / a0 - b1 / a1).abs() < 1e-9, "equal ratio bins");
        assert!((a0 - 100.0).abs() < 1e-9);
        let (_, btop) = h.bin_edges(3);
        assert!((btop - 1e6).abs() / 1e6 < 1e-9);
    }

    #[test]
    fn log_binning_classifies_decades() {
        let mut h = Histogram::new(Binning::Logarithmic { lo: 1.0, hi: 1000.0, bins: 3 }).unwrap();
        h.extend([2.0, 20.0, 200.0]);
        assert_eq!(h.bin_counts(), &[1, 1, 1]);
    }

    #[test]
    fn probabilities_sum_to_in_range_fraction() {
        let mut h = Histogram::new(Binning::Linear { lo: 0.0, hi: 1.0, bins: 4 }).unwrap();
        h.extend([0.1, 0.2, 0.3, 5.0]);
        let sum: f64 = h.probabilities().iter().sum();
        assert!((sum - 0.75).abs() < 1e-12);
    }

    #[test]
    fn bin_centers_match_scheme() {
        let lin = Histogram::new(Binning::Linear { lo: 0.0, hi: 10.0, bins: 10 }).unwrap();
        assert!((lin.bin_center(0) - 0.5).abs() < 1e-12);
        let log = Histogram::new(Binning::Logarithmic { lo: 1.0, hi: 100.0, bins: 2 }).unwrap();
        assert!((log.bin_center(0) - 10f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn invalid_binnings_rejected() {
        assert!(Histogram::new(Binning::Linear { lo: 1.0, hi: 1.0, bins: 4 }).is_err());
        assert!(Histogram::new(Binning::Linear { lo: 0.0, hi: 1.0, bins: 0 }).is_err());
        assert!(Histogram::new(Binning::Logarithmic { lo: 0.0, hi: 1.0, bins: 4 }).is_err());
    }

    #[test]
    fn percentiles_interpolate() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&data, 0.0), Some(1.0));
        assert_eq!(percentile(&data, 100.0), Some(4.0));
        assert_eq!(percentile(&data, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }
}
