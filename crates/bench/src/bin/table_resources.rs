//! Implementation summary table (paper §5, first paragraph).
//!
//! Reproduces the reported implementation facts: resource utilization
//! on the IGLOO nano AGLN250V2 (31 %, ~600 equivalent gates), the
//! 30 MHz reference clock constraint, and the 130 ns minimum
//! resolvable inter-spike time against the CAVIAR 700 ns budget.

use aetr::resources::UtilizationReport;
use aetr_aer::handshake::CAVIAR_EVENT_BUDGET;
use aetr_bench::{banner, write_result};
use aetr_clockgen::config::ClockGenConfig;

fn main() {
    banner("Implementation table", "resource utilization and timing constraints", 0);

    let report = UtilizationReport::prototype();
    println!("{report}");

    let clock = ClockGenConfig::prototype();
    println!("timing:");
    println!("  ring oscillator:        {}", clock.ring.config_frequency());
    println!("  reference clock:        {}", clock.reference_frequency());
    println!("  max sampling frequency: {}", clock.base_sampling_period().to_frequency());
    println!("  min inter-spike time:   {}  (paper: 130 ns)", clock.min_resolvable_interval());
    println!("  CAVIAR event budget:    {CAVIAR_EVENT_BUDGET}  (paper: 700 ns)");
    println!(
        "  headroom:               {:.1}x",
        CAVIAR_EVENT_BUDGET.as_secs_f64() / clock.min_resolvable_interval().as_secs_f64()
    );

    let mut csv = String::from("block,flops,luts,ram_bits\n");
    for (b, r) in &report.per_block {
        csv.push_str(&format!("{b},{},{},{}\n", r.flops, r.luts, r.ram_bits));
    }
    csv.push_str(&format!(
        "total,{},{},{}\n",
        report.total.flops, report.total.luts, report.total.ram_bits
    ));
    let path = write_result("table_resources.csv", &csv).expect("write results");
    println!("\nCSV written to {}", path.display());
}
