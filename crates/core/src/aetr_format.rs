//! The Address-Event-Time Representation (AETR) word format.
//!
//! AETR enriches each AER event with an explicit timestamp — the time
//! delta from the previous event, measured in `T_min` ticks — making
//! the stream latency-insensitive: it "can be stored for an indefinite
//! amount of time before being processed or carried over any other
//! digital data transfer protocol" (paper §3).
//!
//! The wire format is one 32-bit word per event:
//!
//! ```text
//!  31        22 21                      0
//! +------------+-------------------------+
//! | address:10 |      timestamp:22       |
//! +------------+-------------------------+
//! ```
//!
//! A timestamp of all-ones is the *saturated* marker: the inter-event
//! interval exceeded the measurable range (the clock had shut down).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_aer::address::Address;
use aetr_sim::time::SimDuration;

/// Bits reserved for the timestamp field.
pub const TIMESTAMP_BITS: u32 = 22;

/// Largest representable timestamp; also the saturated marker.
pub const TIMESTAMP_MAX: u32 = (1 << TIMESTAMP_BITS) - 1;

/// The timestamp field: an inter-event delta in `T_min` ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Timestamp(u32);

impl Timestamp {
    /// The saturated timestamp (interval exceeded measurable range).
    pub const SATURATED: Timestamp = Timestamp(TIMESTAMP_MAX);

    /// Creates a timestamp from a tick count, clamping into the field
    /// (values at or above the field maximum become
    /// [`SATURATED`](Self::SATURATED)).
    pub fn from_ticks(ticks: u64) -> Timestamp {
        Timestamp(ticks.min(TIMESTAMP_MAX as u64) as u32)
    }

    /// The tick count.
    pub const fn ticks(self) -> u32 {
        self.0
    }

    /// `true` for the saturated marker.
    pub const fn is_saturated(self) -> bool {
        self.0 == TIMESTAMP_MAX
    }

    /// The time interval this timestamp encodes, given the base
    /// sampling period.
    pub fn to_interval(self, base_period: SimDuration) -> SimDuration {
        base_period.saturating_mul(self.0 as u64)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_saturated() {
            write!(f, "ts=SAT")
        } else {
            write!(f, "ts={}", self.0)
        }
    }
}

/// One AETR event: an address plus its inter-event timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AetrEvent {
    /// The AER address.
    pub addr: Address,
    /// Delta from the previous event in `T_min` ticks.
    pub timestamp: Timestamp,
}

impl AetrEvent {
    /// Creates an event.
    pub fn new(addr: Address, timestamp: Timestamp) -> AetrEvent {
        AetrEvent { addr, timestamp }
    }

    /// Packs into the 32-bit wire word.
    ///
    /// # Examples
    ///
    /// ```
    /// use aetr::aetr_format::{AetrEvent, Timestamp};
    /// use aetr_aer::address::Address;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let ev = AetrEvent::new(Address::new(0x2A)?, Timestamp::from_ticks(100));
    /// let word = ev.to_word();
    /// assert_eq!(AetrEvent::from_word(word), ev);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_word(self) -> u32 {
        (u32::from(self.addr.value()) << TIMESTAMP_BITS) | self.timestamp.0
    }

    /// Unpacks from the 32-bit wire word. Total: every `u32` is a
    /// valid word because the fields exactly tile the 32 bits.
    pub fn from_word(word: u32) -> AetrEvent {
        let addr = Address::new((word >> TIMESTAMP_BITS) as u16)
            .expect("10-bit field cannot exceed the address range");
        AetrEvent { addr, timestamp: Timestamp(word & TIMESTAMP_MAX) }
    }

    /// Serialises into little-endian bytes (I2S payload order).
    pub fn to_le_bytes(self) -> [u8; 4] {
        self.to_word().to_le_bytes()
    }

    /// Deserialises from little-endian bytes.
    pub fn from_le_bytes(bytes: [u8; 4]) -> AetrEvent {
        AetrEvent::from_word(u32::from_le_bytes(bytes))
    }
}

impl fmt::Display for AetrEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.addr, self.timestamp)
    }
}

/// Error decoding an AETR byte stream whose length is not a multiple
/// of the 4-byte word size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLengthError {
    /// The offending byte length.
    pub len: usize,
}

impl fmt::Display for DecodeLengthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AETR stream length {} is not a multiple of 4 bytes", self.len)
    }
}

impl Error for DecodeLengthError {}

/// Decodes a contiguous little-endian AETR byte stream.
///
/// # Errors
///
/// Returns [`DecodeLengthError`] if `bytes` is not word-aligned.
pub fn decode_stream(bytes: &[u8]) -> Result<Vec<AetrEvent>, DecodeLengthError> {
    if !bytes.len().is_multiple_of(4) {
        return Err(DecodeLengthError { len: bytes.len() });
    }
    Ok(bytes.chunks_exact(4).map(|c| AetrEvent::from_le_bytes([c[0], c[1], c[2], c[3]])).collect())
}

/// Encodes events into a contiguous little-endian byte stream.
pub fn encode_stream(events: &[AetrEvent]) -> Vec<u8> {
    events.iter().flat_map(|e| e.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_layout_matches_spec() {
        let ev = AetrEvent::new(Address::new(0b11_1111_1111).unwrap(), Timestamp::from_ticks(0));
        assert_eq!(ev.to_word(), 0xFFC0_0000);
        let ev2 = AetrEvent::new(Address::new(0).unwrap(), Timestamp::SATURATED);
        assert_eq!(ev2.to_word(), 0x003F_FFFF);
    }

    #[test]
    fn roundtrip_all_field_extremes() {
        for addr in [0u16, 1, 512, 1023] {
            for ticks in [0u64, 1, 1 << 21, (1 << 22) - 1] {
                let ev = AetrEvent::new(Address::new(addr).unwrap(), Timestamp::from_ticks(ticks));
                assert_eq!(AetrEvent::from_word(ev.to_word()), ev);
                assert_eq!(AetrEvent::from_le_bytes(ev.to_le_bytes()), ev);
            }
        }
    }

    #[test]
    fn oversized_ticks_saturate() {
        let ts = Timestamp::from_ticks(u64::MAX);
        assert!(ts.is_saturated());
        assert_eq!(ts, Timestamp::SATURATED);
        // The exact field maximum is also the saturation marker.
        assert!(Timestamp::from_ticks(TIMESTAMP_MAX as u64).is_saturated());
        assert!(!Timestamp::from_ticks(TIMESTAMP_MAX as u64 - 1).is_saturated());
    }

    #[test]
    fn interval_reconstruction() {
        let base = SimDuration::from_ns(66);
        let ts = Timestamp::from_ticks(1_000);
        assert_eq!(ts.to_interval(base), SimDuration::from_us(66));
    }

    #[test]
    fn stream_codec_roundtrip() {
        let events: Vec<AetrEvent> = (0..100)
            .map(|i| {
                AetrEvent::new(
                    Address::new(i % 1024).unwrap(),
                    Timestamp::from_ticks(i as u64 * 37),
                )
            })
            .collect();
        let bytes = encode_stream(&events);
        assert_eq!(bytes.len(), 400);
        assert_eq!(decode_stream(&bytes).unwrap(), events);
    }

    #[test]
    fn misaligned_stream_rejected() {
        let err = decode_stream(&[1, 2, 3]).unwrap_err();
        assert_eq!(err.len, 3);
        assert!(err.to_string().contains("multiple of 4"));
    }

    #[test]
    fn display_forms() {
        let ev = AetrEvent::new(Address::new(7).unwrap(), Timestamp::from_ticks(42));
        assert_eq!(ev.to_string(), "@7 ts=42");
        let sat = AetrEvent::new(Address::new(7).unwrap(), Timestamp::SATURATED);
        assert_eq!(sat.to_string(), "@7 ts=SAT");
    }
}
