//! Nearest-centroid classification over spike-train features.
//!
//! Deliberately tiny — the kind of classifier an STM32-class MCU
//! would actually run on batched AETR data (the paper's intro names
//! k-means/SVM/NN as the heavyweight alternatives that *don't* fit).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::features::{cosine_distance, FeatureVector};

/// A trained nearest-centroid model: one mean profile per label.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CentroidModel {
    centroids: BTreeMap<String, FeatureVector>,
}

/// Training errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// No examples at all.
    Empty,
    /// Feature vectors of inconsistent length.
    DimensionMismatch {
        /// First length seen.
        expected: usize,
        /// Offending length.
        found: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::Empty => write!(f, "no training examples"),
            TrainError::DimensionMismatch { expected, found } => {
                write!(f, "feature length {found} differs from {expected}")
            }
        }
    }
}

impl Error for TrainError {}

impl CentroidModel {
    /// Trains from `(label, features)` examples: the centroid of each
    /// label is the renormalised mean profile.
    ///
    /// # Errors
    ///
    /// Returns [`TrainError`] on an empty set or mismatched feature
    /// dimensions.
    pub fn train(
        examples: impl IntoIterator<Item = (String, FeatureVector)>,
    ) -> Result<CentroidModel, TrainError> {
        let mut sums: BTreeMap<String, (Vec<f64>, usize, f64, usize)> = BTreeMap::new();
        let mut dim: Option<usize> = None;
        for (label, f) in examples {
            match dim {
                None => dim = Some(f.profile.len()),
                Some(d) if d != f.profile.len() => {
                    return Err(TrainError::DimensionMismatch {
                        expected: d,
                        found: f.profile.len(),
                    })
                }
                _ => {}
            }
            let entry =
                sums.entry(label).or_insert_with(|| (vec![0.0; f.profile.len()], 0, 0.0, 0));
            for (acc, p) in entry.0.iter_mut().zip(&f.profile) {
                *acc += p;
            }
            entry.1 += 1;
            entry.2 += f.isi_cv;
            entry.3 += f.event_count;
        }
        if sums.is_empty() {
            return Err(TrainError::Empty);
        }
        let centroids = sums
            .into_iter()
            .map(|(label, (mut profile, n, cv_sum, count_sum))| {
                let total: f64 = profile.iter().sum();
                if total > 0.0 {
                    for p in &mut profile {
                        *p /= total;
                    }
                }
                (
                    label,
                    FeatureVector {
                        profile,
                        event_count: count_sum / n,
                        isi_cv: cv_sum / n as f64,
                    },
                )
            })
            .collect();
        Ok(CentroidModel { centroids })
    }

    /// Known labels, sorted.
    pub fn labels(&self) -> Vec<&str> {
        self.centroids.keys().map(String::as_str).collect()
    }

    /// Classifies a feature vector: the label of the nearest centroid
    /// by cosine distance, with the distance. `None` on an untrained
    /// model.
    pub fn classify(&self, features: &FeatureVector) -> Option<(&str, f64)> {
        self.centroids
            .iter()
            .map(|(label, c)| (label.as_str(), cosine_distance(features, c)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("distances are finite"))
    }
}

/// A labelled evaluation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Correct classifications.
    pub correct: usize,
    /// Total classified.
    pub total: usize,
    /// `(truth, predicted) -> count` confusion counts.
    pub confusion: BTreeMap<(String, String), usize>,
}

impl Evaluation {
    /// Fraction correct.
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.correct as f64 / self.total as f64
        }
    }
}

/// Evaluates a model over labelled examples.
pub fn evaluate<'a>(
    model: &CentroidModel,
    examples: impl IntoIterator<Item = (&'a str, &'a FeatureVector)>,
) -> Evaluation {
    let mut eval = Evaluation { correct: 0, total: 0, confusion: BTreeMap::new() };
    for (truth, f) in examples {
        let Some((pred, _)) = model.classify(f) else { continue };
        eval.total += 1;
        if pred == truth {
            eval.correct += 1;
        }
        *eval.confusion.entry((truth.to_owned(), pred.to_owned())).or_insert(0) += 1;
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(profile: Vec<f64>) -> FeatureVector {
        FeatureVector { profile, event_count: 10, isi_cv: 1.0 }
    }

    #[test]
    fn trains_and_classifies_separable_clusters() {
        let model = CentroidModel::train(vec![
            ("low".to_owned(), fv(vec![1.0, 0.0, 0.0])),
            ("low".to_owned(), fv(vec![0.9, 0.1, 0.0])),
            ("high".to_owned(), fv(vec![0.0, 0.1, 0.9])),
            ("high".to_owned(), fv(vec![0.0, 0.0, 1.0])),
        ])
        .unwrap();
        assert_eq!(model.labels(), vec!["high", "low"]);
        let (label, d) = model.classify(&fv(vec![0.8, 0.2, 0.0])).unwrap();
        assert_eq!(label, "low");
        assert!(d < 0.1);
        assert_eq!(model.classify(&fv(vec![0.0, 0.2, 0.8])).unwrap().0, "high");
    }

    #[test]
    fn evaluation_counts_confusion() {
        let model = CentroidModel::train(vec![
            ("a".to_owned(), fv(vec![1.0, 0.0])),
            ("b".to_owned(), fv(vec![0.0, 1.0])),
        ])
        .unwrap();
        let x_a = fv(vec![0.9, 0.1]);
        let x_b = fv(vec![0.2, 0.8]);
        let x_wrong = fv(vec![0.95, 0.05]);
        let eval = evaluate(&model, vec![("a", &x_a), ("b", &x_b), ("b", &x_wrong)]);
        assert_eq!(eval.total, 3);
        assert_eq!(eval.correct, 2);
        assert!((eval.accuracy() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(eval.confusion[&("b".to_owned(), "a".to_owned())], 1);
    }

    #[test]
    fn empty_training_set_errors() {
        assert_eq!(CentroidModel::train(vec![]), Err(TrainError::Empty));
    }

    #[test]
    fn dimension_mismatch_errors() {
        let err = CentroidModel::train(vec![
            ("a".to_owned(), fv(vec![1.0, 0.0])),
            ("a".to_owned(), fv(vec![1.0, 0.0, 0.0])),
        ])
        .unwrap_err();
        assert_eq!(err, TrainError::DimensionMismatch { expected: 2, found: 3 });
        assert!(err.to_string().contains("differs"));
    }

    #[test]
    fn untrained_model_classifies_none() {
        let model = CentroidModel::default();
        assert_eq!(model.classify(&fv(vec![1.0])), None);
    }
}
