//! Dual-clock FIFO with Gray-code pointer synchronisation.
//!
//! The prototype runs *everything* on the one variable-frequency
//! clock, which is why its I2S bit clock slows down with the division
//! (a quirk the paper does not dwell on). The robust alternative —
//! and what a production version of this interface would do — is a
//! clock-domain-crossing FIFO: write side on the variable sampling
//! clock, read side on a fixed I2S clock, with the occupancy pointers
//! exchanged through per-domain 2-FF synchronisers in Gray code so a
//! pointer in flight is wrong by at most one (conservative full/empty,
//! never corruption).
//!
//! The model is behavioural but honest about the CDC semantics: each
//! domain sees the other's pointer *delayed by two of its own clock
//! periods*, so `full`/`empty` are pessimistic exactly the way the
//! hardware is.

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

/// Binary → reflected-binary (Gray) code.
///
/// # Examples
///
/// ```
/// use aetr::cdc_fifo::{binary_to_gray, gray_to_binary};
///
/// assert_eq!(binary_to_gray(0b1011), 0b1110);
/// assert_eq!(gray_to_binary(0b1110), 0b1011);
/// ```
pub const fn binary_to_gray(x: u32) -> u32 {
    x ^ (x >> 1)
}

/// Reflected-binary (Gray) → binary code.
pub const fn gray_to_binary(mut g: u32) -> u32 {
    let mut shift = 1;
    while shift < 32 {
        g ^= g >> shift;
        shift <<= 1;
    }
    g
}

/// Configuration of the dual-clock FIFO.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdcFifoConfig {
    /// Capacity in entries; must be a power of two (Gray pointers
    /// wrap). Named `depth` for hardware familiarity, but per the
    /// shared vocabulary ([`fifo`](crate::fifo) module docs) this is
    /// *capacity*, not occupancy.
    pub depth: usize,
    /// Write-domain clock period (the variable sampling clock's
    /// *fastest* period for worst-case analysis).
    pub write_period: SimDuration,
    /// Read-domain clock period (e.g. the fixed I2S bit clock).
    pub read_period: SimDuration,
}

impl CdcFifoConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CdcFifoError::BadDepth`] unless depth is a power of
    /// two ≥ 2, or [`CdcFifoError::ZeroPeriod`] for zero periods.
    pub fn validate(&self) -> Result<(), CdcFifoError> {
        if self.depth < 2 || !self.depth.is_power_of_two() {
            return Err(CdcFifoError::BadDepth { depth: self.depth });
        }
        if self.write_period.is_zero() || self.read_period.is_zero() {
            return Err(CdcFifoError::ZeroPeriod);
        }
        Ok(())
    }
}

/// CDC FIFO errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CdcFifoError {
    /// Depth not a power of two ≥ 2.
    BadDepth {
        /// Offending depth.
        depth: usize,
    },
    /// A domain clock period was zero.
    ZeroPeriod,
    /// Push refused: the synchronised read pointer says full.
    Full,
    /// Non-monotonic access time within a domain.
    TimeWentBackwards,
}

impl fmt::Display for CdcFifoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdcFifoError::BadDepth { depth } => {
                write!(f, "depth {depth} must be a power of two >= 2")
            }
            CdcFifoError::ZeroPeriod => write!(f, "domain clock periods must be non-zero"),
            CdcFifoError::Full => write!(f, "FIFO full (as seen through the synchroniser)"),
            CdcFifoError::TimeWentBackwards => {
                write!(f, "per-domain access times must be non-decreasing")
            }
        }
    }
}

impl Error for CdcFifoError {}

/// Timestamped pointer history for one domain.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct PointerTrail {
    /// `(update time, pointer value)` — value is the *binary* pointer;
    /// the Gray encoding is what crosses, and crossing is modelled by
    /// the delay, not by corrupting values.
    updates: Vec<(SimTime, u64)>,
}

impl PointerTrail {
    fn push(&mut self, t: SimTime, v: u64) {
        self.updates.push((t, v));
    }

    /// Drops history older than `keep` before `t` — anything beyond
    /// the longest synchroniser delay can never be queried again.
    fn prune(&mut self, t: SimTime, keep: SimDuration) {
        let cutoff = t.saturating_duration_since(SimTime::ZERO);
        if cutoff <= keep {
            return;
        }
        let horizon = t - keep;
        // Keep at least the newest entry at or before the horizon so
        // `seen_through` still resolves.
        let split = self.updates.partition_point(|&(ut, _)| ut <= horizon);
        if split > 1 {
            self.updates.drain(..split - 1);
        }
    }

    /// The value visible at `t` minus `delay` (0 before any update).
    fn seen_through(&self, t: SimTime, delay: SimDuration) -> u64 {
        let cutoff = t.saturating_duration_since(SimTime::ZERO);
        let visible_until = if cutoff > delay { t - delay } else { SimTime::ZERO };
        self.updates
            .iter()
            .rev()
            .find(|&&(ut, _)| ut <= visible_until)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    fn latest(&self) -> u64 {
        self.updates.last().map(|&(_, v)| v).unwrap_or(0)
    }
}

/// The dual-clock FIFO.
///
/// # Examples
///
/// ```
/// use aetr::cdc_fifo::{CdcFifo, CdcFifoConfig};
/// use aetr_sim::time::{SimDuration, SimTime};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fifo: CdcFifo<u32> = CdcFifo::new(CdcFifoConfig {
///     depth: 8,
///     write_period: SimDuration::from_ns(66),
///     read_period: SimDuration::from_ns(33),
/// })?;
/// fifo.push(SimTime::from_ns(100), 0xAB)?;
/// // The reader sees the write only after its 2-FF synchroniser.
/// assert_eq!(fifo.pop(SimTime::from_ns(120)), None);
/// assert_eq!(fifo.pop(SimTime::from_ns(200)), Some(0xAB));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdcFifo<T> {
    config: CdcFifoConfig,
    storage: VecDeque<T>,
    write_trail: PointerTrail,
    read_trail: PointerTrail,
    last_write: SimTime,
    last_read: SimTime,
    /// Pushes refused because the (conservative) full flag was up.
    pub refused_full: u64,
    /// Pending single-event upset on the *write* pointer as the reader
    /// sees it (bit index in Gray space); cleared by the next read-side
    /// access.
    upset_write_ptr_bit: Option<u32>,
    /// Pending single-event upset on the *read* pointer as the writer
    /// sees it; cleared by the next write-side access.
    upset_read_ptr_bit: Option<u32>,
    /// Times a corrupted pointer view disagreed with physical storage
    /// and the hardened full/empty detectors refused the access
    /// (phantom pops refused, physical-full pushes refused).
    pub upset_anomalies: u64,
}

impl<T> CdcFifo<T> {
    /// Creates an empty FIFO.
    ///
    /// # Errors
    ///
    /// Returns [`CdcFifoError`] for invalid configurations.
    pub fn new(config: CdcFifoConfig) -> Result<CdcFifo<T>, CdcFifoError> {
        config.validate()?;
        Ok(CdcFifo {
            config,
            storage: VecDeque::with_capacity(config.depth),
            write_trail: PointerTrail::default(),
            read_trail: PointerTrail::default(),
            last_write: SimTime::ZERO,
            last_read: SimTime::ZERO,
            refused_full: 0,
            upset_write_ptr_bit: None,
            upset_read_ptr_bit: None,
            upset_anomalies: 0,
        })
    }

    /// Number of bits in a crossing pointer (the `2N` Gray space).
    pub fn pointer_bits(&self) -> u32 {
        (2 * self.config.depth as u64).trailing_zeros()
    }

    /// Injects a single-event upset into the write pointer *as the
    /// read domain sees it*: bit `bit` (mod [`pointer_bits`]
    /// (Self::pointer_bits)) of the Gray-coded pointer on the crossing
    /// wires flips for the next read-side access, then the correct
    /// value re-latches.
    pub fn upset_write_pointer(&mut self, bit: u32) {
        self.upset_write_ptr_bit = Some(bit % self.pointer_bits());
    }

    /// Injects a single-event upset into the read pointer as the
    /// *write* domain sees it (see [`upset_write_pointer`]
    /// (Self::upset_write_pointer)).
    pub fn upset_read_pointer(&mut self, bit: u32) {
        self.upset_read_ptr_bit = Some(bit % self.pointer_bits());
    }

    /// A pointer value with one Gray-space bit flipped, re-anchored to
    /// the raw value's wrap epoch. Because Gray neighbours differ in
    /// one bit, a flipped bit decodes to *some* valid pointer — wrong
    /// by an arbitrary amount, never an invalid code.
    fn corrupted(&self, raw: u64, bit: u32) -> u64 {
        let span = 2 * self.config.depth as u64;
        let wrapped = (raw % span) as u32;
        let gray = binary_to_gray(wrapped) ^ (1 << bit);
        let decoded = u64::from(gray_to_binary(gray)) % span;
        raw - u64::from(wrapped) + decoded
    }

    fn sync_delay_into_write(&self) -> SimDuration {
        self.config.write_period * 2
    }

    /// Drops pointer history no future query can reach. Domain clocks
    /// advance independently, so the horizon is the *slower* domain's
    /// last time minus the longest synchroniser delay.
    fn prune_trails(&mut self) {
        let slowest = self.last_write.min(self.last_read);
        let keep = self.sync_delay_into_read().max(self.sync_delay_into_write());
        self.write_trail.prune(slowest, keep);
        self.read_trail.prune(slowest, keep);
    }

    fn sync_delay_into_read(&self) -> SimDuration {
        self.config.read_period * 2
    }

    /// Occupancy as the *write* domain sees it at `now` (pessimistic:
    /// the read pointer is stale, so this over-estimates). Saturated
    /// to `[0, depth]`: an upset pointer can claim any occupancy, but
    /// the view itself never reports the impossible.
    pub fn occupancy_seen_by_writer(&self, now: SimTime) -> u64 {
        let wr = self.write_trail.latest();
        let mut rd = self.read_trail.seen_through(now, self.sync_delay_into_write());
        if let Some(bit) = self.upset_read_ptr_bit {
            rd = self.corrupted(rd, bit);
        }
        wr.saturating_sub(rd).min(self.config.depth as u64)
    }

    /// Occupancy as the *read* domain sees it at `now` (pessimistic:
    /// the write pointer is stale, so this under-estimates). Saturated
    /// to `[0, depth]` like the writer view.
    pub fn occupancy_seen_by_reader(&self, now: SimTime) -> u64 {
        let mut wr = self.write_trail.seen_through(now, self.sync_delay_into_read());
        if let Some(bit) = self.upset_write_ptr_bit {
            wr = self.corrupted(wr, bit);
        }
        let rd = self.read_trail.latest();
        wr.saturating_sub(rd).min(self.config.depth as u64)
    }

    /// True occupancy (omniscient; tests and assertions only) — the
    /// canonical "depth" of this buffer in the shared vocabulary of
    /// the [`fifo`](crate::fifo) module docs, equivalent to
    /// [`AetrFifo::len`](crate::fifo::AetrFifo::len). The per-domain
    /// [`occupancy_seen_by_writer`](Self::occupancy_seen_by_writer) /
    /// [`occupancy_seen_by_reader`](Self::occupancy_seen_by_reader)
    /// views are deliberately stale bounds on this value, never the
    /// depth itself.
    pub fn true_occupancy(&self) -> usize {
        self.storage.len()
    }

    /// Pushes from the write domain at `now`.
    ///
    /// # Errors
    ///
    /// [`CdcFifoError::Full`] if the synchronised view says full;
    /// [`CdcFifoError::TimeWentBackwards`] on non-monotonic use.
    pub fn push(&mut self, now: SimTime, item: T) -> Result<(), CdcFifoError> {
        if now < self.last_write {
            return Err(CdcFifoError::TimeWentBackwards);
        }
        self.last_write = now;
        let seen = self.occupancy_seen_by_writer(now);
        // The transient upset lived on the crossing wires for exactly
        // this access; the correct pointer re-latches afterwards.
        self.upset_read_ptr_bit = None;
        if seen >= self.config.depth as u64 {
            self.refused_full += 1;
            return Err(CdcFifoError::Full);
        }
        if self.storage.len() >= self.config.depth {
            // An upset read pointer claimed free space that physically
            // is not there; the hardened full detector refuses rather
            // than overwrite unread data. Unreachable without faults.
            self.upset_anomalies += 1;
            self.refused_full += 1;
            return Err(CdcFifoError::Full);
        }
        self.storage.push_back(item);
        let next = self.write_trail.latest() + 1;
        self.write_trail.push(now, next);
        self.prune_trails();
        Ok(())
    }

    /// Pops from the read domain at `now`; `None` when the
    /// synchronised view says empty (even if data physically arrived
    /// more recently).
    pub fn pop(&mut self, now: SimTime) -> Option<T> {
        if now < self.last_read {
            return None;
        }
        self.last_read = now;
        let seen = self.occupancy_seen_by_reader(now);
        // The upset crossed for exactly this access.
        self.upset_write_ptr_bit = None;
        if seen == 0 {
            return None;
        }
        match self.storage.pop_front() {
            Some(item) => {
                let next = self.read_trail.latest() + 1;
                self.read_trail.push(now, next);
                self.prune_trails();
                Some(item)
            }
            None => {
                // An upset write pointer promised data that never
                // arrived; refusing the phantom pop (instead of the
                // old panic) keeps the stream correct — the reader
                // simply retries later. Unreachable without faults.
                self.upset_anomalies += 1;
                None
            }
        }
    }

    /// The Gray encoding of the current write pointer (what would sit
    /// on the crossing wires).
    pub fn write_pointer_gray(&self) -> u32 {
        binary_to_gray((self.write_trail.latest() % (2 * self.config.depth as u64)) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CdcFifoConfig {
        CdcFifoConfig {
            depth: 8,
            write_period: SimDuration::from_ns(66),
            read_period: SimDuration::from_ns(33),
        }
    }

    #[test]
    fn gray_code_roundtrip_and_single_bit_property() {
        for x in 0u32..4096 {
            assert_eq!(gray_to_binary(binary_to_gray(x)), x);
            // Successive Gray codes differ in exactly one bit — the
            // property that makes pointer crossing safe.
            let diff = binary_to_gray(x) ^ binary_to_gray(x + 1);
            assert_eq!(diff.count_ones(), 1, "at {x}");
        }
    }

    #[test]
    fn data_crosses_after_the_sync_delay() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        fifo.push(SimTime::from_ns(100), 1).unwrap();
        // Read-domain sync delay is 2 × 33 ns = 66 ns.
        assert_eq!(fifo.pop(SimTime::from_ns(150)), None, "too early");
        assert_eq!(fifo.pop(SimTime::from_ns(166)), Some(1));
    }

    #[test]
    fn order_is_preserved_across_the_crossing() {
        let mut fifo: CdcFifo<u32> = CdcFifo::new(cfg()).unwrap();
        for i in 0..8u32 {
            fifo.push(SimTime::from_ns(100 + i as u64 * 66), i).unwrap();
        }
        let mut out = Vec::new();
        let mut t = SimTime::from_us(1);
        while let Some(v) = fifo.pop(t) {
            out.push(v);
            t += SimDuration::from_ns(33);
        }
        assert_eq!(out, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn full_flag_is_conservative_but_correct() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        // Fill it completely.
        for i in 0..8 {
            fifo.push(SimTime::from_ns(100 + i * 66), i as u8).unwrap();
        }
        assert_eq!(fifo.push(SimTime::from_ns(700), 99), Err(CdcFifoError::Full));
        assert_eq!(fifo.refused_full, 1);
        // Reader drains one at t=1 µs; the writer's stale view still
        // says full 50 ns later (sync delay into write = 132 ns)...
        assert_eq!(fifo.pop(SimTime::from_us(1)), Some(0));
        assert_eq!(
            fifo.push(SimTime::from_us(1) + SimDuration::from_ns(50), 99),
            Err(CdcFifoError::Full),
            "pessimistic while the read pointer is in flight"
        );
        // ...but clears once the pointer lands.
        fifo.push(SimTime::from_us(1) + SimDuration::from_ns(140), 99).unwrap();
        assert_eq!(fifo.true_occupancy(), 8);
    }

    #[test]
    fn reader_view_never_exceeds_truth() {
        // The invariant that rules out underflow corruption.
        let mut fifo: CdcFifo<u32> = CdcFifo::new(cfg()).unwrap();
        let mut t_write = SimTime::from_ns(10);
        let mut t_read = SimTime::from_ns(20);
        for i in 0..200u32 {
            if i % 3 != 2 {
                let _ = fifo.push(t_write, i);
                t_write += SimDuration::from_ns(66);
            } else {
                let before = fifo.true_occupancy() as u64;
                let seen = fifo.occupancy_seen_by_reader(t_read);
                assert!(seen <= before, "reader sees {seen} of {before}");
                let _ = fifo.pop(t_read);
                t_read += SimDuration::from_ns(33);
            }
        }
    }

    #[test]
    fn gray_pointer_wraps_within_2n_space() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        let mut t = SimTime::from_ns(10);
        for round in 0..40u64 {
            let _ = fifo.push(t, round as u8);
            t += SimDuration::from_ns(66);
            let _ = fifo.pop(t);
            t += SimDuration::from_ns(66);
            assert!(fifo.write_pointer_gray() < 16, "Gray pointer in 2N space");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(matches!(
            CdcFifoConfig { depth: 6, ..cfg() }.validate(),
            Err(CdcFifoError::BadDepth { depth: 6 })
        ));
        assert!(matches!(
            CdcFifoConfig { depth: 1, ..cfg() }.validate(),
            Err(CdcFifoError::BadDepth { .. })
        ));
        assert!(matches!(
            CdcFifoConfig { read_period: SimDuration::ZERO, ..cfg() }.validate(),
            Err(CdcFifoError::ZeroPeriod)
        ));
    }

    #[test]
    fn phantom_pop_from_upset_write_pointer_is_refused() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        // Empty FIFO; an upset makes the reader's copy of the write
        // pointer claim one entry.
        fifo.upset_write_pointer(0);
        assert_eq!(fifo.occupancy_seen_by_reader(SimTime::from_ns(100)), 1, "corrupted view");
        assert_eq!(fifo.pop(SimTime::from_ns(100)), None, "hardened empty detector refuses");
        assert_eq!(fifo.upset_anomalies, 1);
        // The upset was transient: behaviour is nominal afterwards.
        fifo.push(SimTime::from_ns(200), 7).unwrap();
        assert_eq!(fifo.pop(SimTime::from_ns(400)), Some(7));
        assert_eq!(fifo.upset_anomalies, 1);
    }

    #[test]
    fn upset_read_pointer_cannot_overwrite_unread_data() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        let mut t = SimTime::from_ns(100);
        for i in 0..8 {
            fifo.push(t, i).unwrap();
            t += SimDuration::from_ns(66);
        }
        // Physically full; the upset makes the writer's copy of the
        // read pointer claim a slot freed up.
        fifo.upset_read_pointer(0);
        assert!(fifo.occupancy_seen_by_writer(t) < 8, "corrupted view claims space");
        assert_eq!(fifo.push(t, 99), Err(CdcFifoError::Full), "physical-full detector holds");
        assert_eq!(fifo.upset_anomalies, 1);
        assert_eq!(fifo.true_occupancy(), 8, "no unread entry was overwritten");
    }

    #[test]
    fn fault_injector_drives_upsets_deterministically() {
        use aetr_faults::{FaultInjector, FaultPlan, FaultRates};
        let plan = FaultPlan::nominal(42)
            .with_rates(FaultRates { cdc_gray_upset: 0.3, ..FaultRates::default() });
        let campaign = |plan: &FaultPlan| -> (Vec<u64>, u64, u64) {
            let mut injector = FaultInjector::new(plan);
            let mut fifo: CdcFifo<u64> = CdcFifo::new(cfg()).unwrap();
            let mut t = SimTime::from_ns(10);
            let mut popped = Vec::new();
            for i in 0..500u64 {
                t += SimDuration::from_ns(66);
                if let Some(bit) = injector.upset_gray_bit(fifo.pointer_bits()) {
                    if i % 2 == 0 {
                        fifo.upset_write_pointer(bit);
                    } else {
                        fifo.upset_read_pointer(bit);
                    }
                }
                if i % 3 != 2 {
                    let _ = fifo.push(t, i);
                } else if let Some(v) = fifo.pop(t) {
                    popped.push(v);
                }
            }
            (popped, fifo.upset_anomalies, fifo.refused_full)
        };
        let first = campaign(&plan);
        assert_eq!(first, campaign(&plan), "same seed, same campaign outcome");
        // Order survives the upsets even when anomalies occurred.
        assert!(first.0.windows(2).all(|w| w[0] < w[1]), "FIFO order preserved");
    }

    #[test]
    fn time_monotonicity_enforced_per_domain() {
        let mut fifo: CdcFifo<u8> = CdcFifo::new(cfg()).unwrap();
        fifo.push(SimTime::from_ns(100), 1).unwrap();
        assert_eq!(fifo.push(SimTime::from_ns(50), 2), Err(CdcFifoError::TimeWentBackwards));
    }
}
