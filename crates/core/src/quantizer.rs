//! Behavioral AER→AETR quantization pipeline.
//!
//! The fast ("Matlab-equivalent", §5.1) model: a spike train goes
//! through the clock generator's sampling engine and comes out as AETR
//! events with quantized timestamps, plus the clock-activity record
//! the power model consumes. This is the engine behind the Fig. 6
//! accuracy sweep and the Fig. 8 power sweep.

use serde::{Deserialize, Serialize};

use aetr_aer::spike::{Spike, SpikeTrain};
use aetr_clockgen::config::ClockGenConfig;
use aetr_clockgen::engine::{ActivityReport, SamplingEngine};
use aetr_power::model::ActivityInput;
use aetr_sim::time::{SimDuration, SimTime};

use crate::aetr_format::{AetrEvent, Timestamp};

/// One spike with its quantized AETR event and bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedSpike {
    /// The original sensor spike.
    pub spike: Spike,
    /// The AETR event produced for it.
    pub event: AetrEvent,
    /// When the interface sampled it.
    pub detection: SimTime,
    /// `true` if the timestamp saturated.
    pub saturated: bool,
}

/// Output of quantizing a whole train.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizerOutput {
    /// Per-spike records, in input order.
    pub records: Vec<QuantizedSpike>,
    /// Clock-activity record over `[0, horizon]` for the power model.
    pub activity: ActivityInput,
    /// `T_min`, the unit of the timestamps.
    pub base_period: SimDuration,
}

impl QuantizerOutput {
    /// The AETR events alone.
    pub fn events(&self) -> Vec<AetrEvent> {
        self.records.iter().map(|r| r.event).collect()
    }
}

/// One inter-spike-interval measurement for error analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsiErrorSample {
    /// The true interval between consecutive sensor spikes.
    pub true_isi: SimDuration,
    /// The interval the timestamp encodes.
    pub measured: SimDuration,
    /// `true` if the timestamp saturated.
    pub saturated: bool,
}

impl IsiErrorSample {
    /// Bounded relative error `|measured − true| / max(measured, true)`,
    /// always in `[0, 1]` — the metric of the Fig. 6 curve, whose
    /// y-axis spans 0.001–1: a saturated timestamp (`measured ≪ true`)
    /// scores ≈1, and so does a sub-Nyquist interval rounded up to one
    /// tick (`measured ≫ true`). In the active region where
    /// `measured ≈ true` it coincides with the plain ratio.
    pub fn relative_error(&self) -> f64 {
        let t = self.true_isi.as_secs_f64();
        let m = self.measured.as_secs_f64();
        let denom = t.max(m);
        if denom == 0.0 {
            0.0
        } else {
            (m - t).abs() / denom
        }
    }

    /// Unbounded overshoot ratio `|measured − true| / true` (0 for a
    /// zero true interval). Diverges for sub-Nyquist intervals; useful
    /// for characterising the high-activity region in isolation.
    pub fn overshoot_ratio(&self) -> f64 {
        let t = self.true_isi.as_secs_f64();
        if t == 0.0 {
            0.0
        } else {
            (self.measured.as_secs_f64() - t).abs() / t
        }
    }
}

/// Quantizes a spike train with the given clock configuration.
///
/// The activity record covers `[0, horizon]`; pass the workload's end
/// time so trailing idle power is accounted.
///
/// # Panics
///
/// Panics if `config` is invalid.
///
/// # Examples
///
/// ```
/// use aetr::quantizer::quantize_train;
/// use aetr_aer::generator::{PoissonGenerator, SpikeSource};
/// use aetr_clockgen::config::ClockGenConfig;
/// use aetr_sim::time::SimTime;
///
/// let train = PoissonGenerator::new(100_000.0, 64, 1).generate(SimTime::from_ms(10));
/// let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_ms(10));
/// assert_eq!(out.records.len(), train.len());
/// ```
pub fn quantize_train(
    config: &ClockGenConfig,
    train: &SpikeTrain,
    horizon: SimTime,
) -> QuantizerOutput {
    let mut engine = SamplingEngine::new(config);
    let base_period = engine.base_period();
    let records: Vec<QuantizedSpike> = train
        .iter()
        .map(|&spike| {
            let q = engine.process(spike.time);
            QuantizedSpike {
                spike,
                event: AetrEvent::new(spike.addr, Timestamp::from_ticks(q.timestamp_ticks)),
                detection: q.detection,
                saturated: q.saturated,
            }
        })
        .collect();
    engine.finish(horizon);
    QuantizerOutput { records, activity: to_power_activity(engine.report()), base_period }
}

/// Converts the clock generator's activity report into the power
/// model's input type.
pub fn to_power_activity(report: &ActivityReport) -> ActivityInput {
    ActivityInput {
        active: report.usage.active.clone(),
        off: report.usage.off,
        wake_count: report.wake_count,
        event_count: report.event_count,
    }
}

/// Pairs each measured timestamp with the true inter-spike interval it
/// estimates. The first record has no predecessor and is skipped, as
/// in the paper's error analysis.
pub fn isi_error_samples(output: &QuantizerOutput) -> Vec<IsiErrorSample> {
    output
        .records
        .windows(2)
        .map(|w| IsiErrorSample {
            true_isi: w[1].spike.time - w[0].spike.time,
            measured: w[1].event.timestamp.to_interval(output.base_period),
            saturated: w[1].saturated,
        })
        .collect()
}

/// Reconstructs spike times from an AETR event sequence by cumulating
/// the measured deltas (the downstream MCU's view of the stream).
/// Saturated timestamps contribute their clamped interval — the best
/// the MCU can do.
pub fn reconstruct_train(
    events: &[AetrEvent],
    base_period: SimDuration,
    origin: SimTime,
) -> SpikeTrain {
    let mut t = origin;
    let mut spikes = Vec::with_capacity(events.len());
    for e in events {
        t = t.saturating_add(e.timestamp.to_interval(base_period));
        spikes.push(Spike::new(t, e.addr));
    }
    SpikeTrain::from_sorted(spikes).expect("cumulative sums are monotone")
}

#[cfg(test)]
mod tests {
    use super::*;
    use aetr_aer::address::Address;
    use aetr_aer::generator::{PoissonGenerator, RegularGenerator, SpikeSource};

    fn proto() -> ClockGenConfig {
        ClockGenConfig::prototype()
    }

    #[test]
    fn active_region_error_is_below_3_percent() {
        // 100 kevt/s Poisson: mean ISI 10 µs, squarely in the active
        // region for θ=64 (the Fig. 6 claim).
        let train = PoissonGenerator::new(100_000.0, 64, 11).generate(SimTime::from_ms(200));
        let out = quantize_train(&proto(), &train, SimTime::from_ms(200));
        let samples = isi_error_samples(&out);
        let mean: f64 =
            samples.iter().map(IsiErrorSample::relative_error).sum::<f64>() / samples.len() as f64;
        assert!(mean < 0.03, "mean relative error {mean}");
    }

    #[test]
    fn very_low_rate_saturates_most_timestamps() {
        // 100 evt/s: mean ISI 10 ms >> 64 µs max measurable.
        let train = PoissonGenerator::new(100.0, 64, 3).generate(SimTime::from_secs(2));
        let out = quantize_train(&proto(), &train, SimTime::from_secs(2));
        let saturated = out.records.iter().filter(|r| r.saturated).count();
        assert!(
            saturated as f64 / out.records.len() as f64 > 0.9,
            "{saturated}/{} saturated",
            out.records.len()
        );
    }

    #[test]
    fn events_preserve_addresses_in_order() {
        let train = PoissonGenerator::new(50_000.0, 128, 5).generate(SimTime::from_ms(20));
        let out = quantize_train(&proto(), &train, SimTime::from_ms(20));
        for (r, s) in out.records.iter().zip(train.iter()) {
            assert_eq!(r.event.addr, s.addr);
            assert_eq!(r.spike, *s);
        }
    }

    #[test]
    fn reconstruction_tracks_original_within_quantization() {
        let train =
            RegularGenerator::new(SimDuration::from_us(20), 4).generate(SimTime::from_ms(10));
        let out = quantize_train(&proto(), &train, SimTime::from_ms(10));
        let rebuilt = reconstruct_train(&out.events(), out.base_period, SimTime::ZERO);
        assert_eq!(rebuilt.len(), train.len());
        // Each reconstructed ISI within one divided-period quantum of
        // the true 20 µs (20 µs sits in segment 2: quantum 4·T_min).
        for (r, t) in rebuilt.inter_spike_intervals().zip(train.inter_spike_intervals()) {
            let err = (r.as_secs_f64() - t.as_secs_f64()).abs();
            assert!(err <= 4.0 * out.base_period.as_secs_f64() + 1e-12, "err {err}");
        }
    }

    #[test]
    fn activity_event_counts_match() {
        let train = PoissonGenerator::new(10_000.0, 8, 2).generate(SimTime::from_ms(50));
        let out = quantize_train(&proto(), &train, SimTime::from_ms(50));
        assert_eq!(out.activity.event_count, train.len() as u64);
    }

    #[test]
    fn empty_train_yields_idle_activity() {
        let out = quantize_train(&proto(), &SpikeTrain::new(), SimTime::from_ms(100));
        assert!(out.records.is_empty());
        assert!(isi_error_samples(&out).is_empty());
        // Mostly off after the idle run-down (~64 µs of 100 ms).
        assert!(out.activity.off > SimDuration::from_ms(99));
    }

    #[test]
    fn saturated_events_reconstruct_with_clamped_interval() {
        let events = vec![AetrEvent::new(Address::new(1).unwrap(), Timestamp::SATURATED)];
        let rebuilt = reconstruct_train(&events, SimDuration::from_ns(66), SimTime::ZERO);
        let t = rebuilt.first_time().unwrap();
        assert_eq!(t, SimTime::ZERO + Timestamp::SATURATED.to_interval(SimDuration::from_ns(66)));
    }

    #[test]
    fn error_metrics_on_degenerate_intervals() {
        // A simultaneous spike pair measured as one tick: the bounded
        // metric scores it as fully wrong, the overshoot ratio has no
        // meaningful normaliser and reports 0.
        let s = IsiErrorSample {
            true_isi: SimDuration::ZERO,
            measured: SimDuration::from_ns(66),
            saturated: false,
        };
        assert_eq!(s.relative_error(), 1.0);
        assert_eq!(s.overshoot_ratio(), 0.0);
        // Both zero: nothing to compare.
        let z = IsiErrorSample {
            true_isi: SimDuration::ZERO,
            measured: SimDuration::ZERO,
            saturated: false,
        };
        assert_eq!(z.relative_error(), 0.0);
        // Exact measurement: both metrics zero.
        let exact = IsiErrorSample {
            true_isi: SimDuration::from_us(10),
            measured: SimDuration::from_us(10),
            saturated: false,
        };
        assert_eq!(exact.relative_error(), 0.0);
        assert_eq!(exact.overshoot_ratio(), 0.0);
        // Saturation: measured << true scores ~1 on the bounded metric.
        let sat = IsiErrorSample {
            true_isi: SimDuration::from_ms(10),
            measured: SimDuration::from_us(64),
            saturated: true,
        };
        assert!(sat.relative_error() > 0.99);
    }
}
