//! Tabular output: aligned ASCII tables and CSV, the formats the
//! figure harnesses print and save.

use std::fmt::Write as _;

/// A simple column-aligned table builder.
///
/// # Examples
///
/// ```
/// use aetr_analysis::table::Table;
///
/// let mut t = Table::new(vec!["rate (evt/s)", "power (mW)"]);
/// t.row(vec!["1000".into(), "0.12".into()]);
/// let text = t.to_ascii();
/// assert!(text.contains("rate (evt/s)"));
/// assert!(text.lines().count() >= 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics on an empty header list.
    pub fn new(headers: Vec<impl Into<String>>) -> Table {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as an aligned ASCII table with a separator under the
    /// header.
    pub fn to_ascii(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| self.rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let render = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
            }
            out.push('\n');
        };
        render(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            render(r, &mut out);
        }
        out
    }

    /// Renders as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let emit = |cells: &[String], out: &mut String| {
            out.push_str("| ");
            out.push_str(&cells.join(" | "));
            out.push_str(" |\n");
        };
        emit(&self.headers, &mut out);
        out.push('|');
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for r in &self.rows {
            emit(r, &mut out);
        }
        out
    }

    /// Renders as CSV (RFC-4180-ish: cells containing commas or quotes
    /// are quoted, quotes doubled).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let emit = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.headers, &mut out);
        for r in &self.rows {
            emit(r, &mut out);
        }
        out
    }
}

/// Formats a float with engineering-friendly precision: 4 significant
/// digits, no scientific notation below a million.
pub fn fmt_sig(value: f64) -> String {
    if value == 0.0 {
        return "0".to_owned();
    }
    let magnitude = value.abs().log10().floor() as i32;
    if magnitude >= 6 || magnitude <= -5 {
        format!("{value:.3e}")
    } else {
        let decimals = (3 - magnitude).max(0) as usize;
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_alignment() {
        let mut t = Table::new(vec!["x", "value"]);
        t.row(vec!["1".into(), "10".into()]);
        t.row(vec!["1000".into(), "5".into()]);
        let text = t.to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // Right-aligned: every line ends in a non-space.
        assert!(lines.iter().all(|l| !l.ends_with(' ')));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"), "{md}");
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(vec!["name", "note"]);
        t.row(vec!["a,b".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(0.012345), "0.01235");
        assert_eq!(fmt_sig(123.456), "123.5");
        assert_eq!(fmt_sig(550_000.0), "550000");
        assert!(fmt_sig(12_345_678.0).contains('e'));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one".into()]);
    }
}
