//! Regenerates a compact version of every experiment and writes
//! `results/REPORT.md` — the one-command reproduction check.
//!
//! The per-figure binaries (`fig2_waveform`, `fig6_error`, ...) remain
//! the full-resolution harnesses; this runs reduced grids so the whole
//! sweep finishes in seconds and the report is diff-able run to run
//! (everything is seeded).
//!
//! ```sh
//! cargo run --release -p aetr-bench --bin reproduce_all
//! ```

use std::fmt::Write as _;

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr::resources::UtilizationReport;
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_bench::{banner, lfsr_workload, poisson_workload, write_result};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_clockgen::schedule::record_waveform;
use aetr_power::ideal::IdealModel;
use aetr_power::model::PowerModel;
use aetr_sim::time::SimTime;

fn main() {
    banner("reproduce_all", "compact regeneration of every figure/table -> results/REPORT.md", 7);
    let mut md = String::new();
    let _ = writeln!(md, "# AETR reproduction report\n");
    let _ = writeln!(
        md,
        "Compact deterministic regeneration of the DAC'17 evaluation. Full-resolution\n\
         harnesses: `fig2_waveform`, `fig6_error`, `fig7_cochlea`, `fig8_power`,\n\
         `table_resources`, `headline_summary`, `ablation_*`.\n"
    );

    fig2(&mut md);
    fig6(&mut md);
    fig7(&mut md);
    fig8(&mut md);
    resources(&mut md);

    let path = write_result("REPORT.md", &md).expect("write results");
    println!("report written to {}", path.display());
}

fn fig2(md: &mut String) {
    println!("fig2: waveform...");
    let config = ClockGenConfig::prototype().with_theta_div(8).with_n_div(3);
    let wave = record_waveform(&config, &[], SimTime::from_us(20));
    let mults: Vec<String> = wave.divisions.iter().map(|&(_, m)| m.to_string()).collect();
    let _ = writeln!(md, "## Figure 2 — divided clock waveform (θ=8, N=3)\n");
    let _ = writeln!(md, "* rising edges before shutdown: {}", wave.rising_edges().len());
    let _ = writeln!(md, "* division sequence: {} (paper: 2, 4, 8)", mults.join(", "));
    let _ = writeln!(md, "* shutdowns: {}\n", wave.shutdowns.len());
}

fn fig6(md: &mut String) {
    println!("fig6: error sweep...");
    let mut table = Table::new(vec!["theta", "rate (evt/s)", "mean err", "sat %"]);
    for theta in [16u32, 64] {
        let config = ClockGenConfig::prototype().with_theta_div(theta);
        for (i, &rate) in log_space(100.0, 2e6, 7).iter().enumerate() {
            let (train, horizon) = poisson_workload(rate, 100 + i as u64, 1_000);
            let out = quantize_train(&config, &train, horizon);
            let s = isi_error_samples(&out);
            if s.is_empty() {
                continue;
            }
            let mean = s.iter().map(|e| e.relative_error()).sum::<f64>() / s.len() as f64;
            let sat = out.records.iter().filter(|r| r.saturated).count() as f64
                / out.records.len() as f64;
            table.row(vec![
                theta.to_string(),
                fmt_sig(rate),
                format!("{mean:.4}"),
                format!("{:.1}", sat * 100.0),
            ]);
        }
    }
    let _ = writeln!(md, "## Figure 6 — timestamp error vs rate\n");
    let _ = writeln!(md, "```\n{}```\n", table.to_ascii());
    let _ = writeln!(
        md,
        "Expected shape: error ≈ 1 in the saturated (inactive) region, well below\n\
         3 % in the active region, rising again toward the Nyquist limit.\n"
    );
}

fn fig7(md: &mut String) {
    println!("fig7: cochlea word...");
    let audio = aetr_cochlea::word::fig7_word(16_000, 0xF17);
    let mut cochlea = aetr_cochlea::model::Cochlea::new(aetr_cochlea::model::CochleaConfig::das1())
        .expect("valid config");
    let train = cochlea.process(&audio);
    let horizon = SimTime::ZERO + audio.duration();
    let _ = writeln!(md, "## Figure 7 — cochlea word\n");
    let _ = writeln!(md, "* {} spikes from {} of audio", train.len(), audio.duration());
    for theta in [16u32, 32, 64] {
        let out =
            quantize_train(&ClockGenConfig::prototype().with_theta_div(theta), &train, horizon);
        let s = isi_error_samples(&out);
        let low = s.iter().filter(|e| e.relative_error() < 0.03).count() as f64 / s.len() as f64;
        let _ = writeln!(md, "* θ={theta}: P(err < 3%) = {low:.2}");
    }
    let _ = writeln!(md, "\nPaper trend: increasing θ_div shifts error mass toward zero. ✔\n");
}

fn fig8(md: &mut String) {
    println!("fig8: power sweep...");
    let model = PowerModel::igloo_nano();
    let power = |config: &ClockGenConfig, rate: f64, seed: u32| {
        let (train, horizon) = lfsr_workload(rate, seed, 1_000);
        let out = quantize_train(config, &train, horizon);
        model.evaluate(&out.activity).total
    };
    let proto = ClockGenConfig::prototype();
    let naive = proto.with_policy(DivisionPolicy::Never);
    let mut table = Table::new(vec!["rate (evt/s)", "theta=64 (mW)", "naive (mW)", "ideal (mW)"]);
    let ideal = IdealModel::fit_from_high_activity(
        power(&proto, 550_000.0, 9),
        550_000.0,
        model.static_power,
    );
    for (i, &rate) in log_space(10.0, 800_000.0, 7).iter().enumerate() {
        table.row(vec![
            fmt_sig(rate),
            format!("{:.3}", power(&proto, rate, 200 + i as u32).as_milliwatts()),
            format!("{:.3}", power(&naive, rate, 300 + i as u32).as_milliwatts()),
            format!("{:.3}", ideal.power_at(rate).as_milliwatts()),
        ]);
    }
    let _ = writeln!(md, "## Figure 8 — power vs rate\n");
    let _ = writeln!(md, "```\n{}```\n", table.to_ascii());
    let _ = writeln!(
        md,
        "Expected shape: naïve flat at ≈4.4 mW; divided curve falling to the 50 µW\n\
         floor (~90× span), tracking the ideal line at low rates. E_spike fit: {}.\n",
        ideal.e_spike
    );
}

fn resources(md: &mut String) {
    println!("resources...");
    let report = UtilizationReport::prototype();
    let _ = writeln!(md, "## Implementation summary\n");
    let _ = writeln!(md, "```\n{report}```\n");
    let _ = writeln!(
        md,
        "Paper: 31 % utilization, ~600 equivalent gates, 30 MHz reference, 130 ns\n\
         minimum inter-spike time.\n"
    );
}
