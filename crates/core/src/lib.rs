//! # aetr — energy-proportional AER time-to-information extraction
//!
//! A full reproduction of *"An Ultra-Low Power Address-Event Sensor
//! Interface for Energy-Proportional Time-to-Information Extraction"*
//! (Di Mauro, Conti, Benini — DAC 2017) as a simulated system.
//!
//! The interface couples an asynchronous AER spiking sensor to an
//! ordinary synchronous microcontroller by tagging every event with an
//! explicit inter-event timestamp (the **AETR** format,
//! [`aetr_format`]) measured by a sampling clock that is recursively
//! divided between events and stopped entirely during silence — power
//! scales from milliwatts under a 550 kevt/s event storm down to the
//! 50 µW static floor with no input, while timestamp accuracy stays
//! above 97 % in the active region.
//!
//! ## Layers
//!
//! * [`quantizer`] — the fast behavioral model (the paper's Matlab
//!   equivalent): spike train in, AETR events + clock activity out.
//! * [`interface`] — the full discrete-event simulation of the Fig. 3
//!   architecture: [`front_end`], [`fifo`], [`crossbar`], [`i2s`],
//!   [`config_bus`]/[`spi`], driven by the pausable clock generator.
//! * [`mcu`] — the downstream consumer: I2S decode, timeline
//!   reconstruction, end-to-end fidelity reporting.
//! * [`resources`] — the static utilization model of the IGLOO nano
//!   prototype.
//!
//! # Examples
//!
//! Quantize a Poisson spike stream and inspect accuracy and power:
//!
//! ```
//! use aetr::quantizer::{isi_error_samples, quantize_train};
//! use aetr_aer::generator::{PoissonGenerator, SpikeSource};
//! use aetr_clockgen::config::ClockGenConfig;
//! use aetr_power::model::PowerModel;
//! use aetr_sim::time::SimTime;
//!
//! let train = PoissonGenerator::new(100_000.0, 64, 42).generate(SimTime::from_ms(20));
//! let out = quantize_train(&ClockGenConfig::prototype(), &train, SimTime::from_ms(20));
//!
//! let errors = isi_error_samples(&out);
//! let mean: f64 = errors.iter().map(|e| e.relative_error()).sum::<f64>()
//!     / errors.len() as f64;
//! assert!(mean < 0.03, "active-region error stays under the 3% bound");
//!
//! let power = PowerModel::igloo_nano().evaluate(&out.activity);
//! assert!(power.total.as_milliwatts() < 4.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aetr_format;
pub mod campaign;
pub mod cdc_fifo;
pub mod config_bus;
pub mod crossbar;
pub mod fifo;
pub mod front_end;
pub mod i2s;
pub mod interface;
pub mod latency;
pub mod mcu;
pub mod quantizer;
pub mod resources;
pub mod spi;
pub mod wave;

pub use aetr_format::{AetrEvent, Timestamp};
pub use fifo::{AetrFifo, FifoConfig};
pub use interface::{AerToI2sInterface, InterfaceConfig, InterfaceReport};
pub use mcu::{FidelityReport, McuReceiver};
pub use quantizer::{quantize_train, QuantizerOutput};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use aetr_aer::address::Address;

    use crate::aetr_format::{decode_stream, encode_stream, AetrEvent, Timestamp};
    use crate::config_bus::{Register, RegisterFile};
    use crate::fifo::{AetrFifo, FifoConfig, OverflowPolicy, PushOutcome};
    use crate::spi::{run_frame, write_frame, SpiResponse, SpiSlave};

    fn any_event() -> impl Strategy<Value = AetrEvent> {
        (0u16..1024, 0u64..(1 << 22)).prop_map(|(a, t)| {
            AetrEvent::new(Address::new(a).expect("in range"), Timestamp::from_ticks(t))
        })
    }

    proptest! {
        /// Every 32-bit word decodes and re-encodes to itself: the
        /// AETR format is a total bijection on u32.
        #[test]
        fn aetr_word_bijection(word in any::<u32>()) {
            prop_assert_eq!(AetrEvent::from_word(word).to_word(), word);
        }

        /// Stream encode/decode round-trips arbitrary event sequences.
        #[test]
        fn aetr_stream_roundtrip(events in proptest::collection::vec(any_event(), 0..200)) {
            let bytes = encode_stream(&events);
            prop_assert_eq!(decode_stream(&bytes).expect("aligned"), events);
        }

        /// The FIFO behaves exactly like a bounded VecDeque reference
        /// model under arbitrary push/pop interleavings (DropNewest).
        #[test]
        fn fifo_matches_reference_model(
            ops in proptest::collection::vec(proptest::bool::ANY, 0..400),
            capacity_words in 1usize..32,
        ) {
            let config = FifoConfig {
                capacity_bytes: capacity_words * 4,
                watermark: capacity_words,
                overflow: OverflowPolicy::DropNewest,
            };
            let mut fifo = AetrFifo::new(config);
            let mut reference: std::collections::VecDeque<AetrEvent> =
                std::collections::VecDeque::new();
            let mut counter = 0u64;
            for push in ops {
                if push {
                    let ev = AetrEvent::new(
                        Address::from_raw_masked(counter as u16),
                        Timestamp::from_ticks(counter),
                    );
                    counter += 1;
                    let outcome = fifo.push(ev);
                    if reference.len() < capacity_words {
                        reference.push_back(ev);
                        prop_assert_eq!(outcome, PushOutcome::Stored);
                    } else {
                        prop_assert_eq!(outcome, PushOutcome::DroppedNewest);
                    }
                } else {
                    prop_assert_eq!(fifo.pop(), reference.pop_front());
                }
                prop_assert_eq!(fifo.len(), reference.len());
            }
        }

        /// SPI write frames for any valid (register, value) pair either
        /// apply exactly or are rejected with the register untouched.
        #[test]
        fn spi_writes_apply_or_reject_atomically(addr in 0u8..16, value in any::<u32>()) {
            let mut regs = RegisterFile::new();
            let mut spi = SpiSlave::new();
            let snapshot = regs.clone();
            let (resp, _) = run_frame(&mut spi, &mut regs, &write_frame(addr, value));
            match resp.expect("full frame always responds") {
                SpiResponse::WriteOk { register, value: v } => {
                    prop_assert_eq!(v, value);
                    prop_assert_eq!(regs.read(register), expected_stored(register, value));
                }
                SpiResponse::Rejected(_) => {
                    prop_assert_eq!(regs, snapshot, "rejected write must not change state");
                }
                SpiResponse::ReadOk { .. } => prop_assert!(false, "write frame produced a read"),
            }
        }

        /// Under arbitrary interleavings of pushes, pops and injected
        /// Gray-pointer upsets, the CDC FIFO's synchronised occupancy
        /// views stay within `[0, depth]`, physical occupancy never
        /// exceeds depth, and pops yield exactly the pushed sequence
        /// in order — never a fabricated or reordered item.
        #[test]
        fn cdc_fifo_contains_gray_pointer_upsets(
            ops in proptest::collection::vec((0u8..4, 0u32..32), 0..300),
            depth_log2 in 1u32..5,
        ) {
            use crate::cdc_fifo::{CdcFifo, CdcFifoConfig};
            use aetr_sim::time::{SimDuration, SimTime};

            let depth = 1usize << depth_log2;
            let config = CdcFifoConfig {
                depth,
                write_period: SimDuration::from_ns(66),
                read_period: SimDuration::from_ns(33),
            };
            let mut fifo: CdcFifo<u64> = CdcFifo::new(config).expect("valid config");
            let mut pushed = Vec::new();
            let mut popped = Vec::new();
            let mut next = 0u64;
            let mut t = SimTime::ZERO;
            for (op, bit) in ops {
                t += SimDuration::from_ns(40);
                match op {
                    0 => {
                        if fifo.push(t, next).is_ok() {
                            pushed.push(next);
                        }
                        next += 1;
                    }
                    1 => {
                        if let Some(v) = fifo.pop(t) {
                            popped.push(v);
                        }
                    }
                    2 => fifo.upset_write_pointer(bit),
                    _ => fifo.upset_read_pointer(bit),
                }
                prop_assert!(fifo.occupancy_seen_by_writer(t) <= depth as u64);
                prop_assert!(fifo.occupancy_seen_by_reader(t) <= depth as u64);
                prop_assert!(fifo.true_occupancy() <= depth);
            }
            prop_assert_eq!(&popped[..], &pushed[..popped.len()]);
        }
    }

    /// CTRL masks to one bit; every other writable register stores
    /// verbatim.
    fn expected_stored(register: Register, value: u32) -> u32 {
        match register {
            Register::Ctrl => value & 1,
            _ => value,
        }
    }
}
