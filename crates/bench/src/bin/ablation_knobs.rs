//! Ablation: the `θ_div` / `N_div` design-space matrix.
//!
//! The paper closes §5.2 with: "These two parameters can be used as
//! two different knobs to match both the desired accuracy and the
//! desired maximum time interval that the interface is able to cover."
//! This harness charts the whole knob space: for each (θ, N) pair, the
//! measurable range, the active-region accuracy, and the power at a
//! fixed 10 kevt/s workload.

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_analysis::table::Table;
use aetr_bench::{banner, poisson_workload, write_result};
use aetr_clockgen::config::ClockGenConfig;
use aetr_clockgen::segments::SegmentTable;
use aetr_power::model::PowerModel;

const SEED: u64 = 0xAB6;

fn main() {
    banner("Ablation", "the theta/N design space: range, accuracy, power", SEED);

    let model = PowerModel::igloo_nano();
    let mut table = Table::new(vec![
        "theta",
        "n_div",
        "max interval",
        "err @ mid-range",
        "power @ 10 kevt/s (uW)",
    ]);

    for &theta in &[16u32, 32, 64, 128] {
        for &n_div in &[1u32, 3, 5, 7] {
            let config = ClockGenConfig::prototype().with_theta_div(theta).with_n_div(n_div);
            let seg = SegmentTable::new(&config);
            let max = seg.max_measurable().expect("recursive policy saturates");

            // Accuracy probe: Poisson at a rate whose mean ISI sits in
            // the middle of this configuration's measurable range.
            let probe_rate = 2.0 / max.as_secs_f64();
            let (train, horizon) = poisson_workload(probe_rate, SEED + theta as u64, 1_500);
            let out = quantize_train(&config, &train, horizon);
            let s = isi_error_samples(&out);
            let mean_err =
                s.iter().map(|e| e.relative_error()).sum::<f64>() / s.len().max(1) as f64;

            // Power probe at a common rate.
            let (ptrain, phorizon) = poisson_workload(10_000.0, SEED + n_div as u64, 1_500);
            let pout = quantize_train(&config, &ptrain, phorizon);
            let power = model.evaluate(&pout.activity).total;

            table.row(vec![
                theta.to_string(),
                n_div.to_string(),
                max.to_string(),
                format!("{:.4}", mean_err),
                format!("{:.1}", power.as_microwatts()),
            ]);
        }
    }
    println!("{}", table.to_ascii());
    println!(
        "reading: θ_div sets the accuracy floor (~1/θ on the median) and scales the\n\
         range linearly; N_div scales the range geometrically (2^(N+1)-1) at ~zero\n\
         accuracy cost in-range but delays the shutdown power saving — exactly the\n\
         paper's 'two knobs'."
    );

    let path = write_result("ablation_knobs.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
