//! Frequency divider chain.
//!
//! The 120 MHz ring-oscillator output is prescaled by a cascade of
//! toggle flip-flops down to the 30 MHz reference clock, and further
//! divided under FSM control during recursive division. Each stage
//! halves the frequency; a stage counts one output toggle per two input
//! edges.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{Frequency, SimDuration};

/// A chain of divide-by-two stages.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::divider::DividerChain;
/// use aetr_sim::time::Frequency;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // 120 MHz ring output -> 30 MHz reference (paper §4.1).
/// let prescaler = DividerChain::new(2)?;
/// let reference = prescaler.output(Frequency::from_mhz(120));
/// assert_eq!(reference, Frequency::from_mhz(30));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DividerChain {
    stages: u32,
}

/// Error for divider chains too deep to be meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DividerDepthError {
    /// Requested stage count.
    pub stages: u32,
}

impl fmt::Display for DividerDepthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divider chain of {} stages exceeds the supported 32", self.stages)
    }
}

impl Error for DividerDepthError {}

impl DividerChain {
    /// Creates a chain of `stages` divide-by-two flip-flops (0 stages
    /// is a wire).
    ///
    /// # Errors
    ///
    /// Returns [`DividerDepthError`] for more than 32 stages (the
    /// output frequency would underflow any practical representation).
    pub fn new(stages: u32) -> Result<DividerChain, DividerDepthError> {
        if stages > 32 {
            return Err(DividerDepthError { stages });
        }
        Ok(DividerChain { stages })
    }

    /// Number of stages.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Overall division ratio (`2^stages`).
    pub fn ratio(&self) -> u64 {
        1u64 << self.stages
    }

    /// Output frequency for a given input.
    pub fn output(&self, input: Frequency) -> Frequency {
        input.divided_pow2(self.stages)
    }

    /// Output period for a given input period.
    pub fn output_period(&self, input_period: SimDuration) -> SimDuration {
        input_period.saturating_mul(self.ratio())
    }

    /// Number of flip-flops toggling, for the resource model.
    pub fn flop_count(&self) -> u32 {
        self.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stage_chain_is_a_wire() {
        let chain = DividerChain::new(0).unwrap();
        assert_eq!(chain.ratio(), 1);
        assert_eq!(chain.output(Frequency::from_mhz(120)), Frequency::from_mhz(120));
    }

    #[test]
    fn prototype_prescaler_120_to_30() {
        let chain = DividerChain::new(2).unwrap();
        assert_eq!(chain.ratio(), 4);
        assert_eq!(chain.output(Frequency::from_mhz(120)), Frequency::from_mhz(30));
        assert_eq!(chain.output_period(SimDuration::from_ps(8_333)), SimDuration::from_ps(33_332));
    }

    #[test]
    fn deep_chains_rejected() {
        assert!(DividerChain::new(33).is_err());
        assert!(DividerChain::new(32).is_ok());
        assert!(DividerChain::new(33).unwrap_err().to_string().contains("32"));
    }

    #[test]
    fn flop_count_matches_stages() {
        assert_eq!(DividerChain::new(5).unwrap().flop_count(), 5);
    }
}
