//! Quickstart: timestamp a spike stream and see the energy win.
//!
//! ```sh
//! cargo run -p aetr --example quickstart
//! ```

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_aer::generator::{PoissonGenerator, SpikeSource};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_power::model::PowerModel;
use aetr_sim::time::SimTime;

fn main() {
    // 1. A sensor-like workload: 100 kevt/s Poisson spikes for 100 ms.
    let train = PoissonGenerator::new(100_000.0, 64, 42).generate(SimTime::from_ms(100));
    println!("workload: {} spikes at ~{:.0} evt/s", train.len(), train.mean_rate());

    // 2. The paper's interface configuration: θ_div = 64, N_div = 3,
    //    recursive clock division with shutdown.
    let config = ClockGenConfig::prototype();
    let out = quantize_train(&config, &train, SimTime::from_ms(100));

    // 3. Timestamps are explicit now: show the first few AETR events.
    println!("\nfirst five AETR events (address + inter-event delta):");
    let mut prev = aetr_sim::time::SimTime::ZERO;
    for record in out.records.iter().take(5) {
        println!(
            "  {}  (true gap {}, measured {})",
            record.event,
            record.spike.time - prev,
            record.event.timestamp.to_interval(out.base_period)
        );
        prev = record.spike.time;
    }

    // 4. Accuracy: mean relative timestamp error.
    let samples = isi_error_samples(&out);
    let mean_err: f64 =
        samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len() as f64;
    println!("\nmean relative timestamp error: {:.2}% (paper bound: 3%)", mean_err * 100.0);

    // 5. Power: divided clock vs the naive constant-frequency baseline.
    let model = PowerModel::igloo_nano();
    let divided = model.evaluate(&out.activity).total;
    let naive_out =
        quantize_train(&config.with_policy(DivisionPolicy::Never), &train, SimTime::from_ms(100));
    let naive = model.evaluate(&naive_out.activity).total;
    println!("power with recursive division: {divided}");
    println!("power with constant clock:     {naive}");
    println!("saving: {:.0}%", (1.0 - divided.as_microwatts() / naive.as_microwatts()) * 100.0);
}
