//! Value-Change-Dump (VCD, IEEE 1364) export of recorded traces.
//!
//! VCD is the lingua franca of digital waveform viewers; dumping the
//! simulated interface signals lets the clock-division behaviour of
//! Fig. 2 be inspected in GTKWave exactly as one would inspect the FPGA
//! prototype with a logic analyser.

use std::collections::BTreeMap;
use std::io::{self, Write};

use crate::trace::{SignalKind, TraceValue, Tracer};

/// Writes `tracer`'s signals and changes as a VCD document.
///
/// Signals are grouped into `$scope module ... $end` sections by their
/// declared dot-separated scope. The timescale is 1 ps to match the
/// kernel's time base.
///
/// # Errors
///
/// Propagates any I/O error from `out`. Note a `&mut Vec<u8>` or
/// `&mut File` can be passed wherever a `W: Write` is expected.
///
/// # Examples
///
/// ```
/// use aetr_sim::time::SimTime;
/// use aetr_sim::trace::{TraceValue, Tracer};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tracer = Tracer::new();
/// let clk = tracer.declare_bit("clk", "top");
/// tracer.record(SimTime::from_ns(1), clk, TraceValue::Bit(true));
///
/// let mut buf = Vec::new();
/// aetr_sim::vcd::write_vcd(&tracer, &mut buf)?;
/// let text = String::from_utf8(buf)?;
/// assert!(text.contains("$timescale 1 ps $end"));
/// assert!(text.contains("clk"));
/// # Ok(())
/// # }
/// ```
pub fn write_vcd<W: Write>(tracer: &Tracer, mut out: W) -> io::Result<()> {
    writeln!(out, "$date AETR simulation $end")?;
    writeln!(out, "$version aetr-sim $end")?;
    writeln!(out, "$timescale 1 ps $end")?;

    // Group signal indices by scope for the declaration section.
    let mut by_scope: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (idx, decl) in tracer.signals().iter().enumerate() {
        by_scope.entry(decl.scope.as_str()).or_default().push(idx);
    }

    for (scope, indices) in &by_scope {
        let scope_name = if scope.is_empty() { "top" } else { scope };
        for part in scope_name.split('.') {
            writeln!(out, "$scope module {part} $end")?;
        }
        for &idx in indices {
            let decl = &tracer.signals()[idx];
            let code = id_code(idx);
            match decl.kind {
                SignalKind::Bit => {
                    writeln!(out, "$var wire 1 {code} {} $end", decl.name)?;
                }
                SignalKind::Vector { width } => {
                    writeln!(out, "$var wire {width} {code} {} [{}:0] $end", decl.name, width - 1)?;
                }
                SignalKind::Real => {
                    writeln!(out, "$var real 64 {code} {} $end", decl.name)?;
                }
            }
        }
        for _ in scope_name.split('.') {
            writeln!(out, "$upscope $end")?;
        }
    }
    writeln!(out, "$enddefinitions $end")?;

    // Initial values: everything unknown until first change.
    writeln!(out, "$dumpvars")?;
    for (idx, decl) in tracer.signals().iter().enumerate() {
        let code = id_code(idx);
        match decl.kind {
            SignalKind::Bit => writeln!(out, "x{code}")?,
            SignalKind::Vector { .. } => writeln!(out, "bx {code}")?,
            SignalKind::Real => writeln!(out, "r0 {code}")?,
        }
    }
    writeln!(out, "$end")?;

    // Change section: changes are recorded in time order per signal; we
    // emit them globally time-sorted (stable to preserve record order).
    let mut changes: Vec<_> = tracer.changes().iter().collect();
    changes.sort_by_key(|c| c.time);
    let mut current_time = None;
    for change in changes {
        if current_time != Some(change.time) {
            writeln!(out, "#{}", change.time.as_ps())?;
            current_time = Some(change.time);
        }
        let code = id_code(tracer.index_of(change.signal));
        match change.value {
            TraceValue::Bit(b) => writeln!(out, "{}{code}", u8::from(b))?,
            TraceValue::Vector(v) => writeln!(out, "b{v:b} {code}")?,
            TraceValue::Real(r) => writeln!(out, "r{r} {code}")?,
        }
    }
    Ok(())
}

/// Maps a signal index to a printable VCD identifier code (base-94 over
/// ASCII `!`..`~`).
fn id_code(mut idx: usize) -> String {
    let mut code = String::new();
    loop {
        code.push((b'!' + (idx % 94) as u8) as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
        idx -= 1;
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    fn render(tracer: &Tracer) -> String {
        let mut buf = Vec::new();
        write_vcd(tracer, &mut buf).unwrap();
        String::from_utf8(buf).unwrap()
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for idx in 0..10_000 {
            let code = id_code(idx);
            assert!(code.bytes().all(|b| (b'!'..=b'~').contains(&b)));
            assert!(seen.insert(code), "duplicate code at {idx}");
        }
    }

    #[test]
    fn header_and_var_declarations() {
        let mut t = Tracer::new();
        t.declare_bit("req", "aer");
        t.declare_vector("addr", "aer", 10);
        t.declare_real("power_mw", "");
        let text = render(&t);
        assert!(text.contains("$timescale 1 ps $end"));
        assert!(text.contains("$scope module aer $end"));
        assert!(text.contains("$var wire 1 ! req $end"));
        assert!(text.contains("$var wire 10 \" addr [9:0] $end"));
        assert!(text.contains("$var real 64 # power_mw $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn changes_are_grouped_by_time() {
        let mut t = Tracer::new();
        let a = t.declare_bit("a", "");
        let b = t.declare_bit("b", "");
        t.record(SimTime::from_ps(100), a, TraceValue::Bit(true));
        t.record(SimTime::from_ps(100), b, TraceValue::Bit(true));
        t.record(SimTime::from_ps(250), a, TraceValue::Bit(false));
        let text = render(&t);
        let pos100 = text.find("#100").unwrap();
        let pos250 = text.find("#250").unwrap();
        assert!(pos100 < pos250);
        assert_eq!(text.matches("#100").count(), 1, "shared timestamps emitted once");
    }

    #[test]
    fn vector_values_render_binary() {
        let mut t = Tracer::new();
        let bus = t.declare_vector("bus", "", 8);
        t.record(SimTime::from_ps(1), bus, TraceValue::Vector(0b1010));
        assert!(render(&t).contains("b1010 !"));
    }

    #[test]
    fn nested_scopes_open_and_close() {
        let mut t = Tracer::new();
        t.declare_bit("clk", "interface.clockgen");
        let text = render(&t);
        assert!(text.contains("$scope module interface $end"));
        assert!(text.contains("$scope module clockgen $end"));
        assert_eq!(text.matches("$upscope $end").count(), 2);
    }
}

/// Errors parsing a VCD document.
#[derive(Debug)]
pub enum VcdParseError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem at a given line.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
}

impl std::fmt::Display for VcdParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VcdParseError::Io(e) => write!(f, "i/o error: {e}"),
            VcdParseError::Malformed { line, reason } => {
                write!(f, "malformed VCD at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for VcdParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VcdParseError::Io(e) => Some(e),
            VcdParseError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for VcdParseError {
    fn from(e: io::Error) -> Self {
        VcdParseError::Io(e)
    }
}

/// Parses a VCD document (the subset emitted by [`write_vcd`]: 1 ps
/// timescale, wire/real vars, `#time` change blocks) back into a
/// [`Tracer`]. Initial values inside the `$dumpvars … $end` prologue
/// are skipped — unknown (`x`) bits/vectors everywhere, and *all* real
/// inits there, because VCD has no unknown syntax for reals and the
/// writer's `r0` markers mean "no value recorded yet", not a genuine
/// `0.0` sample. A real `0.0` recorded at time zero lives in the
/// change section (after `#0`) and round-trips intact.
///
/// # Errors
///
/// Returns [`VcdParseError`] on I/O failure or structural problems
/// (undeclared identifier codes, bad value syntax, non-numeric
/// timestamps).
///
/// # Examples
///
/// ```
/// use aetr_sim::time::SimTime;
/// use aetr_sim::trace::{TraceValue, Tracer};
/// use aetr_sim::vcd::{read_vcd, write_vcd};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tracer = Tracer::new();
/// let clk = tracer.declare_bit("clk", "top");
/// tracer.record(SimTime::from_ns(3), clk, TraceValue::Bit(true));
///
/// let mut vcd = Vec::new();
/// write_vcd(&tracer, &mut vcd)?;
/// let parsed = read_vcd(&vcd[..])?;
/// assert_eq!(parsed.changes(), tracer.changes());
/// # Ok(())
/// # }
/// ```
pub fn read_vcd<R: io::Read>(reader: R) -> Result<Tracer, VcdParseError> {
    use std::collections::HashMap;
    use std::io::BufRead;

    let mut tracer = Tracer::new();
    let mut codes: HashMap<String, crate::trace::SignalId> = HashMap::new();
    let mut scope_stack: Vec<String> = Vec::new();
    let mut in_definitions = true;
    let mut in_dumpvars = false;
    let mut now = crate::time::SimTime::ZERO;

    for (idx, line) in io::BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let malformed =
            |reason: &str| VcdParseError::Malformed { line: line_no, reason: reason.to_owned() };
        let tokens: Vec<&str> = line.split_whitespace().collect();
        if tokens.is_empty() {
            continue;
        }
        if in_definitions {
            match tokens[0] {
                "$scope" if tokens.len() >= 3 => scope_stack.push(tokens[2].to_owned()),
                "$upscope" => {
                    scope_stack.pop();
                }
                "$var" if tokens.len() >= 5 => {
                    let kind = tokens[1];
                    let width: u8 =
                        tokens[2].parse().map_err(|_| malformed("non-numeric var width"))?;
                    let code = tokens[3].to_owned();
                    let name = tokens[4].to_owned();
                    let scope = {
                        // The writer emits a synthetic "top" scope for
                        // the empty scope; undo that for round-trips.
                        let joined = scope_stack.join(".");
                        if joined == "top" {
                            String::new()
                        } else {
                            joined
                        }
                    };
                    let id = match (kind, width) {
                        ("wire", 1) => tracer.declare_bit(&name, &scope),
                        ("wire", w) => tracer.declare_vector(&name, &scope, w),
                        ("real", _) => tracer.declare_real(&name, &scope),
                        _ => return Err(malformed("unsupported var kind")),
                    };
                    codes.insert(code, id);
                }
                "$enddefinitions" => in_definitions = false,
                _ => {}
            }
            continue;
        }
        // Change section (also contains $dumpvars/$end markers).
        match tokens[0].chars().next().expect("non-empty token") {
            '$' => match tokens[0] {
                "$dumpvars" => in_dumpvars = true,
                "$end" => in_dumpvars = false,
                _ => {}
            },
            '#' => {
                let t: u64 =
                    tokens[0][1..].parse().map_err(|_| malformed("non-numeric timestamp"))?;
                now = crate::time::SimTime::from_ps(t);
            }
            '0' | '1' => {
                let (value, code) = tokens[0].split_at(1);
                let id = *codes.get(code).ok_or_else(|| malformed("unknown bit code"))?;
                tracer.record(now, id, TraceValue::Bit(value == "1"));
            }
            'x' | 'X' => {} // unknown initial value: skip
            'b' | 'B' => {
                if tokens.len() != 2 {
                    return Err(malformed("vector change needs a code"));
                }
                let bits = &tokens[0][1..];
                if bits.eq_ignore_ascii_case("x") {
                    continue; // unknown initial vector
                }
                let v = u64::from_str_radix(bits, 2)
                    .map_err(|_| malformed("bad binary vector value"))?;
                let id = *codes.get(tokens[1]).ok_or_else(|| malformed("unknown code"))?;
                tracer.record(now, id, TraceValue::Vector(v));
            }
            'r' | 'R' => {
                if tokens.len() != 2 {
                    return Err(malformed("real change needs a code"));
                }
                let v: f64 = tokens[0][1..].parse().map_err(|_| malformed("bad real value"))?;
                let id = *codes.get(tokens[1]).ok_or_else(|| malformed("unknown code"))?;
                // Reals have no unknown (`x`) syntax, so the writer's
                // `$dumpvars` prologue uses `r0` as a "nothing recorded
                // yet" marker; only there is it a marker — an `r0`
                // after `#0` is a genuine 0.0 sample and is kept.
                if in_dumpvars {
                    continue;
                }
                tracer.record(now, id, TraceValue::Real(v));
            }
            _ => return Err(malformed("unrecognised change line")),
        }
    }
    Ok(tracer)
}

#[cfg(test)]
mod reader_tests {
    use super::*;
    use crate::time::SimTime;

    fn roundtrip(tracer: &Tracer) -> Tracer {
        let mut buf = Vec::new();
        write_vcd(tracer, &mut buf).unwrap();
        read_vcd(&buf[..]).unwrap()
    }

    /// Canonical view: per-signal-name change lists (the writer
    /// re-groups declarations by scope, so SignalIds renumber across a
    /// round-trip while the semantics stay identical).
    fn canonical(t: &Tracer) -> Vec<(String, Vec<(u64, String)>)> {
        let mut out: Vec<(String, Vec<(u64, String)>)> = t
            .signals()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                let key = format!("{}.{}", d.scope, d.name);
                let changes = t
                    .changes()
                    .iter()
                    .filter(|c| t.index_of(c.signal) == i)
                    .map(|c| (c.time.as_ps(), c.value.to_string()))
                    .collect();
                (key, changes)
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn full_roundtrip_bits_vectors_reals() {
        let mut t = Tracer::new();
        let clk = t.declare_bit("clk", "top.clockgen");
        let bus = t.declare_vector("addr", "aer", 10);
        let p = t.declare_real("power", "");
        t.record(SimTime::from_ps(5), clk, TraceValue::Bit(true));
        t.record(SimTime::from_ps(7), bus, TraceValue::Vector(0x2A));
        t.record(SimTime::from_ps(9), p, TraceValue::Real(1.5));
        t.record(SimTime::from_ps(12), clk, TraceValue::Bit(false));

        let back = roundtrip(&t);
        assert_eq!(canonical(&back), canonical(&t));
    }

    #[test]
    fn real_zero_at_time_zero_survives_roundtrip() {
        // Regression: the old parser treated any `r0` at t=0 as the
        // writer's init marker and silently dropped genuine samples.
        let mut t = Tracer::new();
        let p = t.declare_real("power", "meter");
        t.record(SimTime::ZERO, p, TraceValue::Real(0.0));
        t.record(SimTime::from_ps(5), p, TraceValue::Real(2.5));
        t.record(SimTime::from_ps(9), p, TraceValue::Real(0.0));
        let back = roundtrip(&t);
        assert_eq!(back.changes().len(), 3, "every recorded edge survives");
        assert_eq!(canonical(&back), canonical(&t));
    }

    #[test]
    fn non_finite_reals_roundtrip() {
        let mut t = Tracer::new();
        let r = t.declare_real("ratio", "");
        t.record(SimTime::from_ps(1), r, TraceValue::Real(f64::NAN));
        t.record(SimTime::from_ps(2), r, TraceValue::Real(f64::INFINITY));
        t.record(SimTime::from_ps(3), r, TraceValue::Real(f64::NEG_INFINITY));
        let back = roundtrip(&t);
        assert_eq!(back.changes().len(), 3);
        assert_eq!(canonical(&back), canonical(&t));
    }

    #[test]
    fn recorded_edge_count_is_preserved_for_every_kind() {
        let mut t = Tracer::new();
        let clk = t.declare_bit("clk", "iface");
        let bus = t.declare_vector("bus", "iface", 8);
        let p = t.declare_real("power", "iface");
        for i in 0..10u64 {
            t.record(SimTime::from_ps(i * 10), clk, TraceValue::Bit(i % 2 == 0));
            t.record(SimTime::from_ps(i * 10 + 1), bus, TraceValue::Vector(i));
            t.record(SimTime::from_ps(i * 10 + 2), p, TraceValue::Real(i as f64 * 0.5));
        }
        let back = roundtrip(&t);
        assert_eq!(back.changes().len(), t.changes().len());
        assert_eq!(canonical(&back), canonical(&t));
    }

    #[test]
    fn empty_tracer_roundtrips() {
        let t = Tracer::new();
        let back = roundtrip(&t);
        assert!(back.signals().is_empty());
        assert!(back.changes().is_empty());
    }

    #[test]
    fn malformed_inputs_error_with_line_numbers() {
        let doc = "$enddefinitions $end\n#notanumber\n";
        let err = read_vcd(doc.as_bytes()).unwrap_err();
        let text = err.to_string();
        assert!(text.contains("line 2"), "{text}");

        let doc2 = "$enddefinitions $end\n1?\n";
        assert!(read_vcd(doc2.as_bytes()).is_err());
    }

    #[test]
    fn unknown_codes_are_rejected() {
        let doc = "$var wire 1 ! clk $end\n$enddefinitions $end\n#5\n1\"\n";
        let err = read_vcd(doc.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("unknown"), "{err}");
    }
}
