//! Simulation time, durations and frequencies.
//!
//! All simulation time is kept in **integer picoseconds** (`u64`). This
//! makes the kernel fully deterministic (no floating-point drift across
//! platforms) while leaving ~213 days of representable range — orders of
//! magnitude beyond any experiment in the DAC'17 evaluation, whose
//! longest run is a few simulated seconds.
//!
//! Frequencies are stored in **millihertz** so that values such as the
//! prototype's 120 MHz ring-oscillator output or sub-hertz event rates
//! are both exactly representable.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Picoseconds per second, the conversion backbone of this module.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant on the simulation timeline, in picoseconds since
/// simulation start.
///
/// `SimTime` is an absolute quantity; the difference of two instants is a
/// [`SimDuration`]. Mixing the two up is a unit error the type system
/// rules out (C-NEWTYPE).
///
/// # Examples
///
/// ```
/// use aetr_sim::time::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_ns(100);
/// assert_eq!(t1 - t0, SimDuration::from_ns(100));
/// assert_eq!(t1.as_ps(), 100_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulation time, in picoseconds.
///
/// # Examples
///
/// ```
/// use aetr_sim::time::SimDuration;
///
/// let d = SimDuration::from_us(2) + SimDuration::from_ns(500);
/// assert_eq!(d.as_ns(), 2_500);
/// assert_eq!(d * 2, SimDuration::from_us(5));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

/// A frequency, stored in integer millihertz.
///
/// # Examples
///
/// ```
/// use aetr_sim::time::{Frequency, SimDuration};
///
/// let f = Frequency::from_mhz(120);
/// assert_eq!(f.period(), SimDuration::from_ps(8_333));
/// assert_eq!(f.halved(), Frequency::from_mhz(60));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Frequency(u64);

impl SimTime {
    /// The start of simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "never" sentinel by
    /// schedulers.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ps` picoseconds after simulation start.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates an instant `ns` nanoseconds after simulation start.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates an instant `us` microseconds after simulation start.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates an instant `ms` milliseconds after simulation start.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates an instant `s` seconds after simulation start.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * PS_PER_SEC)
    }

    /// Picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// The duration elapsed since `earlier`.
    ///
    /// Returns [`SimDuration::ZERO`] if `earlier` is actually later,
    /// mirroring `std::time::Instant::saturating_duration_since`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`] instead of
    /// overflowing.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `ps` picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Creates a duration from (possibly fractional) seconds, rounding to
    /// the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, not finite, or too large to
    /// represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let ps = secs * PS_PER_SEC as f64;
        assert!(ps <= u64::MAX as f64, "duration overflows u64 picoseconds");
        SimDuration(ps.round() as u64)
    }

    /// Duration in picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Duration in whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration in seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked duration doubling; `None` on overflow. Used by the
    /// recursive clock-division logic where the sampling period doubles
    /// on every division step.
    pub fn checked_double(self) -> Option<SimDuration> {
        self.0.checked_mul(2).map(SimDuration)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// The frequency whose period is this duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero.
    pub fn to_frequency(self) -> Frequency {
        assert!(!self.is_zero(), "zero period has no frequency");
        // f_mHz = 1e15 / period_ps, computed in u128 to avoid overflow.
        let mhz = 1_000u128 * PS_PER_SEC as u128 / self.0 as u128;
        Frequency(mhz.min(u64::MAX as u128) as u64)
    }
}

impl Frequency {
    /// Zero frequency — a stopped clock.
    pub const ZERO: Frequency = Frequency(0);

    /// Creates a frequency of `mhz_thousandths` millihertz.
    pub const fn from_millihertz(millihertz: u64) -> Self {
        Frequency(millihertz)
    }

    /// Creates a frequency of `hz` hertz.
    pub const fn from_hz(hz: u64) -> Self {
        Frequency(hz * 1_000)
    }

    /// Creates a frequency of `khz` kilohertz.
    pub const fn from_khz(khz: u64) -> Self {
        Frequency(khz * 1_000_000)
    }

    /// Creates a frequency of `mhz` megahertz.
    pub const fn from_mhz(mhz: u64) -> Self {
        Frequency(mhz * 1_000_000_000)
    }

    /// Frequency in millihertz.
    pub const fn as_millihertz(self) -> u64 {
        self.0
    }

    /// Frequency in hertz as a float (for reporting only).
    pub fn as_hz_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// `true` for a stopped clock.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The clock period (truncated to a whole picosecond).
    ///
    /// # Panics
    ///
    /// Panics on a zero frequency: a stopped clock has no period.
    pub fn period(self) -> SimDuration {
        assert!(!self.is_zero(), "zero frequency has no period");
        let ps = 1_000u128 * PS_PER_SEC as u128 / self.0 as u128;
        SimDuration(ps.min(u64::MAX as u128) as u64)
    }

    /// This frequency divided by two — one recursive division step.
    pub const fn halved(self) -> Frequency {
        Frequency(self.0 / 2)
    }

    /// This frequency divided by `2^k`.
    pub const fn divided_pow2(self, k: u32) -> Frequency {
        Frequency(self.0 >> k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    /// How many times `rhs` fits in `self` (integer division).
    type Output = u64;
    fn div(self, rhs: SimDuration) -> u64 {
        self.0 / rhs.0
    }
}

impl Rem for SimDuration {
    type Output = SimDuration;
    fn rem(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 % rhs.0)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_ps(self.0, f)
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mhz = self.0;
        if mhz == 0 {
            write!(f, "0 Hz")
        } else if mhz >= 1_000_000_000_000 {
            write!(f, "{:.3} GHz", mhz as f64 / 1e12)
        } else if mhz >= 1_000_000_000 {
            write!(f, "{:.3} MHz", mhz as f64 / 1e9)
        } else if mhz >= 1_000_000 {
            write!(f, "{:.3} kHz", mhz as f64 / 1e6)
        } else {
            write!(f, "{:.3} Hz", mhz as f64 / 1e3)
        }
    }
}

/// Human-readable rendering of a picosecond count with an SI prefix.
fn fmt_ps(ps: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if ps == 0 {
        write!(f, "0 s")
    } else if ps >= PS_PER_SEC {
        write!(f, "{:.6} s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= 1_000_000_000 {
        write!(f, "{:.3} ms", ps as f64 / 1e9)
    } else if ps >= 1_000_000 {
        write!(f, "{:.3} us", ps as f64 / 1e6)
    } else if ps >= 1_000 {
        write!(f, "{:.3} ns", ps as f64 / 1e3)
    } else {
        write!(f, "{ps} ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_unit_constructors_agree() {
        assert_eq!(SimTime::from_ns(1), SimTime::from_ps(1_000));
        assert_eq!(SimTime::from_us(1), SimTime::from_ns(1_000));
        assert_eq!(SimTime::from_ms(1), SimTime::from_us(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_ms(1_000));
    }

    #[test]
    fn duration_unit_constructors_agree() {
        assert_eq!(SimDuration::from_ns(1), SimDuration::from_ps(1_000));
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_SEC);
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_ms(500));
    }

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_us(5);
        let d = SimDuration::from_ns(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(SimTime::ZERO.saturating_duration_since(SimTime::from_ns(5)), SimDuration::ZERO);
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_ns(1)), SimTime::MAX);
    }

    #[test]
    fn frequency_period_roundtrip_120mhz() {
        // The prototype's ring oscillator: 120 MHz -> 8333 ps (truncated
        // from 8333.33); the reverse conversion lands within 1 mHz scale
        // truncation error.
        let f = Frequency::from_mhz(120);
        assert_eq!(f.period().as_ps(), 8_333);
        let back = f.period().to_frequency();
        assert!(back >= Frequency::from_mhz(120));
        assert!(back < Frequency::from_mhz(121));
    }

    #[test]
    fn frequency_halving_chain() {
        // 30 MHz reference divided down as in Fig. 2.
        let mut f = Frequency::from_mhz(30);
        let mut periods = Vec::new();
        for _ in 0..4 {
            periods.push(f.period().as_ps());
            f = f.halved();
        }
        assert_eq!(periods, vec![33_333, 66_666, 133_333, 266_666]);
    }

    #[test]
    fn divided_pow2_matches_repeated_halving() {
        let f = Frequency::from_mhz(120);
        assert_eq!(f.divided_pow2(3), f.halved().halved().halved());
    }

    #[test]
    fn duration_division_counts_cycles() {
        let span = SimDuration::from_us(1);
        let period = SimDuration::from_ns(100);
        assert_eq!(span / period, 10);
        assert_eq!(span % period, SimDuration::ZERO);
    }

    #[test]
    fn checked_double_detects_overflow() {
        assert_eq!(SimDuration::from_ns(1).checked_double(), Some(SimDuration::from_ns(2)));
        assert_eq!(SimDuration::MAX.checked_double(), None);
    }

    #[test]
    fn display_uses_si_prefixes() {
        assert_eq!(SimDuration::from_ps(12).to_string(), "12 ps");
        assert_eq!(SimDuration::from_ns(130).to_string(), "130.000 ns");
        assert_eq!(SimDuration::from_us(700).to_string(), "700.000 us");
        assert_eq!(Frequency::from_mhz(30).to_string(), "30.000 MHz");
        assert_eq!(Frequency::ZERO.to_string(), "0 Hz");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration =
            [SimDuration::from_ns(1), SimDuration::from_ns(2)].into_iter().sum();
        assert_eq!(total, SimDuration::from_ns(3));
    }

    #[test]
    #[should_panic(expected = "zero frequency has no period")]
    fn zero_frequency_period_panics() {
        let _ = Frequency::ZERO.period();
    }
}
