//! Criterion benchmarks of the substrate crates: spike generation,
//! cochlea filtering, handshake processing, rate estimation.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use aetr_aer::arbiter::{arbitrate, ArbiterConfig};
use aetr_aer::generator::{BurstGenerator, LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::handshake::{run_with_fixed_latency, HandshakeTiming};
use aetr_aer::rate::sliding_window_rate;
use aetr_cochlea::audio::AudioBuffer;
use aetr_cochlea::filterbank::FilterBank;
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_dvs::scene::MovingBar;
use aetr_dvs::sensor::{DvsConfig, DvsSensor};
use aetr_sim::time::{SimDuration, SimTime};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    let horizon = SimTime::from_ms(100);
    group.bench_function("poisson_100k_100ms", |b| {
        b.iter(|| PoissonGenerator::new(100_000.0, 64, 1).generate(horizon))
    });
    group.bench_function("lfsr_100k_100ms", |b| {
        b.iter(|| LfsrGenerator::new(100_000.0, 1).generate(horizon))
    });
    group.bench_function("burst_100ms", |b| {
        b.iter(|| {
            BurstGenerator::new(
                300_000.0,
                100.0,
                SimDuration::from_ms(10),
                SimDuration::from_ms(30),
                64,
                1,
            )
            .generate(horizon)
        })
    });
    group.finish();
}

fn bench_filterbank(c: &mut Criterion) {
    let audio = AudioBuffer::white_noise(16_000, 0.5, 0.1, 3);
    let mut group = c.benchmark_group("cochlea");
    group.throughput(Throughput::Elements(audio.len() as u64));
    group.bench_function("filterbank_64ch_100ms", |b| {
        let mut bank = FilterBank::log_spaced(16_000, 64, 100.0, 6_000.0, 5.0);
        b.iter(|| bank.process(&audio));
    });
    group.bench_function("full_cochlea_100ms", |b| {
        let mut cochlea = Cochlea::new(CochleaConfig::das1()).expect("valid");
        b.iter(|| cochlea.process(&audio));
    });
    group.finish();
}

fn bench_handshake(c: &mut Criterion) {
    let train = LfsrGenerator::new(200_000.0, 5).generate(SimTime::from_ms(20));
    let mut group = c.benchmark_group("handshake");
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("four_phase_4k_events", |b| {
        b.iter(|| {
            run_with_fixed_latency(&train, HandshakeTiming::default(), SimDuration::from_ns(33))
        })
    });
    group.finish();
}

fn bench_arbiter(c: &mut Criterion) {
    let train = PoissonGenerator::new(1_000_000.0, 128, 2).generate(SimTime::from_ms(5));
    let mut group = c.benchmark_group("arbiter");
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("das1_tree_5k_events", |b| {
        b.iter(|| arbitrate(&train, &ArbiterConfig::das1()))
    });
    group.finish();
}

fn bench_aedat(c: &mut Criterion) {
    let train = PoissonGenerator::new(100_000.0, 512, 4).generate(SimTime::from_ms(50));
    let mut encoded = Vec::new();
    aetr_aer::aedat::write_aedat(&train, &[], &mut encoded).expect("in-memory write");
    let mut group = c.benchmark_group("aedat");
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("write_5k", |b| {
        b.iter(|| {
            let mut buf = Vec::new();
            aetr_aer::aedat::write_aedat(&train, &[], &mut buf).expect("in-memory write");
            buf
        })
    });
    group.bench_function("read_5k", |b| {
        b.iter(|| aetr_aer::aedat::read_aedat(&encoded[..]).expect("own output parses"))
    });
    group.finish();
}

fn bench_dvs(c: &mut Criterion) {
    let sensor = DvsSensor::new(DvsConfig::aer10bit()).expect("valid");
    c.bench_function("dvs/moving_bar_50ms", |b| {
        b.iter(|| sensor.observe(&MovingBar::demo(), SimTime::from_ms(50)))
    });
}

fn bench_apps(c: &mut Criterion) {
    use aetr_apps::features::{extract, FeatureConfig};
    use aetr_apps::localization::{estimate_itd, shift_train, ItdConfig};

    let train = PoissonGenerator::new(50_000.0, 256, 6).generate(SimTime::from_ms(100));
    let mut group = c.benchmark_group("apps");
    group.throughput(Throughput::Elements(train.len() as u64));
    group.bench_function("features_5k_events", |b| {
        b.iter(|| extract(&train, &FeatureConfig::das1_channels()))
    });
    let left = PoissonGenerator::new(30_000.0, 64, 7).generate(SimTime::from_ms(100));
    let right = shift_train(&left, SimDuration::from_us(300));
    group.bench_function("itd_3k_events", |b| {
        b.iter(|| estimate_itd(&left, &right, &ItdConfig::default_window()))
    });
    group.finish();
}

fn bench_rate_estimation(c: &mut Criterion) {
    let train = PoissonGenerator::new(100_000.0, 64, 9).generate(SimTime::from_ms(200));
    c.bench_function("rate/sliding_window", |b| {
        b.iter(|| sliding_window_rate(&train, SimDuration::from_ms(20), SimDuration::from_ms(5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_generators, bench_filterbank, bench_handshake, bench_arbiter,
        bench_aedat, bench_dvs, bench_apps, bench_rate_estimation
}
criterion_main!(benches);
