//! Pausible-clock synchronisation port (Yun & Donohue, ICCD'96) — the
//! GALS technique the paper cites in §2 as the origin of its pausable
//! clocking.
//!
//! Where the prototype's 2-FF synchroniser *tolerates* metastability
//! (by giving it time to resolve, at the cost of latency and a
//! non-zero failure probability), a pausible-clock port *excludes* it:
//! a mutual-exclusion (mutex) element arbitrates between the incoming
//! asynchronous request and the next clock edge, and if the request
//! arrives inside the danger window the clock edge is *stretched*
//! until the request is safely latched. Zero failure probability,
//! occasional elongated clock periods.
//!
//! The model here exposes the quantities a designer compares:
//! per-event synchronisation latency, clock-period elongation, and
//! (for the flip-flop alternative) the mean time between failures
//! implied by the metastability window.

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

/// Timing parameters of the mutex-based port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PausiblePortConfig {
    /// Nominal clock period being gated.
    pub period: SimDuration,
    /// Mutex arbitration delay when uncontended.
    pub mutex_delay: SimDuration,
    /// Maximum extra resolution time when request and clock edge race
    /// (the mutex's own metastable resolution is bounded in practice;
    /// we model the worst observed stretch).
    pub max_stretch: SimDuration,
    /// Danger window around the clock edge within which a request
    /// contends with the edge.
    pub danger_window: SimDuration,
}

impl PausiblePortConfig {
    /// A port on the prototype's 30 MHz reference clock: 1 ns mutex,
    /// 3 ns worst-case stretch, 500 ps danger window.
    pub fn reference_30mhz() -> PausiblePortConfig {
        PausiblePortConfig {
            period: SimDuration::from_ps(33_333),
            mutex_delay: SimDuration::from_ns(1),
            max_stretch: SimDuration::from_ns(3),
            danger_window: SimDuration::from_ps(500),
        }
    }
}

/// Outcome of synchronising one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncOutcome {
    /// When the request becomes visible to the synchronous side.
    pub latched_at: SimTime,
    /// The clock edge that latched it (possibly stretched).
    pub capturing_edge: SimTime,
    /// How much the clock period was stretched (zero if uncontended).
    pub stretch: SimDuration,
}

/// The pausible-clock port.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::pausible::{PausiblePort, PausiblePortConfig};
/// use aetr_sim::time::SimTime;
///
/// let port = PausiblePort::new(PausiblePortConfig::reference_30mhz());
/// // A request far from any clock edge: no stretch.
/// let out = port.synchronize(SimTime::from_ns(10));
/// assert!(out.stretch.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PausiblePort {
    config: PausiblePortConfig,
}

impl PausiblePort {
    /// Creates a port.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or the danger window exceeds half
    /// the period (the mutex would contend on every edge).
    pub fn new(config: PausiblePortConfig) -> PausiblePort {
        assert!(!config.period.is_zero(), "period must be non-zero");
        assert!(
            config.danger_window < config.period / 2,
            "danger window must be well inside the period"
        );
        PausiblePort { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PausiblePortConfig {
        &self.config
    }

    /// Synchronises a request arriving at `request` into the clock
    /// domain whose edges sit at multiples of the period (edge `k` at
    /// `k · period`).
    ///
    /// Deterministic model: if the request falls within the danger
    /// window *before* an edge, the mutex grants the request first and
    /// stretches that edge by a resolution time proportional to how
    /// deep in the window the collision was (worst when simultaneous).
    pub fn synchronize(&self, request: SimTime) -> SyncOutcome {
        let period = self.config.period.as_ps();
        let req_ready = request + self.config.mutex_delay;
        let t = req_ready.as_ps();
        let next_edge_idx = t.div_ceil(period);
        let next_edge = SimTime::from_ps(next_edge_idx * period);
        let gap = next_edge - req_ready;

        if gap < self.config.danger_window {
            // Contended: the clock loses the mutex and the edge
            // stretches. Depth of collision -> resolution time.
            let depth = 1.0 - gap.as_ps() as f64 / self.config.danger_window.as_ps().max(1) as f64;
            let stretch = SimDuration::from_ps(
                (self.config.max_stretch.as_ps() as f64 * depth).round() as u64,
            );
            let capturing_edge = next_edge + stretch;
            SyncOutcome { latched_at: capturing_edge, capturing_edge, stretch }
        } else {
            SyncOutcome {
                latched_at: next_edge,
                capturing_edge: next_edge,
                stretch: SimDuration::ZERO,
            }
        }
    }

    /// Worst-case synchronisation latency: a request just after an
    /// edge waits a full period plus the mutex delay plus any stretch.
    pub fn worst_case_latency(&self) -> SimDuration {
        self.config.period + self.config.mutex_delay + self.config.max_stretch
    }
}

/// Mean time between metastability failures of a `stages`-deep
/// flip-flop synchroniser, for comparison: the standard
/// `MTBF = e^(t_res / tau) / (T_w · f_clk · f_data)` model.
///
/// Returns seconds.
///
/// # Panics
///
/// Panics on non-positive rates or time constants.
pub fn flipflop_mtbf_secs(
    clock_hz: f64,
    data_hz: f64,
    resolution_time_secs: f64,
    tau_secs: f64,
    window_secs: f64,
) -> f64 {
    assert!(clock_hz > 0.0 && data_hz > 0.0, "rates must be positive");
    assert!(tau_secs > 0.0 && window_secs > 0.0, "tau and window must be positive");
    (resolution_time_secs / tau_secs).exp() / (window_secs * clock_hz * data_hz)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> PausiblePort {
        PausiblePort::new(PausiblePortConfig::reference_30mhz())
    }

    #[test]
    fn uncontended_request_latches_on_next_edge() {
        let p = port();
        let out = p.synchronize(SimTime::from_ns(5));
        assert!(out.stretch.is_zero());
        // Next edge after 5 ns + 1 ns mutex is 33.333 ns.
        assert_eq!(out.capturing_edge, SimTime::from_ps(33_333));
        assert_eq!(out.latched_at, out.capturing_edge);
    }

    #[test]
    fn request_in_the_danger_window_stretches_the_clock() {
        let p = port();
        // Arrive so that req_ready lands 100 ps before the edge.
        let edge = SimTime::from_ps(33_333);
        let request = edge - SimDuration::from_ps(100) - p.config().mutex_delay;
        let out = p.synchronize(request);
        assert!(!out.stretch.is_zero());
        assert!(out.capturing_edge > edge);
        // Depth 0.8 of the 500 ps window -> 80% of max stretch.
        let expected = (3_000f64 * 0.8).round() as u64;
        assert_eq!(out.stretch, SimDuration::from_ps(expected));
    }

    #[test]
    fn simultaneous_arrival_pays_the_full_stretch() {
        let p = port();
        let edge = SimTime::from_ps(2 * 33_333);
        let request = edge - p.config().mutex_delay;
        let out = p.synchronize(request);
        assert_eq!(out.stretch, p.config().max_stretch);
    }

    #[test]
    fn latency_never_exceeds_the_worst_case() {
        let p = port();
        for offset_ps in (0..70_000).step_by(137) {
            let request = SimTime::from_ps(offset_ps);
            let out = p.synchronize(request);
            let latency = out.latched_at - request;
            assert!(latency <= p.worst_case_latency(), "latency {latency} at offset {offset_ps}");
            assert!(out.latched_at >= request);
        }
    }

    #[test]
    fn stretch_is_bounded_and_monotone_in_collision_depth() {
        let p = port();
        let edge = SimTime::from_ps(33_333);
        let mut last = SimDuration::MAX;
        for gap_ps in [0u64, 100, 200, 300, 400, 499] {
            let request = edge - SimDuration::from_ps(gap_ps) - p.config().mutex_delay;
            let s = p.synchronize(request).stretch;
            assert!(s <= p.config().max_stretch);
            assert!(s <= last, "stretch must shrink as the gap grows");
            last = s;
        }
    }

    #[test]
    fn mtbf_comparison_favors_deeper_synchronizers() {
        // One resolution period vs two at 30 MHz with 100 kevt/s data,
        // tau = 100 ps, window = 100 ps: astronomic improvement.
        let one = flipflop_mtbf_secs(30e6, 100e3, 33e-9, 100e-12, 100e-12);
        let two = flipflop_mtbf_secs(30e6, 100e3, 66e-9, 100e-12, 100e-12);
        assert!(two / one > 1e100, "doubling resolution time explodes MTBF");
        // And the one-stage MTBF is already decades.
        assert!(one > 3e8, "one-stage MTBF {one} s");
    }

    #[test]
    #[should_panic(expected = "danger window")]
    fn oversized_danger_window_panics() {
        let cfg = PausiblePortConfig {
            danger_window: SimDuration::from_ps(20_000),
            ..PausiblePortConfig::reference_30mhz()
        };
        let _ = PausiblePort::new(cfg);
    }
}
