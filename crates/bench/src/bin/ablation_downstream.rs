//! Ablation: what the AETR batch interface saves the *downstream* MCU.
//!
//! §3 of the paper argues that making time explicit lets the MCU sleep
//! and process events in batches instead of staying always-on. This
//! harness runs the full interface at several FIFO watermarks and
//! feeds the resulting batch structure into an STM32-L476-class MCU
//! energy model.

use aetr::fifo::FifoConfig;
use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr_aer::generator::{BurstGenerator, SpikeSource};
use aetr_analysis::table::Table;
use aetr_bench::{banner, write_result};
use aetr_power::downstream::{compare, McuPowerModel};
use aetr_sim::time::{SimDuration, SimTime};

const SEED: u64 = 0xAB5;

fn main() {
    banner("Ablation", "downstream MCU energy: always-on vs AETR batching", SEED);

    // A sparse acoustic-monitoring workload over 2 s (~4% duty).
    let horizon = SimTime::from_secs(2);
    let train = BurstGenerator::new(
        100_000.0,
        10.0,
        SimDuration::from_ms(20),
        SimDuration::from_ms(480),
        64,
        SEED,
    )
    .generate(horizon);
    println!(
        "workload: {} events over 2 s (bursty, ~{:.0} evt/s average)\n",
        train.len(),
        train.mean_rate()
    );

    let mcu = McuPowerModel::stm32l476();
    let span = horizon.saturating_duration_since(SimTime::ZERO);
    let mut table =
        Table::new(vec!["watermark", "batches", "MCU always-on", "MCU batched", "saving"]);
    for watermark in [16usize, 64, 256, 1_024] {
        let config = InterfaceConfig {
            fifo: FifoConfig { watermark, ..FifoConfig::prototype() },
            ..InterfaceConfig::prototype()
        };
        let interface = AerToI2sInterface::new(config).expect("valid config");
        let report = interface.run(&train, horizon);
        // One MCU wake per drain burst (plus one for any trailing flush).
        let batches = report.fifo_stats.watermark_crossings.max(1) + 1;
        let cmp = compare(&mcu, span, report.events.len() as u64, batches);
        table.row(vec![
            watermark.to_string(),
            batches.to_string(),
            format!("{}", cmp.always_on),
            format!("{}", cmp.batched),
            format!("{:.0}x", cmp.saving_factor()),
        ]);
    }
    println!("{}", table.to_ascii());
    println!(
        "reading: explicit AETR timestamps let the MCU sleep between batches —\n\
         one to two orders of magnitude of downstream energy on sparse streams,\n\
         with deeper watermarks amortising the wake cost further."
    );

    let path = write_result("ablation_downstream.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
