//! A multi-sensor IoT node — the paper's opening scenario ("complex
//! 'smart' applications based on multi-sensor data streams"): one
//! cochlea and one DVS camera, each behind its own AETR interface, one
//! MCU consuming both batched streams and fusing a simple
//! look-where-you-hear trigger.
//!
//! ```sh
//! cargo run --release -p aetr --example multi_sensor_node
//! ```

use aetr::interface::{AerToI2sInterface, InterfaceConfig};
use aetr::mcu::McuReceiver;
use aetr_cochlea::audio::AudioBuffer;
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_dvs::scene::{FlickerPatch, MovingBar, Scene};
use aetr_dvs::sensor::{DvsConfig, DvsSensor};
use aetr_power::model::PowerModel;
use aetr_sim::time::{SimDuration, SimTime};

/// Static background until `at`, then a bar sweeps.
struct LateMotion {
    at: f64,
}

impl Scene for LateMotion {
    fn brightness(&self, x: f64, y: f64, t: f64) -> f64 {
        if t >= self.at {
            MovingBar::demo().brightness(x, y, t - self.at)
        } else {
            0.2
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimTime::from_ms(500);

    // Audio channel: silence, then a tone burst at 150 ms.
    let mut audio = AudioBuffer::silence(16_000, 0.15);
    audio.append(&AudioBuffer::tone(16_000, 900.0, 0.8, 0.1).faded(0.01));
    audio.append(&AudioBuffer::silence(16_000, 0.25));
    let mut cochlea = Cochlea::new(CochleaConfig::das1())?;
    let audio_spikes = cochlea.process(&audio);

    // Vision channel: a flickering status LED all along, motion at 300 ms.
    let dvs = DvsSensor::new(DvsConfig::aer10bit())?;
    let led = FlickerPatch { cx: 0.9, cy: 0.1, radius: 0.05, freq_hz: 120.0, low: 0.2, high: 0.5 };
    let motion = LateMotion { at: 0.3 };
    struct Both<'a>(&'a FlickerPatch, &'a LateMotion);
    impl Scene for Both<'_> {
        fn brightness(&self, x: f64, y: f64, t: f64) -> f64 {
            self.0.brightness(x, y, t).max(self.1.brightness(x, y, t))
        }
    }
    let vision_spikes = dvs.observe(&Both(&led, &motion), horizon);

    println!(
        "sensors: {} audio spikes, {} vision events over 500 ms",
        audio_spikes.len(),
        vision_spikes.len()
    );

    // Each sensor gets its own interface (as the paper's Fig. 3 pairs
    // one interface per sensor). A shallow FIFO watermark keeps batch
    // arrival times meaningful for fusion.
    let config = InterfaceConfig {
        fifo: aetr::fifo::FifoConfig { watermark: 64, ..aetr::fifo::FifoConfig::prototype() },
        ..InterfaceConfig::prototype()
    };
    let interface = AerToI2sInterface::new(config)?;
    let audio_report = interface.run(&audio_spikes, horizon);
    let vision_report = interface.run(&vision_spikes, horizon);
    let node_power = PowerModel::igloo_nano().evaluate(&audio_report.activity).total
        + PowerModel::igloo_nano().evaluate(&vision_report.activity).total;
    println!("\nnode interface power (two interfaces): {node_power}");

    // MCU: rebuild both timelines with arrival anchoring (fine
    // structure from AETR deltas, wall-clock placement from the MCU's
    // own clock at each batch) and fuse with 100 ms windows.
    let mcu =
        McuReceiver::new(interface.config().clock.base_sampling_period()).with_saturation(960); // θ=64, N=3
    let audio_rebuilt = mcu.receive_anchored(&audio_report.i2s);
    let vision_rebuilt = mcu.receive_anchored(&vision_report.i2s);
    let window = SimDuration::from_ms(100);
    println!("\nfusion scan (per 100 ms of reconstructed time):");
    let end = audio_rebuilt
        .last_time()
        .unwrap_or(SimTime::ZERO)
        .max(vision_rebuilt.last_time().unwrap_or(SimTime::ZERO));
    let mut t = SimTime::ZERO;
    while t < end {
        let hear = audio_rebuilt.window(t, t + window).len();
        let see = vision_rebuilt.window(t, t + window).len();
        let verdict = match (hear > 50, see > 200) {
            (true, true) => "ALERT: audible + visible activity",
            (true, false) => "audible activity",
            (false, true) => "visible activity",
            (false, false) => "quiet",
        };
        println!("  [{t} +100ms]  audio {hear:>5}  vision {see:>5}  -> {verdict}");
        t += window;
    }
    println!(
        "\nreading: both modalities arrive as latency-insensitive AETR batches the\n\
         MCU can fuse offline; the interfaces sleep through the silent stretches."
    );
    Ok(())
}
