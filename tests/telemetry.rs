//! Acceptance tests for the telemetry subsystem (DESIGN.md §11).
//!
//! The two load-bearing guarantees:
//!
//! 1. telemetry is *purely observational* — a run with the no-op sink
//!    is bit-identical to the pre-PR `run()` (golden literals below),
//!    and even a fully-enabled collector changes no functional field;
//! 2. the sleep/divided/full-rate residency spans partition simulated
//!    time exactly — they sum to the simulation horizon on a bursty
//!    train, which is the paper's power-state model made auditable.

use aetr::interface::{AerToI2sInterface, InterfaceConfig, InterfaceReport, TelemetryConfig};
use aetr_aer::generator::{BurstGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_faults::{FaultPlan, FaultRates};
use aetr_sim::time::{SimDuration, SimTime};
use aetr_telemetry::json;
use aetr_telemetry::span::SpanKind;

fn prototype() -> AerToI2sInterface {
    AerToI2sInterface::new(InterfaceConfig::prototype()).unwrap()
}

fn bursty_train(horizon: SimTime) -> SpikeTrain {
    // 200 kevt/s bursts of 1 ms every 3 ms: dense enough to hold the
    // clock at full rate inside a burst, sparse enough to divide down
    // and sleep between bursts.
    BurstGenerator::new(200_000.0, 0.0, SimDuration::from_ms(1), SimDuration::from_ms(3), 64, 17)
        .generate(horizon)
}

/// Functional (non-telemetry) fields of two reports must agree bit for
/// bit.
fn assert_functionally_identical(a: &InterfaceReport, b: &InterfaceReport) {
    assert_eq!(a.events, b.events);
    assert_eq!(a.handshake, b.handshake);
    assert_eq!(a.fifo_stats, b.fifo_stats);
    assert_eq!(a.i2s, b.i2s);
    assert_eq!(a.activity, b.activity);
    assert_eq!(a.power, b.power);
    assert_eq!(a.wake_count, b.wake_count);
    assert_eq!(a.health, b.health);
}

/// Golden test: with the no-op telemetry sink, `run()` reproduces the
/// pre-PR report exactly. The literals below were captured from the
/// seed build (commit before telemetry existed) on this fixed train.
#[test]
fn noop_sink_matches_pre_pr_golden() {
    let train = PoissonGenerator::new(50_000.0, 64, 7).generate(SimTime::from_ms(10));
    let report = prototype().run(&train, SimTime::from_ms(10));
    assert!(report.telemetry.is_empty(), "run() uses the no-op sink");

    assert_eq!(report.events.len(), GOLDEN_EVENTS);
    assert_eq!(report.handshake.len(), GOLDEN_EVENTS);
    assert_eq!(report.wake_count, GOLDEN_WAKES);
    assert_eq!(report.fifo_stats.pushed, GOLDEN_EVENTS as u64);
    assert_eq!(report.fifo_stats.dropped, 0);
    assert_eq!(report.events.first().unwrap().event.timestamp.ticks(), GOLDEN_FIRST_TICKS);
    assert_eq!(report.events.last().unwrap().event.timestamp.ticks(), GOLDEN_LAST_TICKS);
    assert_eq!(report.i2s.len(), GOLDEN_I2S_FRAMES);
    let power_nw = (report.power.total.as_microwatts() * 1e3).round() as u64;
    assert_eq!(power_nw, GOLDEN_POWER_NW);
}

#[test]
fn enabled_collector_is_purely_observational() {
    let horizon = SimTime::from_ms(10);
    let train = bursty_train(horizon);
    let interface = prototype();
    let plain = interface.run(&train, horizon);
    let telemetered = interface.run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::with_cadence(SimDuration::from_us(50)),
    );
    assert_functionally_identical(&plain, &telemetered);
    assert!(plain.telemetry.is_empty());
    assert!(!telemetered.telemetry.is_empty());
    assert!(telemetered.telemetry.profile.is_some(), "profiling hooks ran");
}

/// Acceptance: sleep + divided + full-rate residency sums exactly to
/// the simulation horizon on a bursty train.
#[test]
fn clock_residency_sums_to_horizon_on_bursty_train() {
    // Bursts stop 2 ms before the horizon so the FIFO drain (which may
    // run past the last event) completes inside it; the final sleep
    // span then closes exactly at the horizon.
    let horizon = SimTime::from_ms(10);
    let train = bursty_train(SimTime::from_ms(8));
    let report = prototype().run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::enabled(),
    );
    let residency = report.telemetry.clock_residency();
    let names: Vec<&str> = residency.iter().map(|(n, _)| *n).collect();
    assert!(names.contains(&"full-rate"), "bursts hold the clock at full rate: {names:?}");
    assert!(names.contains(&"divided"), "gaps divide the clock down: {names:?}");
    assert!(names.contains(&"sleep"), "long gaps stop the oscillator: {names:?}");
    let total_ps: u64 = residency.iter().map(|(_, d)| d.as_ps()).sum();
    assert_eq!(
        total_ps,
        horizon.as_ps(),
        "residency must partition the horizon exactly: {residency:?}"
    );
    // Cross-check against the power meter's integral: time with the
    // oscillator off is exactly the "sleep" residency.
    let sleep = residency.iter().find(|(n, _)| *n == "sleep").unwrap().1;
    assert_eq!(sleep, report.activity.off);
}

#[test]
fn metrics_agree_with_the_report_aggregates() {
    let horizon = SimTime::from_ms(10);
    let train = bursty_train(horizon);
    let report = prototype().run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::enabled(),
    );
    let m = &report.telemetry.metrics;
    assert_eq!(m.counter_by_name("interface.events.captured"), Some(report.events.len() as u64));
    assert_eq!(m.counter_by_name("interface.fifo.pushed"), Some(report.fifo_stats.pushed));
    assert_eq!(m.counter_by_name("interface.fifo.dropped"), Some(report.fifo_stats.dropped));
    assert_eq!(
        m.counter_by_name("interface.handshake.completed"),
        Some(report.handshake.len() as u64)
    );
    assert_eq!(m.counter_by_name("interface.i2s.frames"), Some(report.i2s.len() as u64));
    assert_eq!(m.counter_by_name("interface.clockgen.wakes"), Some(report.wake_count));
    // The FIFO fully drains by the end of the run, so the occupancy
    // gauge must read zero (canonical depth = true occupancy).
    assert_eq!(m.gauge_by_name("interface.fifo.occupancy"), Some(0.0));
    let depth = m.histogram_by_name("interface.fifo.depth").unwrap();
    assert_eq!(depth.count(), report.fifo_stats.pushed);
    assert_eq!(depth.non_finite(), 0);
    // Span counts line up with their aggregate counters.
    let spans = &report.telemetry.spans;
    assert_eq!(spans.of_kind(SpanKind::Wake).count() as u64, report.wake_count);
    assert_eq!(spans.of_kind(SpanKind::I2sFrame).count(), report.i2s.len());
    assert_eq!(spans.of_kind(SpanKind::Handshake).count(), report.handshake.len());
}

#[test]
fn live_sampler_tracks_rate_power_divider_and_depth() {
    let horizon = SimTime::from_ms(10);
    let cadence = SimDuration::from_us(100);
    let train = bursty_train(horizon);
    let report = prototype().run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::with_cadence(cadence),
    );
    let series = report.telemetry.series;
    assert_eq!(series.cadence(), cadence);
    // One sample per cadence across the whole horizon: 10 ms / 100 µs.
    assert_eq!(series.len(), 100);
    let points = series.points();
    assert!(points.windows(2).all(|w| w[0].t < w[1].t), "samples advance");
    assert_eq!(points.last().unwrap().t, horizon);
    // During bursts the clock runs at full rate (multiplier 1); in the
    // long gaps it must be asleep (multiplier 0) with power at the
    // 50 µW static floor.
    assert!(points.iter().any(|p| p.divider_multiplier == 1));
    let sleeping: Vec<_> = points.iter().filter(|p| p.divider_multiplier == 0).collect();
    assert!(!sleeping.is_empty(), "bursty gaps must show sleep samples");
    for p in &sleeping {
        assert!(
            (p.power_uw - 50.0).abs() < 1e-9,
            "sleep power is the static floor: {}",
            p.power_uw
        );
    }
    // Power at full rate includes the clock tree: strictly above floor.
    let full: Vec<_> = points.iter().filter(|p| p.divider_multiplier == 1).collect();
    assert!(full.iter().all(|p| p.power_uw > 1000.0));
    // Cumulative event counts are monotone and end at the true total.
    assert!(points.windows(2).all(|w| w[0].events_total <= w[1].events_total));
    assert_eq!(points.last().unwrap().events_total, report.events.len() as u64);
}

#[test]
fn faulted_runs_emit_the_same_health_metric_names() {
    let horizon = SimTime::from_ms(10);
    let train = PoissonGenerator::new(50_000.0, 64, 7).generate(horizon);
    let interface = prototype();
    let plan =
        FaultPlan::nominal(7).with_rates(FaultRates { lost_ack: 0.25, ..FaultRates::default() });
    let faulted = interface.run_with_telemetry(&train, horizon, &plan, &TelemetryConfig::enabled());
    let clean = interface.run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::enabled(),
    );
    // Identical name sets in both runs — dashboards built on one work
    // on the other (the `aetr-cli faults` campaign path emits the same
    // names via `InterfaceHealthReport::metrics`).
    for (name, value) in faulted.health.metrics() {
        assert_eq!(
            faulted.telemetry.metrics.counter_by_name(name),
            Some(value),
            "faulted metric {name}"
        );
        assert_eq!(clean.telemetry.metrics.counter_by_name(name), Some(0), "clean metric {name}");
    }
    assert!(faulted.health.lost_acks > 0, "the fault plan must actually bite");
    assert!(
        faulted.telemetry.spans.of_kind(SpanKind::WatchdogRecovery).count() > 0,
        "lost ACKs open watchdog-recovery spans"
    );
}

#[test]
fn exports_parse_and_validate() {
    let horizon = SimTime::from_ms(5);
    let train = bursty_train(horizon);
    let report = prototype().run_with_telemetry(
        &train,
        horizon,
        &FaultPlan::nominal(0),
        &TelemetryConfig::enabled(),
    );
    // JSON export round-trips through the parser and validates against
    // the checked-in schema (the same one CI smoke-tests the CLI with).
    let text = report.telemetry.to_json().to_string();
    let doc = json::parse(&text).expect("telemetry JSON parses");
    let schema_text = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/telemetry.schema.json"
    ))
    .expect("schema file present");
    let schema = json::parse(&schema_text).expect("schema parses");
    let violations = json::validate(&doc, &schema);
    assert!(violations.is_empty(), "schema violations: {violations:?}");

    // Chrome trace export is well-formed and carries every span.
    let trace = json::parse(&report.telemetry.to_chrome_trace()).expect("trace parses");
    let events = trace.get("traceEvents").unwrap().as_array().unwrap();
    let complete =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count();
    assert_eq!(complete, report.telemetry.spans.len());

    // Prometheus text carries the hierarchical names, sanitised.
    let prom = report.telemetry.to_prometheus();
    assert!(prom.contains("interface_clockgen_divisions"));
    assert!(prom.contains("interface_health_lost_acks 0"));
}

/// Golden literals captured from the seed build (commit `ae19d32`,
/// pre-telemetry) for `PoissonGenerator::new(50_000.0, 64, 7)` over
/// 10 ms.
const GOLDEN_EVENTS: usize = 519;
const GOLDEN_WAKES: u64 = 23;
const GOLDEN_I2S_FRAMES: usize = 260;
const GOLDEN_FIRST_TICKS: u32 = 7;
const GOLDEN_LAST_TICKS: u32 = 124;
const GOLDEN_POWER_NW: u64 = 2_194_152;
