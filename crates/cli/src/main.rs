//! `aetr-cli` — command-line front end for the AETR interface
//! simulator.
//!
//! ```sh
//! aetr-cli quantize --rate 100000 --theta 64
//! aetr-cli replay recording.aedat
//! aetr-cli sweep --points 12
//! aetr-cli waveform --theta 8 --ndiv 3 --out fig2.vcd
//! aetr-cli telemetry --generator burst --format chrome-trace --out trace.json
//! aetr-cli resources
//! ```

#![forbid(unsafe_code)]

mod args;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let parsed = match args::ParsedArgs::parse(std::env::args().skip(1)) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", commands::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(report) => {
            println!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
