//! # aetr-dvs — synthetic event-based vision sensor
//!
//! The vision-side counterpart of the cochlea model: a DVS-style
//! array of logarithmic temporal-contrast [pixels](pixel) watching
//! analytic [scenes](scene) (moving bar, drifting grating, flicker),
//! producing AER spike trains on the interface's 10-bit bus (32×16
//! pixels × 2 polarities = 1024 addresses).
//!
//! The paper's related work motivates exactly this pairing: DVS128,
//! the Gottardi contrast sensor, and Rusci et al.'s "smart visual
//! trigger" all feed event streams to low-power interfaces.
//!
//! # Examples
//!
//! ```
//! use aetr_dvs::scene::MovingBar;
//! use aetr_dvs::sensor::{DvsConfig, DvsSensor};
//! use aetr_sim::time::SimTime;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let sensor = DvsSensor::new(DvsConfig::aer10bit())?;
//! let events = sensor.observe(&MovingBar::demo(), SimTime::from_ms(200));
//! println!("{} events from the moving bar", events.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pixel;
pub mod scene;
pub mod sensor;

pub use pixel::{ChangeDetector, PixelConfig, Polarity};
pub use scene::{DriftingGrating, FlickerPatch, MovingBar, Scene, StaticScene};
pub use sensor::{DvsConfig, DvsSensor};
