//! Fast behavioral sampling engine.
//!
//! Folds a stream of AER request times through the
//! [`crate::segments::SegmentTable`], producing per-event
//! quantized timestamps and an exact clock-activity breakdown for the
//! power model — the "Matlab-equivalent" model behind Fig. 6 and the
//! workload half of Fig. 8, but O(events) rather than O(clock ticks).

use serde::{Deserialize, Serialize};

use aetr_sim::time::{SimDuration, SimTime};

use crate::config::ClockGenConfig;
use crate::segments::{IntervalUsage, QuantizeOutcome, SegmentTable};

/// One event as seen by the sampling engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantizedEvent {
    /// When the AER request was asserted.
    pub request: SimTime,
    /// When the interface's sampling clock detected it (counter reset
    /// instant for the next measurement).
    pub detection: SimTime,
    /// The timestamp recorded for this event, in `T_min` units, after
    /// counter-width clamping.
    pub timestamp_ticks: u64,
    /// `true` if the timestamp saturated (clock shut down before the
    /// event, or counter width exceeded).
    pub saturated: bool,
    /// `true` if this event had to restart the ring oscillator.
    pub woke_clock: bool,
}

impl QuantizedEvent {
    /// The measured inter-event interval this timestamp encodes.
    pub fn measured_interval(&self, base_period: SimDuration) -> SimDuration {
        base_period.saturating_mul(self.timestamp_ticks)
    }
}

/// Aggregate clock activity over a whole run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActivityReport {
    /// Per-multiplier active time plus off time.
    pub usage: IntervalUsage,
    /// Number of ring-oscillator restarts.
    pub wake_count: u64,
    /// Number of events processed.
    pub event_count: u64,
    /// Number of saturated timestamps.
    pub saturated_count: u64,
}

impl ActivityReport {
    /// Fraction of events with saturated timestamps.
    pub fn saturation_ratio(&self) -> f64 {
        if self.event_count == 0 {
            0.0
        } else {
            self.saturated_count as f64 / self.event_count as f64
        }
    }
}

/// The behavioral sampling engine.
///
/// # Examples
///
/// ```
/// use aetr_clockgen::config::ClockGenConfig;
/// use aetr_clockgen::engine::SamplingEngine;
/// use aetr_sim::time::SimTime;
///
/// let mut engine = SamplingEngine::new(&ClockGenConfig::prototype());
/// let ev = engine.process(SimTime::from_us(10));
/// assert!(!ev.saturated);
/// assert!(ev.detection >= ev.request);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SamplingEngine {
    table: SegmentTable,
    base_period: SimDuration,
    wake_latency: SimDuration,
    counter_max: u64,
    last_detection: SimTime,
    report: ActivityReport,
}

impl SamplingEngine {
    /// Creates an engine at time zero (clock just reset, counter zero).
    ///
    /// # Panics
    ///
    /// Panics if `config` does not validate.
    pub fn new(config: &ClockGenConfig) -> SamplingEngine {
        SamplingEngine {
            table: SegmentTable::new(config),
            base_period: config.base_sampling_period(),
            wake_latency: config.ring.wake_latency,
            counter_max: config.counter_max(),
            last_detection: SimTime::ZERO,
            report: ActivityReport::default(),
        }
    }

    /// The precomputed segment table in use.
    pub fn table(&self) -> &SegmentTable {
        &self.table
    }

    /// Processes the next AER request. Requests must be fed in
    /// non-decreasing time order; a request that arrives while the
    /// previous handshake is still pending is detected at the next
    /// available tick (AER serialisation).
    pub fn process(&mut self, request: SimTime) -> QuantizedEvent {
        let delta = request.saturating_duration_since(self.last_detection);
        let (event, busy_until) = match self.table.quantize(delta) {
            QuantizeOutcome::Sampled { detection_offset, ticks } => {
                let detection = self.last_detection + detection_offset;
                let clamped = ticks.min(self.counter_max);
                let event = QuantizedEvent {
                    request,
                    detection,
                    timestamp_ticks: clamped,
                    saturated: clamped != ticks,
                    woke_clock: false,
                };
                (event, detection_offset)
            }
            QuantizeOutcome::Asleep { frozen_ticks, off_since } => {
                // Clock off: REQ restarts the oscillator; first usable
                // tick lands one base period after the wake latency.
                let detection = request + self.wake_latency + self.base_period;
                let clamped = frozen_ticks.min(self.counter_max);
                let event = QuantizedEvent {
                    request,
                    detection,
                    timestamp_ticks: clamped,
                    saturated: true,
                    woke_clock: true,
                };
                self.report.wake_count += 1;
                // Active time: segments up to shutdown, then off until
                // the request, then the wake interval at full speed.
                let mut usage = self.table.usage_until(off_since);
                usage.off += delta - off_since;
                usage.add_active(1, self.wake_latency + self.base_period);
                self.account(event, usage);
                self.last_detection = detection;
                return event;
            }
        };
        let usage = self.table.usage_until(busy_until);
        self.account(event, usage);
        self.last_detection = event.detection;
        event
    }

    fn account(&mut self, event: QuantizedEvent, usage: IntervalUsage) {
        self.report.usage.merge(&usage);
        self.report.event_count += 1;
        if event.saturated {
            self.report.saturated_count += 1;
        }
    }

    /// Accounts for the trailing quiet interval up to `horizon` (no
    /// event there; the clock divides and eventually stops on its own).
    ///
    /// Call once at the end of a run so that the activity report covers
    /// exactly `[0, horizon]`.
    pub fn finish(&mut self, horizon: SimTime) -> &ActivityReport {
        let tail = horizon.saturating_duration_since(self.last_detection);
        if !tail.is_zero() {
            let usage = self.table.usage_until(tail);
            self.report.usage.merge(&usage);
            self.last_detection = horizon;
        }
        &self.report
    }

    /// The activity report accumulated so far.
    pub fn report(&self) -> &ActivityReport {
        &self.report
    }

    /// The base sampling period `T_min`.
    pub fn base_period(&self) -> SimDuration {
        self.base_period
    }
}

/// Quantizes a whole request-time sequence in one call, returning the
/// events and the activity over `[0, horizon]`.
///
/// # Panics
///
/// Panics if `requests` is not sorted by non-decreasing time or if the
/// configuration is invalid.
pub fn quantize_requests(
    config: &ClockGenConfig,
    requests: &[SimTime],
    horizon: SimTime,
) -> (Vec<QuantizedEvent>, ActivityReport) {
    assert!(requests.windows(2).all(|w| w[1] >= w[0]), "requests must be time-sorted");
    let mut engine = SamplingEngine::new(config);
    let events = requests.iter().map(|&r| engine.process(r)).collect();
    engine.finish(horizon);
    (events, engine.report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DivisionPolicy;

    fn proto() -> ClockGenConfig {
        ClockGenConfig::prototype()
    }

    fn base() -> SimDuration {
        proto().base_sampling_period()
    }

    #[test]
    fn single_fast_event_measures_one_interval() {
        let mut engine = SamplingEngine::new(&proto());
        // Request exactly at 10 base periods: detected there, ts = 10.
        let ev = engine.process(SimTime::ZERO + base() * 10);
        assert_eq!(ev.timestamp_ticks, 10);
        assert!(!ev.saturated);
        assert!(!ev.woke_clock);
        assert_eq!(ev.detection, SimTime::ZERO + base() * 10);
    }

    #[test]
    fn consecutive_events_measure_deltas_not_absolutes() {
        let mut engine = SamplingEngine::new(&proto());
        let first = engine.process(SimTime::ZERO + base() * 10);
        let second = engine.process(first.detection + base() * 7);
        assert_eq!(second.timestamp_ticks, 7, "timestamp is the delta from the previous event");
    }

    #[test]
    fn event_beyond_shutdown_saturates_and_wakes() {
        let cfg = proto();
        let table = SegmentTable::new(&cfg);
        let beyond = table.shutdown_offset().unwrap() + SimDuration::from_ms(10);
        let mut engine = SamplingEngine::new(&cfg);
        let ev = engine.process(SimTime::ZERO + beyond);
        assert!(ev.saturated);
        assert!(ev.woke_clock);
        assert_eq!(ev.timestamp_ticks, 64 * 15);
        assert_eq!(ev.detection, ev.request + cfg.ring.wake_latency + base());
        assert_eq!(engine.report().wake_count, 1);
    }

    #[test]
    fn serialized_requests_never_share_a_tick() {
        let mut engine = SamplingEngine::new(&proto());
        // Three requests inside one base period.
        let t = SimTime::from_ns(10);
        let a = engine.process(t);
        let b = engine.process(t + SimDuration::from_ns(1));
        let c = engine.process(t + SimDuration::from_ns(2));
        assert!(b.detection > a.detection);
        assert!(c.detection > b.detection);
        // Each measured as one tick minimum.
        assert_eq!(b.timestamp_ticks, 1);
        assert_eq!(c.timestamp_ticks, 1);
    }

    #[test]
    fn activity_covers_whole_horizon() {
        let cfg = proto();
        let horizon = SimTime::from_ms(50);
        let requests: Vec<SimTime> = (1..=100).map(|i| SimTime::from_us(i * 400)).collect();
        let (_, report) = quantize_requests(&cfg, &requests, horizon);
        let total = report.usage.total();
        // The accounted time equals the horizon, minus only the wake
        // overlap corrections (bounded by wakes · (wake+base)).
        let slack = SimDuration::from_us(1).saturating_mul(report.wake_count + 1);
        let lo = horizon.saturating_duration_since(SimTime::ZERO) - slack;
        let hi = horizon.saturating_duration_since(SimTime::ZERO) + slack;
        assert!(total >= lo && total <= hi, "accounted {total} vs horizon 50 ms");
    }

    #[test]
    fn no_division_policy_never_sleeps() {
        let cfg = proto().with_policy(DivisionPolicy::Never);
        let requests = vec![SimTime::from_ms(1), SimTime::from_secs(1)];
        let (events, report) = quantize_requests(&cfg, &requests, SimTime::from_secs(2));
        assert_eq!(report.wake_count, 0);
        assert!(events.iter().all(|e| !e.woke_clock));
        assert_eq!(report.usage.off, SimDuration::ZERO);
        assert_eq!(report.usage.active.len(), 1);
        assert_eq!(report.usage.active[0].0, 1);
    }

    #[test]
    fn counter_width_clamp_marks_saturated() {
        let cfg = ClockGenConfig {
            counter_bits: 6, // max 63 ticks
            ..proto().with_policy(DivisionPolicy::Never)
        };
        let mut engine = SamplingEngine::new(&cfg);
        let ev = engine.process(SimTime::ZERO + base() * 100);
        assert_eq!(ev.timestamp_ticks, 63);
        assert!(ev.saturated);
    }

    #[test]
    fn measured_interval_helper() {
        let ev = QuantizedEvent {
            request: SimTime::ZERO,
            detection: SimTime::ZERO,
            timestamp_ticks: 10,
            saturated: false,
            woke_clock: false,
        };
        assert_eq!(ev.measured_interval(SimDuration::from_ns(100)), SimDuration::from_us(1));
    }

    #[test]
    fn relative_error_in_active_region_is_bounded() {
        // Analytic check (the full Fig. 6 sweep lives in the bench
        // crate): for deltas inside segment k the relative quantization
        // error is at most 2^k·T/delta <= 1/θ · 2^k·θ·T/delta < ~2/θ
        // once delta is past the segment's start.
        let cfg = proto(); // θ = 64
        let mut worst: f64 = 0.0;
        for i in 1..2_000u64 {
            let delta = base() * 64 + SimDuration::from_ps(i * 1_234_567 % (base() * 800).as_ps());
            let mut engine = SamplingEngine::new(&cfg);
            let ev = engine.process(SimTime::ZERO + delta);
            if ev.saturated {
                continue;
            }
            let measured = ev.measured_interval(base()).as_secs_f64();
            let truth = delta.as_secs_f64();
            worst = worst.max((measured - truth).abs() / truth);
        }
        assert!(worst < 2.0 / 64.0 + 0.01, "worst active-region error {worst}");
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn unsorted_requests_panic() {
        let _ = quantize_requests(
            &proto(),
            &[SimTime::from_us(5), SimTime::from_us(1)],
            SimTime::from_ms(1),
        );
    }
}
