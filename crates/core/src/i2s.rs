//! I2S carrier for the AETR stream.
//!
//! The paper selects I2S "accordingly to the audio nature of the
//! cochlea signal": any I2S-equipped microcontroller (e.g. the
//! STM32-L476) can consume the stream with its audio peripheral and
//! DMA. Each stereo frame carries two 32-bit AETR words (left and
//! right slots); a frame therefore takes `2 × 32` SCK cycles.
//!
//! The transmitter here models frame-level timing exactly (start time,
//! duration at the configured bit clock) and odd-event padding with an
//! idle word; [`decode_frames`] is the MCU-side inverse.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use aetr_sim::time::{Frequency, SimDuration, SimTime};

use crate::aetr_format::AetrEvent;

/// Padding word used to fill the right slot of a half-full frame: an
/// all-ones word (address 1023 with a saturated timestamp) that real
/// events never produce, because the front end clamps addresses to the
/// sensor range and a saturated event still carries its real address.
pub const IDLE_WORD: u32 = u32::MAX;

/// I2S link configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct I2sConfig {
    /// Serial (bit) clock frequency. The prototype derives it from the
    /// 30 MHz reference; 15 MHz sustains ≈470 kevt/s.
    pub sck: Frequency,
    /// Bits per slot (fixed 32 for AETR words).
    pub bits_per_slot: u32,
}

impl I2sConfig {
    /// The prototype configuration: SCK at 15 MHz, 32-bit slots.
    pub fn prototype() -> I2sConfig {
        I2sConfig { sck: Frequency::from_mhz(15), bits_per_slot: 32 }
    }

    /// Duration of one stereo frame (two slots).
    ///
    /// # Panics
    ///
    /// Panics on a zero SCK frequency.
    pub fn frame_duration(&self) -> SimDuration {
        self.sck.period().saturating_mul(2 * self.bits_per_slot as u64)
    }

    /// Sustained event throughput in events per second (two events per
    /// frame).
    pub fn max_event_rate_hz(&self) -> f64 {
        2.0 / self.frame_duration().as_secs_f64()
    }
}

impl Default for I2sConfig {
    fn default() -> Self {
        Self::prototype()
    }
}

/// One transmitted stereo frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct I2sFrame {
    /// When the frame's first SCK edge occurred.
    pub start: SimTime,
    /// Left-slot word.
    pub left: u32,
    /// Right-slot word ([`IDLE_WORD`] for a padded frame).
    pub right: u32,
}

impl I2sFrame {
    /// The events carried by this frame (ignoring idle padding).
    pub fn events(&self) -> impl Iterator<Item = AetrEvent> {
        [self.left, self.right].into_iter().filter(|&w| w != IDLE_WORD).map(AetrEvent::from_word)
    }
}

/// A transmitted I2S stream: time-ordered frames.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct I2sStream {
    frames: Vec<I2sFrame>,
}

impl I2sStream {
    /// Creates an empty stream.
    pub fn new() -> I2sStream {
        I2sStream::default()
    }

    /// Appends a frame.
    ///
    /// # Panics
    ///
    /// Panics if `frame.start` precedes the last frame's start.
    pub fn push(&mut self, frame: I2sFrame) {
        if let Some(last) = self.frames.last() {
            assert!(frame.start >= last.start, "I2S frames must be appended in time order");
        }
        self.frames.push(frame);
    }

    /// The frames.
    pub fn frames(&self) -> &[I2sFrame] {
        &self.frames
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when nothing was transmitted.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total events carried (idle padding excluded).
    pub fn event_count(&self) -> usize {
        self.frames.iter().map(|f| f.events().count()).sum()
    }

    /// Removes and returns the most recent frame (fault-injection
    /// support: a receiver-side frame slip loses the frame *after* the
    /// transmitter spent the bus time sending it).
    pub fn pop_last(&mut self) -> Option<I2sFrame> {
        self.frames.pop()
    }
}

/// Frame-overlap error from the transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameOverlapError {
    /// When the offending transmission was requested.
    pub requested: SimTime,
    /// When the transmitter becomes free.
    pub busy_until: SimTime,
}

impl fmt::Display for FrameOverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "I2S busy until {}, cannot start a frame at {}", self.busy_until, self.requested)
    }
}

impl Error for FrameOverlapError {}

/// The I2S transmitter.
///
/// # Examples
///
/// ```
/// use aetr::aetr_format::{AetrEvent, Timestamp};
/// use aetr::i2s::{I2sConfig, I2sTransmitter};
/// use aetr_aer::address::Address;
/// use aetr_sim::time::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut tx = I2sTransmitter::new(I2sConfig::prototype());
/// let ev = AetrEvent::new(Address::new(3)?, Timestamp::from_ticks(9));
/// let done = tx.send_pair(SimTime::from_us(10), ev, None)?;
/// assert!(done > SimTime::from_us(10));
/// assert_eq!(tx.stream().event_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct I2sTransmitter {
    config: I2sConfig,
    stream: I2sStream,
    busy_until: SimTime,
}

impl I2sTransmitter {
    /// Creates an idle transmitter.
    pub fn new(config: I2sConfig) -> I2sTransmitter {
        I2sTransmitter { config, stream: I2sStream::new(), busy_until: SimTime::ZERO }
    }

    /// The configuration.
    pub fn config(&self) -> &I2sConfig {
        &self.config
    }

    /// When the transmitter finishes its current frame.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// `true` if a frame may start at `now`.
    pub fn is_idle_at(&self, now: SimTime) -> bool {
        now >= self.busy_until
    }

    /// Transmits one frame carrying up to two events starting at `now`;
    /// a missing second event is padded with [`IDLE_WORD`]. Returns the
    /// frame completion time.
    ///
    /// # Errors
    ///
    /// Returns [`FrameOverlapError`] if the previous frame has not
    /// finished.
    pub fn send_pair(
        &mut self,
        now: SimTime,
        first: AetrEvent,
        second: Option<AetrEvent>,
    ) -> Result<SimTime, FrameOverlapError> {
        if now < self.busy_until {
            return Err(FrameOverlapError { requested: now, busy_until: self.busy_until });
        }
        let frame = I2sFrame {
            start: now,
            left: first.to_word(),
            right: second.map_or(IDLE_WORD, AetrEvent::to_word),
        };
        self.stream.push(frame);
        self.busy_until = now + self.config.frame_duration();
        Ok(self.busy_until)
    }

    /// Discards the most recently transmitted frame — a receiver-side
    /// frame slip. The bus time stays spent (`busy_until` is
    /// unchanged); only the data is lost. Returns the lost frame.
    pub fn drop_last_frame(&mut self) -> Option<I2sFrame> {
        self.stream.pop_last()
    }

    /// The transmitted stream so far.
    pub fn stream(&self) -> &I2sStream {
        &self.stream
    }

    /// Consumes the transmitter, returning the stream.
    pub fn into_stream(self) -> I2sStream {
        self.stream
    }
}

/// MCU-side decode: recovers the AETR events from a stream, in order.
pub fn decode_frames(stream: &I2sStream) -> Vec<AetrEvent> {
    stream.frames().iter().flat_map(I2sFrame::events).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aetr_format::Timestamp;
    use aetr_aer::address::Address;

    fn ev(i: u16) -> AetrEvent {
        AetrEvent::new(Address::new(i).unwrap(), Timestamp::from_ticks(i as u64 * 3))
    }

    #[test]
    fn prototype_rates() {
        let cfg = I2sConfig::prototype();
        // 64 bits at 15 MHz ≈ 4.27 µs per frame, ~469 kevt/s.
        let us = cfg.frame_duration().as_ps() as f64 / 1e6;
        assert!((us - 4.27).abs() < 0.05, "frame {us} µs");
        let rate = cfg.max_event_rate_hz();
        assert!((rate - 469_000.0).abs() < 5_000.0, "rate {rate}");
    }

    #[test]
    fn frame_roundtrip_with_padding() {
        let mut tx = I2sTransmitter::new(I2sConfig::prototype());
        tx.send_pair(SimTime::ZERO, ev(1), Some(ev(2))).unwrap();
        let t2 = tx.busy_until();
        tx.send_pair(t2, ev(3), None).unwrap();
        let decoded = decode_frames(tx.stream());
        assert_eq!(decoded, vec![ev(1), ev(2), ev(3)]);
        assert_eq!(tx.stream().event_count(), 3);
        assert_eq!(tx.stream().len(), 2);
    }

    #[test]
    fn overlapping_transmission_rejected() {
        let mut tx = I2sTransmitter::new(I2sConfig::prototype());
        tx.send_pair(SimTime::from_us(1), ev(1), None).unwrap();
        let err = tx.send_pair(SimTime::from_us(2), ev(2), None).unwrap_err();
        assert_eq!(err.requested, SimTime::from_us(2));
        assert!(err.busy_until > err.requested);
        assert!(err.to_string().contains("busy"));
        // After the frame ends it works again.
        assert!(tx.send_pair(err.busy_until, ev(2), None).is_ok());
    }

    #[test]
    fn frame_timing_is_exact() {
        let cfg = I2sConfig { sck: Frequency::from_mhz(1), bits_per_slot: 32 };
        let mut tx = I2sTransmitter::new(cfg);
        let done = tx.send_pair(SimTime::ZERO, ev(0), None).unwrap();
        // 64 cycles at 1 MHz = 64 µs.
        assert_eq!(done, SimTime::from_us(64));
    }

    #[test]
    fn idle_word_never_collides_with_saturated_event() {
        // A saturated event at the maximum *sensor* address (1023) would
        // collide — but real sensors use < 1024 addresses and the
        // interface range-checks; documents the invariant.
        let almost = AetrEvent::new(Address::new(1022).unwrap(), Timestamp::SATURATED);
        assert_ne!(almost.to_word(), IDLE_WORD);
    }

    #[test]
    fn drop_last_frame_keeps_bus_time_spent() {
        let mut tx = I2sTransmitter::new(I2sConfig::prototype());
        tx.send_pair(SimTime::ZERO, ev(1), Some(ev(2))).unwrap();
        let busy = tx.busy_until();
        let slipped = tx.drop_last_frame().expect("frame was sent");
        assert_eq!(slipped.events().count(), 2);
        assert_eq!(tx.stream().len(), 0, "frame gone from the stream");
        assert_eq!(tx.busy_until(), busy, "bus time was still consumed");
        assert_eq!(tx.drop_last_frame(), None);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn stream_rejects_time_travel() {
        let mut s = I2sStream::new();
        s.push(I2sFrame { start: SimTime::from_us(10), left: 0, right: 0 });
        s.push(I2sFrame { start: SimTime::from_us(5), left: 0, right: 0 });
    }
}
