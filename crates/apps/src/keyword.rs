//! Keyword spotting through the whole stack — the paper's title made
//! measurable.
//!
//! Three synthetic "keywords" (distinct formant tracks) are spoken
//! with per-instance variation (pitch shift, noise level, seed); the
//! cochlea converts them to spikes; features are extracted either from
//! the *raw sensor stream* or from the *AETR-quantized, reconstructed
//! stream* — so classification accuracy directly measures how much
//! information the interface preserved.

use serde::{Deserialize, Serialize};

use aetr::quantizer::{quantize_train, reconstruct_train};
use aetr_aer::spike::SpikeTrain;
use aetr_clockgen::config::ClockGenConfig;
use aetr_cochlea::model::{Cochlea, CochleaConfig};
use aetr_cochlea::word::{synthesize_word, WordSegment};
use aetr_sim::time::{SimDuration, SimTime};

use crate::classifier::{evaluate, CentroidModel, Evaluation, TrainError};
use crate::features::{extract, FeatureConfig, FeatureVector};

/// The keyword vocabulary: label and formant script.
pub fn vocabulary() -> Vec<(&'static str, Vec<WordSegment>)> {
    vec![
        (
            "open",
            vec![
                WordSegment::Voiced { f1: 570.0, f2: 840.0, secs: 0.12 }, // /o/
                WordSegment::Voiced { f1: 270.0, f2: 2_290.0, secs: 0.08 }, // /i/-ish glide
                WordSegment::Noise { secs: 0.05, level: 0.25 },           // /p~n/ burst
            ],
        ),
        (
            "stop",
            vec![
                WordSegment::Noise { secs: 0.08, level: 0.35 }, // /s-t/
                WordSegment::Silence { secs: 0.03 },
                WordSegment::Voiced { f1: 500.0, f2: 900.0, secs: 0.12 }, // /o/
                WordSegment::Noise { secs: 0.04, level: 0.3 },            // /p/
            ],
        ),
        (
            "left",
            vec![
                WordSegment::Voiced { f1: 400.0, f2: 2_100.0, secs: 0.08 }, // /l-e/
                WordSegment::Voiced { f1: 550.0, f2: 1_900.0, secs: 0.10 },
                WordSegment::Noise { secs: 0.06, level: 0.3 }, // /ft/
            ],
        ),
    ]
}

/// One spoken instance of a keyword, with per-instance variation.
pub fn speak(label: &str, instance: u64) -> SpikeTrain {
    let script = vocabulary()
        .into_iter()
        .find(|(l, _)| *l == label)
        .unwrap_or_else(|| panic!("unknown keyword {label}"))
        .1;
    // Vary pitch ±15% and seed per instance.
    let pitch = 120.0 * (1.0 + 0.15 * (((instance * 7919) % 100) as f64 / 50.0 - 1.0));
    let audio = synthesize_word(16_000, pitch, &script, instance);
    let mut cochlea = Cochlea::new(CochleaConfig::das1()).expect("valid DAS1 config");
    cochlea.process(&audio)
}

/// How the features were obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pipeline {
    /// Straight from the sensor (the upper bound).
    Raw,
    /// Through AER→AETR quantization and MCU-side reconstruction.
    Quantized,
}

/// Extracts keyword features through the chosen pipeline.
pub fn features_for(
    train: &SpikeTrain,
    pipeline: Pipeline,
    clock: &ClockGenConfig,
) -> FeatureVector {
    let cfg = FeatureConfig::das1_channels();
    match pipeline {
        Pipeline::Raw => extract(train, &cfg),
        Pipeline::Quantized => {
            let horizon =
                train.last_time().unwrap_or(SimTime::ZERO).saturating_add(SimDuration::from_ms(1));
            let out = quantize_train(clock, train, horizon);
            let rebuilt = reconstruct_train(&out.events(), out.base_period, SimTime::ZERO);
            extract(&rebuilt, &cfg)
        }
    }
}

/// Trains on `train_instances` spoken instances per keyword and
/// evaluates on `test_instances` fresh ones, all through `pipeline`.
///
/// # Errors
///
/// Propagates [`TrainError`] (only possible with an empty vocabulary).
pub fn run_experiment(
    pipeline: Pipeline,
    clock: &ClockGenConfig,
    train_instances: u64,
    test_instances: u64,
) -> Result<Evaluation, TrainError> {
    let mut training = Vec::new();
    for (label, _) in vocabulary() {
        for i in 0..train_instances {
            let spikes = speak(label, i);
            training.push((label.to_owned(), features_for(&spikes, pipeline, clock)));
        }
    }
    let model = CentroidModel::train(training)?;

    let mut test_set = Vec::new();
    for (label, _) in vocabulary() {
        for i in 0..test_instances {
            let spikes = speak(label, 1_000 + i);
            test_set.push((label, features_for(&spikes, pipeline, clock)));
        }
    }
    Ok(evaluate(&model, test_set.iter().map(|(l, f)| (*l, f))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_distinguishable_raw() {
        let clock = ClockGenConfig::prototype();
        let eval = run_experiment(Pipeline::Raw, &clock, 3, 3).unwrap();
        assert!(
            eval.accuracy() >= 0.8,
            "raw accuracy {:.2} ({:?})",
            eval.accuracy(),
            eval.confusion
        );
    }

    #[test]
    fn quantization_preserves_classification() {
        // The headline: information survives the interface.
        let clock = ClockGenConfig::prototype();
        let raw = run_experiment(Pipeline::Raw, &clock, 3, 3).unwrap();
        let quantized = run_experiment(Pipeline::Quantized, &clock, 3, 3).unwrap();
        assert!(
            quantized.accuracy() >= raw.accuracy() - 0.12,
            "quantized {:.2} vs raw {:.2}",
            quantized.accuracy(),
            raw.accuracy()
        );
    }

    #[test]
    fn instances_vary_but_keep_identity() {
        let a = speak("open", 1);
        let b = speak("open", 2);
        assert_ne!(a, b, "instances must differ");
        assert!(!a.is_empty() && !b.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown keyword")]
    fn unknown_keyword_panics() {
        let _ = speak("xyzzy", 0);
    }
}
