//! # aetr-cochlea — synthetic silicon-cochlea sensor
//!
//! The substitution for the Cochlea AMS C1c (iniLabs DAS1) sensor the
//! paper interfaces with: [audio synthesis](audio) (tones, noise,
//! formant ["words"](word)), a log-spaced band-pass
//! [filter bank](filterbank), half-wave-rectifying leaky
//! integrate-and-fire [neurons](neuron), and the assembled binaural
//! [`model::Cochlea`] producing AER spike trains.
//!
//! # Examples
//!
//! The Fig. 7a pipeline — synthesize a word, listen with the cochlea:
//!
//! ```
//! use aetr_cochlea::model::{Cochlea, CochleaConfig};
//! use aetr_cochlea::word::fig7_word;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut cochlea = Cochlea::new(CochleaConfig::das1())?;
//! let spikes = cochlea.process(&fig7_word(16_000, 42));
//! assert!(spikes.len() > 100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod filterbank;
pub mod model;
pub mod neuron;
pub mod word;

pub use audio::AudioBuffer;
pub use model::{Cochlea, CochleaConfig, Ear};
