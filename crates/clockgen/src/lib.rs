//! # aetr-clockgen — pausable, recursively divided clock generation
//!
//! The paper's key power mechanism: a [ring oscillator](ring) that can
//! be paused by breaking its inverter loop, a [`divider`]
//! cascade producing the 30 MHz reference, and the Fig. 1 sampling
//! [FSM](fsm) that doubles the sampling period every `θ_div` quiet
//! cycles and stops the clock entirely after `N_div` divisions.
//!
//! Two execution models are provided, with property-tested
//! equivalence:
//!
//! * [`fsm::SamplerFsm`] — cycle-accurate, used by the full-interface
//!   DES and the [waveform recorder](schedule) (Fig. 2);
//! * [`engine::SamplingEngine`] over a precomputed
//!   [`segments::SegmentTable`] — O(events), used for the Fig. 6/8
//!   sweeps.
//!
//! # Examples
//!
//! Quantize an inter-event interval with the prototype configuration:
//!
//! ```
//! use aetr_clockgen::config::ClockGenConfig;
//! use aetr_clockgen::engine::SamplingEngine;
//! use aetr_sim::time::SimTime;
//!
//! let config = ClockGenConfig::prototype(); // θ=64, N=3, 30 MHz ref
//! let mut engine = SamplingEngine::new(&config);
//! let event = engine.process(SimTime::from_us(20));
//! let measured = event.measured_interval(engine.base_period());
//! // ~20 µs measured with < 3% error in the active region.
//! let err = (measured.as_secs_f64() - 20e-6).abs() / 20e-6;
//! assert!(err < 0.03);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod divider;
pub mod engine;
pub mod fll;
pub mod fsm;
pub mod jitter;
pub mod pausible;
pub mod ring;
pub mod schedule;
pub mod segments;
pub mod trim;

pub use config::{ClockGenConfig, DivisionPolicy};
pub use engine::{QuantizedEvent, SamplingEngine};
pub use fsm::{IdleAdvance, IdleBoundary, IdleSegment, SamplerFsm};
pub use ring::{RingOscillator, RingOscillatorConfig};
pub use segments::SegmentTable;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use aetr_sim::time::{SimDuration, SimTime};

    use crate::config::{ClockGenConfig, DivisionPolicy};
    use crate::engine::SamplingEngine;
    use crate::segments::{QuantizeOutcome, SegmentTable};

    fn any_policy() -> impl Strategy<Value = DivisionPolicy> {
        prop_oneof![
            Just(DivisionPolicy::Recursive),
            Just(DivisionPolicy::DivideOnly),
            Just(DivisionPolicy::Never),
            Just(DivisionPolicy::Linear),
        ]
    }

    proptest! {
        /// Quantization never under-estimates a running-clock interval:
        /// the detecting tick is at or after the request, and the
        /// counter equals the detection offset exactly.
        #[test]
        fn quantize_is_conservative(
            theta in 2u32..200,
            n_div in 0u32..10,
            policy in any_policy(),
            delta_ps in 1u64..10_000_000_000u64,
        ) {
            let cfg = ClockGenConfig::prototype()
                .with_theta_div(theta)
                .with_n_div(n_div)
                .with_policy(policy);
            let table = SegmentTable::new(&cfg);
            match table.quantize(SimDuration::from_ps(delta_ps)) {
                QuantizeOutcome::Sampled { detection_offset, ticks } => {
                    prop_assert!(detection_offset >= SimDuration::from_ps(delta_ps));
                    prop_assert_eq!(detection_offset / table.base_period(), ticks);
                    prop_assert_eq!(
                        detection_offset.as_ps() % table.base_period().as_ps(), 0,
                        "ticks land on the T_min grid");
                }
                QuantizeOutcome::Asleep { frozen_ticks, off_since } => {
                    prop_assert!(SimDuration::from_ps(delta_ps) > off_since);
                    prop_assert_eq!(Some(frozen_ticks), table.max_counter());
                }
            }
        }

        /// Detection times strictly increase across any request stream
        /// (AER serialisation), and timestamps are never zero.
        #[test]
        fn detections_strictly_increase(
            gaps in proptest::collection::vec(0u64..50_000_000u64, 1..100),
            theta in 2u32..100,
        ) {
            let cfg = ClockGenConfig::prototype().with_theta_div(theta);
            let mut engine = SamplingEngine::new(&cfg);
            let mut t = SimTime::ZERO;
            let mut last_detection = SimTime::ZERO;
            for g in gaps {
                t += SimDuration::from_ps(g);
                let ev = engine.process(t);
                prop_assert!(ev.detection > last_detection);
                prop_assert!(ev.timestamp_ticks >= 1);
                last_detection = ev.detection;
            }
        }

        /// Usage accounting is exact: active + off time equals the
        /// quantized horizon for an idle stretch.
        #[test]
        fn idle_usage_is_exact(
            until_ps in 1u64..100_000_000_000u64,
            theta in 2u32..100,
            n in 0u32..8,
        ) {
            let cfg = ClockGenConfig::prototype().with_theta_div(theta).with_n_div(n);
            let table = SegmentTable::new(&cfg);
            let until = SimDuration::from_ps(until_ps);
            let usage = table.usage_until(until);
            prop_assert_eq!(usage.total(), until);
        }

        /// The detection overshoot is bounded by the slowest segment's
        /// period — the quantization-error envelope behind Fig. 6.
        #[test]
        fn quantization_error_bounded_by_local_period(delta_ps in 100_000u64..500_000_000u64) {
            let cfg = ClockGenConfig::prototype();
            let table = SegmentTable::new(&cfg);
            let delta = SimDuration::from_ps(delta_ps);
            if let QuantizeOutcome::Sampled { detection_offset, .. } = table.quantize(delta) {
                let overshoot = detection_offset - delta;
                let max_step = table.base_period() * (1 << cfg.n_div);
                prop_assert!(overshoot <= max_step);
            }
        }
    }
}
