//! Live sampling of the interface on a simulated-time cadence.
//!
//! End-of-run aggregates hide the *trajectory* of energy
//! proportionality: the paper's claim is that power tracks the
//! instantaneous event rate. The sampler snapshots rate, power, divider
//! level, and FIFO depth every `cadence` of simulated time into a
//! [`TimeSeries`] that `analysis`/`bench` (and `aetr-cli telemetry`)
//! can plot or export.

use aetr_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::json::Json;

/// One sampled point of interface state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplePoint {
    /// Simulated time of the sample.
    pub t: SimTime,
    /// Cumulative events captured up to `t`.
    pub events_total: u64,
    /// Event rate over the window since the previous sample (Hz).
    pub rate_hz: f64,
    /// Instantaneous power draw at `t` (µW); see
    /// `PowerModel::instantaneous_power` for what this includes.
    pub power_uw: f64,
    /// Clock divider multiplier at `t` (1 = full rate, 0 = oscillator
    /// off / sleeping).
    pub divider_multiplier: u64,
    /// FIFO depth at `t` using the canonical definition (true
    /// occupancy; see `AetrFifo::len`).
    pub fifo_depth: u64,
}

/// Uniform-cadence time series of [`SamplePoint`]s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    cadence: SimDuration,
    points: Vec<SamplePoint>,
}

impl TimeSeries {
    /// Creates an empty series with the given sampling cadence.
    ///
    /// # Panics
    ///
    /// Panics on a zero cadence (the sampler would never advance).
    pub fn new(cadence: SimDuration) -> TimeSeries {
        assert!(!cadence.is_zero(), "sampling cadence must be positive");
        TimeSeries { cadence, points: Vec::new() }
    }

    /// The configured sampling cadence.
    pub fn cadence(&self) -> SimDuration {
        self.cadence
    }

    /// Recorded points in time order.
    pub fn points(&self) -> &[SamplePoint] {
        &self.points
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Records a sample at `t`, deriving the event rate from the
    /// previous point (or from simulated time zero for the first one).
    ///
    /// # Panics
    ///
    /// Panics if `t` does not advance past the previous sample.
    pub fn record(
        &mut self,
        t: SimTime,
        events_total: u64,
        power_uw: f64,
        divider_multiplier: u64,
        fifo_depth: u64,
    ) {
        let (t0, e0) = match self.points.last() {
            Some(p) => {
                assert!(p.t < t, "samples must advance in time");
                (p.t, p.events_total)
            }
            None => (SimTime::ZERO, 0),
        };
        let window = t.saturating_duration_since(t0).as_secs_f64();
        let rate_hz =
            if window > 0.0 { events_total.saturating_sub(e0) as f64 / window } else { 0.0 };
        self.points.push(SamplePoint {
            t,
            events_total,
            rate_hz,
            power_uw,
            divider_multiplier,
            fifo_depth,
        });
    }

    /// Serialises the series for the JSON export.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cadence_ps", Json::from(self.cadence.as_ps())),
            (
                "points",
                Json::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("t_ps", Json::from(p.t.as_ps())),
                                ("events_total", Json::from(p.events_total)),
                                ("rate_hz", Json::from(p.rate_hz)),
                                ("power_uw", Json::from(p.power_uw)),
                                ("divider_multiplier", Json::from(p.divider_multiplier)),
                                ("fifo_depth", Json::from(p.fifo_depth)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl Default for TimeSeries {
    fn default() -> TimeSeries {
        TimeSeries::new(SimDuration::from_us(100))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_delta_events_over_delta_time() {
        let mut ts = TimeSeries::new(SimDuration::from_us(1));
        ts.record(SimTime::from_us(1), 10, 5.0, 1, 0);
        ts.record(SimTime::from_us(2), 30, 5.0, 2, 3);
        assert_eq!(ts.len(), 2);
        // 10 events in the first microsecond -> 10 MHz.
        assert!((ts.points()[0].rate_hz - 1.0e7).abs() < 1.0);
        // 20 events in the second microsecond -> 20 MHz.
        assert!((ts.points()[1].rate_hz - 2.0e7).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "advance")]
    fn non_advancing_sample_panics() {
        let mut ts = TimeSeries::new(SimDuration::from_us(1));
        ts.record(SimTime::from_us(1), 1, 0.0, 1, 0);
        ts.record(SimTime::from_us(1), 2, 0.0, 1, 0);
    }

    #[test]
    fn json_export_carries_every_field() {
        let mut ts = TimeSeries::new(SimDuration::from_us(1));
        ts.record(SimTime::from_us(1), 4, 2.5, 8, 7);
        let json = ts.to_json();
        let point = &json.get("points").unwrap().as_array().unwrap()[0];
        assert_eq!(point.get("events_total").unwrap().as_f64(), Some(4.0));
        assert_eq!(point.get("divider_multiplier").unwrap().as_f64(), Some(8.0));
        assert_eq!(point.get("fifo_depth").unwrap().as_f64(), Some(7.0));
    }
}
