//! Offline stub of the `serde` facade.
//!
//! The build environment for this repository is fully sandboxed: the
//! crates-io registry is unreachable, there is no vendored registry
//! snapshot, and no `~/.cargo/registry` cache. The workspace therefore
//! ships minimal, API-compatible stubs for its external dependencies
//! under `vendor/` (see `DESIGN.md`, "Offline builds").
//!
//! The real `serde` is used by this workspace only through
//! `#[derive(Serialize, Deserialize)]` markers on config/report types —
//! nothing in the tree actually serializes (there is no `serde_json`,
//! no `to_string`/`from_str` call site). The stub keeps those derives
//! compiling by providing:
//!
//! - marker traits `Serialize` / `Deserialize` with blanket impls, so
//!   any `T: Serialize` bound elsewhere is trivially satisfied, and
//! - a no-op `serde_derive` proc-macro crate re-exported behind the
//!   `derive` feature, mirroring the real crate layout.
//!
//! If real serialization is ever needed, replace `vendor/serde` with a
//! registry vendor snapshot (`cargo vendor`) — the workspace manifest
//! only needs its one `path` entry switched back to a version.

/// Marker stand-in for `serde::Serialize`.
///
/// Blanket-implemented for every type so that derives and trait bounds
/// referencing it compile unchanged against the stub.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
///
/// Keeps the deserializer lifetime parameter so that bounds like
/// `for<'de> serde::Deserialize<'de>` (used by compile-time
/// serializability assertions in the integration tests) still apply.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
