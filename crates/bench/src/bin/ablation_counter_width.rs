//! Ablation: timestamp counter width vs inactive-region error.
//!
//! The AETR word reserves 22 bits for the timestamp. A narrower
//! counter clamps earlier (on top of the clock-shutdown saturation),
//! trading wire/RAM bits against the largest interval the stream can
//! still represent. This sweep shows where each width starts to hurt
//! with the never-stopping policy (the width is the *only* saturation
//! source there).

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_bench::{banner, poisson_workload, write_result};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_sim::time::SimDuration;

const SEED: u64 = 0xAB2;

fn main() {
    banner("Ablation", "timestamp counter width vs saturation error", SEED);

    let widths = [10u32, 14, 18, 22];
    println!("largest representable interval per width (T_min units × T_min):");
    for &bits in &widths {
        let cfg = ClockGenConfig {
            counter_bits: bits,
            ..ClockGenConfig::prototype().with_policy(DivisionPolicy::Never)
        };
        let max = SimDuration::from_ps(cfg.base_sampling_period().as_ps() * cfg.counter_max());
        println!("  {bits:>2} bits: {max}");
    }
    println!();

    let mut table = Table::new(vec!["counter bits", "rate (evt/s)", "mean err", "clamped %"]);
    for &bits in &widths {
        let config = ClockGenConfig {
            counter_bits: bits,
            ..ClockGenConfig::prototype().with_policy(DivisionPolicy::Never)
        };
        for (i, &rate) in log_space(10.0, 100_000.0, 7).iter().enumerate() {
            let (train, horizon) = poisson_workload(rate, SEED + i as u64, 1_000);
            let out = quantize_train(&config, &train, horizon);
            let samples = isi_error_samples(&out);
            if samples.is_empty() {
                continue;
            }
            let mean_err: f64 =
                samples.iter().map(|s| s.relative_error()).sum::<f64>() / samples.len() as f64;
            let clamped =
                samples.iter().filter(|s| s.saturated).count() as f64 / samples.len() as f64;
            table.row(vec![
                bits.to_string(),
                fmt_sig(rate),
                format!("{mean_err:.4}"),
                format!("{:.1}", clamped * 100.0),
            ]);
        }
    }
    println!("{}", table.to_ascii());
    println!(
        "reading: each halving of the width moves the error knee up by ~2^4 in rate;\n\
         22 bits keeps the knee far below any practical sensor rate (paper's choice)."
    );

    let path = write_result("ablation_counter_width.csv", &table.to_csv()).expect("write results");
    println!("\nCSV written to {}", path.display());
}
