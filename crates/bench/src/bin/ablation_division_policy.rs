//! Ablation: *how* should the sampling period grow between events?
//!
//! The paper chooses geometric doubling (recursive division). This
//! harness compares, at equal `θ_div`/`N_div` budgets:
//!
//! * `recursive`  — double every θ cycles, then shut down (the paper);
//! * `linear`     — grow by `+T_min` every θ cycles, then shut down;
//! * `divide-only`— double but never shut down;
//! * `no-division`— the naïve constant clock.
//!
//! For each policy, power and accuracy across rates: recursive should
//! dominate the power/accuracy frontier at low rates, with linear
//! growth paying either range (it saturates ~8x earlier at N=3) or
//! power.

use aetr::quantizer::{isi_error_samples, quantize_train};
use aetr_analysis::sweep::log_space;
use aetr_analysis::table::{fmt_sig, Table};
use aetr_bench::{banner, poisson_workload, write_result};
use aetr_clockgen::config::{ClockGenConfig, DivisionPolicy};
use aetr_clockgen::segments::SegmentTable;
use aetr_power::model::PowerModel;

const SEED: u64 = 0xAB1;

fn main() {
    banner("Ablation", "division policy: recursive vs linear vs divide-only vs none", SEED);

    let model = PowerModel::igloo_nano();
    let policies = [
        DivisionPolicy::Recursive,
        DivisionPolicy::Linear,
        DivisionPolicy::DivideOnly,
        DivisionPolicy::Never,
    ];

    println!("measurable range per policy (θ=64, N=3):");
    for policy in policies {
        let table = SegmentTable::new(&ClockGenConfig::prototype().with_policy(policy));
        match table.max_measurable() {
            Some(d) => println!("  {policy:<12} saturates at {d}"),
            None => println!("  {policy:<12} never saturates (counter-width limited)"),
        }
    }
    println!();

    let mut table = Table::new(vec!["policy", "rate (evt/s)", "power (uW)", "mean err", "sat %"]);
    for policy in policies {
        let config = ClockGenConfig::prototype().with_policy(policy);
        for (i, &rate) in log_space(100.0, 500_000.0, 8).iter().enumerate() {
            let (train, horizon) = poisson_workload(rate, SEED + i as u64, 2_000);
            let out = quantize_train(&config, &train, horizon);
            let power = model.evaluate(&out.activity).total;
            let samples = isi_error_samples(&out);
            let mean_err: f64 = samples.iter().map(|s| s.relative_error()).sum::<f64>()
                / samples.len().max(1) as f64;
            let sat =
                samples.iter().filter(|s| s.saturated).count() as f64 / samples.len().max(1) as f64;
            table.row(vec![
                policy.to_string(),
                fmt_sig(rate),
                format!("{:.1}", power.as_microwatts()),
                format!("{mean_err:.4}"),
                format!("{:.1}", sat * 100.0),
            ]);
        }
    }
    println!("{}", table.to_ascii());

    let path =
        write_result("ablation_division_policy.csv", &table.to_csv()).expect("write results");
    println!("CSV written to {}", path.display());
}
