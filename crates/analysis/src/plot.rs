//! Terminal line plots.
//!
//! The figure harnesses print an ASCII rendition of each paper figure
//! next to the CSV data, so the curve *shape* (who wins, where the
//! knees fall) is visible straight from `cargo run` without any
//! plotting toolchain.

use std::fmt::Write as _;

/// Axis scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Linear axis.
    Linear,
    /// Logarithmic axis (positive values only; others are skipped).
    Log,
}

/// An ASCII multi-series line plot.
///
/// # Examples
///
/// ```
/// use aetr_analysis::plot::{AsciiPlot, Scale};
///
/// let mut plot = AsciiPlot::new(40, 10, Scale::Log, Scale::Linear);
/// plot.series("rising", vec![(1.0, 0.1), (10.0, 0.5), (100.0, 0.9)]);
/// let text = plot.render();
/// assert!(text.contains("rising"));
/// ```
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    width: usize,
    height: usize,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<(String, Vec<(f64, f64)>)>,
}

/// Glyphs assigned to successive series.
const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];

impl AsciiPlot {
    /// Creates an empty plot canvas of `width × height` characters.
    ///
    /// # Panics
    ///
    /// Panics if the canvas is smaller than 8×4.
    pub fn new(width: usize, height: usize, x_scale: Scale, y_scale: Scale) -> AsciiPlot {
        assert!(width >= 8 && height >= 4, "canvas must be at least 8x4");
        AsciiPlot { width, height, x_scale, y_scale, series: Vec::new() }
    }

    /// Adds a named series.
    pub fn series(&mut self, name: impl Into<String>, points: Vec<(f64, f64)>) {
        self.series.push((name.into(), points));
    }

    fn project(scale: Scale, v: f64, lo: f64, hi: f64) -> Option<f64> {
        match scale {
            Scale::Linear => {
                if hi > lo {
                    Some((v - lo) / (hi - lo))
                } else {
                    Some(0.5)
                }
            }
            Scale::Log => {
                if v <= 0.0 || lo <= 0.0 || hi <= lo {
                    None
                } else {
                    Some((v / lo).ln() / (hi / lo).ln())
                }
            }
        }
    }

    /// Renders the canvas with axis labels and a legend.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .filter(|&(x, y)| {
                (self.x_scale == Scale::Linear || x > 0.0)
                    && (self.y_scale == Scale::Linear || y > 0.0)
            })
            .collect();
        if all.is_empty() {
            return "(no data)\n".to_owned();
        }
        let (x_lo, x_hi) = bounds(all.iter().map(|&(x, _)| x));
        let (y_lo, y_hi) = bounds(all.iter().map(|&(_, y)| y));

        let mut canvas = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in pts {
                let (Some(fx), Some(fy)) = (
                    Self::project(self.x_scale, x, x_lo, x_hi),
                    Self::project(self.y_scale, y, y_lo, y_hi),
                ) else {
                    continue;
                };
                if !(0.0..=1.0).contains(&fx) || !(0.0..=1.0).contains(&fy) {
                    continue;
                }
                let col = ((fx * (self.width - 1) as f64).round() as usize).min(self.width - 1);
                let row = self.height
                    - 1
                    - ((fy * (self.height - 1) as f64).round() as usize).min(self.height - 1);
                canvas[row][col] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "y: [{y_lo:.3e}, {y_hi:.3e}] ({:?})", self.y_scale);
        for row in &canvas {
            out.push('|');
            out.extend(row.iter());
            out.push('\n');
        }
        out.push('+');
        out.push_str(&"-".repeat(self.width));
        out.push('\n');
        let _ = writeln!(out, "x: [{x_lo:.3e}, {x_hi:.3e}] ({:?})", self.x_scale);
        for (si, (name, _)) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], name);
        }
        out
    }
}

fn bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    values.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| (lo.min(v), hi.max(v)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_series_glyphs_and_legend() {
        let mut p = AsciiPlot::new(30, 8, Scale::Linear, Scale::Linear);
        p.series("one", vec![(0.0, 0.0), (1.0, 1.0)]);
        p.series("two", vec![(0.0, 1.0), (1.0, 0.0)]);
        let text = p.render();
        assert!(text.contains('*'));
        assert!(text.contains('+'));
        assert!(text.contains("one"));
        assert!(text.contains("two"));
    }

    #[test]
    fn log_axis_skips_nonpositive_points() {
        let mut p = AsciiPlot::new(30, 8, Scale::Log, Scale::Log);
        p.series("s", vec![(0.0, 1.0), (10.0, 10.0), (100.0, 100.0)]);
        let text = p.render();
        // Two valid points plotted on the canvas (legend excluded).
        let on_canvas: usize =
            text.lines().filter(|l| l.starts_with('|')).map(|l| l.matches('*').count()).sum();
        assert_eq!(on_canvas, 2, "{text}");
    }

    #[test]
    fn empty_plot_says_so() {
        let p = AsciiPlot::new(30, 8, Scale::Linear, Scale::Linear);
        assert_eq!(p.render(), "(no data)\n");
    }

    #[test]
    fn monotone_series_renders_monotone() {
        let mut p = AsciiPlot::new(20, 10, Scale::Linear, Scale::Linear);
        p.series("inc", (0..20).map(|i| (i as f64, i as f64)).collect());
        let text = p.render();
        // The glyph on each successive line moves left (higher y first).
        let cols: Vec<usize> =
            text.lines().filter(|l| l.starts_with('|')).filter_map(|l| l.find('*')).collect();
        assert!(cols.windows(2).all(|w| w[1] <= w[0]), "cols {cols:?}");
    }

    #[test]
    #[should_panic(expected = "8x4")]
    fn tiny_canvas_panics() {
        let _ = AsciiPlot::new(2, 2, Scale::Linear, Scale::Linear);
    }
}
