//! # aetr-bench — experiment harness support
//!
//! Shared plumbing for the figure-regeneration binaries
//! (`cargo run -p aetr-bench --bin fig6_error`, ...): workload
//! builders matching the paper's stimuli, result-file output, and the
//! standard experiment banner. The Criterion micro-benchmarks live in
//! `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use aetr_aer::generator::{LfsrGenerator, PoissonGenerator, SpikeSource};
use aetr_aer::spike::SpikeTrain;
use aetr_sim::time::{SimDuration, SimTime};

/// Directory where harnesses drop CSV/VCD artifacts: `<repo>/results`.
pub fn results_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// Writes an artifact into [`results_dir`], creating it if needed, and
/// returns the full path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_result(name: &str, contents: &str) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(name);
    fs::write(&path, contents)?;
    Ok(path.canonicalize().unwrap_or(path))
}

/// Prints the standard experiment banner (figure id, description, and
/// the deterministic seed in use).
pub fn banner(figure: &str, description: &str, seed: u64) {
    println!("=== {figure} — {description}");
    println!("    (deterministic; base seed {seed})");
    println!();
}

/// The workload duration that yields at least `min_events` at
/// `rate_hz`, with a floor so even fast workloads exercise several
/// division/shutdown cycles.
pub fn duration_for_rate(rate_hz: f64, min_events: u64) -> SimTime {
    let secs = (min_events as f64 / rate_hz).max(0.1);
    SimTime::ZERO + SimDuration::from_secs_f64(secs)
}

/// A Poisson workload like the paper's Fig. 6 stimulus, seeded per
/// rate so sweeps are reproducible point by point.
pub fn poisson_workload(rate_hz: f64, seed: u64, min_events: u64) -> (SpikeTrain, SimTime) {
    let horizon = duration_for_rate(rate_hz, min_events);
    let train = PoissonGenerator::new(rate_hz, 64, seed).generate(horizon);
    (train, horizon)
}

/// An LFSR fixed-rate workload like the paper's Fig. 8 power stimulus.
pub fn lfsr_workload(rate_hz: f64, seed: u32, min_events: u64) -> (SpikeTrain, SimTime) {
    let horizon = duration_for_rate(rate_hz, min_events);
    let train = LfsrGenerator::new(rate_hz, seed).generate(horizon);
    (train, horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scales_inversely_with_rate() {
        let slow = duration_for_rate(10.0, 500);
        let fast = duration_for_rate(1e6, 500);
        assert!(slow > fast);
        assert_eq!(slow, SimTime::from_secs(50));
        assert_eq!(fast, SimTime::from_ms(100), "floor applies");
    }

    #[test]
    fn workloads_hit_requested_event_counts() {
        let (train, _) = poisson_workload(10_000.0, 1, 500);
        assert!(train.len() >= 350, "poisson events {}", train.len());
        let (train, _) = lfsr_workload(10_000.0, 1, 500);
        assert!(train.len() >= 450, "lfsr events {}", train.len());
    }

    #[test]
    fn write_result_roundtrip() {
        let path = write_result("self_test.txt", "hello").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "hello");
        let _ = std::fs::remove_file(path);
    }
}
